//! Quickstart: sort keys on a product network in a few lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the 3-dimensional product of a 4-node path (a 4×4×4 grid),
//! sorts 64 keys with the generalized multiway-merge algorithm under the
//! paper's grid cost model, and prints the step accounting of Theorem 1.

use product_sort::graph::factories;
use product_sort::sim::{CostModel, Machine};

fn main() {
    let factor = factories::path(4);
    let r = 3;
    let model = CostModel::paper_grid(factor.n());
    println!("factor: {factor:?}");
    println!("cost model: {}", model.name);

    let mut machine = Machine::charged(&factor, r, model.clone());
    let keys: Vec<u32> = (0..64u32).rev().collect();
    let report = machine.sort(keys).expect("64 keys for 64 nodes");

    assert!(report.is_snake_sorted());
    println!("sorted in snake order: {}", report.is_snake_sorted());
    println!(
        "charged steps: {} (Theorem 1 predicts {})",
        report.steps(),
        model.predicted_sort_steps(r)
    );
    println!(
        "unit accounting: {} PG_2-sort rounds ((r-1)² = {}), {} routing rounds ((r-1)(r-2) = {})",
        report.outcome.counters.s2_units,
        (r - 1) * (r - 1),
        report.outcome.counters.route_units,
        (r - 1) * (r - 2),
    );

    let sorted = report.into_sorted_vec();
    println!("first 16 keys in snake order: {:?}", &sorted[..16]);
}
