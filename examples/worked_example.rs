//! Replay the paper's 27-key worked example (Figs. 12–15) with every
//! intermediate state printed.
//!
//! ```text
//! cargo run --example worked_example
//! ```

use product_sort::algo::merge::StdBaseSorter;
use product_sort::algo::trace::multiway_merge_traced;
use product_sort::algo::Counters;

fn row(name: &str, s: &[u32]) {
    let cells: Vec<String> = s.iter().map(ToString::to_string).collect();
    println!("  {name:<6} {}", cells.join(" "));
}

fn main() {
    // The inputs of Fig. 12 (credited to Nancy Eleser in the paper).
    let inputs = vec![
        vec![0u32, 4, 4, 5, 5, 7, 8, 8, 9],
        vec![1, 4, 5, 5, 5, 6, 7, 7, 8],
        vec![0, 0, 1, 1, 1, 2, 3, 4, 9],
    ];
    let mut counters = Counters::new();
    let t = multiway_merge_traced(&inputs, &StdBaseSorter, &mut counters);

    println!("Inputs (three sorted sequences of 9 keys, Fig. 12):");
    for (u, a) in t.a.iter().enumerate() {
        row(&format!("A_{u}"), a);
    }

    println!("\nStep 1 — distribute (no data movement on the network):");
    for u in 0..3 {
        for v in 0..3 {
            row(&format!("B_{u}{v}"), &t.b[u][v]);
        }
    }

    println!("\nStep 2 — merge columns (Fig. 13b):");
    for (v, c) in t.c.iter().enumerate() {
        row(&format!("C_{v}"), c);
    }

    println!("\nStep 3 — interleave (Fig. 14): D =");
    row("D", &t.d);

    println!("\nStep 4 — clean the dirty window (Fig. 15):");
    for (z, f) in t.f.iter().enumerate() {
        row(&format!("F_{z}"), f);
    }
    println!("  after the first transposition round (3,2 ↔ 4,4):");
    for (z, g) in t.g.iter().enumerate() {
        row(&format!("G_{z}"), g);
    }
    println!("  after the second transposition round (5 ↔ 6):");
    for (z, h) in t.h.iter().enumerate() {
        row(&format!("H_{z}"), h);
    }
    println!("  final alternating sorts:");
    for (z, i) in t.i_seqs.iter().enumerate() {
        row(&format!("I_{z}"), i);
    }

    println!("\nSorted result (odd blocks read reversed — snake order):");
    row("S", &t.s);
    println!(
        "\nLemma 3 accounting (k = 3): {} S2 units, {} routing units",
        counters.s2_units, counters.route_units
    );
    assert!(t.s.windows(2).all(|w| w[0] <= w[1]));
}
