//! §5.4 in action: sorting on products of the Petersen graph.
//!
//! ```text
//! cargo run --example petersen_cube
//! ```
//!
//! The Petersen graph (Fig. 16) has a Hamiltonian path but no Hamiltonian
//! cycle. After relabeling its nodes along the path (the Section 2
//! convention), `PG_2` contains the 10×10 grid as a subgraph, so any grid
//! sorter handles the `S2` step; `10^r` keys sort in `O(r²)` steps.

use product_sort::graph::{factories, hamiltonian_cycle, hamiltonian_path};
use product_sort::sim::{CostModel, Machine, ShearSorter};

fn main() {
    let petersen = factories::petersen();
    println!("factor: {petersen:?} (3-regular, girth 5)");
    let path = hamiltonian_path(&petersen).expect("Petersen has a Hamiltonian path");
    println!("Hamiltonian path: {path:?}");
    println!(
        "Hamiltonian cycle: {:?} (the Petersen graph is hypohamiltonian)",
        hamiltonian_cycle(&petersen)
    );

    // Charged accounting: S2 = 30 (grid sorter on the embedded 10×10
    // grid), R = 9 (permutation along the embedded linear array).
    println!("\n== charged model ==");
    let model = CostModel::paper_petersen();
    for r in [2usize, 3] {
        let mut machine = Machine::charged(&petersen, r, model.clone());
        let len = 10u64.pow(r as u32);
        let keys: Vec<u64> = (0..len).rev().collect();
        let report = machine.sort(keys).expect("10^r keys");
        assert!(report.is_snake_sorted());
        println!(
            "r={r}: {len} keys sorted in {} charged steps (O(r²) with constant {})",
            report.steps(),
            model.s2_steps
        );
    }

    // Executed: relabel along the Hamiltonian path, then actually run
    // shearsort on the grid subgraph of Petersen².
    println!("\n== executed engine ==");
    let prepared = Machine::prepare_factor(&petersen);
    let mut machine = Machine::executed(&prepared, 2, &ShearSorter);
    let keys: Vec<u64> = (0..100u64).map(|x| (x * 7919) % 100).collect();
    let report = machine.sort(keys).expect("100 keys");
    assert!(report.is_snake_sorted());
    println!(
        "Petersen²: 100 keys sorted in {} executed steps (S2 = {} via shearsort \
         on the embedded grid; every comparator is a real edge)",
        report.steps(),
        machine.s2_steps()
    );
}
