//! Batched sorting through the compiled-program cache.
//!
//! Compile the Petersen-square schedule once, sort a batch of key
//! vectors in parallel, then build a second machine on the same
//! topology and watch it reuse the cached program.
//!
//! ```text
//! cargo run --release --example batched_sort
//! ```

use product_sort::graph::factories;
use product_sort::sim::{Machine, ProgramCache, ShearSorter};

fn main() {
    let factor = Machine::prepare_factor(&factories::petersen());
    let cache = ProgramCache::new();
    let mut machine = Machine::compiled(&factor, 2, &ShearSorter, &cache);
    let n = machine.shape().len();

    // A batch of scrambled key vectors, sorted in one call.
    let batch: Vec<Vec<u64>> = (0..8u64)
        .map(|s| (0..n).map(|x| (x * 37 + s * 11) % 101).collect())
        .collect();
    let reports: Vec<_> = machine
        .sort_batch(batch)
        .into_iter()
        .map(|rep| rep.expect("every vector has n keys"))
        .collect();
    assert!(reports
        .iter()
        .all(product_sort::sim::SortReport::is_snake_sorted));
    println!(
        "sorted {} vectors of {} keys in {} compiled rounds each",
        reports.len(),
        n,
        reports[0].steps()
    );

    // Same topology again: served from the cache, no recompilation.
    let mut again = Machine::compiled(&factor, 2, &ShearSorter, &cache);
    println!(
        "second machine: cache hits = {}, misses = {} (zero recompiles)",
        cache.hits(),
        cache.misses()
    );

    // The optimized program sorts identically in fewer rounds.
    let mut optimized = Machine::compiled_optimized(&factor, 2, &ShearSorter, &cache);
    let keys: Vec<u64> = (0..n).rev().collect();
    let plain = again.sort_checked(keys.clone()).expect("n keys");
    let opt = optimized.sort_checked(keys).expect("n keys");
    assert_eq!(plain.keys, opt.keys);
    println!(
        "optimized program: {} rounds vs {} (identical output)",
        opt.steps(),
        plain.steps()
    );

    // Wrong-length vectors degrade their own lane, nothing else.
    let err = again.sort_batch(vec![vec![1u64, 2, 3]])[0]
        .as_ref()
        .unwrap_err()
        .clone();
    println!("short vector rejected: {err}");
}
