//! §5.1 in action: sorting on multi-dimensional grids, with the executed
//! engine actually running shearsort inside every `PG_2` subgraph.
//!
//! ```text
//! cargo run --example grid_sort
//! ```
//!
//! Shows both cost models: the paper's charged accounting with
//! Schnorr–Shamir's `S2 = 3N` (steps `≤ 4(r-1)²N`), and the executed
//! engine's exact count with shearsort as the `PG_2` sorter — Theorem 1
//! holds for *any* `S2`, so the executed total is exactly
//! `(r-1)²·S2_shear + (r-1)(r-2)·R`.

use product_sort::graph::factories;
use product_sort::sim::{CostModel, Machine, ShearSorter};

fn main() {
    println!("== charged model (Schnorr-Shamir constants) ==");
    println!(
        "{:>3} {:>4} {:>8} {:>10} {:>12} {:>9}",
        "r", "N", "keys", "steps", "4(r-1)^2 N", "steps/N"
    );
    for r in [2usize, 3, 4] {
        for n in [4usize, 8, 16] {
            let factor = factories::path(n);
            let model = CostModel::paper_grid(n);
            let mut machine = Machine::charged(&factor, r, model);
            let len = (n as u64).pow(r as u32);
            let keys: Vec<u64> = (0..len).rev().collect();
            let report = machine.sort(keys).expect("one key per node");
            assert!(report.is_snake_sorted());
            let rr = (r - 1) as u64;
            println!(
                "{r:>3} {n:>4} {len:>8} {:>10} {:>12} {:>9.1}",
                report.steps(),
                4 * rr * rr * n as u64,
                report.steps() as f64 / n as f64
            );
        }
    }

    println!("\n== executed engine (shearsort actually runs) ==");
    println!(
        "{:>3} {:>4} {:>8} {:>10} {:>22}",
        "r", "N", "keys", "steps", "(r-1)^2 S2 + (r-1)(r-2)"
    );
    for (n, r) in [(4usize, 2usize), (4, 3), (8, 2), (8, 3)] {
        let factor = factories::path(n);
        let mut machine = Machine::executed(&factor, r, &ShearSorter);
        let s2 = machine.s2_steps();
        let len = (n as u64).pow(r as u32);
        let keys: Vec<u64> = (0..len).map(|x| (x * 37) % len).collect();
        let report = machine.sort(keys).expect("one key per node");
        assert!(report.is_snake_sorted());
        let rr = (r - 1) as u64;
        let predicted = rr * rr * s2 + rr * (rr.saturating_sub(1));
        assert_eq!(report.steps(), predicted);
        println!(
            "{r:>3} {n:>4} {len:>8} {:>10} {predicted:>22}",
            report.steps()
        );
    }
    println!("\nFor fixed r the steps grow linearly in N — the §5.1 optimality claim.");
}
