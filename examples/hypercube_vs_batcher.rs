//! §5.3 in action: the generalized algorithm on the hypercube vs
//! Batcher's bitonic sort — same `O(r²)` step growth.
//!
//! ```text
//! cargo run --example hypercube_vs_batcher
//! ```
//!
//! For each dimension `r`, sorts `2^r` random keys on the executed
//! simulator (the three-step `PG_2` sorter of §5.3; every transposition is
//! a hypercube edge) and prints the measured steps next to the closed form
//! `3(r-1)² + (r-1)(r-2)` and Batcher's depth `r(r+1)/2`.

use product_sort::baselines::bitonic::bitonic_hypercube_steps;
use product_sort::graph::factories;
use product_sort::sim::{Hypercube2Sorter, Machine};

fn main() {
    println!(
        "{:>3} {:>8} {:>12} {:>12} {:>14}",
        "r", "keys", "ours(meas)", "ours(pred)", "batcher depth"
    );
    for r in 2..=10usize {
        let factor = factories::k2();
        let mut machine = Machine::executed(&factor, r, &Hypercube2Sorter);
        let len = 1u64 << r;
        // A fixed pseudo-random permutation.
        let keys: Vec<u64> = (0..len).map(|x| (x * 2654435761) % len).collect();
        let report = machine.sort(keys).expect("2^r keys");
        assert!(report.is_snake_sorted());

        let rr = r as u64;
        let predicted = 3 * (rr - 1) * (rr - 1) + (rr - 1) * (rr - 2);
        println!(
            "{r:>3} {len:>8} {:>12} {predicted:>12} {:>14}",
            report.steps(),
            bitonic_hypercube_steps(r),
        );
        assert_eq!(
            report.steps(),
            predicted,
            "measured steps match §5.3's closed form"
        );
    }
    println!("\nBoth columns grow as Θ(r²): the generality of the multiway-merge");
    println!("algorithm costs only a constant factor on the hypercube (§5.3).");
}
