//! The paper's machine model, explicitly: compile the oblivious sorting
//! algorithm to per-node, edge-aligned operations and run it on a
//! validating BSP machine.
//!
//! ```text
//! cargo run --example bsp_machine
//! ```
//!
//! Section 4: "each processor holds one of the keys … enough memory to
//! hold at most two values being compared." The machine enforces exactly
//! that (plus two transit slots for relayed compares on non-Hamiltonian
//! factors) and panics on any violation — so a completed run *is* a
//! machine-level validity proof of the schedule.

use product_sort::graph::factories;
use product_sort::sim::bsp::{compile, BspMachine, Op};
use product_sort::sim::{Hypercube2Sorter, Machine, OetSnakeSorter};

fn stats(
    name: &str,
    factor: &product_sort::graph::Graph,
    r: usize,
    sorter: &dyn product_sort::sim::Pg2Sorter,
) {
    let program = compile(factor, r, sorter);
    let machine = BspMachine::new(factor, r);
    let len = machine.shape().len();
    let mut keys: Vec<u64> = (0..len).map(|x| (x * 48271) % 1000).collect();
    let rounds = machine.run(&mut keys, &program);

    let compares = program
        .round_ops()
        .iter()
        .flatten()
        .filter(|op| matches!(op, Op::CompareExchange { .. }))
        .count();
    let moves = program
        .round_ops()
        .iter()
        .flatten()
        .filter(|op| matches!(op, Op::Move { .. }))
        .count();
    println!(
        "{name:<22} {len:>6} keys  {rounds:>5} rounds  {compares:>7} compares  {moves:>6} relay moves"
    );
    assert!(product_sort::sim::netsort::is_snake_sorted(
        machine.shape(),
        &keys
    ));
}

fn main() {
    println!("Compiled BSP programs (every op validated against the network):\n");
    stats("hypercube r=8", &factories::k2(), 8, &Hypercube2Sorter);
    stats(
        "grid 4x4x4",
        &factories::path(4),
        3,
        &product_sort::sim::ShearSorter,
    );
    stats(
        "petersen^2 (relabel)",
        &Machine::prepare_factor(&factories::petersen()),
        2,
        &product_sort::sim::ShearSorter,
    );
    stats(
        "star factor (relays)",
        &factories::star(4),
        2,
        &OetSnakeSorter,
    );
    stats(
        "tree factor (relays)",
        &Machine::prepare_factor(&factories::complete_binary_tree(3)),
        2,
        &OetSnakeSorter,
    );
    println!("\nRelay moves appear exactly on factors without Hamiltonian labelings —");
    println!("the Section 4 'permutation routing within G' case, executed hop by hop.");
}
