//! Beyond one key per node: blocked deterministic sorting (merge-split)
//! and the randomized sample sort of the paper's future-work section,
//! head to head.
//!
//! ```text
//! cargo run --example blocked_and_randomized
//! ```

use product_sort::graph::factories;
use product_sort::order::radix::Shape;
use product_sort::sim::block::block_sort;
use product_sort::sim::{sample_sort, CostModel};

fn main() {
    let n = 8usize;
    let factor = factories::path(n);
    let model = CostModel::paper_grid(n);
    println!("8×8×8 grid (512 nodes), b keys per node, charged steps:\n");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>10}",
        "b", "keys", "det (merge)", "sample sort", "det/sample"
    );
    for b in [4usize, 16, 64] {
        let shape = Shape::new(n, 3);
        let len = shape.len() as usize * b;
        let keys: Vec<u64> = (0..len as u64)
            .map(|x| x.wrapping_mul(6364136223846793005) >> 30)
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();

        let (det_sorted, det) = block_sort(shape, b, keys.clone(), model.clone());
        assert_eq!(det_sorted, expect);

        let (rnd_sorted, rnd) = sample_sort(&factor, 3, b, keys, (b / 4).max(1), 7, &model);
        assert_eq!(rnd_sorted, expect);

        println!(
            "{b:>6} {len:>8} {:>12} {:>14} {:>10.2}",
            det.steps,
            rnd.total(),
            det.steps as f64 / rnd.total() as f64
        );
    }
    println!("\nThe deterministic algorithm carries Theorem 1's (r-1)² factor into");
    println!("the blocked regime; sample sort routes keys once per dimension, so");
    println!("it pulls ahead as r and b grow — the paper's §6 conjecture, confirmed");
    println!("for the blocked regime (see experiment e15_randomized).");
}
