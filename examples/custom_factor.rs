//! The headline generality claim: the same algorithm sorts on the product
//! of *any* connected factor graph — here, a random connected graph and a
//! complete binary tree, neither of which has a Hamiltonian path.
//!
//! ```text
//! cargo run --example custom_factor
//! ```
//!
//! For non-Hamiltonian factors, Section 2 labels the nodes along a
//! dilation-3 linear-array embedding (Sekanina's theorem) and Section 4
//! implements the compare-exchange steps by permutation routing inside
//! factor copies; the Corollary bounds the result by `18(r-1)²N + o(r²N)`.

use product_sort::graph::{factories, Graph, LinearEmbedding};
use product_sort::sim::{CostModel, Machine, OetSnakeSorter};

fn demo(factor: &Graph, r: usize) {
    let n = factor.n();
    println!(
        "---- factor {factor:?}, r = {r} ({} keys) ----",
        (n as u64).pow(r as u32)
    );

    let emb = LinearEmbedding::best(factor);
    println!(
        "linear embedding: dilation {} (1 = Hamiltonian path, ≤3 = Sekanina ordering)",
        emb.dilation
    );

    // Charged universal model (the Corollary).
    let model = CostModel::paper_universal(n);
    let mut charged = Machine::charged(factor, r, model);
    let len = (n as u64).pow(r as u32);
    let keys: Vec<u64> = (0..len).map(|x| (x * 2654435761) % 1000).collect();
    let report = charged.sort(keys.clone()).expect("one key per node");
    assert!(report.is_snake_sorted());
    let rr = (r - 1) as u64;
    println!(
        "charged: {} steps (Corollary bound 18(r-1)²N = {})",
        report.steps(),
        18 * rr * rr * n as u64
    );

    // Executed: relabel along the embedding, run a real program; routed
    // exchanges cost their measured rounds.
    let prepared = Machine::prepare_factor(factor);
    let mut executed = Machine::executed(&prepared, r, &OetSnakeSorter);
    let report = executed.sort(keys).expect("one key per node");
    assert!(report.is_snake_sorted());
    println!(
        "executed: {} steps with the OET-snake PG_2 sorter (S2 = {})",
        report.steps(),
        executed.s2_steps()
    );
}

fn main() {
    demo(&factories::complete_binary_tree(3), 2);
    demo(&factories::star(6), 2);
    demo(&factories::random_connected(9, 3, 42), 2);
    demo(&factories::random_connected(5, 1, 7), 3);
    println!("\nSame algorithm, four factor topologies — the portability the paper asks for.");
}
