//! # product-sort
//!
//! Umbrella crate for the reproduction of Fernández & Efe, *Generalized
//! Algorithm for Parallel Sorting on Product Networks* (ICPP'95 / IEEE TPDS
//! 1997).
//!
//! The workspace implements the paper's generalized multiway-merge sorting
//! algorithm for arbitrary homogeneous product networks, a cycle-accurate
//! synchronous network simulator that executes it, the baselines the paper
//! compares against, and an experiment harness that regenerates every
//! closed-form result of the paper.
//!
//! Re-exports, from the bottom of the stack up:
//!
//! * [`graph`] — factor graphs `G`: constructors, traversal, Hamiltonian
//!   paths, dilation-3 linear embeddings, permutation routing.
//! * [`order`] — N-ary Gray codes, snake order, group sequences.
//! * [`product`] — the product network `PG_r` itself.
//! * [`algo`] — the sequence-level multiway-merge sorting algorithm
//!   (Section 3 of the paper), fully instrumented.
//! * [`sim`] — the network-level implementation (Section 4): charged and
//!   executed cost models, pluggable `PG_2` sorters.
//! * [`obs`] — typed event tracing and derived metrics for the engines,
//!   the program cache, and the merge (DESIGN.md §9; `PNS_OBS` selects
//!   the sink).
//! * [`baselines`] — Batcher odd-even merge and bitonic networks,
//!   Columnsort, shearsort, odd-even transposition, Stone's
//!   shuffle-exchange bitonic sort.
//! * [`service`] — the sorting-as-a-service core (DESIGN.md §14):
//!   bounded intake with typed rejections, per-tenant token buckets, a
//!   deadline-driven coalescer, a deterministic circuit breaker, and
//!   the vertical → kernel → retry → quarantine degradation ladder.
//!
//! ## Quickstart
//!
//! ```
//! use product_sort::graph::factories;
//! use product_sort::sim::{Machine, CostModel};
//!
//! // Sort 3^3 = 27 keys on the 3-dimensional product of a 3-node path.
//! let factor = factories::path(3);
//! let mut machine = Machine::charged(&factor, 3, CostModel::paper_grid(3));
//! let keys: Vec<u32> = (0..27).rev().collect();
//! let report = machine.sort(keys).expect("sorting succeeds");
//! assert!(report.is_snake_sorted());
//! assert_eq!(report.into_sorted_vec(), (0..27).collect::<Vec<u32>>());
//! ```

pub use pns_baselines as baselines;
pub use pns_core as algo;
pub use pns_graph as graph;
pub use pns_obs as obs;
pub use pns_order as order;
pub use pns_product as product;
pub use pns_service as service;
pub use pns_simulator as sim;
