//! Cross-crate integration: the simulator machines, the sequence-level
//! algorithm, and plain sorting must all agree, on every Section 5
//! network family.

use product_sort::algo::{multiway_merge_sort, StdBaseSorter};
use product_sort::graph::{factories, Graph};
use product_sort::sim::{
    CostModel, Hypercube2Sorter, Machine, OetSnakeSorter, Pg2Sorter, ShearSorter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..10_000)).collect()
}

fn check_charged(factor: &Graph, r: usize, model: CostModel, seed: u64) {
    let mut machine = Machine::charged(factor, r, model.clone());
    let len = (factor.n() as u64).pow(r as u32);
    let keys = random_keys(len, seed);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let report = machine.sort(keys).expect("key count");
    assert!(report.is_snake_sorted(), "{factor:?} r={r}");
    assert_eq!(
        report.steps(),
        model.predicted_sort_steps(r),
        "{factor:?} r={r}"
    );
    assert_eq!(report.into_sorted_vec(), expect, "{factor:?} r={r}");
}

#[test]
fn charged_machines_sort_all_section5_networks() {
    check_charged(&factories::path(8), 3, CostModel::paper_grid(8), 1);
    check_charged(&factories::cycle(8), 3, CostModel::paper_torus(8), 2);
    check_charged(&factories::k2(), 8, CostModel::paper_hypercube(), 3);
    check_charged(&factories::petersen(), 2, CostModel::paper_petersen(), 4);
    check_charged(
        &factories::de_bruijn(3),
        3,
        CostModel::paper_de_bruijn(3),
        5,
    );
    check_charged(
        &factories::shuffle_exchange(3),
        3,
        CostModel::paper_de_bruijn(3),
        6,
    );
    check_charged(
        &factories::complete_binary_tree(3),
        2,
        CostModel::paper_universal(7),
        7,
    );
}

fn check_executed(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter, seed: u64) {
    let mut machine = Machine::executed(factor, r, sorter);
    let len = (factor.n() as u64).pow(r as u32);
    let keys = random_keys(len, seed);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let report = machine.sort(keys).expect("key count");
    assert!(report.is_snake_sorted(), "{factor:?} r={r}");
    assert_eq!(report.into_sorted_vec(), expect, "{factor:?} r={r}");
}

#[test]
fn executed_machines_sort_with_real_programs() {
    check_executed(&factories::path(4), 3, &ShearSorter, 11);
    check_executed(&factories::path(5), 2, &OetSnakeSorter, 12);
    check_executed(&factories::k2(), 7, &Hypercube2Sorter, 13);
    check_executed(&factories::cycle(6), 2, &ShearSorter, 14);
    check_executed(
        &Machine::prepare_factor(&factories::petersen()),
        2,
        &ShearSorter,
        15,
    );
    check_executed(
        &Machine::prepare_factor(&factories::complete_binary_tree(3)),
        2,
        &OetSnakeSorter,
        16,
    );
    check_executed(
        &Machine::prepare_factor(&factories::de_bruijn(3)),
        2,
        &ShearSorter,
        17,
    );
}

#[test]
fn network_sequence_and_std_sorts_agree() {
    for (n, r, seed) in [(3usize, 4usize, 21u64), (4, 3, 22), (2, 7, 23)] {
        let len = (n as u64).pow(r as u32);
        let keys = random_keys(len, seed);

        let (seq_sorted, seq_counters) = multiway_merge_sort(&keys, n, &StdBaseSorter);

        let factor = factories::path(n);
        let mut machine = Machine::charged(&factor, r, CostModel::paper_grid(n));
        let report = machine.sort(keys.clone()).expect("key count");

        let mut std_sorted = keys;
        std_sorted.sort_unstable();

        assert_eq!(seq_sorted, std_sorted);
        assert_eq!(report.clone().into_sorted_vec(), std_sorted);
        // The network simulator spends exactly the same units as the
        // sequence-level algorithm.
        assert_eq!(report.outcome.counters.s2_units, seq_counters.s2_units);
        assert_eq!(
            report.outcome.counters.route_units,
            seq_counters.route_units
        );
    }
}

#[test]
fn executed_and_charged_produce_identical_configurations() {
    // The algorithms are oblivious: both engines must land every key on
    // the same node.
    let factor = factories::path(4);
    let keys = random_keys(64, 31);

    let mut charged = Machine::charged(&factor, 3, CostModel::paper_grid(4));
    let a = charged.sort(keys.clone()).expect("key count");

    let mut executed = Machine::executed(&factor, 3, &ShearSorter);
    let b = executed.sort(keys).expect("key count");

    assert_eq!(a.keys, b.keys, "final node-indexed configurations differ");
}

#[test]
fn repeat_sorting_is_idempotent() {
    let factor = factories::cycle(5);
    let mut machine = Machine::charged(&factor, 3, CostModel::paper_torus(5));
    let keys = random_keys(125, 41);
    let once = machine.sort(keys).expect("key count");
    let twice = machine.sort(once.keys.clone()).expect("key count");
    assert_eq!(
        once.keys, twice.keys,
        "sorting a sorted configuration moves keys"
    );
}
