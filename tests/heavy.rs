//! Heavy validation sweeps, ignored by default. Run with:
//!
//! ```text
//! cargo test --release --test heavy -- --ignored
//! ```

use product_sort::algo::zero_one::exhaustive_merge_check;
use product_sort::algo::StdBaseSorter;
use product_sort::graph::factories;
use product_sort::order::radix::Shape;
use product_sort::sim::block::block_sort;
use product_sort::sim::bsp::{compile, BspMachine};
use product_sort::sim::netsort::is_snake_sorted;
use product_sort::sim::{sample_sort, CostModel, Hypercube2Sorter, Machine, ShearSorter};

#[test]
#[ignore = "release-mode sweep: 11.8M merge instances"]
fn merge_zero_one_5_way() {
    // 26^5 = 11,881,376 zero-one inputs of the 5-way merge.
    assert_eq!(exhaustive_merge_check(5, 25, &StdBaseSorter), 11_881_376);
}

#[test]
#[ignore = "release-mode sweep: 65,536 BSP executions"]
fn bsp_hypercube_4_zero_one_exhaustive() {
    let factor = factories::k2();
    let program = compile(&factor, 4, &Hypercube2Sorter);
    let machine = BspMachine::new(&factor, 4);
    for mask in 0u32..(1 << 16) {
        let mut keys: Vec<u8> = (0..16).map(|i| ((mask >> i) & 1) as u8).collect();
        machine.run(&mut keys, &program);
        assert!(is_snake_sorted(machine.shape(), &keys), "mask={mask:#x}");
    }
}

#[test]
#[ignore = "release-mode sweep: large executed machines"]
fn executed_machines_at_scale() {
    // 16^3 = 4096 nodes with shearsort actually running in every PG_2.
    let factor = factories::path(16);
    let mut m = Machine::executed(&factor, 3, &ShearSorter);
    let keys: Vec<u64> = (0..4096u64)
        .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15) >> 30)
        .collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    let report = m.sort(keys).expect("4096 keys");
    assert!(report.is_snake_sorted());
    assert_eq!(report.into_sorted_vec(), expect);
}

#[test]
#[ignore = "release-mode sweep: million-key blocked sorts"]
fn blocked_sort_at_scale() {
    let shape = Shape::new(8, 3); // 512 nodes
    let b = 2048; // ~1M keys
    let keys: Vec<u64> = (0..shape.len() * b as u64)
        .map(|x| x.wrapping_mul(6364136223846793005) >> 20)
        .collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    let (sorted, outcome) = block_sort(shape, b, keys, CostModel::paper_grid(8));
    assert_eq!(sorted, expect);
    assert_eq!(outcome.counters.s2_units, 4); // (r-1)² for r = 3
}

#[test]
#[ignore = "release-mode sweep: million-key sample sorts"]
fn sample_sort_at_scale() {
    let factor = factories::path(8);
    let b = 2048;
    let p = 512;
    let keys: Vec<u64> = (0..(p * b) as u64)
        .map(|x| x.wrapping_mul(2862933555777941757) >> 20)
        .collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    let (sorted, outcome) = sample_sort(&factor, 3, b, keys, 64, 5, &CostModel::paper_grid(8));
    assert_eq!(sorted, expect);
    assert!(outcome.max_load >= b);
}
