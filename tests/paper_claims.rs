//! One test per analytical claim of the paper, plus a sweep that runs
//! every experiment of the index and requires every row to match.

use product_sort::graph::factories;
use product_sort::order::radix::Shape;
use product_sort::sim::{network_sort, ChargedEngine, CostModel};

fn charged_steps(n: usize, r: usize, model: CostModel) -> u64 {
    let shape = Shape::new(n, r);
    let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
    let mut engine = ChargedEngine::new(model);
    let out = network_sort(shape, &mut keys, &mut engine);
    assert!(product_sort::sim::netsort::is_snake_sorted(shape, &keys));
    out.steps
}

/// Theorem 1: `S_r(N) = (r-1)² S2 + (r-1)(r-2) R` for arbitrary S2, R.
#[test]
fn theorem_1_closed_form() {
    for (s2, route) in [(1u64, 1u64), (13, 5), (48, 15)] {
        for (n, r) in [(3usize, 3usize), (3, 4), (4, 3), (2, 6)] {
            let steps = charged_steps(n, r, CostModel::custom("t", s2, route));
            let rr = r as u64;
            assert_eq!(
                steps,
                (rr - 1) * (rr - 1) * s2 + (rr - 1) * (rr - 2) * route,
                "n={n} r={r} s2={s2} R={route}"
            );
        }
    }
}

/// §5.1: grid, `S2 = 3N`, `R = N-1` ⇒ steps ≤ `4(r-1)²N` and `O(N)` for
/// fixed `r` (doubling N doubles the steps, up to the routing slack).
#[test]
fn section_5_1_grid() {
    for (n, r) in [(4usize, 3usize), (8, 3), (16, 3), (8, 4)] {
        let steps = charged_steps(n, r, CostModel::paper_grid(n));
        let rr = (r - 1) as u64;
        assert!(steps <= 4 * rr * rr * n as u64, "n={n} r={r}: {steps}");
    }
    let s8 = charged_steps(8, 3, CostModel::paper_grid(8));
    let s16 = charged_steps(16, 3, CostModel::paper_grid(16));
    assert!(s16 < 2 * s8 + 20, "fixed-r growth must be linear in N");
}

/// §5.3: hypercube, `3(r-1)² + (r-1)(r-2)` exactly.
#[test]
fn section_5_3_hypercube() {
    for r in 2..=10usize {
        let steps = charged_steps(2, r, CostModel::paper_hypercube());
        let rr = r as u64;
        assert_eq!(
            steps,
            3 * (rr - 1) * (rr - 1) + (rr - 1) * (rr - 2),
            "r={r}"
        );
    }
}

/// §5.4: Petersen cube, `O(r²)` with the grid-subgraph constant.
#[test]
fn section_5_4_petersen() {
    let s2 = charged_steps(10, 2, CostModel::paper_petersen());
    let s3 = charged_steps(10, 3, CostModel::paper_petersen());
    assert_eq!(s2, 30); // (r-1)² · 30 for r = 2
    assert_eq!(s3, 4 * 30 + 2 * 9); // r = 3
}

/// Corollary: any connected factor ≤ `18(r-1)²N` under the universal
/// (torus-emulation) model.
#[test]
fn corollary_universal_bound() {
    for factor in [
        factories::star(5),
        factories::complete_binary_tree(3),
        factories::random_connected(9, 2, 1),
    ] {
        let n = factor.n();
        for r in [2usize, 3] {
            let steps = charged_steps(n, r, CostModel::paper_universal(n));
            let rr = (r - 1) as u64;
            assert!(steps <= 18 * rr * rr * n as u64, "{factor:?} r={r}");
        }
    }
}

/// §5.5: de Bruijn products, `O(r² log² N)`: the normalized constant is
/// flat across `N` for fixed `r`.
#[test]
fn section_5_5_de_bruijn_scaling() {
    let norm = |b: usize, r: usize| {
        let steps = charged_steps(1 << b, r, CostModel::paper_de_bruijn(b));
        let rr = (r - 1) as u64;
        steps as f64 / (rr * rr * (b * b) as u64) as f64
    };
    let a = norm(2, 2);
    let b = norm(3, 2);
    let c = norm(4, 2);
    assert!(
        (a - c).abs() / a < 0.35,
        "normalized constants {a:.2} {b:.2} {c:.2}"
    );
}

/// The whole experiment index: every report row must match its paper
/// prediction.
#[test]
fn all_experiments_match() {
    for (id, run) in pns_bench::all_experiments() {
        let report = run();
        assert!(report.all_match, "{id} mismatch:\n{}", report.to_markdown());
    }
}
