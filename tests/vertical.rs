//! The vertical tier as an *exhaustive* zero-one oracle.
//!
//! The sorting network is oblivious and comparator-shaped, so the
//! zero-one principle reduces correctness on all inputs to correctness
//! on all `2^n` 0/1 vectors — and the bit-sliced vertical layout
//! executes 64 of those vectors per word. That turns the exhaustive
//! sweep from a release-mode luxury (`tests/heavy.rs`) into a cheap
//! tier-1 check: every test here sweeps **all** `2^n` masks of its
//! fixture through `run_vertical_bits`, for both the raw and optimized
//! lowerings, and cross-checks the tier against the serial machine,
//! the kernel batch, and the fault executors.

use product_sort::graph::factories;
use product_sort::graph::Graph;
use product_sort::order::radix::Shape;
use product_sort::sim::bsp::{compile, BspMachine};
use product_sort::sim::netsort::read_snake_order;
use product_sort::sim::{
    pack_zero_one_masks, pack_zero_one_masks_into, unpack_zero_one_lane, BitScratch, FaultPlan,
    Hypercube2Sorter, Machine, OetSnakeSorter, Pg2Sorter, ProgramCache, RetryPolicy, ScratchPool,
    ShearSorter, SortError, VerticalPool, WORD_LANES,
};

/// Node rank at each snake position, so a sorted 0/1 lane can be
/// checked against its expected word without per-lane unpacking.
fn snake_order_nodes(shape: Shape) -> Vec<usize> {
    let identity: Vec<u32> = (0..shape.len() as u32).collect();
    read_snake_order(shape, &identity)
        .into_iter()
        .map(|rank| rank as usize)
        .collect()
}

/// Sweep **all** `2^n` zero-one vectors through the vertical bit path,
/// 64 lanes per word, on both the raw and optimized lowerings, and
/// check every lane sorted with its zero count preserved. Returns the
/// number of (lane, program) checks performed.
fn exhaustive_bits_sweep(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) -> u64 {
    let shape = Shape::new(factor.n(), r);
    let n = shape.len() as usize;
    assert!(n <= 16, "exhaustive space too large for a tier-1 sweep");
    let program = compile(factor, r, sorter);
    let optimized = program.optimized();
    let machine = BspMachine::new(factor, r);
    let order = snake_order_nodes(shape);
    let total: u64 = 1 << n;
    let mut checked = 0u64;
    let mut scratch = BitScratch::new();
    let mut masks: Vec<u64> = Vec::with_capacity(WORD_LANES);
    let mut words: Vec<u64> = Vec::new();
    for (name, prog) in [("program", &program), ("optimized", &optimized)] {
        let vertical = machine
            .lower_vertical(prog)
            .expect("compiled programs validate");
        let mut base = 0u64;
        while base < total {
            let lanes = WORD_LANES.min((total - base) as usize);
            masks.clear();
            masks.extend(base..base + lanes as u64);
            pack_zero_one_masks_into(&masks, n, &mut words);
            machine.run_vertical_bits(&mut words, &vertical, &mut scratch);
            // A sorted 0/1 lane reads, in snake order, `zeros` zeros then
            // ones — so at snake position `p`, lane `l`'s expected bit is
            // `p >= zeros(l)`. Build that expected word per position and
            // compare whole words: 64 lanes per equality check.
            for (p, &node) in order.iter().enumerate() {
                let mut expected = 0u64;
                for (l, &mask) in masks.iter().enumerate() {
                    let zeros = n as u32 - mask.count_ones();
                    expected |= u64::from(p as u32 >= zeros) << l;
                }
                assert_eq!(
                    words[node],
                    expected,
                    "factor={} r={r} {name}: masks {base:#x}.. diverge at snake pos {p}",
                    factor.name()
                );
            }
            checked += lanes as u64;
            base += lanes as u64;
        }
    }
    assert_eq!(checked, 2 * total, "every mask swept on both lowerings");
    checked
}

#[test]
fn exhaustive_zero_one_vertical_hypercube_4() {
    // All 2^16 vectors of the 4-cube — the full space the sampled
    // tier-1 test and the `--ignored` heavy sweep only approximate —
    // in 1024 words per lowering.
    exhaustive_bits_sweep(&factories::k2(), 4, &Hypercube2Sorter);
}

#[test]
fn exhaustive_zero_one_vertical_grid_4x4() {
    // Second fixture, different round mix: all 2^16 vectors of the
    // 4×4 shearsort grid.
    exhaustive_bits_sweep(&factories::path(4), 2, &ShearSorter);
}

#[test]
fn exhaustive_zero_one_vertical_star_relays() {
    // Relay-heavy routing (Route rounds with transit traffic) on the
    // star factor square: all 2^16 vectors again.
    exhaustive_bits_sweep(&factories::star(4), 2, &OetSnakeSorter);
}

#[test]
fn vertical_bits_match_the_serial_machine_bit_for_bit() {
    // Smallest fixture, strongest check: every lane of every word must
    // equal the serial BSP machine's full output vector, not just "be
    // sorted" — all 256 vectors of the 3-cube, four words total.
    let factor = factories::k2();
    let program = compile(&factor, 3, &Hypercube2Sorter);
    let machine = BspMachine::new(&factor, 3);
    let vertical = machine.lower_vertical(&program).expect("validates");
    let n = machine.shape().len() as usize;
    let mut scratch = BitScratch::new();
    for base in (0u64..(1 << n)).step_by(WORD_LANES) {
        let masks: Vec<u64> = (base..base + WORD_LANES as u64).collect();
        let mut words = pack_zero_one_masks(&masks, n);
        machine.run_vertical_bits(&mut words, &vertical, &mut scratch);
        for (l, &mask) in masks.iter().enumerate() {
            let mut serial: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
            machine.run(&mut serial, &program);
            assert_eq!(
                unpack_zero_one_lane(&words, l),
                serial,
                "mask={mask:#04x}: vertical lane vs serial machine"
            );
        }
    }
}

#[test]
fn vertical_column_batch_matches_the_serial_machine_on_full_keys() {
    // Full-key batches across the topology zoo, 70 lanes (one full
    // word block plus a 6-lane tail), raw and optimized lowerings.
    let cases: [(&Graph, usize, &dyn Pg2Sorter); 3] = [
        (&factories::path(4), 2, &ShearSorter),
        (&factories::k2(), 4, &Hypercube2Sorter),
        (&factories::star(4), 2, &OetSnakeSorter),
    ];
    for (factor, r, sorter) in cases {
        let shape = Shape::new(factor.n(), r);
        let program = compile(factor, r, sorter);
        let optimized = program.optimized();
        let machine = BspMachine::new(factor, r);
        let inputs: Vec<Vec<u64>> = (0..70).map(|s| lcg_keys(shape.len(), 0xBEEF + s)).collect();
        let mut serials: Vec<Vec<u64>> = inputs.clone();
        for keys in &mut serials {
            machine.run(keys, &program);
        }
        for (name, prog) in [("program", &program), ("optimized", &optimized)] {
            let vertical = machine.lower_vertical(prog).expect("validates");
            let mut batch = inputs.clone();
            let mut pool = VerticalPool::new();
            machine.run_vertical_batch(&mut batch, &vertical, &mut pool);
            assert_eq!(
                batch,
                serials,
                "factor={} r={r}: vertical batch on {name}",
                factor.name()
            );
        }
    }
}

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        })
        .collect()
}

#[test]
fn machine_sort_batch_auto_selects_the_vertical_tier() {
    // A compiled Machine must produce identical per-lane results above
    // and below the 64-lane vertical threshold, malformed lanes
    // degrading in place either way.
    let factor = factories::path(3);
    let cache = ProgramCache::new();
    let mut machine = Machine::compiled(&factor, 3, &ShearSorter, &cache);
    assert!(
        machine.vertical().is_some(),
        "compiled machines carry the vertical program"
    );
    let len = machine.shape().len();

    let bsp = BspMachine::new(&factor, 3);
    let program = compile(&factor, 3, &ShearSorter);

    for batch_size in [5usize, 70] {
        let mut batch: Vec<Vec<u64>> = (0..batch_size as u64)
            .map(|s| lcg_keys(len, 31 + s))
            .collect();
        batch[2] = vec![9; 3]; // malformed lane, both sizes
        let results = machine.sort_batch(batch.clone());
        assert_eq!(results.len(), batch_size);
        for (lane, res) in results.into_iter().enumerate() {
            if lane == 2 {
                assert!(matches!(res, Err(SortError::WrongKeyCount { .. })));
                continue;
            }
            let report = res.unwrap_or_else(|e| panic!("lane {lane}: {e}"));
            let mut serial = batch[lane].clone();
            bsp.run(&mut serial, &program);
            assert_eq!(
                report.keys, serial,
                "batch={batch_size} lane={lane}: sort_batch vs serial machine"
            );
        }
    }
}

/// Nightly cross-product: every engine tier × both lowerings × the
/// fault layer, swept over **all** `2^16` zero-one vectors per fixture.
/// The tier-1 tests above prove the bit path exhaustively; this run
/// additionally pushes the full space through the column batch and the
/// two batch fault executors and requires lane-for-lane agreement.
#[test]
#[ignore = "release-mode sweep: 2 fixtures x 2 lowerings x 65,536 lanes through three batch executors"]
fn exhaustive_zero_one_engine_optimizer_fault_cross_product() {
    let cases: [(&Graph, usize, &dyn Pg2Sorter); 2] = [
        (&factories::k2(), 4, &Hypercube2Sorter),
        (&factories::path(4), 2, &ShearSorter),
    ];
    for (factor, r, sorter) in cases {
        let shape = Shape::new(factor.n(), r);
        let n = shape.len() as usize;
        let program = compile(factor, r, sorter);
        let optimized = program.optimized();
        let machine = BspMachine::new(factor, r);
        let all_inputs: Vec<Vec<u8>> = (0u64..1 << n)
            .map(|mask| (0..n).map(|i| ((mask >> i) & 1) as u8).collect())
            .collect();
        for (name, prog) in [("program", &program), ("optimized", &optimized)] {
            let ctx = format!("factor={} r={r} {name}", factor.name());
            let kernel = machine.lower(prog).expect("validates");
            let vertical = machine.lower_vertical(prog).expect("validates");

            // Column batch vs kernel batch over the whole space.
            let mut cols = all_inputs.clone();
            let mut pool = VerticalPool::new();
            machine.run_vertical_batch(&mut cols, &vertical, &mut pool);
            let mut kern = all_inputs.clone();
            let mut kpool = ScratchPool::new();
            machine.run_kernel_batch(&mut kern, &kernel, &mut kpool);
            assert_eq!(cols, kern, "{ctx}: column batch vs kernel batch");

            // Fault executors: identical plans over the whole space.
            for policy in [RetryPolicy::default(), RetryPolicy::detect_only()] {
                for seed in 0..2u64 {
                    let plan = FaultPlan::random(seed, 2_000);
                    let mut a = all_inputs.clone();
                    let ra = machine.run_batch_with_faults(&mut a, prog, &plan, &policy);
                    let mut b = all_inputs.clone();
                    let rb = machine.run_vertical_batch_with_faults(
                        &mut b, &vertical, &plan, &policy, &mut pool,
                    );
                    assert_eq!(ra, rb, "{ctx} seed={seed}: fault reports diverge");
                    assert_eq!(a, b, "{ctx} seed={seed}: faulty keys diverge");
                }
            }
        }
    }
}
