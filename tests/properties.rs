//! Property-based tests (proptest) over the whole stack: order
//! bijections, merge/sort correctness on arbitrary keys, Lemma 1 on
//! sampled inputs beyond the exhaustive range, and baseline equivalence.

use product_sort::algo::dirty::dirty_window;
use product_sort::algo::merge::{multiway_merge, steps_1_to_3, StdBaseSorter};
use product_sort::algo::zero_one::zero_one_inputs;
use product_sort::algo::{multiway_merge_sort, Counters};
use product_sort::baselines::columnsort;
use product_sort::baselines::stone::stone_sort;
use product_sort::graph::factories;
use product_sort::order::radix::Shape;
use product_sort::order::snake::{node_at_snake_pos, snake_pos_of_node};
use product_sort::order::{gray_rank, gray_unrank};
use product_sort::sim::netsort::{is_snake_sorted, network_sort};
use product_sort::sim::{ChargedEngine, CostModel};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gray_rank_unrank_roundtrip(n in 2usize..8, r in 1usize..6, seed in any::<u64>()) {
        let total = (n as u64).pow(r as u32);
        let m = seed % total;
        let digits = gray_unrank(n, r, m);
        prop_assert_eq!(gray_rank(n, &digits), m);
    }

    #[test]
    fn snake_bijection(n in 2usize..8, r in 1usize..6, seed in any::<u64>()) {
        let shape = Shape::new(n, r);
        let pos = seed % shape.len();
        let node = node_at_snake_pos(shape, pos);
        prop_assert!(node < shape.len());
        prop_assert_eq!(snake_pos_of_node(shape, node), pos);
    }

    #[test]
    fn snake_neighbors_are_label_adjacent(n in 2usize..6, r in 1usize..5, seed in any::<u64>()) {
        let shape = Shape::new(n, r);
        let pos = seed % (shape.len() - 1);
        let a = node_at_snake_pos(shape, pos);
        let b = node_at_snake_pos(shape, pos + 1);
        // Exactly one digit differs, by exactly one.
        let mut diffs = 0;
        for i in 0..r {
            let (da, db) = (shape.digit(a, i), shape.digit(b, i));
            if da != db {
                diffs += 1;
                prop_assert_eq!(da.abs_diff(db), 1);
            }
        }
        prop_assert_eq!(diffs, 1);
    }

    #[test]
    fn merge_equals_std_sort(
        n in 2usize..5,
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        let m = n.pow(k as u32 - 1);
        let mut state = seed;
        let inputs: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let mut v: Vec<u32> = (0..m)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 40) as u32 % 50
                    })
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        let mut counters = Counters::new();
        let merged = multiway_merge(&inputs, &StdBaseSorter, &mut counters);
        let mut expect: Vec<u32> = inputs.iter().flatten().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(merged, expect);
        // Lemma 3 units.
        prop_assert_eq!(counters.s2_units, 2 * (k as u64 - 2) + 1);
        prop_assert_eq!(counters.route_units, 2 * (k as u64 - 2));
    }

    #[test]
    fn full_sort_equals_std_sort(
        n in 2usize..5,
        r in 2usize..5,
        seed in any::<u64>(),
    ) {
        let len = n.pow(r as u32);
        prop_assume!(len <= 1024);
        let mut state = seed;
        let keys: Vec<u32> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as u32 % 97
            })
            .collect();
        let (sorted, counters) = multiway_merge_sort(&keys, n, &StdBaseSorter);
        let mut expect = keys;
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
        let rr = r as u64;
        prop_assert_eq!(counters.s2_units, (rr - 1) * (rr - 1));
        prop_assert_eq!(counters.route_units, (rr - 1) * (rr - 2));
    }

    /// Lemma 1 sampled beyond the exhaustive range: N up to 8, m = N³.
    #[test]
    fn dirty_window_bound_sampled(n in 2usize..8, seed in any::<u64>()) {
        let m = n * n * n;
        let mut state = seed;
        let counts: Vec<usize> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize % (m + 1)
            })
            .collect();
        let inputs = zero_one_inputs(&counts, m);
        let mut c = Counters::new();
        let d = steps_1_to_3(&inputs, &StdBaseSorter, &mut c);
        prop_assert!(dirty_window(&d) <= n * n);
    }

    #[test]
    fn network_sort_arbitrary_duplicates(
        n in 2usize..5,
        r in 2usize..4,
        modulus in 1u64..20,
        seed in any::<u64>(),
    ) {
        let shape = Shape::new(n, r);
        prop_assume!(shape.len() <= 512);
        let mut state = seed;
        let mut keys: Vec<u64> = (0..shape.len())
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 30) % modulus
            })
            .collect();
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let _ = network_sort(shape, &mut keys, &mut engine);
        prop_assert!(is_snake_sorted(shape, &keys));
    }

    #[test]
    fn columnsort_equals_std_sort(cols in 2usize..5, mult in 1usize..4, seed in any::<u64>()) {
        let rows = (2 * (cols - 1) * (cols - 1)).next_multiple_of(cols) * mult;
        prop_assume!(rows >= 2);
        let len = rows * cols;
        let mut state = seed;
        let keys: Vec<u32> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as u32 % 1000
            })
            .collect();
        let (sorted, _) = columnsort(&keys, rows, cols);
        let mut expect = keys;
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn stone_sort_equals_std_sort(k in 1usize..9, seed in any::<u64>()) {
        let len = 1usize << k;
        let mut state = seed;
        let mut keys: Vec<u16> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 48) as u16 % 300
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let _ = stone_sort(&mut keys);
        prop_assert_eq!(keys, expect);
    }

    /// Differential check: the multiway merge must agree with an
    /// independent k-way heap merge (not just with std sort).
    #[test]
    fn merge_agrees_with_heap_merge(n in 2usize..5, k in 2usize..4, seed in any::<u64>()) {
        let m = n.pow(k as u32 - 1);
        let mut state = seed | 1;
        let inputs: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let mut v: Vec<u32> = (0..m)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 40) as u32 % 60
                    })
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        // Independent implementation: k-way merge via BinaryHeap.
        let heap_merged = {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = inputs
                .iter()
                .enumerate()
                .map(|(u, a)| Reverse((a[0], u, 0)))
                .collect();
            let mut out = Vec::with_capacity(n * m);
            while let Some(Reverse((key, u, i))) = heap.pop() {
                out.push(key);
                if i + 1 < m {
                    heap.push(Reverse((inputs[u][i + 1], u, i + 1)));
                }
            }
            out
        };
        let mut counters = product_sort::algo::Counters::new();
        let merged = multiway_merge(&inputs, &StdBaseSorter, &mut counters);
        prop_assert_eq!(merged, heap_merged);
    }

    /// The torus embedding of random connected factors keeps its bounds.
    #[test]
    fn torus_embedding_bounds(nodes in 4usize..14, extra in 0usize..5, seed in any::<u64>()) {
        let g = factories::random_connected(nodes, extra, seed);
        let emb = product_sort::product::torus_embedding(&g, 2);
        prop_assert!(emb.dilation <= 3);
        prop_assert!(emb.slowdown() <= 6);
    }
}
