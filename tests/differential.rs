//! Differential test harness: every execution path of the stack must
//! produce the *same configuration* on the same input.
//!
//! For each (factor, r, sorter) in a zoo of product networks, and for
//! each input in a bank of random and adversarial key vectors, we run:
//!
//! * the charged engine (`network_sort` + `ChargedEngine`),
//! * the executed engine (`network_sort` + `ExecutedEngine`),
//! * the serial BSP machine (`BspMachine::run`),
//! * the deferred-action parallel executor (`run_parallel`),
//! * the batched executor (`run_batch`, all inputs in one batch),
//! * the flat kernel tier (`run_kernel`, the chunked-parallel
//!   `run_kernel_parallel` forced past its threshold, and
//!   `run_kernel_batch`), on both the raw and optimized lowerings,
//! * plus serial/parallel/batched runs of the *optimized* program,
//!
//! and require all configurations to be elementwise identical and
//! snake-order equal to the `std` sort oracle. The algorithm is
//! oblivious, so any divergence between these paths is a bug in an
//! executor, not data dependence. A separate test drives the fault
//! layer's interpreter and kernel paths with identical fault plans and
//! requires identical reports and final keys.

use product_sort::graph::factories;
use product_sort::graph::Graph;
use product_sort::order::radix::Shape;
use product_sort::sim::bsp::{compile, BspMachine};
use product_sort::sim::netsort::{is_snake_sorted, network_sort, read_snake_order};
use product_sort::sim::{
    ChargedEngine, CostModel, ExecScratch, ExecutedEngine, FaultPlan, Hypercube2Sorter, Machine,
    OetSnakeSorter, Pg2Sorter, RetryPolicy, ScratchPool, ShearSorter,
};

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        })
        .collect()
}

/// Random and adversarial inputs for a network of `len` nodes.
fn input_bank(len: u64) -> Vec<(String, Vec<u64>)> {
    let mut bank: Vec<(String, Vec<u64>)> = Vec::new();
    for seed in [1u64, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        bank.push((format!("random(seed={seed:#x})"), lcg_keys(len, seed)));
    }
    bank.push(("reversed".into(), (0..len).rev().collect()));
    bank.push(("sorted".into(), (0..len).collect()));
    bank.push(("all-equal".into(), vec![42; len as usize]));
    bank.push(("sawtooth".into(), (0..len).map(|x| x % 7).collect()));
    bank.push((
        "two-values".into(),
        (0..len).map(|x| u64::from(x % 3 == 0)).collect(),
    ));
    bank
}

/// Run the full engine matrix on one (factor, r, sorter) and compare.
fn differential_case(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) {
    let shape = Shape::new(factor.n(), r);
    let len = shape.len();
    let ctx = format!("factor={} r={r}", factor.name());

    let program = compile(factor, r, sorter);
    let optimized = program.optimized();
    let bsp = BspMachine::new(factor, r);
    let kernel = bsp.lower(&program).expect("compiled programs validate");
    let kernel_opt = bsp.lower(&optimized).expect("optimized programs validate");

    let bank = input_bank(len);
    let mut serials: Vec<Vec<u64>> = Vec::new();
    // One scratch for every kernel run in the case: reuse across inputs
    // and programs is exactly the steady state the kernel tier promises.
    let mut scratch = ExecScratch::new();
    for (label, input) in &bank {
        let mut oracle = input.clone();
        oracle.sort_unstable();

        // Reference: serial BSP execution.
        let mut serial = input.clone();
        bsp.run(&mut serial, &program);
        assert!(is_snake_sorted(shape, &serial), "{ctx} {label}: serial");
        assert_eq!(
            read_snake_order(shape, &serial),
            oracle,
            "{ctx} {label}: serial vs std oracle"
        );

        // Parallel executor, raw and optimized programs.
        for (name, prog) in [("program", &program), ("optimized", &optimized)] {
            let mut par = input.clone();
            bsp.run_parallel(&mut par, prog);
            assert_eq!(par, serial, "{ctx} {label}: run_parallel on {name}");
            let mut ser2 = input.clone();
            bsp.run(&mut ser2, prog);
            assert_eq!(ser2, serial, "{ctx} {label}: serial run on {name}");
        }

        // Kernel tier: serial and chunked-parallel (threshold 1 forces
        // the chunked path even on tiny rounds), raw and optimized.
        for (name, k) in [("kernel", &kernel), ("kernel-opt", &kernel_opt)] {
            let mut kser = input.clone();
            bsp.run_kernel(&mut kser, k, &mut scratch);
            assert_eq!(kser, serial, "{ctx} {label}: run_kernel on {name}");
            let mut kpar = input.clone();
            bsp.run_kernel_parallel_threshold(&mut kpar, k, &mut scratch, 1);
            assert_eq!(kpar, serial, "{ctx} {label}: chunked kernel on {name}");
        }

        // Executed engine (real comparator programs + real routing).
        let mut exec = input.clone();
        let mut engine = ExecutedEngine::new(factor, shape, sorter);
        let _ = network_sort(shape, &mut exec, &mut engine);
        assert_eq!(exec, serial, "{ctx} {label}: executed engine");

        // Charged engine (instant data ops — same data trajectory).
        let mut charged = input.clone();
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let _ = network_sort(shape, &mut charged, &mut engine);
        assert_eq!(charged, serial, "{ctx} {label}: charged engine");

        serials.push(serial);
    }

    // Batched executor: the whole input bank as one batch, raw and
    // optimized programs.
    for (name, prog) in [("program", &program), ("optimized", &optimized)] {
        let mut batch: Vec<Vec<u64>> = bank.iter().map(|(_, input)| input.clone()).collect();
        bsp.run_batch(&mut batch, prog);
        for ((label, _), (got, want)) in bank.iter().zip(batch.iter().zip(&serials)) {
            assert_eq!(got, want, "{ctx} {label}: run_batch on {name}");
        }
    }

    // Batched kernel executor, one scratch pool across both lowerings.
    let mut pool = ScratchPool::new();
    for (name, k) in [("kernel", &kernel), ("kernel-opt", &kernel_opt)] {
        let mut batch: Vec<Vec<u64>> = bank.iter().map(|(_, input)| input.clone()).collect();
        bsp.run_kernel_batch(&mut batch, k, &mut pool);
        for ((label, _), (got, want)) in bank.iter().zip(batch.iter().zip(&serials)) {
            assert_eq!(got, want, "{ctx} {label}: run_kernel_batch on {name}");
        }
    }
}

#[test]
fn differential_paths() {
    differential_case(&factories::path(4), 2, &ShearSorter);
    differential_case(&factories::path(4), 3, &ShearSorter);
    differential_case(&factories::path(3), 4, &ShearSorter);
}

#[test]
fn differential_cycles() {
    // Cycles carry the path edges 0–1–…–(n−1), so shearsort programs
    // compiled against consecutive labels stay edge-aligned.
    differential_case(&factories::cycle(5), 2, &ShearSorter);
    differential_case(&factories::cycle(4), 3, &ShearSorter);
}

#[test]
fn differential_hypercubes() {
    differential_case(&factories::k2(), 2, &Hypercube2Sorter);
    differential_case(&factories::k2(), 3, &Hypercube2Sorter);
    differential_case(&factories::k2(), 4, &Hypercube2Sorter);
    // Past the PAR_THRESHOLD so run_parallel takes the rayon path.
    differential_case(&factories::k2(), 8, &Hypercube2Sorter);
}

#[test]
fn differential_petersen_square() {
    let factor = Machine::prepare_factor(&factories::petersen());
    differential_case(&factor, 2, &ShearSorter);
}

#[test]
fn differential_de_bruijn() {
    // Non-Hamiltonian-friendly labels: relay moves in play.
    let factor = Machine::prepare_factor(&factories::de_bruijn(2));
    differential_case(&factor, 2, &OetSnakeSorter);
    differential_case(&factor, 3, &OetSnakeSorter);
}

#[test]
fn differential_star_relays() {
    // Star graphs force relay hops (no Hamiltonian path), the hardest
    // case for the optimizer's move-chain reasoning.
    differential_case(&factories::star(4), 2, &OetSnakeSorter);
    differential_case(&factories::star(5), 2, &OetSnakeSorter);
}

/// The fault layer's two executors must agree: the same `FaultPlan`
/// against the interpreter (`run_with_faults`) and the lowered kernel
/// (`run_kernel_with_faults`) fires the same fault sites, detects at
/// the same certificates, and leaves bit-identical keys — faults are
/// keyed by `(round, op)`, which lowering preserves 1:1.
#[test]
fn differential_fault_paths() {
    let cases: [(&Graph, usize, &dyn Pg2Sorter); 3] = [
        (&factories::path(3), 3, &ShearSorter),
        (&factories::k2(), 4, &Hypercube2Sorter),
        (&factories::star(4), 2, &OetSnakeSorter),
    ];
    for (factor, r, sorter) in cases {
        let shape = Shape::new(factor.n(), r);
        let ctx = format!("factor={} r={r}", factor.name());
        let program = compile(factor, r, sorter);
        let bsp = BspMachine::new(factor, r);
        let kernel = bsp.lower(&program).expect("compiled programs validate");
        let mut scratch = ExecScratch::new();
        let input = lcg_keys(shape.len(), 0xFA17);
        for policy in [RetryPolicy::default(), RetryPolicy::detect_only()] {
            for seed in 0..12u64 {
                let plan = FaultPlan::random(seed, 5_000);
                let mut a = input.clone();
                let ra = bsp.run_with_faults(&mut a, &program, &plan, &policy);
                let mut b = input.clone();
                let rb = bsp.run_kernel_with_faults(&mut b, &kernel, &plan, &policy, &mut scratch);
                assert_eq!(ra, rb, "{ctx} seed={seed}: fault reports diverge");
                assert_eq!(a, b, "{ctx} seed={seed}: faulty keys diverge");
            }
        }
    }
}
