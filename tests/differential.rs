//! Differential test harness: every execution path of the stack must
//! produce the *same configuration* on the same input.
//!
//! For each (factor, r, sorter) in a zoo of product networks, and for
//! each input in a bank of random and adversarial key vectors, we run:
//!
//! * the charged engine (`network_sort` + `ChargedEngine`),
//! * the executed engine (`network_sort` + `ExecutedEngine`),
//! * the serial BSP machine (`BspMachine::run`),
//! * the deferred-action parallel executor (`run_parallel`),
//! * the batched executor (`run_batch`, all inputs in one batch),
//! * the flat kernel tier (`run_kernel`, the chunked-parallel
//!   `run_kernel_parallel` forced past its threshold, and
//!   `run_kernel_batch`), on both the raw and optimized lowerings,
//! * plus serial/parallel/batched runs of the *optimized* program,
//!
//! and require all configurations to be elementwise identical and
//! snake-order equal to the `std` sort oracle. The algorithm is
//! oblivious, so any divergence between these paths is a bug in an
//! executor, not data dependence. A separate test drives the fault
//! layer's interpreter and kernel paths with identical fault plans and
//! requires identical reports and final keys.

use product_sort::baselines::LsbRadixSorter;
use product_sort::graph::factories;
use product_sort::graph::Graph;
use product_sort::obs::{Event, EventLogger, MemorySink, TimedEvent};
use product_sort::order::radix::Shape;
use product_sort::sim::bsp::{compile, BspMachine};
use product_sort::sim::netsort::{is_snake_sorted, network_sort, read_snake_order};
use product_sort::sim::{
    ChargedEngine, CostModel, ExecScratch, ExecutedEngine, FaultPlan, Hypercube2Sorter, Machine,
    MultiwayNSorter, OetSnakeSorter, PeriodicMergeSorter, Pg2Sorter, RetryPolicy, ScratchPool,
    ShearSorter, SorterChoice, VerticalPool,
};

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        })
        .collect()
}

/// Random and adversarial inputs for a network of `len` nodes.
fn input_bank(len: u64) -> Vec<(String, Vec<u64>)> {
    let mut bank: Vec<(String, Vec<u64>)> = Vec::new();
    for seed in [1u64, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        bank.push((format!("random(seed={seed:#x})"), lcg_keys(len, seed)));
    }
    bank.push(("reversed".into(), (0..len).rev().collect()));
    bank.push(("sorted".into(), (0..len).collect()));
    bank.push(("all-equal".into(), vec![42; len as usize]));
    bank.push(("sawtooth".into(), (0..len).map(|x| x % 7).collect()));
    bank.push((
        "two-values".into(),
        (0..len).map(|x| u64::from(x % 3 == 0)).collect(),
    ));
    bank
}

/// Run the full engine matrix on one (factor, r, sorter) and compare.
fn differential_case(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) {
    let shape = Shape::new(factor.n(), r);
    let len = shape.len();
    let ctx = format!("factor={} r={r}", factor.name());

    let program = compile(factor, r, sorter);
    let optimized = program.optimized();
    let bsp = BspMachine::new(factor, r);
    let kernel = bsp.lower(&program).expect("compiled programs validate");
    let kernel_opt = bsp.lower(&optimized).expect("optimized programs validate");

    let bank = input_bank(len);
    let mut serials: Vec<Vec<u64>> = Vec::new();
    // One scratch for every kernel run in the case: reuse across inputs
    // and programs is exactly the steady state the kernel tier promises.
    let mut scratch = ExecScratch::new();
    let mut radix = LsbRadixSorter::new();
    for (label, input) in &bank {
        let mut oracle = input.clone();
        oracle.sort_unstable();

        // Sequence-level baseline: the LSB radix sorter must agree with
        // the std oracle on every input the networks see.
        let mut radixed = input.clone();
        radix.sort_u64(&mut radixed);
        assert_eq!(radixed, oracle, "{ctx} {label}: radix vs std oracle");

        // Reference: serial BSP execution.
        let mut serial = input.clone();
        bsp.run(&mut serial, &program);
        assert!(is_snake_sorted(shape, &serial), "{ctx} {label}: serial");
        assert_eq!(
            read_snake_order(shape, &serial),
            oracle,
            "{ctx} {label}: serial vs std oracle"
        );

        // Parallel executor, raw and optimized programs.
        for (name, prog) in [("program", &program), ("optimized", &optimized)] {
            let mut par = input.clone();
            bsp.run_parallel(&mut par, prog);
            assert_eq!(par, serial, "{ctx} {label}: run_parallel on {name}");
            let mut ser2 = input.clone();
            bsp.run(&mut ser2, prog);
            assert_eq!(ser2, serial, "{ctx} {label}: serial run on {name}");
        }

        // Kernel tier: serial and chunked-parallel (threshold 1 forces
        // the chunked path even on tiny rounds), raw and optimized.
        for (name, k) in [("kernel", &kernel), ("kernel-opt", &kernel_opt)] {
            let mut kser = input.clone();
            bsp.run_kernel(&mut kser, k, &mut scratch);
            assert_eq!(kser, serial, "{ctx} {label}: run_kernel on {name}");
            let mut kpar = input.clone();
            bsp.run_kernel_parallel_threshold(&mut kpar, k, &mut scratch, 1);
            assert_eq!(kpar, serial, "{ctx} {label}: chunked kernel on {name}");
        }

        // Executed engine (real comparator programs + real routing).
        let mut exec = input.clone();
        let mut engine = ExecutedEngine::new(factor, shape, sorter);
        let _ = network_sort(shape, &mut exec, &mut engine);
        assert_eq!(exec, serial, "{ctx} {label}: executed engine");

        // Charged engine (instant data ops — same data trajectory).
        let mut charged = input.clone();
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let _ = network_sort(shape, &mut charged, &mut engine);
        assert_eq!(charged, serial, "{ctx} {label}: charged engine");

        serials.push(serial);
    }

    // Batched executor: the whole input bank as one batch, raw and
    // optimized programs.
    for (name, prog) in [("program", &program), ("optimized", &optimized)] {
        let mut batch: Vec<Vec<u64>> = bank.iter().map(|(_, input)| input.clone()).collect();
        bsp.run_batch(&mut batch, prog);
        for ((label, _), (got, want)) in bank.iter().zip(batch.iter().zip(&serials)) {
            assert_eq!(got, want, "{ctx} {label}: run_batch on {name}");
        }
    }

    // Batched kernel executor, one scratch pool across both lowerings.
    let mut pool = ScratchPool::new();
    for (name, k) in [("kernel", &kernel), ("kernel-opt", &kernel_opt)] {
        let mut batch: Vec<Vec<u64>> = bank.iter().map(|(_, input)| input.clone()).collect();
        bsp.run_kernel_batch(&mut batch, k, &mut pool);
        for ((label, _), (got, want)) in bank.iter().zip(batch.iter().zip(&serials)) {
            assert_eq!(got, want, "{ctx} {label}: run_kernel_batch on {name}");
        }
    }

    // Vertical column tier: the whole bank as one word block, raw and
    // optimized lowerings, one pool across both.
    let mut vpool = VerticalPool::new();
    for (name, prog) in [("program", &program), ("optimized", &optimized)] {
        let vertical = bsp
            .lower_vertical(prog)
            .expect("compiled programs validate");
        let mut batch: Vec<Vec<u64>> = bank.iter().map(|(_, input)| input.clone()).collect();
        bsp.run_vertical_batch(&mut batch, &vertical, &mut vpool);
        for ((label, _), (got, want)) in bank.iter().zip(batch.iter().zip(&serials)) {
            assert_eq!(got, want, "{ctx} {label}: run_vertical_batch on {name}");
        }
    }
}

#[test]
fn differential_paths() {
    differential_case(&factories::path(4), 2, &ShearSorter);
    differential_case(&factories::path(4), 3, &ShearSorter);
    differential_case(&factories::path(3), 4, &ShearSorter);
}

#[test]
fn differential_cycles() {
    // Cycles carry the path edges 0–1–…–(n−1), so shearsort programs
    // compiled against consecutive labels stay edge-aligned.
    differential_case(&factories::cycle(5), 2, &ShearSorter);
    differential_case(&factories::cycle(4), 3, &ShearSorter);
}

#[test]
fn differential_hypercubes() {
    differential_case(&factories::k2(), 2, &Hypercube2Sorter);
    differential_case(&factories::k2(), 3, &Hypercube2Sorter);
    differential_case(&factories::k2(), 4, &Hypercube2Sorter);
    // Past the PAR_THRESHOLD so run_parallel takes the rayon path.
    differential_case(&factories::k2(), 8, &Hypercube2Sorter);
}

#[test]
fn differential_multiway_nsorter() {
    // Dense factors: every long row/column comparator is an edge.
    differential_case(&factories::complete(4), 2, &MultiwayNSorter);
    differential_case(&factories::complete(4), 3, &MultiwayNSorter);
    // Sparse factor: the same program forced through relay routing.
    differential_case(&factories::path(4), 2, &MultiwayNSorter);
}

#[test]
fn differential_periodic_merge() {
    differential_case(&factories::complete(4), 2, &PeriodicMergeSorter::default());
    differential_case(&factories::cycle(4), 2, &PeriodicMergeSorter::default());
    // The parameterized variant is a different program; it must agree too.
    differential_case(
        &factories::complete(4),
        2,
        &PeriodicMergeSorter::with_extra_blocks(1),
    );
}

#[test]
fn differential_auto_selected_sorters() {
    // Whatever the selector picks per shape must survive the full matrix.
    for factor in [factories::complete(4), factories::path(4), factories::k2()] {
        let factor = Machine::prepare_factor(&factor);
        differential_case(&factor, 2, SorterChoice::Auto.resolve(&factor));
    }
}

#[test]
fn differential_petersen_square() {
    let factor = Machine::prepare_factor(&factories::petersen());
    differential_case(&factor, 2, &ShearSorter);
}

#[test]
fn differential_de_bruijn() {
    // Non-Hamiltonian-friendly labels: relay moves in play.
    let factor = Machine::prepare_factor(&factories::de_bruijn(2));
    differential_case(&factor, 2, &OetSnakeSorter);
    differential_case(&factor, 3, &OetSnakeSorter);
}

#[test]
fn differential_star_relays() {
    // Star graphs force relay hops (no Hamiltonian path), the hardest
    // case for the optimizer's move-chain reasoning.
    differential_case(&factories::star(4), 2, &OetSnakeSorter);
    differential_case(&factories::star(5), 2, &OetSnakeSorter);
}

/// The fault layer's two executors must agree: the same `FaultPlan`
/// against the interpreter (`run_with_faults`) and the lowered kernel
/// (`run_kernel_with_faults`) fires the same fault sites, detects at
/// the same certificates, and leaves bit-identical keys — faults are
/// keyed by `(round, op)`, which lowering preserves 1:1.
#[test]
fn differential_fault_paths() {
    let cases: [(&Graph, usize, &dyn Pg2Sorter); 5] = [
        (&factories::path(3), 3, &ShearSorter),
        (&factories::k2(), 4, &Hypercube2Sorter),
        (&factories::star(4), 2, &OetSnakeSorter),
        (&factories::complete(4), 2, &MultiwayNSorter),
        (
            &factories::complete(4),
            2,
            &PeriodicMergeSorter { extra_blocks: 0 },
        ),
    ];
    for (factor, r, sorter) in cases {
        let shape = Shape::new(factor.n(), r);
        let ctx = format!("factor={} r={r}", factor.name());
        let program = compile(factor, r, sorter);
        let bsp = BspMachine::new(factor, r);
        let kernel = bsp.lower(&program).expect("compiled programs validate");
        let mut scratch = ExecScratch::new();
        let input = lcg_keys(shape.len(), 0xFA17);
        for policy in [RetryPolicy::default(), RetryPolicy::detect_only()] {
            for seed in 0..12u64 {
                let plan = FaultPlan::random(seed, 5_000);
                let mut a = input.clone();
                let ra = bsp.run_with_faults(&mut a, &program, &plan, &policy);
                let mut b = input.clone();
                let rb = bsp.run_kernel_with_faults(&mut b, &kernel, &plan, &policy, &mut scratch);
                assert_eq!(ra, rb, "{ctx} seed={seed}: fault reports diverge");
                assert_eq!(a, b, "{ctx} seed={seed}: faulty keys diverge");
            }
        }
    }
}

/// A freshly traced machine plus the reader for its event ring and a
/// logger handle to flush it from (the machine's own logger field is
/// crate-private; clones share the sink).
fn traced_machine(
    factor: &Graph,
    r: usize,
) -> (BspMachine, EventLogger, product_sort::obs::MemoryReader) {
    let (sink, reader) = MemorySink::with_capacity(1 << 18);
    let logger = EventLogger::new(Box::new(sink));
    let mut bsp = BspMachine::new(factor, r);
    bsp.attach_logger(logger.clone());
    (bsp, logger, reader)
}

/// The fault-layer events only, in emission order. Round and batch
/// events are excluded: the interpreter and vertical tiers legitimately
/// execute different word-level schedules, but the *fault story* —
/// which sites fired, where detection tripped, what was retried, who
/// was quarantined — must be identical, and both batch executors replay
/// it post-join in lane order.
fn fault_event_stream(events: &[TimedEvent]) -> Vec<Event> {
    events
        .iter()
        .map(|te| te.event)
        .filter(|e| {
            matches!(
                e,
                Event::FaultInjected { .. }
                    | Event::FaultDetected { .. }
                    | Event::RetryRound { .. }
                    | Event::LaneQuarantined { .. }
            )
        })
        .collect()
}

/// The vertical fault executor is a lockstep re-expression of the
/// scalar fault batch: same per-lane forked plans, same probe seeds,
/// same checkpoint boundaries. Reports, final keys, *and* the replayed
/// `FaultInjected`/`FaultDetected`/`RetryRound`/`LaneQuarantined`
/// event sequences must all be identical, malformed lanes included.
#[test]
fn differential_vertical_fault_paths() {
    let cases: [(&Graph, usize, &dyn Pg2Sorter); 5] = [
        (&factories::path(3), 3, &ShearSorter),
        (&factories::k2(), 4, &Hypercube2Sorter),
        (&factories::star(4), 2, &OetSnakeSorter),
        (&factories::complete(4), 2, &MultiwayNSorter),
        (
            &factories::path(4),
            2,
            &PeriodicMergeSorter { extra_blocks: 0 },
        ),
    ];
    let mut injections = 0usize;
    for (factor, r, sorter) in cases {
        let shape = Shape::new(factor.n(), r);
        let ctx = format!("factor={} r={r}", factor.name());
        let program = compile(factor, r, sorter);

        // 70 lanes — one full word block plus a 6-lane tail — with a
        // malformed lane inside the full block.
        let mut inputs: Vec<Vec<u64>> =
            (0..70).map(|s| lcg_keys(shape.len(), 0xFA17 + s)).collect();
        inputs[5] = vec![1, 2, 3];

        for policy in [RetryPolicy::default(), RetryPolicy::detect_only()] {
            for seed in 0..6u64 {
                let plan = FaultPlan::random(seed, 5_000);

                // Fresh rings per run so the two streams compare 1:1.
                let (bsp_a, logger_a, reader_a) = traced_machine(factor, r);
                let mut a = inputs.clone();
                let ra = bsp_a.run_batch_with_faults(&mut a, &program, &plan, &policy);

                let (bsp_b, logger_b, reader_b) = traced_machine(factor, r);
                let vertical = bsp_b
                    .lower_vertical(&program)
                    .expect("compiled programs validate");
                let mut pool = VerticalPool::new();
                let mut b = inputs.clone();
                let rb = bsp_b
                    .run_vertical_batch_with_faults(&mut b, &vertical, &plan, &policy, &mut pool);

                assert_eq!(ra, rb, "{ctx} seed={seed}: fault reports diverge");
                assert_eq!(a, b, "{ctx} seed={seed}: faulty keys diverge");
                assert!(
                    ra[5].is_err(),
                    "{ctx} seed={seed}: malformed lane must error on both paths"
                );

                logger_a.flush();
                logger_b.flush();
                let fa = fault_event_stream(&reader_a.events());
                let fb = fault_event_stream(&reader_b.events());
                assert_eq!(fa, fb, "{ctx} seed={seed}: fault event streams diverge");
                injections += fa
                    .iter()
                    .filter(|e| matches!(e, Event::FaultInjected { .. }))
                    .count();
            }
        }
    }
    // The comparison must not be vacuous: across 3 fixtures x 2
    // policies x 6 seeds at 5000 ppm, faults definitely fired.
    assert!(injections > 0, "no fault was ever injected — dead test");
}
