//! Zero-one-principle validation at every level of the stack.
//!
//! The algorithms are oblivious (fixed data movements, data-dependent
//! behaviour only inside compare-exchanges and correct-by-contract base
//! sorters), so exhaustively sorting all 0/1 inputs proves correctness
//! for all inputs (Knuth, the paper's Lemma 1/2 tool).

use product_sort::algo::zero_one::exhaustive_merge_check;
use product_sort::algo::StdBaseSorter;
use product_sort::graph::factories;
use product_sort::order::radix::Shape;
use product_sort::sim::netsort::{is_snake_sorted, network_sort, read_snake_order};
use product_sort::sim::{ChargedEngine, CostModel, ExecutedEngine, Hypercube2Sorter, ShearSorter};

#[test]
fn sequence_merge_all_zero_one_inputs() {
    // Input space of a merge = one zero count per sorted input sequence.
    assert_eq!(exhaustive_merge_check(2, 8, &StdBaseSorter), 81);
    assert_eq!(exhaustive_merge_check(2, 32, &StdBaseSorter), 1089);
    assert_eq!(exhaustive_merge_check(3, 9, &StdBaseSorter), 1000);
    assert_eq!(exhaustive_merge_check(3, 27, &StdBaseSorter), 21_952);
    assert_eq!(exhaustive_merge_check(4, 16, &StdBaseSorter), 83_521);
}

fn exhaustive_network_zero_one<F>(n: usize, r: usize, mut sort: F)
where
    F: FnMut(&mut [u8]) -> bool,
{
    let shape = Shape::new(n, r);
    let len = shape.len() as usize;
    assert!(len <= 20, "exhaustive space too large");
    for mask in 0u32..(1u32 << len) {
        let mut keys: Vec<u8> = (0..len).map(|i| ((mask >> i) & 1) as u8).collect();
        assert!(sort(&mut keys), "n={n} r={r} mask={mask:#x}");
    }
}

#[test]
fn charged_network_sort_all_zero_one_inputs() {
    for (n, r) in [(2usize, 2usize), (2, 3), (2, 4), (3, 2), (4, 2)] {
        let shape = Shape::new(n, r);
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        exhaustive_network_zero_one(n, r, |keys| {
            let _ = network_sort(shape, keys, &mut engine);
            is_snake_sorted(shape, keys)
        });
    }
}

#[test]
fn executed_hypercube_sort_all_zero_one_inputs() {
    // 2^16 inputs on the 4-cube with the real three-step PG_2 sorter.
    let factor = factories::k2();
    let shape = Shape::new(2, 4);
    let mut engine = ExecutedEngine::new(&factor, shape, &Hypercube2Sorter);
    exhaustive_network_zero_one(2, 4, |keys| {
        let _ = network_sort(shape, keys, &mut engine);
        is_snake_sorted(shape, keys)
    });
}

#[test]
fn executed_grid_sort_all_zero_one_inputs() {
    // 2^16 inputs on the 4×4 grid with shearsort actually running.
    let factor = factories::path(4);
    let shape = Shape::new(4, 2);
    let mut engine = ExecutedEngine::new(&factor, shape, &ShearSorter);
    exhaustive_network_zero_one(4, 2, |keys| {
        let _ = network_sort(shape, keys, &mut engine);
        is_snake_sorted(shape, keys)
    });
}

#[test]
fn zero_one_outputs_have_the_right_zero_count() {
    // Beyond sortedness: the multiset must be preserved.
    let shape = Shape::new(3, 2);
    for mask in 0u32..(1 << 9) {
        let mut keys: Vec<u8> = (0..9).map(|i| ((mask >> i) & 1) as u8).collect();
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let _ = network_sort(shape, &mut keys, &mut engine);
        let seq = read_snake_order(shape, &keys);
        assert!(seq[..zeros].iter().all(|&k| k == 0), "mask={mask:#x}");
        assert!(seq[zeros..].iter().all(|&k| k == 1), "mask={mask:#x}");
    }
}
