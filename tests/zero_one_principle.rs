//! Zero-one-principle validation at every level of the stack.
//!
//! The algorithms are oblivious (fixed data movements, data-dependent
//! behaviour only inside compare-exchanges and correct-by-contract base
//! sorters), so exhaustively sorting all 0/1 inputs proves correctness
//! for all inputs (Knuth, the paper's Lemma 1/2 tool).

use product_sort::algo::zero_one::exhaustive_merge_check;
use product_sort::algo::StdBaseSorter;
use product_sort::graph::factories;
use product_sort::order::radix::Shape;
use product_sort::sim::netsort::{is_snake_sorted, network_sort, read_snake_order};
use product_sort::sim::{ChargedEngine, CostModel, ExecutedEngine, Hypercube2Sorter, ShearSorter};

#[test]
fn sequence_merge_all_zero_one_inputs() {
    // Input space of a merge = one zero count per sorted input sequence.
    assert_eq!(exhaustive_merge_check(2, 8, &StdBaseSorter), 81);
    assert_eq!(exhaustive_merge_check(2, 32, &StdBaseSorter), 1089);
    assert_eq!(exhaustive_merge_check(3, 9, &StdBaseSorter), 1000);
    assert_eq!(exhaustive_merge_check(3, 27, &StdBaseSorter), 21_952);
    assert_eq!(exhaustive_merge_check(4, 16, &StdBaseSorter), 83_521);
}

fn exhaustive_network_zero_one<F>(n: usize, r: usize, mut sort: F)
where
    F: FnMut(&mut [u8]) -> bool,
{
    let shape = Shape::new(n, r);
    let len = shape.len() as usize;
    assert!(len <= 20, "exhaustive space too large");
    for mask in 0u32..(1u32 << len) {
        let mut keys: Vec<u8> = (0..len).map(|i| ((mask >> i) & 1) as u8).collect();
        assert!(sort(&mut keys), "n={n} r={r} mask={mask:#x}");
    }
}

#[test]
fn charged_network_sort_all_zero_one_inputs() {
    for (n, r) in [(2usize, 2usize), (2, 3), (2, 4), (3, 2), (4, 2)] {
        let shape = Shape::new(n, r);
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        exhaustive_network_zero_one(n, r, |keys| {
            let _ = network_sort(shape, keys, &mut engine);
            is_snake_sorted(shape, keys)
        });
    }
}

#[test]
fn executed_hypercube_sort_all_zero_one_inputs() {
    // 2^16 inputs on the 4-cube with the real three-step PG_2 sorter.
    let factor = factories::k2();
    let shape = Shape::new(2, 4);
    let mut engine = ExecutedEngine::new(&factor, shape, &Hypercube2Sorter);
    exhaustive_network_zero_one(2, 4, |keys| {
        let _ = network_sort(shape, keys, &mut engine);
        is_snake_sorted(shape, keys)
    });
}

#[test]
fn executed_grid_sort_all_zero_one_inputs() {
    // 2^16 inputs on the 4×4 grid with shearsort actually running.
    let factor = factories::path(4);
    let shape = Shape::new(4, 2);
    let mut engine = ExecutedEngine::new(&factor, shape, &ShearSorter);
    exhaustive_network_zero_one(4, 2, |keys| {
        let _ = network_sort(shape, keys, &mut engine);
        is_snake_sorted(shape, keys)
    });
}

#[test]
fn bsp_hypercube_4_zero_one_sampled() {
    // Tier-1 slice of the heavy sweep `bsp_hypercube_4_zero_one_exhaustive`
    // (tests/heavy.rs): instead of all 2^16 masks of the 4-cube, a seeded
    // sample of 4096 — deterministic, so failures reproduce — run through
    // both the serial BSP machine and the deferred-action parallel
    // executor. Structured corner masks are always included.
    use product_sort::sim::bsp::{compile, BspMachine};

    let factor = factories::k2();
    let program = compile(&factor, 4, &Hypercube2Sorter);
    let optimized = program.optimized();
    let machine = BspMachine::new(&factor, 4);
    let mut masks: Vec<u32> = vec![0, 0xFFFF, 0x5555, 0xAAAA, 0x00FF, 0xFF00, 0x0F0F, 0xF0F0];
    let mut state: u64 = 0x5EED_2E01;
    while masks.len() < 4096 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        masks.push((state >> 33) as u32 & 0xFFFF);
    }
    for mask in masks {
        let input: Vec<u8> = (0..16).map(|i| ((mask >> i) & 1) as u8).collect();
        let zeros = input.iter().filter(|&&k| k == 0).count();
        let mut serial = input.clone();
        machine.run(&mut serial, &program);
        assert!(
            is_snake_sorted(machine.shape(), &serial),
            "mask={mask:#06x}"
        );
        let seq = read_snake_order(machine.shape(), &serial);
        assert!(seq[..zeros].iter().all(|&k| k == 0), "mask={mask:#06x}");
        assert!(seq[zeros..].iter().all(|&k| k == 1), "mask={mask:#06x}");
        for prog in [&program, &optimized] {
            let mut par = input.clone();
            machine.run_parallel(&mut par, prog);
            assert_eq!(par, serial, "mask={mask:#06x}: parallel vs serial");
        }
    }
}

#[test]
fn zero_one_outputs_have_the_right_zero_count() {
    // Beyond sortedness: the multiset must be preserved.
    let shape = Shape::new(3, 2);
    for mask in 0u32..(1 << 9) {
        let mut keys: Vec<u8> = (0..9).map(|i| ((mask >> i) & 1) as u8).collect();
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let _ = network_sort(shape, &mut keys, &mut engine);
        let seq = read_snake_order(shape, &keys);
        assert!(seq[..zeros].iter().all(|&k| k == 0), "mask={mask:#x}");
        assert!(seq[zeros..].iter().all(|&k| k == 1), "mask={mask:#x}");
    }
}
