//! Zero-one-principle validation at every level of the stack.
//!
//! The algorithms are oblivious (fixed data movements, data-dependent
//! behaviour only inside compare-exchanges and correct-by-contract base
//! sorters), so exhaustively sorting all 0/1 inputs proves correctness
//! for all inputs (Knuth, the paper's Lemma 1/2 tool).

use product_sort::algo::zero_one::exhaustive_merge_check;
use product_sort::algo::StdBaseSorter;
use product_sort::graph::factories;
use product_sort::order::radix::Shape;
use product_sort::sim::netsort::{is_snake_sorted, network_sort, read_snake_order};
use product_sort::sim::{ChargedEngine, CostModel, ExecutedEngine, Hypercube2Sorter, ShearSorter};

#[test]
fn sequence_merge_all_zero_one_inputs() {
    // Input space of a merge = one zero count per sorted input sequence.
    assert_eq!(exhaustive_merge_check(2, 8, &StdBaseSorter), 81);
    assert_eq!(exhaustive_merge_check(2, 32, &StdBaseSorter), 1089);
    assert_eq!(exhaustive_merge_check(3, 9, &StdBaseSorter), 1000);
    assert_eq!(exhaustive_merge_check(3, 27, &StdBaseSorter), 21_952);
    assert_eq!(exhaustive_merge_check(4, 16, &StdBaseSorter), 83_521);
}

fn exhaustive_network_zero_one<F>(n: usize, r: usize, mut sort: F)
where
    F: FnMut(&mut [u8]) -> bool,
{
    let shape = Shape::new(n, r);
    let len = shape.len() as usize;
    assert!(len <= 20, "exhaustive space too large");
    for mask in 0u32..(1u32 << len) {
        let mut keys: Vec<u8> = (0..len).map(|i| ((mask >> i) & 1) as u8).collect();
        assert!(sort(&mut keys), "n={n} r={r} mask={mask:#x}");
    }
}

#[test]
fn charged_network_sort_all_zero_one_inputs() {
    for (n, r) in [(2usize, 2usize), (2, 3), (2, 4), (3, 2), (4, 2)] {
        let shape = Shape::new(n, r);
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        exhaustive_network_zero_one(n, r, |keys| {
            let _ = network_sort(shape, keys, &mut engine);
            is_snake_sorted(shape, keys)
        });
    }
}

#[test]
fn executed_hypercube_sort_all_zero_one_inputs() {
    // 2^16 inputs on the 4-cube with the real three-step PG_2 sorter.
    let factor = factories::k2();
    let shape = Shape::new(2, 4);
    let mut engine = ExecutedEngine::new(&factor, shape, &Hypercube2Sorter);
    exhaustive_network_zero_one(2, 4, |keys| {
        let _ = network_sort(shape, keys, &mut engine);
        is_snake_sorted(shape, keys)
    });
}

#[test]
fn executed_grid_sort_all_zero_one_inputs() {
    // 2^16 inputs on the 4×4 grid with shearsort actually running.
    let factor = factories::path(4);
    let shape = Shape::new(4, 2);
    let mut engine = ExecutedEngine::new(&factor, shape, &ShearSorter);
    exhaustive_network_zero_one(4, 2, |keys| {
        let _ = network_sort(shape, keys, &mut engine);
        is_snake_sorted(shape, keys)
    });
}

/// The deterministic 4096-mask sample used by the tier-1 BSP checks:
/// structured corner masks first, then a seeded LCG stream. The
/// all-zeros and all-ones boundary vectors are a checked *guarantee* of
/// the sample, not luck of the seed — a future edit that drops them
/// fails here, not silently.
fn sampled_hypercube_masks() -> Vec<u32> {
    let mut masks: Vec<u32> = vec![0, 0xFFFF, 0x5555, 0xAAAA, 0x00FF, 0xFF00, 0x0F0F, 0xF0F0];
    let mut state: u64 = 0x5EED_2E01;
    while masks.len() < 4096 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        masks.push((state >> 33) as u32 & 0xFFFF);
    }
    for corner in [0u32, 0xFFFF] {
        assert!(
            masks.contains(&corner),
            "sample must pin the {corner:#06x} boundary vector"
        );
    }
    masks
}

#[test]
fn bsp_hypercube_4_zero_one_sampled() {
    // Tier-1 slice of the heavy sweep `bsp_hypercube_4_zero_one_exhaustive`
    // (tests/heavy.rs): instead of all 2^16 masks of the 4-cube, a seeded
    // sample of 4096 — deterministic, so failures reproduce — run through
    // both the serial BSP machine and the deferred-action parallel
    // executor. Structured corner masks are always included.
    use product_sort::sim::bsp::{compile, BspMachine};

    let factor = factories::k2();
    let program = compile(&factor, 4, &Hypercube2Sorter);
    let optimized = program.optimized();
    let machine = BspMachine::new(&factor, 4);
    for mask in sampled_hypercube_masks() {
        let input: Vec<u8> = (0..16).map(|i| ((mask >> i) & 1) as u8).collect();
        let zeros = input.iter().filter(|&&k| k == 0).count();
        let mut serial = input.clone();
        machine.run(&mut serial, &program);
        assert!(
            is_snake_sorted(machine.shape(), &serial),
            "mask={mask:#06x}"
        );
        let seq = read_snake_order(machine.shape(), &serial);
        assert!(seq[..zeros].iter().all(|&k| k == 0), "mask={mask:#06x}");
        assert!(seq[zeros..].iter().all(|&k| k == 1), "mask={mask:#06x}");
        for prog in [&program, &optimized] {
            let mut par = input.clone();
            machine.run_parallel(&mut par, prog);
            assert_eq!(par, serial, "mask={mask:#06x}: parallel vs serial");
        }
    }
}

#[test]
fn vertical_exhaustive_sweep_subsumes_the_sampled_check() {
    // The bit-sliced vertical tier (tests/vertical.rs) sweeps *all*
    // 2^16 masks of the 4-cube — a strict superset of the 4096-mask
    // sample above. This test closes the loop on the smallest sampled
    // fixture: every sampled mask, pushed through the vertical tier 64
    // lanes at a time, lands bit-identical to the serial BSP machine,
    // so the exhaustive vertical sweep subsumes the sampled tier-1
    // check rather than merely running alongside it.
    use product_sort::sim::bsp::{compile, BspMachine};
    use product_sort::sim::{pack_zero_one_masks, unpack_zero_one_lane, BitScratch, WORD_LANES};

    let factor = factories::k2();
    let program = compile(&factor, 4, &Hypercube2Sorter);
    let machine = BspMachine::new(&factor, 4);
    let vertical = machine
        .lower_vertical(&program)
        .expect("compiled programs validate");
    let mut scratch = BitScratch::new();
    let masks = sampled_hypercube_masks();
    for block in masks.chunks(WORD_LANES) {
        let lanes: Vec<u64> = block.iter().map(|&m| u64::from(m)).collect();
        let mut words = pack_zero_one_masks(&lanes, 16);
        machine.run_vertical_bits(&mut words, &vertical, &mut scratch);
        for (l, &mask) in block.iter().enumerate() {
            let mut serial: Vec<u8> = (0..16).map(|i| ((mask >> i) & 1) as u8).collect();
            machine.run(&mut serial, &program);
            assert_eq!(
                unpack_zero_one_lane(&words, l),
                serial,
                "mask={mask:#06x}: vertical lane vs serial machine"
            );
        }
    }
}

#[test]
fn zero_one_outputs_have_the_right_zero_count() {
    // Beyond sortedness: the multiset must be preserved.
    let shape = Shape::new(3, 2);
    for mask in 0u32..(1 << 9) {
        let mut keys: Vec<u8> = (0..9).map(|i| ((mask >> i) & 1) as u8).collect();
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let _ = network_sort(shape, &mut keys, &mut engine);
        let seq = read_snake_order(shape, &keys);
        assert!(seq[..zeros].iter().all(|&k| k == 0), "mask={mask:#x}");
        assert!(seq[zeros..].iter().all(|&k| k == 1), "mask={mask:#x}");
    }
}
