//! Overload-behavior tests: deterministic breaker transitions through
//! the service core, watermark shedding through the threaded service,
//! deadline timeouts under a manual clock, the fault-enabled
//! degradation ladder end to end, and a small smoke loadtest — every
//! submitted request must resolve to exactly one typed outcome, and
//! nothing may panic.

use pns_graph::factories;
use pns_service::{
    BreakerConfig, BreakerState, LaneVerdict, ManualClock, Poll, RateLimit, RejectReason,
    ServiceConfig, ServiceCore, ServiceError, ShapeSpec, SortService, Transport,
};
use pns_simulator::netsort::is_snake_sorted;
use pns_simulator::{BspMachine, FaultPlan};
use std::sync::Arc;

/// `path(3)^2`: 9 keys per request — small enough to batch by the
/// hundreds in-test.
const KEYS: usize = 9;

fn keys_desc() -> Vec<u64> {
    (0..KEYS as u64).rev().collect()
}

fn shape_spec() -> ShapeSpec {
    ShapeSpec {
        expected_keys: KEYS as u64,
    }
}

fn quick_config() -> ServiceConfig {
    ServiceConfig {
        coalesce_budget_ns: 0, // dispatch immediately
        workers: 2,
        ..ServiceConfig::default()
    }
}

fn build(config: ServiceConfig, plan: FaultPlan, clock: Option<Arc<ManualClock>>) -> SortService {
    let factor = factories::path(3);
    let mut builder = SortService::builder(config).fault_plan(plan);
    if let Some(clock) = clock {
        builder = builder.clock(clock);
    }
    builder
        .register_shape(&factor, 2)
        .expect("path(3) is connected")
        .start()
}

fn assert_sorted(keys: &[u64]) {
    let machine = BspMachine::new(&factories::path(3), 2);
    assert!(
        is_snake_sorted(machine.shape(), keys),
        "not snake-sorted: {keys:?}"
    );
}

// ---------------------------------------------------------------------
// End-to-end through the threaded service.
// ---------------------------------------------------------------------

#[test]
fn single_request_round_trips_sorted() {
    let service = build(quick_config(), FaultPlan::disabled(), None);
    let ticket = service.submit(0, 0, keys_desc()).expect("admitted");
    let response = ticket.wait().expect("sorted");
    assert_sorted(&response.keys);
    assert!(!response.degraded);
    assert_eq!(response.attempts, 1);
    let mut sorted = response.keys.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..KEYS as u64).collect::<Vec<_>>());
}

#[test]
fn sorter_choice_threads_through_the_builder_per_shape() {
    use pns_simulator::SorterChoice;
    // Auto selection is per shape: dense K_4 compiles the multiway
    // n-sorter, sparse path(3) keeps an adjacent-comparator schedule —
    // and both answer correctly through the full batch path.
    let service = SortService::builder(quick_config())
        .register_shape(&factories::complete(4), 2)
        .expect("K_4 is connected")
        .register_shape(&factories::path(3), 2)
        .expect("path(3) is connected")
        .start();
    assert_eq!(service.shape_sorter(0), Some("multiway-nsorter"));
    assert_ne!(service.shape_sorter(1), Some("multiway-nsorter"));
    assert_eq!(service.shape_sorter(2), None);
    let k4_keys: Vec<u64> = (0..16u64).map(|x| (x * 13) % 17).collect();
    let t0 = service.submit(0, 0, k4_keys).expect("admitted");
    let t1 = service.submit(0, 1, keys_desc()).expect("admitted");
    let r0 = t0.wait().expect("sorted");
    let r1 = t1.wait().expect("sorted");
    let machine = BspMachine::new(&factories::complete(4), 2);
    assert!(is_snake_sorted(machine.shape(), &r0.keys));
    assert_sorted(&r1.keys);
    drop(service);

    // A fixed choice is honored verbatim.
    let fixed = SortService::builder(quick_config())
        .sorter(SorterChoice::OetSnake)
        .register_shape(&factories::complete(4), 2)
        .expect("K_4 is connected")
        .start();
    assert_eq!(fixed.shape_sorter(0), Some("oet-snake"));
    let ticket = fixed.submit(0, 0, (0..16u64).rev().collect()).expect("ok");
    let resp = ticket.wait().expect("sorted");
    assert!(is_snake_sorted(machine.shape(), &resp.keys));
}

#[test]
fn wrong_key_count_and_unknown_shape_are_typed() {
    let service = build(quick_config(), FaultPlan::disabled(), None);
    match service.submit(0, 0, vec![1, 2, 3]) {
        Err(ServiceError::Rejected(RejectReason::InvalidRequest { expected, got })) => {
            assert_eq!((expected, got), (KEYS as u64, 3));
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    match service.submit(0, 9, keys_desc()) {
        Err(ServiceError::Rejected(RejectReason::UnknownShape { shape: 9 })) => {}
        other => panic!("expected UnknownShape, got {other:?}"),
    }
}

#[test]
fn queued_requests_are_answered_shutdown_on_drop() {
    let config = ServiceConfig {
        coalesce_budget_ns: u64::MAX, // nothing ever dispatches...
        max_batch_lanes: 1 << 20,     // ...and no batch fills
        request_timeout_ns: u64::MAX,
        workers: 1,
        ..ServiceConfig::default()
    };
    let clock = Arc::new(ManualClock::new());
    let mut service = build(config, FaultPlan::disabled(), Some(clock));
    let tickets: Vec<_> = (0..5)
        .map(|t| service.submit(t, 0, keys_desc()).expect("admitted"))
        .collect();
    service.shutdown();
    for ticket in tickets {
        match ticket.wait() {
            Err(ServiceError::Rejected(RejectReason::Shutdown)) => {}
            other => panic!("expected Shutdown, got {other:?}"),
        }
    }
    match Transport::submit(&service, 0, 0, keys_desc()) {
        Err(ServiceError::Rejected(RejectReason::Shutdown)) => {}
        other => panic!("expected Shutdown after stop, got {other:?}"),
    }
}

#[test]
fn deadline_expiry_yields_typed_timeout_under_manual_clock() {
    let config = ServiceConfig {
        coalesce_budget_ns: u64::MAX,
        max_batch_lanes: 1 << 20,
        request_timeout_ns: 1_000_000, // 1ms of service time
        workers: 1,
        ..ServiceConfig::default()
    };
    let clock = Arc::new(ManualClock::new());
    let service = build(config, FaultPlan::disabled(), Some(Arc::clone(&clock)));
    let ticket = service.submit(3, 0, keys_desc()).expect("admitted");
    clock.advance(2_000_000); // jump straight past the deadline
    match ticket.wait() {
        Err(ServiceError::Timeout { waited_ns }) => {
            assert!(waited_ns >= 1_000_000, "waited {waited_ns}ns");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.tenants[&3].timeouts, 1);
}

#[test]
fn watermark_sheds_before_hard_capacity() {
    let config = ServiceConfig {
        queue_capacity: 8,
        shed_watermark: 4,
        coalesce_budget_ns: u64::MAX, // frozen clock: queue only grows
        max_batch_lanes: 1 << 20,
        request_timeout_ns: u64::MAX,
        workers: 1,
        ..ServiceConfig::default()
    };
    let clock = Arc::new(ManualClock::new());
    let service = build(config, FaultPlan::disabled(), Some(clock));
    let _held: Vec<_> = (0..4)
        .map(|i| service.submit(i, 0, keys_desc()).expect("below watermark"))
        .collect();
    match service.submit(9, 0, keys_desc()) {
        Err(ServiceError::Rejected(RejectReason::LoadShed { depth: 4 })) => {}
        other => panic!("expected LoadShed at the watermark, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.queue_depth, 4);
    assert_eq!(stats.tenants[&9].shed, 1);
}

#[test]
fn per_tenant_rate_limit_spares_other_tenants() {
    let config = ServiceConfig {
        rate_limit: RateLimit {
            rate_per_sec: 1,
            burst: 2,
        },
        coalesce_budget_ns: u64::MAX,
        max_batch_lanes: 1 << 20,
        request_timeout_ns: u64::MAX,
        workers: 1,
        ..ServiceConfig::default()
    };
    let clock = Arc::new(ManualClock::new());
    let service = build(config, FaultPlan::disabled(), Some(clock));
    assert!(service.submit(1, 0, keys_desc()).is_ok());
    assert!(service.submit(1, 0, keys_desc()).is_ok());
    match service.submit(1, 0, keys_desc()) {
        Err(ServiceError::Rejected(RejectReason::RateLimited { tenant: 1 })) => {}
        other => panic!("expected RateLimited, got {other:?}"),
    }
    // Tenant 2 has its own bucket.
    assert!(service.submit(2, 0, keys_desc()).is_ok());
}

// ---------------------------------------------------------------------
// Deterministic breaker transitions through the admission path.
// ---------------------------------------------------------------------

#[test]
fn breaker_walks_closed_open_half_open_closed_through_the_core() {
    let config = ServiceConfig {
        coalesce_budget_ns: 0,
        max_batch_lanes: 4,
        breaker: BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_pct: 50,
            cooldown_ns: 1_000,
            probe_quota: 2,
        },
        ..ServiceConfig::default()
    };
    let mut core = ServiceCore::new(config, vec![shape_spec()]);

    // Four failed lanes trip the breaker at t=100.
    for _ in 0..4 {
        core.submit(0, 0, keys_desc(), 0).expect("closed admits");
    }
    let Poll::Ready(batch) = core.poll(0) else {
        panic!("batch due immediately at budget 0")
    };
    assert_eq!(batch.entries.len(), 4);
    for lane in &batch.entries {
        core.complete(lane, LaneVerdict::Failed, 100);
    }
    assert_eq!(core.breaker_state(), BreakerState::Open { until_ns: 1_100 });

    // Open refuses with the typed reason until the cooldown elapses.
    match core.submit(0, 0, keys_desc(), 500) {
        Err(ServiceError::Rejected(RejectReason::BreakerOpen)) => {}
        other => panic!("expected BreakerOpen, got {other:?}"),
    }

    // At t=1_100 the breaker rolls half-open and admits two probes.
    core.submit(0, 0, keys_desc(), 1_100).expect("first probe");
    assert_eq!(core.breaker_state(), BreakerState::HalfOpen);
    core.submit(0, 0, keys_desc(), 1_100).expect("second probe");
    match core.submit(0, 0, keys_desc(), 1_100) {
        Err(ServiceError::Rejected(RejectReason::BreakerOpen)) => {}
        other => panic!("probe quota spent, got {other:?}"),
    }

    // Two probe successes close it and admissions flow again.
    let Poll::Ready(probes) = core.poll(1_100) else {
        panic!("probe batch due")
    };
    for lane in &probes.entries {
        core.complete(
            lane,
            LaneVerdict::Sorted {
                degraded: false,
                retried: false,
            },
            1_200,
        );
    }
    assert_eq!(core.breaker_state(), BreakerState::Closed);
    core.submit(0, 0, keys_desc(), 1_300).expect("closed again");
    assert_eq!(core.stats.breaker_opens, 1);
    assert_eq!(core.stats.tenants[&0].breaker_rejected, 2);
}

#[test]
fn quarantined_lanes_count_as_breaker_failures() {
    let config = ServiceConfig {
        coalesce_budget_ns: 0,
        max_batch_lanes: 4,
        breaker: BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_pct: 50,
            cooldown_ns: 1_000,
            probe_quota: 2,
        },
        ..ServiceConfig::default()
    };
    let mut core = ServiceCore::new(config, vec![shape_spec()]);
    for _ in 0..4 {
        core.submit(0, 0, keys_desc(), 0).expect("admitted");
    }
    let Poll::Ready(batch) = core.poll(0) else {
        panic!("batch due")
    };
    // Degraded completions (the quarantine rung) are correct answers
    // but still failure signal for the breaker.
    for lane in &batch.entries {
        core.complete(
            lane,
            LaneVerdict::Sorted {
                degraded: true,
                retried: true,
            },
            50,
        );
    }
    assert_eq!(core.breaker_state(), BreakerState::Open { until_ns: 1_050 });
    assert_eq!(core.stats.tenants[&0].degraded, 4);
    assert_eq!(core.stats.tenants[&0].completed, 4);
}

// ---------------------------------------------------------------------
// The fault-enabled degradation ladder, end to end.
// ---------------------------------------------------------------------

#[test]
fn fault_plan_requests_still_sort_possibly_degraded() {
    let config = ServiceConfig {
        coalesce_budget_ns: 0,
        breaker: BreakerConfig {
            trip_pct: 0, // keep admitting: this test exercises the ladder
            ..BreakerConfig::default()
        },
        workers: 2,
        ..ServiceConfig::default()
    };
    // Heavy enough to force in-run retries and the occasional
    // quarantine, light enough that the ladder always lands a sort.
    let service = build(config, FaultPlan::random(0xfa17, 20_000), None);
    let tickets: Vec<_> = (0..64u32)
        .map(|i| {
            service
                .submit(i % 4, 0, keys_desc())
                .expect("admission is clean here")
        })
        .collect();
    let mut degraded = 0u32;
    for ticket in tickets {
        let response = ticket.wait().expect("ladder lands every request");
        assert_sorted(&response.keys);
        assert!(response.attempts >= 1);
        degraded += u32::from(response.degraded);
    }
    let stats = service.stats();
    assert_eq!(stats.total(|t| t.completed), 64);
    assert_eq!(stats.total(|t| t.degraded), u64::from(degraded));
    assert_eq!(stats.total(|t| t.failed), 0);
}

// ---------------------------------------------------------------------
// Smoke loadtest (tier-1): concurrent submitters, full accounting.
// ---------------------------------------------------------------------

#[test]
fn smoke_loadtest_accounts_for_every_request() {
    let config = ServiceConfig {
        queue_capacity: 256,
        shed_watermark: 192,
        coalesce_budget_ns: 200_000, // 0.2ms: real coalescing under load
        max_batch_lanes: 128,
        workers: 2,
        ..ServiceConfig::default()
    };
    let service = Arc::new(build(config, FaultPlan::disabled(), None));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 250;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let (mut ok, mut rejected) = (0u64, 0u64);
            for _ in 0..PER_THREAD {
                match service.submit(t as u32, 0, keys_desc()) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(response) => {
                            assert!(is_snake_sorted(
                                BspMachine::new(&factories::path(3), 2).shape(),
                                &response.keys
                            ));
                            ok += 1;
                        }
                        Err(ServiceError::Timeout { .. }) => rejected += 1,
                        Err(e) => panic!("unexpected terminal error: {e}"),
                    },
                    Err(ServiceError::Rejected(_)) => rejected += 1,
                    Err(e) => panic!("unexpected admission error: {e}"),
                }
            }
            (ok, rejected)
        }));
    }
    let (mut ok, mut rejected) = (0u64, 0u64);
    for h in handles {
        let (o, r) = h.join().expect("no panics in submitters");
        ok += o;
        rejected += r;
    }
    assert_eq!(
        ok + rejected,
        THREADS * PER_THREAD,
        "every request accounted"
    );
    let stats = service.stats();
    assert_eq!(stats.total(|t| t.submitted), THREADS * PER_THREAD);
    assert_eq!(stats.total(|t| t.completed), ok);
    assert!(stats.vertical_batches + stats.kernel_batches > 0);
}
