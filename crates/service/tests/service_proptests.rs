//! Property-based tests for the deadline-driven coalescer: under
//! arbitrary arrival sequences, no admitted request waits past its
//! deadline without a typed timeout, no batch exceeds the lane cap,
//! dispatch is FIFO per shape with the oldest head served first, and
//! every admitted request is eventually accounted — batched or expired,
//! never both, never neither (no starvation).

use pns_service::{LaneVerdict, Poll, ServiceConfig, ServiceCore, ServiceError, ShapeSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// SplitMix64: the test's own deterministic stream, independent of the
/// strategy seeds.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const SHAPE_KEYS: [u64; 2] = [4, 9];

fn config(budget_ns: u64, timeout_ns: u64, cap: usize) -> ServiceConfig {
    ServiceConfig {
        queue_capacity: 1 << 20, // adm. rungs out of the way: coalescer only
        shed_watermark: 0,
        coalesce_budget_ns: budget_ns,
        max_batch_lanes: cap,
        request_timeout_ns: timeout_ns,
        ..ServiceConfig::default()
    }
}

/// One admitted request the model still considers outstanding.
#[derive(Debug, Clone, Copy)]
struct Tracked {
    shape: usize,
    enqueued_ns: u64,
}

/// Sweep expirations and drain due batches at `now`, checking every
/// coalescer invariant, and move resolved ids out of `outstanding`.
fn step(
    core: &mut ServiceCore,
    outstanding: &mut BTreeMap<u64, Tracked>,
    batched: &mut Vec<u64>,
    expired: &mut Vec<u64>,
    now: u64,
    timeout_ns: u64,
    cap: usize,
) -> Result<(), TestCaseError> {
    for p in core.take_expired(now) {
        let t = outstanding
            .remove(&p.id)
            .ok_or_else(|| TestCaseError::Fail(format!("expired unknown id {}", p.id)))?;
        prop_assert!(
            now.saturating_sub(t.enqueued_ns) >= timeout_ns,
            "id {} expired early at age {}",
            p.id,
            now - t.enqueued_ns
        );
        expired.push(p.id);
    }
    // Nothing left in the queue may be past its deadline.
    for (id, t) in outstanding.iter() {
        prop_assert!(
            now.saturating_sub(t.enqueued_ns) < timeout_ns,
            "id {id} is past deadline but was not timed out"
        );
    }
    loop {
        match core.poll(now) {
            Poll::Ready(batch) => {
                prop_assert!(
                    batch.entries.len() <= cap,
                    "batch of {} exceeds cap {cap}",
                    batch.entries.len()
                );
                prop_assert!(!batch.entries.is_empty(), "empty batch dispatched");
                let oldest_of_shape = outstanding
                    .iter()
                    .filter(|(_, t)| t.shape == batch.shape)
                    .map(|(id, _)| *id)
                    .next();
                prop_assert_eq!(
                    oldest_of_shape,
                    batch.entries.first().map(|p| p.id),
                    "dispatch must start at the shape's oldest request"
                );
                let mut prev = None;
                for lane in &batch.entries {
                    prop_assert!(
                        prev.is_none_or(|p| p < lane.id),
                        "batch ids out of FIFO order"
                    );
                    prev = Some(lane.id);
                    let t = outstanding.remove(&lane.id).ok_or_else(|| {
                        TestCaseError::Fail(format!("batched unknown id {}", lane.id))
                    })?;
                    prop_assert_eq!(t.shape, batch.shape, "lane in the wrong shape's batch");
                    batched.push(lane.id);
                    core.complete(
                        lane,
                        LaneVerdict::Sorted {
                            degraded: false,
                            retried: false,
                        },
                        now,
                    );
                }
            }
            Poll::Wait(wake) => {
                prop_assert!(wake > now, "Wait({wake}) is not in the future of {now}");
                break;
            }
            Poll::Idle => {
                prop_assert!(
                    outstanding.is_empty(),
                    "Idle with {} requests still queued",
                    outstanding.len()
                );
                break;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coalescer_meets_deadline_cap_and_fifo_invariants(
        seed in any::<u64>(),
        n_events in 1usize..100,
        budget_us in 1u64..300,
        timeout_us in 50u64..2_000,
        cap in 1usize..9,
        max_step_us in 1u64..200,
    ) {
        let budget_ns = budget_us * 1_000;
        let timeout_ns = timeout_us * 1_000;
        let shapes: Vec<ShapeSpec> = SHAPE_KEYS
            .iter()
            .map(|&expected_keys| ShapeSpec { expected_keys })
            .collect();
        let mut core = ServiceCore::new(config(budget_ns, timeout_ns, cap), shapes);

        let mut outstanding: BTreeMap<u64, Tracked> = BTreeMap::new();
        let mut batched = Vec::new();
        let mut expired = Vec::new();
        let mut admitted = 0u64;
        let mut now = 0u64;

        for i in 0..n_events {
            let r = splitmix(seed ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
            now += (r % (max_step_us * 1_000)).max(1);
            let tenant = (r >> 8) as u32 % 3;
            let shape = (r >> 16) as usize % SHAPE_KEYS.len();
            let keys = vec![r; SHAPE_KEYS[shape] as usize];
            match core.submit(tenant, shape, keys, now) {
                Ok(id) => {
                    admitted += 1;
                    outstanding.insert(id, Tracked { shape, enqueued_ns: now });
                }
                Err(ServiceError::Rejected(_)) => {}
                Err(other) => {
                    return Err(TestCaseError::Fail(format!("unexpected error: {other}")));
                }
            }
            step(&mut core, &mut outstanding, &mut batched, &mut expired,
                 now, timeout_ns, cap)?;
        }

        // Drain: advancing time must eventually resolve every request
        // (no starvation), well within a bounded number of rounds.
        let mut rounds = 0;
        while core.depth() > 0 {
            rounds += 1;
            prop_assert!(rounds <= n_events + 2, "queue failed to drain");
            now += budget_ns + timeout_ns;
            step(&mut core, &mut outstanding, &mut batched, &mut expired,
                 now, timeout_ns, cap)?;
        }
        prop_assert!(outstanding.is_empty(), "tracker out of sync with core");
        prop_assert_eq!(batched.len() as u64 + expired.len() as u64, admitted,
            "every admitted request resolves exactly once");
        let accepted = core.stats.total(|t| t.accepted);
        let resolved = core.stats.total(|t| t.completed) + core.stats.total(|t| t.timeouts);
        prop_assert_eq!(accepted, admitted);
        prop_assert_eq!(resolved, admitted);
    }
}
