//! Injectable time sources.
//!
//! Every time-dependent decision in the service — coalescing deadlines,
//! request timeouts, token-bucket refills, breaker cooldowns — consumes
//! an explicit `now_ns` drawn from a [`Clock`], never from ambient
//! system time. Production wires in [`SystemClock`]; tests wire in a
//! [`ManualClock`] and advance it by hand, so breaker transitions and
//! deadline math are asserted exactly, not raced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Monotonic.
    fn now_ns(&self) -> u64;
}

/// Wall clock: monotonic nanoseconds since the clock's construction.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests. Clones share the same
/// underlying time, so a test can hold one handle while the service
/// holds another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock frozen at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance time by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jump to an absolute time. Saturates monotonically: rewinding is
    /// ignored (a monotone clock never goes backwards).
    pub fn set(&self, now_ns: u64) {
        self.now.fetch_max(now_ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_and_never_rewinds() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(5);
        let shared = c.clone();
        shared.advance(10);
        assert_eq!(c.now_ns(), 15);
        c.set(100);
        assert_eq!(c.now_ns(), 100);
        c.set(50); // rewind ignored
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
