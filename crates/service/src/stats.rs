//! Per-tenant service metrics, exported through the `pns-obs`
//! [`Registry`].
//!
//! Counters follow the request lifecycle (submitted → accepted →
//! completed | timeout, or one of the rejection rungs), latency is a
//! log-bucket [`Histogram`] per tenant (p50/p99 via `quantile_ns`), and
//! gauges track queue depth and breaker state. Everything lives in
//! plain maps updated under the core lock — recording is a few integer
//! ops, and [`ServiceStats::export_to`] materializes the registry view
//! on demand.

use pns_obs::{Histogram, Registry};
use std::collections::BTreeMap;

/// Lifetime counters for one tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Requests that reached `submit`.
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests answered with sorted keys.
    pub completed: u64,
    /// Completed via the quarantine rung (clean serial re-run).
    pub degraded: u64,
    /// Expired in queue past their deadline.
    pub timeouts: u64,
    /// Turned away: breaker open.
    pub breaker_rejected: u64,
    /// Turned away: token bucket empty.
    pub rate_limited: u64,
    /// Turned away: shed at the queue watermark.
    pub shed: u64,
    /// Turned away: hard queue capacity.
    pub queue_full: u64,
    /// Turned away: malformed request (wrong key count/unknown shape).
    pub invalid: u64,
    /// Terminal fault/internal errors after the ladder was exhausted.
    pub failed: u64,
    /// Queue-to-response latency of completed requests.
    pub latency: Histogram,
}

/// The service-wide metric state.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Per-tenant lifecycle counters (BTreeMap: deterministic export
    /// order).
    pub tenants: BTreeMap<u32, TenantStats>,
    /// Batches dispatched to the vertical tier.
    pub vertical_batches: u64,
    /// Batches dispatched to the kernel tier.
    pub kernel_batches: u64,
    /// Lanes that went through service-level retry at least once.
    pub retried_lanes: u64,
    /// Current queue depth (gauge).
    pub queue_depth: usize,
    /// Current breaker state code (gauge: 0 closed, 1 open, 2 half-open).
    pub breaker_state: u64,
    /// Lifetime breaker opens.
    pub breaker_opens: u64,
}

impl ServiceStats {
    /// The (created-on-first-touch) counters for `tenant`.
    pub fn tenant(&mut self, tenant: u32) -> &mut TenantStats {
        self.tenants.entry(tenant).or_default()
    }

    /// Sum of a per-tenant counter over all tenants.
    #[must_use]
    pub fn total<F: Fn(&TenantStats) -> u64>(&self, f: F) -> u64 {
        self.tenants.values().map(f).sum()
    }

    /// Export everything into `registry` under `pns_service_*` names.
    pub fn export_to(&self, registry: &mut Registry) {
        for (tenant, t) in &self.tenants {
            let tenant = tenant.to_string();
            let labeled: [(&str, &str, u64); 11] = [
                ("outcome", "submitted", t.submitted),
                ("outcome", "accepted", t.accepted),
                ("outcome", "completed", t.completed),
                ("outcome", "degraded", t.degraded),
                ("outcome", "timeout", t.timeouts),
                ("outcome", "breaker_rejected", t.breaker_rejected),
                ("outcome", "rate_limited", t.rate_limited),
                ("outcome", "shed", t.shed),
                ("outcome", "queue_full", t.queue_full),
                ("outcome", "invalid", t.invalid),
                ("outcome", "failed", t.failed),
            ];
            for (key, value, count) in labeled {
                registry.set_counter_with(
                    "pns_service_requests_total",
                    &[("tenant", &tenant), (key, value)],
                    count,
                );
            }
            registry.merge_histogram_with(
                "pns_service_latency_ns",
                &[("tenant", &tenant)],
                &t.latency,
            );
        }
        registry.set_counter("pns_service_vertical_batches_total", self.vertical_batches);
        registry.set_counter("pns_service_kernel_batches_total", self.kernel_batches);
        registry.set_counter("pns_service_retried_lanes_total", self.retried_lanes);
        registry.set_counter("pns_service_breaker_opens_total", self.breaker_opens);
        registry.set_gauge("pns_service_queue_depth", self.queue_depth as f64);
        #[allow(clippy::cast_precision_loss)]
        registry.set_gauge("pns_service_breaker_state", self.breaker_state as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_counters_and_histograms() {
        let mut stats = ServiceStats::default();
        let t = stats.tenant(7);
        t.submitted = 10;
        t.accepted = 8;
        t.completed = 6;
        t.shed = 2;
        t.latency.record(1_000);
        t.latency.record(2_000);
        stats.queue_depth = 3;
        stats.breaker_state = 1;
        stats.vertical_batches = 4;

        let mut registry = Registry::new();
        stats.export_to(&mut registry);
        assert_eq!(
            registry.counter("pns_service_vertical_batches_total"),
            Some(4)
        );
        assert_eq!(registry.gauge("pns_service_queue_depth"), Some(3.0));
        assert_eq!(registry.gauge("pns_service_breaker_state"), Some(1.0));
        let text = registry.prometheus_text();
        assert!(text.contains("pns_service_requests_total"), "{text}");
        assert!(text.contains("tenant=\"7\""), "{text}");
        assert!(text.contains("pns_service_latency_ns"), "{text}");
    }

    #[test]
    fn totals_aggregate_across_tenants() {
        let mut stats = ServiceStats::default();
        stats.tenant(1).completed = 5;
        stats.tenant(2).completed = 7;
        assert_eq!(stats.total(|t| t.completed), 12);
    }
}
