//! Circuit breaker over the executor's failure/quarantine rate.
//!
//! Classic closed → open → half-open automaton, fully deterministic:
//! every transition is a pure function of the recorded lane outcomes
//! and the explicit `now_ns` timestamps, so tests assert the exact
//! transition sequence with a [`ManualClock`](crate::ManualClock).
//!
//! * **Closed** — outcomes feed a sliding window of the last
//!   [`BreakerConfig::window`] lanes; once at least
//!   [`BreakerConfig::min_samples`] are in view and the failure share
//!   reaches [`BreakerConfig::trip_pct`], the breaker opens.
//! * **Open** — every admission is refused until
//!   [`BreakerConfig::cooldown_ns`] elapses, then the next admission
//!   check rolls into half-open.
//! * **Half-open** — up to [`BreakerConfig::probe_quota`] probe
//!   requests are admitted; one failure reopens (fresh cooldown),
//!   `probe_quota` successes close and reset the window.

/// Tuning for the [`Breaker`] automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding-window length in lane outcomes.
    pub window: usize,
    /// Minimum outcomes in view before the trip rule applies (so one
    /// early failure cannot open the breaker on a 100% rate).
    pub min_samples: usize,
    /// Failure percentage (0–100) that trips the breaker. `0` disables
    /// the breaker: it never leaves closed.
    pub trip_pct: u32,
    /// How long the breaker stays open before probing, in nanoseconds.
    pub cooldown_ns: u64,
    /// Probe admissions allowed in half-open before a verdict.
    pub probe_quota: u32,
}

impl Default for BreakerConfig {
    /// 64-outcome window, ≥16 samples, trip at 50% failures, 100ms
    /// cooldown, 4 probes.
    fn default() -> Self {
        BreakerConfig {
            window: 64,
            min_samples: 16,
            trip_pct: 50,
            cooldown_ns: 100_000_000,
            probe_quota: 4,
        }
    }
}

/// Which phase the automaton is in (exported as a gauge: 0/1/2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; outcomes feed the sliding window.
    Closed,
    /// Refusing admissions until the cooldown deadline.
    Open {
        /// Absolute time the cooldown ends.
        until_ns: u64,
    },
    /// Probing: a bounded number of requests test the waters.
    HalfOpen,
}

impl BreakerState {
    /// Numeric code for metrics: closed 0, open 1, half-open 2.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open { .. } => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// The deterministic breaker automaton.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Sliding outcome window: `true` = failure. Ring-buffered.
    outcomes: Vec<bool>,
    next_slot: usize,
    filled: usize,
    failures: usize,
    /// Half-open bookkeeping.
    probes_issued: u32,
    probe_successes: u32,
    /// Lifetime transition counter (for tests/metrics).
    opens: u64,
}

impl Breaker {
    /// A closed breaker with an empty window.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            state: BreakerState::Closed,
            outcomes: vec![false; config.window.max(1)],
            next_slot: 0,
            filled: 0,
            failures: 0,
            probes_issued: 0,
            probe_successes: 0,
            opens: 0,
        }
    }

    /// Current phase.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened over its lifetime.
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// May a request be admitted at `now_ns`? Rolls open → half-open
    /// when the cooldown has elapsed, and spends a probe slot while
    /// half-open — call exactly once per admission decision.
    pub fn admit(&mut self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open { until_ns } => {
                if now_ns < until_ns {
                    return false;
                }
                self.state = BreakerState::HalfOpen;
                self.probes_issued = 1;
                self.probe_successes = 0;
                true
            }
            BreakerState::HalfOpen => {
                if self.probes_issued < self.config.probe_quota {
                    self.probes_issued += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record one lane outcome at `now_ns` (`failed = true` for a
    /// quarantined, errored, or panicking lane).
    pub fn record(&mut self, failed: bool, now_ns: u64) {
        match self.state {
            BreakerState::Closed => {
                if self.filled == self.outcomes.len() {
                    if self.outcomes[self.next_slot] {
                        self.failures -= 1;
                    }
                } else {
                    self.filled += 1;
                }
                self.outcomes[self.next_slot] = failed;
                if failed {
                    self.failures += 1;
                }
                self.next_slot = (self.next_slot + 1) % self.outcomes.len();
                if self.config.trip_pct > 0
                    && self.filled >= self.config.min_samples.max(1)
                    && self.failures * 100 >= self.config.trip_pct as usize * self.filled
                {
                    self.trip(now_ns);
                }
            }
            BreakerState::HalfOpen => {
                if failed {
                    self.trip(now_ns);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.probe_quota {
                        self.state = BreakerState::Closed;
                        self.reset_window();
                    }
                }
            }
            // Outcomes completing while open belong to batches admitted
            // earlier; they carry no new signal for the cooldown.
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self, now_ns: u64) {
        self.state = BreakerState::Open {
            until_ns: now_ns.saturating_add(self.config.cooldown_ns),
        };
        self.opens += 1;
        self.reset_window();
    }

    fn reset_window(&mut self) {
        self.outcomes.fill(false);
        self.next_slot = 0;
        self.filled = 0;
        self.failures = 0;
        self.probes_issued = 0;
        self.probe_successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_pct: 50,
            cooldown_ns: 1_000,
            probe_quota: 2,
        }
    }

    #[test]
    fn closed_until_failure_rate_trips() {
        let mut b = Breaker::new(cfg());
        assert!(b.admit(0));
        // Three failures among four samples: 75% ≥ 50%, but only at the
        // fourth sample (min_samples).
        b.record(true, 0);
        b.record(true, 0);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.record(false, 0);
        b.record(true, 0);
        assert_eq!(b.state(), BreakerState::Open { until_ns: 1_000 });
        assert_eq!(b.opens(), 1);
        assert!(!b.admit(500), "cooldown holds");
    }

    #[test]
    fn open_rolls_to_half_open_then_closes_on_probe_successes() {
        let mut b = Breaker::new(cfg());
        for _ in 0..4 {
            b.record(true, 100);
        }
        assert_eq!(b.state(), BreakerState::Open { until_ns: 1_100 });
        assert!(!b.admit(1_099));
        assert!(b.admit(1_100), "cooldown elapsed: first probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit(1_100), "second probe within quota");
        assert!(!b.admit(1_100), "probe quota spent");
        b.record(false, 1_200);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(false, 1_200);
        assert_eq!(b.state(), BreakerState::Closed, "quota successes close");
    }

    #[test]
    fn half_open_failure_reopens_with_fresh_cooldown() {
        let mut b = Breaker::new(cfg());
        for _ in 0..4 {
            b.record(true, 0);
        }
        assert!(b.admit(2_000));
        b.record(true, 2_500);
        assert_eq!(b.state(), BreakerState::Open { until_ns: 3_500 });
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let mut b = Breaker::new(BreakerConfig {
            trip_pct: 0,
            ..cfg()
        });
        for _ in 0..100 {
            b.record(true, 0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(0));
    }

    #[test]
    fn window_slides_old_failures_out() {
        let mut b = Breaker::new(cfg());
        b.record(true, 0);
        // Eight successes slide the failure out of the 8-slot window.
        for _ in 0..8 {
            b.record(false, 0);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // A fresh failure is 1 of the last 8 (12.5% < 50%): closed.
        b.record(true, 0);
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
