//! The deterministic service core: bounded intake, admission control,
//! and the deadline-driven batch coalescer.
//!
//! Everything time-dependent takes an explicit `now_ns`, and nothing in
//! here spawns a thread or touches a real clock — the core is a state
//! machine the threaded front-end ([`crate::SortService`]) drives under
//! a lock, and tests drive directly with hand-picked timestamps. One
//! `submit` walks the admission pipeline in a fixed order (shape check →
//! breaker → tenant token bucket → shed watermark → hard capacity), so
//! a rejected request maps to exactly one typed [`RejectReason`] and
//! one metric. The hard capacity is checked before the shed watermark,
//! so [`RejectReason::QueueFull`] marks the absolute bound and
//! [`RejectReason::LoadShed`] the band beneath it.
//!
//! Coalescing: requests queue FIFO per registered shape. A shape group
//! becomes *due* when it holds [`ServiceConfig::max_batch_lanes`]
//! requests (a full batch amortizes best) or when its oldest request
//! has waited [`ServiceConfig::coalesce_budget_ns`] (the latency
//! budget). [`ServiceCore::poll`] releases the due group with the
//! oldest head first, so no shape starves behind a busier one, and
//! batches always drain from the front — FIFO within a group.

use crate::admission::{RateLimit, TokenBucket};
use crate::breaker::{Breaker, BreakerConfig};
use crate::error::{RejectReason, ServiceError};
use crate::stats::ServiceStats;
use pns_fault::RetryPolicy;
use std::collections::{HashMap, VecDeque};

/// Tuning for the service core and its threaded front-end.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Hard cap on total queued requests across all shapes; submissions
    /// beyond it are [`RejectReason::QueueFull`]. The queue can never
    /// grow past this — bounded by construction.
    pub queue_capacity: usize,
    /// Queue depth at which global load shedding starts
    /// ([`RejectReason::LoadShed`]). `0` disables shedding (only the
    /// hard capacity rejects).
    pub shed_watermark: usize,
    /// Latency budget: a shape group is released to the executor once
    /// its oldest request has waited this long, full batch or not.
    pub coalesce_budget_ns: u64,
    /// Most lanes one batch may carry (and the group size that makes a
    /// batch due immediately).
    pub max_batch_lanes: usize,
    /// Queue deadline: a request not picked into a batch within this
    /// window expires with a typed [`ServiceError::Timeout`].
    pub request_timeout_ns: u64,
    /// Per-tenant token-bucket limits (uniform across tenants).
    pub rate_limit: RateLimit,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Service-level retry attempts per lane (rung 3 of the degradation
    /// ladder), on top of the executor's in-run checkpoint retries.
    pub service_retries: u32,
    /// Backoff schedule for those service-level retries
    /// ([`RetryPolicy::backoff_ns`]; also the in-run retry policy).
    pub retry_policy: RetryPolicy,
    /// Worker threads the front-end spawns.
    pub workers: usize,
}

impl Default for ServiceConfig {
    /// 4096-deep queue shedding at 3072, 1 ms coalesce budget, 256-lane
    /// batches, 250 ms deadline, no tenant rate limit, default breaker,
    /// 2 service retries with 100 µs/10 ms backoff, 2 workers.
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 4096,
            shed_watermark: 3072,
            coalesce_budget_ns: 1_000_000,
            max_batch_lanes: 256,
            request_timeout_ns: 250_000_000,
            rate_limit: RateLimit::default(),
            breaker: BreakerConfig::default(),
            service_retries: 2,
            retry_policy: RetryPolicy::default().with_backoff(100_000, 10_000_000, 0x5e47_1ce5),
            workers: 2,
        }
    }
}

/// What a registered shape expects of its requests.
#[derive(Debug, Clone, Copy)]
pub struct ShapeSpec {
    /// Keys per request (one per node: `N^r`).
    pub expected_keys: u64,
}

/// One admitted request waiting in (or drained from) the queue.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Service-assigned request id (unique per core).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// The keys to sort.
    pub keys: Vec<u64>,
    /// Admission timestamp.
    pub enqueued_ns: u64,
}

/// A coalesced batch ready for the executor.
#[derive(Debug)]
pub struct Batch {
    /// Which registered shape the lanes share.
    pub shape: usize,
    /// The lanes, oldest first.
    pub entries: Vec<Pending>,
}

/// What [`ServiceCore::poll`] found.
#[derive(Debug)]
pub enum Poll {
    /// A batch is due; execute it.
    Ready(Batch),
    /// Nothing due before this absolute time (re-poll then, or when a
    /// new request arrives).
    Wait(u64),
    /// The queue is empty.
    Idle,
}

/// How one lane of a batch ended, reported back via
/// [`ServiceCore::complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneVerdict {
    /// Sorted. `degraded` marks the quarantine rung (clean serial
    /// re-run); `retried` marks service-level retries before success.
    Sorted {
        /// Went through the quarantine rung.
        degraded: bool,
        /// Needed at least one service-level retry.
        retried: bool,
    },
    /// Terminal failure (typed error went back to the caller).
    Failed,
}

/// The deterministic admission + coalescing state machine.
#[derive(Debug)]
pub struct ServiceCore {
    config: ServiceConfig,
    shapes: Vec<ShapeSpec>,
    /// FIFO queue per shape.
    groups: Vec<VecDeque<Pending>>,
    depth: usize,
    next_id: u64,
    buckets: HashMap<u32, TokenBucket>,
    breaker: Breaker,
    /// Lifecycle counters and histograms (exported via
    /// [`ServiceStats::export_to`]).
    pub stats: ServiceStats,
}

impl ServiceCore {
    /// A core accepting requests for `shapes`.
    #[must_use]
    pub fn new(config: ServiceConfig, shapes: Vec<ShapeSpec>) -> Self {
        let groups = shapes.iter().map(|_| VecDeque::new()).collect();
        ServiceCore {
            breaker: Breaker::new(config.breaker),
            config,
            shapes,
            groups,
            depth: 0,
            next_id: 0,
            buckets: HashMap::new(),
            stats: ServiceStats::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Total requests currently queued.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current breaker state (for gauges/tests).
    #[must_use]
    pub fn breaker_state(&self) -> crate::breaker::BreakerState {
        self.breaker.state()
    }

    /// Walk the admission pipeline and enqueue on success, returning
    /// the assigned request id. Each failure is one typed
    /// [`RejectReason`] — the request never partially enters the queue.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] with the rung that turned it away.
    pub fn submit(
        &mut self,
        tenant: u32,
        shape: usize,
        keys: Vec<u64>,
        now_ns: u64,
    ) -> Result<u64, ServiceError> {
        self.stats.tenant(tenant).submitted += 1;
        let Some(spec) = self.shapes.get(shape) else {
            self.stats.tenant(tenant).invalid += 1;
            return Err(RejectReason::UnknownShape { shape }.into());
        };
        if keys.len() as u64 != spec.expected_keys {
            self.stats.tenant(tenant).invalid += 1;
            return Err(RejectReason::InvalidRequest {
                expected: spec.expected_keys,
                got: keys.len(),
            }
            .into());
        }
        if !self.breaker.admit(now_ns) {
            self.stats.tenant(tenant).breaker_rejected += 1;
            self.sync_gauges();
            return Err(RejectReason::BreakerOpen.into());
        }
        let limit = self.config.rate_limit;
        let bucket = self
            .buckets
            .entry(tenant)
            .or_insert_with(|| TokenBucket::new(limit, now_ns));
        if !bucket.try_admit(limit, now_ns) {
            self.stats.tenant(tenant).rate_limited += 1;
            return Err(RejectReason::RateLimited { tenant }.into());
        }
        if self.depth >= self.config.queue_capacity {
            self.stats.tenant(tenant).queue_full += 1;
            return Err(RejectReason::QueueFull {
                capacity: self.config.queue_capacity,
            }
            .into());
        }
        if self.config.shed_watermark > 0 && self.depth >= self.config.shed_watermark {
            self.stats.tenant(tenant).shed += 1;
            return Err(RejectReason::LoadShed { depth: self.depth }.into());
        }
        let id = self.next_id;
        self.next_id += 1;
        self.groups[shape].push_back(Pending {
            id,
            tenant,
            keys,
            enqueued_ns: now_ns,
        });
        self.depth += 1;
        self.stats.tenant(tenant).accepted += 1;
        self.sync_gauges();
        Ok(id)
    }

    /// Drain every queued request whose deadline has passed. Call
    /// before [`ServiceCore::poll`] so expired requests get their typed
    /// [`ServiceError::Timeout`] instead of riding a late batch.
    /// Returns the expired entries (oldest first per shape) for the
    /// caller to answer.
    pub fn take_expired(&mut self, now_ns: u64) -> Vec<Pending> {
        let timeout = self.config.request_timeout_ns;
        let mut expired = Vec::new();
        for group in &mut self.groups {
            while let Some(p) = group
                .front()
                .is_some_and(|p| now_ns.saturating_sub(p.enqueued_ns) >= timeout)
                .then(|| group.pop_front())
                .flatten()
            {
                self.depth -= 1;
                self.stats.tenant(p.tenant).timeouts += 1;
                expired.push(p);
            }
        }
        if !expired.is_empty() {
            self.sync_gauges();
        }
        expired
    }

    /// Release the most overdue due batch, or say when to come back.
    /// FIFO per shape; among due shapes the oldest head wins, so no
    /// shape starves behind a busier one.
    pub fn poll(&mut self, now_ns: u64) -> Poll {
        let budget = self.config.coalesce_budget_ns;
        let cap = self.config.max_batch_lanes.max(1);
        let mut due: Option<(usize, u64)> = None; // (shape, head enqueue time)
        let mut next_wake: Option<u64> = None;
        for (shape, group) in self.groups.iter().enumerate() {
            let Some(head) = group.front() else { continue };
            if group.len() >= cap || now_ns.saturating_sub(head.enqueued_ns) >= budget {
                if due.is_none_or(|(_, t)| head.enqueued_ns < t) {
                    due = Some((shape, head.enqueued_ns));
                }
            } else {
                let wake = head.enqueued_ns.saturating_add(budget);
                if next_wake.is_none_or(|w| wake < w) {
                    next_wake = Some(wake);
                }
            }
        }
        if let Some((shape, _)) = due {
            let group = &mut self.groups[shape];
            let take = group.len().min(cap);
            let entries: Vec<Pending> = group.drain(..take).collect();
            self.depth -= entries.len();
            self.sync_gauges();
            return Poll::Ready(Batch { shape, entries });
        }
        match next_wake {
            Some(w) => Poll::Wait(w),
            None => Poll::Idle,
        }
    }

    /// Record one executed lane's outcome: latency + lifecycle counters
    /// for the tenant, and a success/failure sample for the breaker.
    pub fn complete(&mut self, lane: &Pending, verdict: LaneVerdict, now_ns: u64) {
        let waited = now_ns.saturating_sub(lane.enqueued_ns);
        let failed = match verdict {
            LaneVerdict::Sorted { degraded, retried } => {
                let t = self.stats.tenant(lane.tenant);
                t.completed += 1;
                t.latency.record(waited);
                if degraded {
                    t.degraded += 1;
                }
                if retried {
                    self.stats.retried_lanes += 1;
                }
                degraded
            }
            LaneVerdict::Failed => {
                self.stats.tenant(lane.tenant).failed += 1;
                true
            }
        };
        self.breaker.record(failed, now_ns);
        self.sync_gauges();
    }

    /// Note which tier a dispatched batch ran on (for the tier mix
    /// counters).
    pub fn note_batch(&mut self, vertical: bool) {
        if vertical {
            self.stats.vertical_batches += 1;
        } else {
            self.stats.kernel_batches += 1;
        }
    }

    /// Drain *everything* still queued (for shutdown): the entries are
    /// returned so the caller can answer them with
    /// [`RejectReason::Shutdown`].
    pub fn drain_all(&mut self) -> Vec<Pending> {
        let mut all = Vec::with_capacity(self.depth);
        for group in &mut self.groups {
            all.extend(group.drain(..));
        }
        self.depth = 0;
        self.sync_gauges();
        all
    }

    fn sync_gauges(&mut self) {
        self.stats.queue_depth = self.depth;
        self.stats.breaker_state = self.breaker.state().code();
        self.stats.breaker_opens = self.breaker.opens();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;

    fn core(config: ServiceConfig) -> ServiceCore {
        ServiceCore::new(config, vec![ShapeSpec { expected_keys: 4 }])
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 4,
            shed_watermark: 3,
            coalesce_budget_ns: 1_000,
            max_batch_lanes: 2,
            request_timeout_ns: 10_000,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn admission_pipeline_rejects_with_one_typed_reason_each() {
        let mut c = core(tiny_config());
        assert!(matches!(
            c.submit(0, 9, vec![1, 2, 3, 4], 0),
            Err(ServiceError::Rejected(RejectReason::UnknownShape {
                shape: 9
            }))
        ));
        assert!(matches!(
            c.submit(0, 0, vec![1], 0),
            Err(ServiceError::Rejected(RejectReason::InvalidRequest {
                expected: 4,
                got: 1
            }))
        ));
        // Fill to the watermark, then shed.
        for _ in 0..3 {
            c.submit(0, 0, vec![1, 2, 3, 4], 0).expect("admitted");
        }
        assert!(matches!(
            c.submit(0, 0, vec![1, 2, 3, 4], 0),
            Err(ServiceError::Rejected(RejectReason::LoadShed { depth: 3 }))
        ));
        assert_eq!(c.depth(), 3);
        assert_eq!(c.stats.tenant(0).shed, 1);
        assert_eq!(c.stats.tenant(0).accepted, 3);
    }

    #[test]
    fn hard_capacity_bounds_the_queue() {
        let mut c = core(ServiceConfig {
            shed_watermark: 0, // shedding off: reach the hard cap
            ..tiny_config()
        });
        for _ in 0..4 {
            c.submit(0, 0, vec![1, 2, 3, 4], 0).expect("admitted");
        }
        assert!(matches!(
            c.submit(0, 0, vec![1, 2, 3, 4], 0),
            Err(ServiceError::Rejected(RejectReason::QueueFull {
                capacity: 4
            }))
        ));
        assert_eq!(c.depth(), 4, "never exceeds capacity");
    }

    #[test]
    fn coalescer_waits_for_budget_then_releases_fifo() {
        let mut c = core(tiny_config());
        let a = c.submit(0, 0, vec![1, 2, 3, 4], 100).expect("a");
        assert!(
            matches!(c.poll(100), Poll::Wait(1_100)),
            "not due until the budget elapses"
        );
        let b = c.submit(1, 0, vec![4, 3, 2, 1], 600).expect("b");
        match c.poll(1_100) {
            Poll::Ready(batch) => {
                assert_eq!(batch.shape, 0);
                let ids: Vec<u64> = batch.entries.iter().map(|p| p.id).collect();
                assert_eq!(ids, vec![a, b], "FIFO within the group");
            }
            other => panic!("expected a due batch, got {other:?}"),
        }
        assert!(matches!(c.poll(1_100), Poll::Idle));
    }

    #[test]
    fn full_group_is_due_immediately_and_respects_the_lane_cap() {
        let mut c = core(tiny_config());
        for _ in 0..3 {
            c.submit(0, 0, vec![1, 2, 3, 4], 0).expect("admitted");
        }
        match c.poll(0) {
            Poll::Ready(batch) => assert_eq!(batch.entries.len(), 2, "lane cap"),
            other => panic!("full group must be due, got {other:?}"),
        }
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn expiry_surfaces_timeouts_before_batches() {
        let mut c = core(tiny_config());
        c.submit(0, 0, vec![1, 2, 3, 4], 0).expect("admitted");
        assert!(c.take_expired(9_999).is_empty());
        let expired = c.take_expired(10_000);
        assert_eq!(expired.len(), 1);
        assert_eq!(c.depth(), 0);
        assert_eq!(c.stats.tenant(0).timeouts, 1);
        assert!(matches!(c.poll(10_000), Poll::Idle));
    }

    #[test]
    fn completions_feed_latency_and_the_breaker() {
        let mut c = core(ServiceConfig {
            breaker: BreakerConfig {
                window: 4,
                min_samples: 2,
                trip_pct: 50,
                cooldown_ns: 5_000,
                probe_quota: 1,
            },
            ..tiny_config()
        });
        let lane = Pending {
            id: 0,
            tenant: 3,
            keys: vec![],
            enqueued_ns: 1_000,
        };
        c.complete(
            &lane,
            LaneVerdict::Sorted {
                degraded: false,
                retried: false,
            },
            3_000,
        );
        assert_eq!(c.stats.tenant(3).completed, 1);
        assert_eq!(c.stats.tenant(3).latency.count(), 1);
        assert_eq!(c.stats.tenant(3).latency.max_ns(), 2_000);
        // One degraded lane among two samples (50% ≥ 50%) trips the
        // breaker at its completion time.
        c.complete(
            &lane,
            LaneVerdict::Sorted {
                degraded: true,
                retried: true,
            },
            4_000,
        );
        assert_eq!(c.breaker_state(), BreakerState::Open { until_ns: 9_000 });
        // A straggler completing while open carries no new signal.
        c.complete(&lane, LaneVerdict::Failed, 4_500);
        assert_eq!(c.breaker_state(), BreakerState::Open { until_ns: 9_000 });
        assert!(matches!(
            c.submit(3, 0, vec![1, 2, 3, 4], 5_000),
            Err(ServiceError::Rejected(RejectReason::BreakerOpen))
        ));
        assert_eq!(c.stats.breaker_state, 1);
        assert_eq!(c.stats.breaker_opens, 1);
        assert_eq!(c.stats.retried_lanes, 1);
    }

    #[test]
    fn drain_all_empties_every_group() {
        let mut c = core(tiny_config());
        c.submit(0, 0, vec![1, 2, 3, 4], 0).expect("admitted");
        c.submit(1, 0, vec![1, 2, 3, 4], 0).expect("admitted");
        let drained = c.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(c.depth(), 0);
    }
}
