//! Typed service outcomes: every request ends in a sorted response or
//! in exactly one of these errors — never a panic, never silence.

use pns_simulator::FaultError;
use std::fmt;

/// Why an admission decision turned a request away. Each variant maps
/// to one rung of the admission pipeline, in the order the checks run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The request's key vector does not match the registered shape.
    InvalidRequest {
        /// Keys the shape requires (one per node).
        expected: u64,
        /// Keys actually supplied.
        got: usize,
    },
    /// The request named a shape the service has not registered.
    UnknownShape {
        /// The offending shape id.
        shape: usize,
    },
    /// The circuit breaker is open: the executor's recent
    /// failure/quarantine rate tripped it and the cooldown has not
    /// elapsed (or a half-open probe quota is exhausted).
    BreakerOpen,
    /// The tenant's token bucket is empty — it exceeded its configured
    /// sustained rate plus burst.
    RateLimited {
        /// The throttled tenant.
        tenant: u32,
    },
    /// Global load shedding: total queue depth crossed the shed
    /// watermark, so new work is turned away before the hard cap.
    LoadShed {
        /// Queue depth at the moment of the decision.
        depth: usize,
    },
    /// The bounded intake queue is at its hard capacity.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The service is shutting down and accepts no new work.
    Shutdown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::InvalidRequest { expected, got } => {
                write!(f, "expected {expected} keys (one per node), got {got}")
            }
            RejectReason::UnknownShape { shape } => write!(f, "unknown shape id {shape}"),
            RejectReason::BreakerOpen => write!(f, "circuit breaker open"),
            RejectReason::RateLimited { tenant } => write!(f, "tenant {tenant} rate limited"),
            RejectReason::LoadShed { depth } => {
                write!(f, "load shedding at queue depth {depth}")
            }
            RejectReason::QueueFull { capacity } => {
                write!(f, "intake queue full (capacity {capacity})")
            }
            RejectReason::Shutdown => write!(f, "service shutting down"),
        }
    }
}

/// The typed terminal states of an unsuccessful request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Turned away at admission; the request never entered the queue.
    Rejected(RejectReason),
    /// Admitted, but its deadline passed before a batch picked it up.
    Timeout {
        /// How long it waited before expiring, in nanoseconds.
        waited_ns: u64,
    },
    /// The executor surfaced a fault-tolerance error the degradation
    /// ladder could not absorb.
    Fault(FaultError),
    /// A service invariant broke (e.g. an executor panicked and was
    /// contained by the `catch_unwind` boundary). Typed, not a panic.
    Internal(&'static str),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ServiceError::Timeout { waited_ns } => {
                write!(f, "timed out after {waited_ns} ns in queue")
            }
            ServiceError::Fault(e) => write!(f, "fault tolerance exhausted: {e}"),
            ServiceError::Internal(what) => write!(f, "internal service error: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RejectReason> for ServiceError {
    fn from(reason: RejectReason) -> Self {
        ServiceError::Rejected(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServiceError::Rejected(RejectReason::QueueFull { capacity: 8 });
        assert!(e.to_string().contains("capacity 8"));
        let t = ServiceError::Timeout { waited_ns: 42 };
        assert!(t.to_string().contains("42"));
        assert!(ServiceError::Internal("boom").to_string().contains("boom"));
        for r in [
            RejectReason::BreakerOpen,
            RejectReason::RateLimited { tenant: 3 },
            RejectReason::LoadShed { depth: 9 },
            RejectReason::Shutdown,
            RejectReason::UnknownShape { shape: 1 },
            RejectReason::InvalidRequest {
                expected: 9,
                got: 2,
            },
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
