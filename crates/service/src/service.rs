//! The threaded sorting service: workers, tickets, the degradation
//! ladder, and the in-process transport.
//!
//! [`SortService`] wraps the deterministic [`ServiceCore`] in a
//! `Mutex` + `Condvar`, spawns [`ServiceConfig::workers`] executor
//! threads, and answers each admitted request through a single-use
//! [`Ticket`]. Submission is the [`Transport`] trait — in-process here;
//! a network RPC front-end bolts on by implementing the same trait over
//! a wire format (the container this grows in has no sockets, so the
//! trait is the seam).
//!
//! # Degradation ladder
//!
//! A batch walks down, never up:
//!
//! 1. **Vertical tier** — ≥ [`VERTICAL_MIN_LANES`] clean lanes run
//!    bit-sliced lockstep ([`BspMachine::run_vertical_batch`]).
//! 2. **Kernel tier** — smaller clean batches run the flat kernel
//!    ([`BspMachine::run_kernel_batch`]); fault-plan-enabled lanes run
//!    [`BspMachine::run_kernel_with_faults`], whose in-run
//!    checkpoint/retry absorbs transient faults.
//! 3. **Service-level retry** — a lane that exhausts in-run retries is
//!    re-executed from its original input under a *re-forked* fault
//!    plan, after a capped-exponential deterministically-jittered
//!    backoff ([`RetryPolicy::backoff_ns`]), up to
//!    [`ServiceConfig::service_retries`] times.
//! 4. **Serial quarantined lane** — still failing, the lane runs clean
//!    (injection off) and serially; the response is marked `degraded`.
//! 5. **Shed with a typed error** — nothing below this rung: requests
//!    that cannot even be admitted got their typed
//!    [`ServiceError::Rejected`]/[`ServiceError::Timeout`] upstream,
//!    and an executor panic is contained by `catch_unwind` into
//!    [`ServiceError::Internal`]. The service never panics a caller.

use crate::clock::{Clock, SystemClock};
use crate::core::{LaneVerdict, Pending, Poll as CorePoll, ServiceConfig, ServiceCore, ShapeSpec};
use crate::error::{RejectReason, ServiceError};
use crate::stats::ServiceStats;
use pns_fault::FaultPlan;
use pns_graph::Graph;
use pns_obs::Registry;
use pns_simulator::bsp::{compile, BspMachine, CompiledProgram};
use pns_simulator::kernel::{ExecScratch, KernelProgram, ScratchPool};
use pns_simulator::select::SorterChoice;
use pns_simulator::vertical::{VerticalPool, VerticalProgram, VERTICAL_MIN_LANES};
use pns_simulator::FaultError;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// A sorted answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortResponse {
    /// The keys, sorted into snake order over the shape's node ranks.
    pub keys: Vec<u64>,
    /// `true` if the lane fell to the quarantine rung (clean serial
    /// re-run) — correct output, degraded service.
    pub degraded: bool,
    /// Executions the lane took (1 = first try).
    pub attempts: u32,
}

/// One request's reply slot. Single-use: `wait` consumes the ticket.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<SortResponse, ServiceError>>,
}

impl Ticket {
    /// Block until the request resolves. A service that died without
    /// answering yields a typed internal error, not a hang or panic.
    pub fn wait(self) -> Result<SortResponse, ServiceError> {
        self.rx
            .recv()
            .unwrap_or(Err(ServiceError::Internal("service dropped the request")))
    }

    /// Like [`Ticket::wait`] with a wall-clock bound; `None` means the
    /// bound elapsed first (the request is still in flight).
    pub fn wait_for(&self, timeout: Duration) -> Option<Result<SortResponse, ServiceError>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// How requests reach the service. The in-process implementation is
/// [`SortService`]; a network RPC front-end implements the same trait
/// over its wire format.
pub trait Transport: Send + Sync {
    /// Submit `keys` for sorting on registered shape `shape` on behalf
    /// of `tenant`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] when admission turns the request away.
    fn submit(&self, tenant: u32, shape: usize, keys: Vec<u64>) -> Result<Ticket, ServiceError>;
}

/// Compiled artifacts for one registered shape, shared by all workers.
struct RegisteredShape {
    factor: Graph,
    r: usize,
    /// Display name of the `PG_2` sorter this shape compiled under.
    sorter: &'static str,
    kernel: Arc<KernelProgram>,
    vertical: Arc<VerticalProgram>,
}

/// Builder: register shapes, pick a clock and a fault plan, start.
pub struct ServiceBuilder {
    config: ServiceConfig,
    clock: Arc<dyn Clock>,
    plan: FaultPlan,
    sorter: SorterChoice,
    shapes: Vec<RegisteredShape>,
}

impl ServiceBuilder {
    /// A builder with `config`, the system clock, and faults disabled.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        ServiceBuilder {
            config,
            clock: Arc::new(SystemClock::new()),
            plan: FaultPlan::disabled(),
            sorter: SorterChoice::Auto,
            shapes: Vec::new(),
        }
    }

    /// Use `clock` for every time-dependent decision.
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Inject faults per `plan` (forked per request and per service
    /// retry attempt, so every execution draws fresh decisions).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Pick the `PG_2` base sorter for shapes registered **after** this
    /// call. The default, [`SorterChoice::Auto`], scores every candidate
    /// per shape with routing-aware executed steps and compiles the
    /// winner — dense factors get the shallow multiway n-sorter, sparse
    /// ones keep adjacent-comparator schedules.
    #[must_use]
    pub fn sorter(mut self, choice: SorterChoice) -> Self {
        self.sorter = choice;
        self
    }

    /// Register the product network `factor^r` and compile its tiered
    /// programs once; requests reference the returned shape id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] with
    /// [`RejectReason::InvalidRequest`]-class reasons when the factor is
    /// unusable (disconnected, or lowering fails) — configuration
    /// errors are typed, not panics.
    pub fn register_shape(mut self, factor: &Graph, r: usize) -> Result<Self, ServiceError> {
        if !pns_graph::is_connected(factor) {
            return Err(ServiceError::Internal("factor graph must be connected"));
        }
        // Compilation is infallible for connected factors; the
        // catch_unwind is the configuration-time never-panic backstop.
        let choice = self.sorter;
        let artifacts = catch_unwind(AssertUnwindSafe(|| {
            let sorter = choice.resolve(factor);
            let program: CompiledProgram = compile(factor, r, sorter);
            let machine = BspMachine::new(factor, r);
            let kernel = Arc::new(machine.lower(&program)?);
            let vertical = Arc::new(VerticalProgram::lower(Arc::clone(&kernel)));
            Ok::<_, pns_simulator::bsp::ProgramError>((sorter.name(), kernel, vertical))
        }))
        .map_err(|_| ServiceError::Internal("shape compilation panicked"))?;
        let (sorter, kernel, vertical) =
            artifacts.map_err(|_| ServiceError::Internal("shape failed to lower"))?;
        self.shapes.push(RegisteredShape {
            factor: factor.clone(),
            r,
            sorter,
            kernel,
            vertical,
        });
        Ok(self)
    }

    /// Spawn the workers and open for business.
    #[must_use]
    pub fn start(self) -> SortService {
        let specs: Vec<ShapeSpec> = self
            .shapes
            .iter()
            .map(|s| ShapeSpec {
                expected_keys: s.kernel.shape().len(),
            })
            .collect();
        let workers = self.config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                core: ServiceCore::new(self.config, specs),
                responders: HashMap::new(),
            }),
            cv: Condvar::new(),
            clock: self.clock,
            plan: self.plan,
            shapes: self.shapes,
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        SortService {
            shared,
            workers: Some(handles),
        }
    }
}

type Responder = SyncSender<Result<SortResponse, ServiceError>>;

struct State {
    core: ServiceCore,
    responders: HashMap<u64, Responder>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    clock: Arc<dyn Clock>,
    plan: FaultPlan,
    shapes: Vec<RegisteredShape>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Lock the state, recovering from poison: the state is a queue of
    /// owned values plus counters, never left torn by a panicking
    /// holder (executors run outside the lock behind `catch_unwind`).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The in-process sorting service. Submit through [`Transport::submit`]
/// (or the inherent method), read metrics through
/// [`SortService::export_metrics`], and drop (or
/// [`SortService::shutdown`]) to stop: queued requests are answered
/// with [`RejectReason::Shutdown`], workers join, nothing leaks.
pub struct SortService {
    shared: Arc<Shared>,
    workers: Option<Vec<JoinHandle<()>>>,
}

impl SortService {
    /// Start building a service.
    #[must_use]
    pub fn builder(config: ServiceConfig) -> ServiceBuilder {
        ServiceBuilder::new(config)
    }

    /// The display name of the `PG_2` sorter shape `shape` compiled
    /// under (auto-selection makes this per-shape; useful for
    /// dashboards and tests).
    #[must_use]
    pub fn shape_sorter(&self, shape: usize) -> Option<&'static str> {
        self.shared.shapes.get(shape).map(|s| s.sorter)
    }

    /// Submit a request (see [`Transport::submit`]).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] when admission turns the request
    /// away; the typed reason names the rung.
    pub fn submit(
        &self,
        tenant: u32,
        shape: usize,
        keys: Vec<u64>,
    ) -> Result<Ticket, ServiceError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(RejectReason::Shutdown.into());
        }
        let now = self.shared.clock.now_ns();
        let mut state = self.shared.lock();
        let id = state.core.submit(tenant, shape, keys, now)?;
        let (tx, rx) = sync_channel(1);
        state.responders.insert(id, tx);
        drop(state);
        self.shared.cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Snapshot the service metrics.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.shared.lock().core.stats.clone()
    }

    /// Export the current metrics into `registry` (see
    /// [`ServiceStats::export_to`]).
    pub fn export_metrics(&self, registry: &mut Registry) {
        self.shared.lock().core.stats.export_to(registry);
    }

    /// Stop accepting work, answer everything queued with
    /// [`RejectReason::Shutdown`], and join the workers. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(handles) = self.workers.take() {
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Transport for SortService {
    fn submit(&self, tenant: u32, shape: usize, keys: Vec<u64>) -> Result<Ticket, ServiceError> {
        SortService::submit(self, tenant, shape, keys)
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-worker scratch: one machine per shape (the `EventLogger` inside
/// is thread-local, so machines are per-thread), plus reusable pools.
struct WorkerCtx {
    machines: Vec<BspMachine>,
    scratch_pool: ScratchPool<u64>,
    vertical_pool: VerticalPool<u64>,
    exec_scratch: ExecScratch<u64>,
}

fn worker_loop(shared: &Shared) {
    let mut ctx = WorkerCtx {
        machines: shared
            .shapes
            .iter()
            .map(|s| BspMachine::new(&s.factor, s.r))
            .collect(),
        scratch_pool: ScratchPool::new(),
        vertical_pool: VerticalPool::new(),
        exec_scratch: ExecScratch::new(),
    };
    loop {
        let mut state = shared.lock();
        let now = shared.clock.now_ns();

        // Deadline sweep first: expired requests get their typed
        // Timeout before any batch forms.
        let expired = state.core.take_expired(now);
        if !expired.is_empty() {
            let mut replies = Vec::with_capacity(expired.len());
            for p in expired {
                if let Some(tx) = state.responders.remove(&p.id) {
                    replies.push((
                        tx,
                        Err(ServiceError::Timeout {
                            waited_ns: now.saturating_sub(p.enqueued_ns),
                        }),
                    ));
                }
            }
            drop(state);
            for (tx, reply) in replies {
                let _ = tx.try_send(reply);
            }
            continue;
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            let drained = state.core.drain_all();
            let mut replies = Vec::with_capacity(drained.len());
            for p in drained {
                if let Some(tx) = state.responders.remove(&p.id) {
                    replies.push(tx);
                }
            }
            drop(state);
            for tx in replies {
                let _ = tx.try_send(Err(RejectReason::Shutdown.into()));
            }
            return;
        }

        match state.core.poll(now) {
            CorePoll::Ready(batch) => {
                let shape = batch.shape;
                drop(state);
                let outcomes = execute_batch(shared, &mut ctx, shape, batch.entries);
                let done = shared.clock.now_ns();
                let mut state = shared.lock();
                let mut replies = Vec::with_capacity(outcomes.len());
                for (lane, verdict, reply) in outcomes {
                    state.core.complete(&lane, verdict, done);
                    if let Some(tx) = state.responders.remove(&lane.id) {
                        replies.push((tx, reply));
                    }
                }
                drop(state);
                for (tx, reply) in replies {
                    let _ = tx.try_send(reply);
                }
            }
            CorePoll::Wait(wake_ns) => {
                // Bounded block: wake at the coalescing deadline, on a
                // new submission, or shortly regardless (manual clocks
                // advance without notifying the condvar).
                let wait = wake_ns.saturating_sub(now).clamp(10_000, 5_000_000);
                let (guard, _) = shared
                    .cv
                    .wait_timeout(state, Duration::from_nanos(wait))
                    .unwrap_or_else(PoisonError::into_inner);
                drop(guard);
            }
            CorePoll::Idle => {
                let (guard, _) = shared
                    .cv
                    .wait_timeout(state, Duration::from_millis(20))
                    .unwrap_or_else(PoisonError::into_inner);
                drop(guard);
            }
        }
    }
}

type LaneOutcome = (Pending, LaneVerdict, Result<SortResponse, ServiceError>);

/// Run one coalesced batch down the degradation ladder. Never panics a
/// caller: compute runs behind `catch_unwind` with the request
/// identities held *outside* the closure, so a contained panic still
/// answers every lane with a typed internal error (counted as a
/// failure by the breaker) instead of stranding its ticket.
fn execute_batch(
    shared: &Shared,
    ctx: &mut WorkerCtx,
    shape: usize,
    mut entries: Vec<Pending>,
) -> Vec<LaneOutcome> {
    let Some((registered, machine)) = shared.shapes.get(shape).zip(ctx.machines.get(shape)) else {
        // Unknown shape past admission: answer every lane, typed.
        return entries
            .into_iter()
            .map(|p| {
                (
                    p,
                    LaneVerdict::Failed,
                    Err(ServiceError::Internal("batch for unregistered shape")),
                )
            })
            .collect();
    };
    let (policy, service_retries) = {
        let state = shared.lock();
        let config = state.core.config();
        (config.retry_policy, config.service_retries)
    };

    if !shared.plan.is_enabled() {
        // Clean fast path: rungs 1–2 (vertical for wide batches, kernel
        // otherwise). Keys move into the closure; identities stay out.
        let mut batch: Vec<Vec<u64>> = entries
            .iter_mut()
            .map(|p| std::mem::take(&mut p.keys))
            .collect();
        let vertical = batch.len() >= VERTICAL_MIN_LANES;
        let sorted = catch_unwind(AssertUnwindSafe(|| {
            if vertical {
                machine.run_vertical_batch(
                    &mut batch,
                    &registered.vertical,
                    &mut ctx.vertical_pool,
                );
            } else {
                machine.run_kernel_batch(&mut batch, &registered.kernel, &mut ctx.scratch_pool);
            }
            batch
        }))
        .ok();
        {
            let mut state = shared.lock();
            state.core.note_batch(vertical);
        }
        return match sorted {
            Some(batch) => entries
                .into_iter()
                .zip(batch)
                .map(|(p, keys)| {
                    (
                        p,
                        LaneVerdict::Sorted {
                            degraded: false,
                            retried: false,
                        },
                        Ok(SortResponse {
                            keys,
                            degraded: false,
                            attempts: 1,
                        }),
                    )
                })
                .collect(),
            None => entries
                .into_iter()
                .map(|p| {
                    (
                        p,
                        LaneVerdict::Failed,
                        Err(ServiceError::Internal("executor panicked")),
                    )
                })
                .collect(),
        };
    }

    // Fault-enabled path: rung 2 per lane with in-run retries, then the
    // service-level rungs 3–4. Contained per lane, so one panicking
    // lane cannot take its batch-mates down with it.
    {
        let mut state = shared.lock();
        state.core.note_batch(false);
    }
    entries
        .into_iter()
        .map(|p| {
            let (verdict, reply) = catch_unwind(AssertUnwindSafe(|| {
                execute_fault_lane(
                    shared,
                    registered,
                    machine,
                    &mut ctx.exec_scratch,
                    &p,
                    policy,
                    service_retries,
                )
            }))
            .unwrap_or((
                LaneVerdict::Failed,
                Err(ServiceError::Internal("executor panicked")),
            ));
            (p, verdict, reply)
        })
        .collect()
}

/// One lane down rungs 2–4 of the ladder.
fn execute_fault_lane(
    shared: &Shared,
    registered: &RegisteredShape,
    machine: &BspMachine,
    scratch: &mut ExecScratch<u64>,
    lane: &Pending,
    policy: pns_fault::RetryPolicy,
    service_retries: u32,
) -> (LaneVerdict, Result<SortResponse, ServiceError>) {
    let base = shared.plan.fork(lane.id);
    let mut attempts: u32 = 0;
    for attempt in 0..=service_retries {
        attempts += 1;
        // Re-fork per attempt: a deterministic plan replays the same
        // faults on the same input, so an honest retry must draw fresh
        // decisions.
        let attempt_plan = base.fork(u64::from(attempt));
        let mut keys = lane.keys.clone();
        match machine.run_kernel_with_faults(
            &mut keys,
            &registered.kernel,
            &attempt_plan,
            &policy,
            scratch,
        ) {
            Ok(_report) => {
                return (
                    LaneVerdict::Sorted {
                        degraded: false,
                        retried: attempt > 0,
                    },
                    Ok(SortResponse {
                        keys,
                        degraded: false,
                        attempts,
                    }),
                );
            }
            Err(FaultError::RetryExhausted { .. }) if attempt < service_retries => {
                // Rung 3: back off deterministically, then retry.
                let delay = policy.backoff_ns(attempt + 1);
                if delay > 0 {
                    std::thread::sleep(Duration::from_nanos(delay));
                }
            }
            Err(FaultError::RetryExhausted { .. }) => break,
            Err(other) => {
                // Wrong key count / invalid program: not recoverable by
                // retrying — typed error back to the caller.
                return (LaneVerdict::Failed, Err(ServiceError::Fault(other)));
            }
        }
    }
    // Rung 4: quarantine — clean serial run from the original input.
    attempts += 1;
    let mut keys = lane.keys.clone();
    match machine.run_kernel_with_faults(
        &mut keys,
        &registered.kernel,
        &FaultPlan::disabled(),
        &policy,
        scratch,
    ) {
        Ok(_) => (
            LaneVerdict::Sorted {
                degraded: true,
                retried: true,
            },
            Ok(SortResponse {
                keys,
                degraded: true,
                attempts,
            }),
        ),
        Err(e) => (LaneVerdict::Failed, Err(ServiceError::Fault(e))),
    }
}
