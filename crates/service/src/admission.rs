//! Per-tenant token-bucket rate limiting.
//!
//! One [`TokenBucket`] per tenant, refilled lazily from the explicit
//! `now_ns` timestamps the core threads through — no background timer,
//! no ambient clock, so admission decisions replay exactly in tests.
//! Levels are tracked in *nano-tokens* (10⁻⁹ of a request) so integer
//! arithmetic stays exact at any refill rate the config can express.

/// Nano-tokens per whole token.
const NANO: u128 = 1_000_000_000;

/// Rate-limit configuration for one tenant class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained admissions per second. `0` disables rate limiting
    /// entirely (every request passes the bucket).
    pub rate_per_sec: u64,
    /// Bucket capacity in whole requests — the burst a quiet tenant may
    /// spend at once. Clamped up to 1 so a nonzero rate always admits
    /// single requests.
    pub burst: u64,
}

impl Default for RateLimit {
    /// Unlimited: the bucket never rejects.
    fn default() -> Self {
        RateLimit {
            rate_per_sec: 0,
            burst: 1,
        }
    }
}

/// A single tenant's bucket: current level plus the last refill stamp.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Current level in nano-tokens.
    level: u128,
    /// When the level was last brought current.
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket born full (a new tenant gets its whole burst).
    #[must_use]
    pub fn new(limit: RateLimit, now_ns: u64) -> Self {
        TokenBucket {
            level: u128::from(limit.burst.max(1)) * NANO,
            last_ns: now_ns,
        }
    }

    /// Bring the level current and try to spend one token. `true` means
    /// admitted. With `rate_per_sec == 0` the bucket always admits.
    pub fn try_admit(&mut self, limit: RateLimit, now_ns: u64) -> bool {
        if limit.rate_per_sec == 0 {
            return true;
        }
        let cap = u128::from(limit.burst.max(1)) * NANO;
        let dt = u128::from(now_ns.saturating_sub(self.last_ns));
        self.last_ns = self.last_ns.max(now_ns);
        // `rate` tokens/sec over `dt` ns accrues exactly `rate · dt`
        // nano-tokens (1 token = 1e9 nano-tokens accrues over 1e9 ns at
        // rate 1) — integer-exact, no rounding drift across refills.
        self.level = (self.level + u128::from(limit.rate_per_sec) * dt).min(cap);
        if self.level >= NANO {
            self.level -= NANO;
            true
        } else {
            false
        }
    }

    /// Current level in whole tokens (for gauges/tests).
    #[must_use]
    pub fn tokens(&self) -> u64 {
        u64::try_from(self.level / NANO).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_admits_everything() {
        let limit = RateLimit::default();
        let mut b = TokenBucket::new(limit, 0);
        for t in 0..100 {
            assert!(b.try_admit(limit, t));
        }
    }

    #[test]
    fn burst_then_sustained_rate() {
        let limit = RateLimit {
            rate_per_sec: 10,
            burst: 3,
        };
        let mut b = TokenBucket::new(limit, 0);
        // The full burst is available immediately.
        assert!(b.try_admit(limit, 0));
        assert!(b.try_admit(limit, 0));
        assert!(b.try_admit(limit, 0));
        assert!(!b.try_admit(limit, 0), "burst spent");
        // 10/sec = one token per 100ms.
        assert!(!b.try_admit(limit, 50_000_000), "half a token is not one");
        assert!(b.try_admit(limit, 100_000_000));
        assert!(!b.try_admit(limit, 100_000_000));
        // A long quiet period refills to the burst cap, no further.
        assert!(b.try_admit(limit, 10_000_000_000));
        assert!(b.try_admit(limit, 10_000_000_000));
        assert!(b.try_admit(limit, 10_000_000_000));
        assert!(!b.try_admit(limit, 10_000_000_000), "capped at burst");
    }

    #[test]
    fn refill_is_deterministic_under_replay() {
        let limit = RateLimit {
            rate_per_sec: 1000,
            burst: 5,
        };
        let run = || {
            let mut b = TokenBucket::new(limit, 0);
            (0..50u64)
                .map(|i| b.try_admit(limit, i * 700_000))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let limit = RateLimit {
            rate_per_sec: 1,
            burst: 1,
        };
        let mut b = TokenBucket::new(limit, 1_000_000);
        assert!(b.try_admit(limit, 1_000_000));
        // An earlier timestamp must not panic or mint tokens.
        assert!(!b.try_admit(limit, 0));
    }
}
