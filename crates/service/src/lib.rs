//! Sorting-as-a-service core over the product-network simulator.
//!
//! This crate turns the batch sorting tiers of `pns-simulator` into an
//! in-process service with production-shaped robustness machinery. The
//! pieces compose in request order:
//!
//! 1. **Admission** ([`ServiceCore::submit`]) — unknown-shape and
//!    key-count validation, the [`Breaker`] gate, a per-tenant
//!    [`TokenBucket`], then the hard queue capacity and the load-shed
//!    watermark beneath it. Every refusal is a typed
//!    [`RejectReason`] — the intake queue is bounded and never panics.
//! 2. **Coalescing** ([`ServiceCore::poll`]) — same-shape requests
//!    group into batches under a latency budget
//!    ([`ServiceConfig::coalesce_budget_ns`]), capped at
//!    [`ServiceConfig::max_batch_lanes`]; queued requests that outlive
//!    [`ServiceConfig::request_timeout_ns`] get a typed
//!    [`ServiceError::Timeout`].
//! 3. **Execution** ([`SortService`]) — worker threads walk each batch
//!    down the degradation ladder: vertical tier → kernel tier →
//!    backed-off service retries → serial quarantined lane → typed
//!    shed. See the [`service`] module docs for the ladder contract.
//! 4. **Observation** ([`ServiceStats`]) — per-tenant lifecycle
//!    counters and latency histograms exported through the `pns-obs`
//!    [`Registry`](pns_obs::Registry).
//!
//! All time-dependent logic takes explicit `now_ns` timestamps from a
//! [`Clock`], so the whole admission/coalescing/breaker automaton is
//! deterministic under a [`ManualClock`] — the overload tests assert
//! exact transition sequences, no sleeps, no flakes.

pub mod admission;
pub mod breaker;
pub mod clock;
pub mod core;
pub mod error;
pub mod service;
pub mod stats;

pub use admission::{RateLimit, TokenBucket};
pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use clock::{Clock, ManualClock, SystemClock};
pub use core::{Batch, LaneVerdict, Pending, Poll, ServiceConfig, ServiceCore, ShapeSpec};
pub use error::{RejectReason, ServiceError};
pub use service::{ServiceBuilder, SortResponse, SortService, Ticket, Transport};
pub use stats::{ServiceStats, TenantStats};
