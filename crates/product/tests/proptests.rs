//! Property-based tests for product-network structure.

use pns_graph::factories;
use pns_product::subgraph::{pg2_subgraph_nodes, subgraph_nodes, SubgraphSpec};
use pns_product::ProductNetwork;
use proptest::prelude::*;

fn small_product() -> impl Strategy<Value = (ProductNetwork, u64)> {
    (2usize..6, 2usize..4, any::<u64>())
        .prop_filter("size cap", |&(n, r, _)| (n as u64).pow(r as u32) <= 4096)
        .prop_map(|(n, r, seed)| {
            // Cycle through a few factor families of matching size.
            let g = match seed % 3 {
                0 => factories::path(n),
                1 if n >= 3 => factories::cycle(n),
                _ => factories::complete(n),
            };
            (ProductNetwork::new(&g, r), seed)
        })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric_and_irreflexive((pg, seed) in small_product()) {
        let len = pg.node_count();
        let a = seed % len;
        let b = (seed >> 17) % len;
        prop_assert!(!pg.has_edge(a, a));
        prop_assert_eq!(pg.has_edge(a, b), pg.has_edge(b, a));
    }

    #[test]
    fn neighbors_are_exactly_the_edges((pg, seed) in small_product()) {
        let v = seed % pg.node_count();
        let ns: Vec<u64> = pg.neighbors(v).collect();
        prop_assert_eq!(ns.len(), pg.degree(v));
        for &w in &ns {
            prop_assert!(pg.has_edge(v, w));
        }
    }

    #[test]
    fn edge_count_closed_form((pg, _) in small_product()) {
        let shape = pg.shape();
        let expect = shape.r() as u64
            * shape.stride(shape.r() - 1)
            * pg.factor().edge_count() as u64;
        prop_assert_eq!(pg.edge_count(), expect);
        // Handshake: sum of degrees = 2 |E|.
        let total_degree: u64 = shape.ranks().map(|v| pg.degree(v) as u64).sum();
        prop_assert_eq!(total_degree, 2 * pg.edge_count());
    }

    #[test]
    fn one_dim_subgraphs_partition_nodes((pg, seed) in small_product()) {
        let shape = pg.shape();
        let dim = (seed as usize) % shape.r();
        let mut all: Vec<u64> = Vec::new();
        for u in 0..shape.n() {
            all.extend(subgraph_nodes(shape, &SubgraphSpec::fix(dim, u)));
        }
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len() as u64, shape.len());
    }

    #[test]
    fn pg2_subgraph_nodes_have_right_digits((pg, seed) in small_product()) {
        let shape = pg.shape();
        prop_assume!(shape.r() >= 3);
        let group_digit = (seed as usize) % shape.n();
        let nodes = pg2_subgraph_nodes(shape, 0, 1, &[(2, group_digit)]);
        prop_assert_eq!(nodes.len(), shape.n() * shape.n());
        for (pos, &v) in nodes.iter().enumerate() {
            let (x1, x2) = pns_order::snake::snake2_unrank(shape.n(), pos as u64);
            prop_assert_eq!(shape.digit(v, 0), x1);
            prop_assert_eq!(shape.digit(v, 1), x2);
            prop_assert_eq!(shape.digit(v, 2), group_digit);
        }
    }

    #[test]
    fn snake_consecutive_nodes_connected_for_hamiltonian_factors(
        n in 2usize..6, r in 2usize..4, seed in any::<u64>(),
    ) {
        // With path-labeled (Hamiltonian) factors, consecutive snake nodes
        // are actual edges of the product network — the Section 2 payoff.
        prop_assume!((n as u64).pow(r as u32) <= 4096);
        let pg = ProductNetwork::new(&factories::path(n), r);
        let shape = pg.shape();
        let pos = seed % (shape.len() - 1);
        let a = pns_order::snake::node_at_snake_pos(shape, pos);
        let b = pns_order::snake::node_at_snake_pos(shape, pos + 1);
        prop_assert!(pg.has_edge(a, b), "snake hop {pos} not an edge");
    }
}
