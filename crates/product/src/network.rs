//! The product network `PG_r` with rank-based node identity.
//!
//! Nodes are identified by their mixed-radix rank (see
//! [`pns_order::radix`]); adjacency never materializes the full edge set —
//! it reduces to factor-graph adjacency on one digit, which keeps even
//! million-node products cheap to query.

use pns_graph::Graph;
use pns_order::radix::Shape;

/// An `r`-dimensional homogeneous product of a factor graph.
#[derive(Debug, Clone)]
pub struct ProductNetwork {
    factor: Graph,
    shape: Shape,
}

impl ProductNetwork {
    /// Build `PG_r` from a factor graph.
    ///
    /// ```
    /// use pns_graph::factories;
    /// use pns_product::ProductNetwork;
    ///
    /// // PG_3 of K2 is the 3-dimensional hypercube.
    /// let pg = ProductNetwork::new(&factories::k2(), 3);
    /// assert_eq!(pg.node_count(), 8);
    /// assert_eq!(pg.edge_count(), 12);
    /// assert!(pg.has_edge(0b000, 0b100));
    /// assert!(!pg.has_edge(0b000, 0b110));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the factor is disconnected (the paper assumes a connected
    /// `G`), or if `N^r` overflows the sanity cap of [`Shape::new`].
    #[must_use]
    pub fn new(factor: &Graph, r: usize) -> Self {
        assert!(
            pns_graph::is_connected(factor),
            "factor graph must be connected"
        );
        let shape = Shape::new(factor.n(), r);
        ProductNetwork {
            factor: factor.clone(),
            shape,
        }
    }

    /// The factor graph `G`.
    #[inline]
    #[must_use]
    pub fn factor(&self) -> &Graph {
        &self.factor
    }

    /// The `(N, r)` shape.
    #[inline]
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of nodes, `N^r`.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> u64 {
        self.shape.len()
    }

    /// Number of edges: `r · N^{r-1} · |E_G|` (each dimension contributes a
    /// factor-graph copy per assignment of the other `r-1` digits).
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.shape.r() as u64
            * self.shape.stride(self.shape.r() - 1)
            * self.factor.edge_count() as u64
    }

    /// Degree of a node: the sum of the factor degrees of its digits.
    #[must_use]
    pub fn degree(&self, node: u64) -> usize {
        (0..self.shape.r())
            .map(|i| self.factor.degree(self.shape.digit(node, i) as u32))
            .sum()
    }

    /// `true` iff `(a, b)` is an edge of `PG_r`: the labels differ in
    /// exactly one digit, and that digit pair is an edge of `G`.
    #[must_use]
    pub fn has_edge(&self, a: u64, b: u64) -> bool {
        if a == b {
            return false;
        }
        let mut differing = None;
        for i in 0..self.shape.r() {
            let da = self.shape.digit(a, i);
            let db = self.shape.digit(b, i);
            if da != db {
                if differing.is_some() {
                    return false;
                }
                differing = Some((da, db));
            }
        }
        match differing {
            Some((da, db)) => self.factor.has_edge(da as u32, db as u32),
            None => false,
        }
    }

    /// Neighbors of `node`, produced by substituting each digit with its
    /// factor-graph neighbors.
    pub fn neighbors(&self, node: u64) -> impl Iterator<Item = u64> + '_ {
        let shape = self.shape;
        (0..shape.r()).flat_map(move |i| {
            let d = shape.digit(node, i) as u32;
            self.factor
                .neighbors(d)
                .iter()
                .map(move |&w| shape.with_digit(node, i, w as usize))
        })
    }

    /// Neighbors of `node` along dimension `dim` only.
    pub fn neighbors_along(&self, node: u64, dim: usize) -> impl Iterator<Item = u64> + '_ {
        let shape = self.shape;
        let d = shape.digit(node, dim) as u32;
        self.factor
            .neighbors(d)
            .iter()
            .map(move |&w| shape.with_digit(node, dim, w as usize))
    }

    /// Materialize the product as an explicit [`Graph`] (small networks
    /// only: used by tests and the structural experiments).
    ///
    /// # Panics
    ///
    /// Panics if the network has more than 2^22 nodes.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let n = self.node_count();
        assert!(n <= 1 << 22, "to_graph is for small networks");
        let mut edges = Vec::new();
        for v in self.shape.ranks() {
            for w in self.neighbors(v) {
                if v < w {
                    edges.push((v as u32, w as u32));
                }
            }
        }
        Graph::from_edges_named(
            n as usize,
            &edges,
            &format!("{}^{}", self.factor.name(), self.shape.r()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pns_graph::factories;

    /// The paper's running example: a 3-node factor graph. Fig. 1a shows a
    /// 3-node factor; we use the path 0–1–2 (its exact edge set does not
    /// matter for the construction, per Section 4).
    fn example_factor() -> Graph {
        factories::path(3)
    }

    #[test]
    fn counts_match_closed_forms() {
        let g = example_factor();
        for r in 1..=4 {
            let pg = ProductNetwork::new(&g, r);
            assert_eq!(pg.node_count(), 3u64.pow(r as u32));
            assert_eq!(
                pg.edge_count(),
                r as u64 * 3u64.pow(r as u32 - 1) * g.edge_count() as u64
            );
        }
    }

    #[test]
    fn explicit_graph_agrees_with_implicit_adjacency() {
        let pg = ProductNetwork::new(&example_factor(), 3);
        let eg = pg.to_graph();
        assert_eq!(eg.n() as u64, pg.node_count());
        assert_eq!(eg.edge_count() as u64, pg.edge_count());
        for a in pg.shape().ranks() {
            for b in pg.shape().ranks() {
                assert_eq!(
                    pg.has_edge(a, b),
                    eg.has_edge(a as u32, b as u32),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn hypercube_from_k2() {
        // PG_r of K2 is the r-dimensional binary hypercube.
        let pg = ProductNetwork::new(&factories::k2(), 4);
        assert_eq!(pg.node_count(), 16);
        assert_eq!(pg.edge_count(), 32); // r * 2^{r-1} = 4 * 8
        for a in 0..16u64 {
            for b in 0..16u64 {
                let expect = a != b && (a ^ b).count_ones() == 1;
                assert_eq!(pg.has_edge(a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn grid_from_path() {
        // PG_2 of a path is the 2-D grid.
        let pg = ProductNetwork::new(&factories::path(4), 2);
        assert_eq!(pg.node_count(), 16);
        assert_eq!(pg.edge_count(), 24); // 2 * 4 * 3
        assert!(pg.has_edge(0, 1)); // (0,0)-(1,0) along dim 1
        assert!(pg.has_edge(0, 4)); // (0,0)-(0,1) along dim 2
        assert!(!pg.has_edge(0, 5)); // diagonal
        assert!(!pg.has_edge(3, 4)); // row wrap is not an edge
    }

    #[test]
    fn neighbors_match_has_edge() {
        let pg = ProductNetwork::new(&factories::petersen(), 2);
        for v in [0u64, 17, 55, 99] {
            let ns: Vec<u64> = pg.neighbors(v).collect();
            assert_eq!(ns.len(), pg.degree(v));
            for &w in &ns {
                assert!(pg.has_edge(v, w));
            }
            // Spot-check a few non-neighbors.
            for w in pg.shape().ranks().step_by(7) {
                if w != v && !ns.contains(&w) {
                    assert!(!pg.has_edge(v, w));
                }
            }
        }
    }

    #[test]
    fn neighbors_along_partitions_neighbors() {
        let pg = ProductNetwork::new(&factories::cycle(4), 3);
        for v in [0u64, 21, 63] {
            let mut by_dim: Vec<u64> = (0..3).flat_map(|d| pg.neighbors_along(v, d)).collect();
            let mut all: Vec<u64> = pg.neighbors(v).collect();
            by_dim.sort_unstable();
            all.sort_unstable();
            assert_eq!(by_dim, all);
        }
    }

    #[test]
    fn degree_is_sum_of_factor_degrees() {
        let g = factories::star(4); // degrees: 3, 1, 1, 1
        let pg = ProductNetwork::new(&g, 2);
        // Node (0,0): degree 3 + 3 = 6; node (1,1): 1 + 1 = 2.
        assert_eq!(pg.degree(0), 6);
        assert_eq!(pg.degree(5), 2);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_factor() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = ProductNetwork::new(&g, 2);
    }
}
