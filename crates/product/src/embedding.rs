//! Embedding grids and tori into arbitrary product networks.
//!
//! The Corollary of Section 4.1 rests on a result from Efe & Fernández
//! (TPDS 1996): if `G` is connected, `PG_r` can emulate the `N^r`-node
//! `r`-dimensional torus with dilation 3 and congestion 2, hence with
//! constant slowdown (at most 6). The embedding is per-dimension: fix a
//! cyclic linear ordering of `G`'s nodes with dilation ≤ 3 (Hamiltonian
//! cycle if one exists, Sekanina's ordering otherwise) and map torus
//! coordinate `t` at dimension `i` to factor node `order[t]` at the same
//! dimension.

use pns_graph::{Graph, LinearEmbedding};
use pns_order::radix::Shape;

/// A dilation-bounded embedding of the `N^r`-node `r`-dimensional torus
/// (or grid) into `PG_r` of an `N`-node connected factor.
#[derive(Debug, Clone)]
pub struct TorusEmbedding {
    /// Cyclic linear order of the factor nodes used on every dimension.
    pub order: Vec<u32>,
    /// Max factor distance between images of torus-adjacent coordinates
    /// (including the wrap-around), ≤ 3.
    pub dilation: u32,
    shape: Shape,
    /// `positions[v]` = torus coordinate mapped to factor node `v`.
    positions: Vec<u32>,
}

/// Build the torus embedding for the product of `factor` with `r`
/// dimensions.
///
/// # Panics
///
/// Panics if the factor is disconnected or has fewer than 3 nodes (a
/// 2-node factor has no torus distinct from the grid; use the grid
/// embedding implicit in `LinearEmbedding::best`).
#[must_use]
pub fn torus_embedding(factor: &Graph, r: usize) -> TorusEmbedding {
    let emb = LinearEmbedding::best_cycle(factor);
    let shape = Shape::new(factor.n(), r);
    let positions = emb.positions();
    TorusEmbedding {
        order: emb.order,
        dilation: emb.dilation,
        shape,
        positions,
    }
}

impl TorusEmbedding {
    /// Map a torus node (given by rank, digits = torus coordinates) to the
    /// corresponding product-network node rank.
    #[must_use]
    pub fn map(&self, torus_node: u64) -> u64 {
        let mut out = 0u64;
        for i in 0..self.shape.r() {
            let t = self.shape.digit(torus_node, i);
            out = self.shape.with_digit(out, i, self.order[t] as usize);
        }
        out
    }

    /// Inverse of [`TorusEmbedding::map`].
    #[must_use]
    pub fn unmap(&self, pg_node: u64) -> u64 {
        let mut out = 0u64;
        for i in 0..self.shape.r() {
            let v = self.shape.digit(pg_node, i);
            out = self.shape.with_digit(out, i, self.positions[v] as usize);
        }
        out
    }

    /// Worst-case slowdown of emulating one synchronous torus step:
    /// `2 · dilation` (dilation hops, congestion ≤ 2 serializes each hop at
    /// most twice), which is 6 in the worst case — the constant used by the
    /// Corollary. A dilation-1 (Hamiltonian-cycle) embedding has slowdown 1.
    #[must_use]
    pub fn slowdown(&self) -> u32 {
        if self.dilation == 1 {
            1
        } else {
            2 * self.dilation
        }
    }

    /// The shape shared by torus and product network.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ProductNetwork;
    use pns_graph::{bfs_distances, factories};

    fn check_embedding(factor: &Graph, r: usize, max_slowdown: u32) {
        let emb = torus_embedding(factor, r);
        let n = factor.n();
        let shape = emb.shape();
        assert!(emb.slowdown() <= max_slowdown, "{factor:?}");
        // Bijectivity.
        let mut seen = std::collections::HashSet::new();
        for t in shape.ranks() {
            let p = emb.map(t);
            assert_eq!(emb.unmap(p), t);
            assert!(seen.insert(p), "map must be injective");
        }
        // Every torus edge maps to a bounded-distance pair along one
        // dimension.
        let dist0 = {
            // All-pairs factor distances.
            let mut d = Vec::with_capacity(n);
            for v in 0..n as u32 {
                d.push(bfs_distances(factor, v));
            }
            d
        };
        for t in shape.ranks() {
            for i in 0..r {
                let ti = shape.digit(t, i);
                let t2 = shape.with_digit(t, i, (ti + 1) % n);
                let (a, b) = (emb.map(t), emb.map(t2));
                // a and b differ only at dimension i.
                let da = shape.digit(a, i);
                let db = shape.digit(b, i);
                let d = dist0[da][db];
                assert!(
                    d <= emb.dilation,
                    "dilation violated at t={t} dim={i}: {d} > {}",
                    emb.dilation
                );
            }
        }
    }

    #[test]
    fn cycle_factor_embeds_with_slowdown_one() {
        check_embedding(&factories::cycle(5), 2, 1);
    }

    #[test]
    fn petersen_embeds_with_constant_slowdown() {
        check_embedding(&factories::petersen(), 2, 6);
    }

    #[test]
    fn tree_factor_embeds_with_constant_slowdown() {
        check_embedding(&factories::complete_binary_tree(3), 2, 6);
        check_embedding(&factories::star(5), 3, 6);
    }

    #[test]
    fn random_factors_embed() {
        for seed in 0..5 {
            let g = factories::random_connected(9, 3, seed);
            check_embedding(&g, 2, 6);
        }
    }

    #[test]
    fn mapped_torus_edges_are_short_paths_in_product() {
        // End-to-end: images of torus-adjacent nodes are within `dilation`
        // hops in the actual product network.
        let factor = factories::complete_binary_tree(3);
        let r = 2;
        let emb = torus_embedding(&factor, r);
        let pg = ProductNetwork::new(&factor, r);
        let shape = emb.shape();
        let eg = pg.to_graph();
        for t in shape.ranks() {
            for i in 0..r {
                let ti = shape.digit(t, i);
                let t2 = shape.with_digit(t, i, (ti + 1) % factor.n());
                let a = emb.map(t) as u32;
                let b = emb.map(t2) as u32;
                let d = bfs_distances(&eg, a)[b as usize];
                assert!(d <= emb.dilation, "t={t} dim={i}");
            }
        }
    }
}
