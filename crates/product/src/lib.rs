//! Homogeneous product networks `PG_r` (Definition 1 of Fernández & Efe).
//!
//! Given an `N`-node factor graph `G`, the `r`-dimensional homogeneous
//! product `PG_r` has node set `{0, …, N-1}^r`; nodes are adjacent iff their
//! labels differ in exactly one symbol position and the differing symbols
//! are adjacent in `G`. This crate provides:
//!
//! * the network itself with rank-based adjacency ([`network`]),
//! * subgraph extraction `[u]PG^i_{r-1}`, `[u,v]PG^{i,j}_{r-2}`, … — the
//!   dimension-erasure decompositions of Section 2 ([`subgraph`]),
//! * grid/torus embeddings into `PG_r` with constant dilation, the engine
//!   behind the Corollary's universal `O(r²N)` bound ([`embedding`]),
//! * closed-form structural statistics and their verification ([`stats`]).

pub mod embedding;
pub mod network;
pub mod stats;
pub mod subgraph;

pub use embedding::{torus_embedding, TorusEmbedding};
pub use network::ProductNetwork;
pub use subgraph::{pg2_subgraph_nodes, subgraph_nodes, SubgraphSpec};
