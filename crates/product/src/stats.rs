//! Closed-form structural statistics of product networks, with
//! verification helpers used by the structural experiments (E01).

use crate::network::ProductNetwork;
use pns_graph::{diameter, Graph};

/// Structural summary of a product network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductStats {
    /// Factor size `N`.
    pub n: usize,
    /// Dimensions `r`.
    pub r: usize,
    /// `N^r`.
    pub nodes: u64,
    /// `r · N^{r-1} · |E_G|`.
    pub edges: u64,
    /// `r · Δ(G)` (max degree).
    pub max_degree: usize,
    /// `r · diam(G)` — the product diameter (the paper's grid lower-bound
    /// argument uses `diam = r(N-1)`).
    pub diameter: u32,
}

/// Compute the closed-form statistics (diameter via the factor's diameter;
/// exact for homogeneous products of connected factors).
#[must_use]
pub fn product_stats(factor: &Graph, r: usize) -> ProductStats {
    let pg = ProductNetwork::new(factor, r);
    ProductStats {
        n: factor.n(),
        r,
        nodes: pg.node_count(),
        edges: pg.edge_count(),
        max_degree: r * factor.max_degree(),
        diameter: r as u32 * diameter(factor),
    }
}

/// Verify the closed forms against the explicit graph (small networks).
#[must_use]
pub fn verify_stats(factor: &Graph, r: usize) -> bool {
    let stats = product_stats(factor, r);
    let pg = ProductNetwork::new(factor, r);
    let eg = pg.to_graph();
    stats.nodes == eg.n() as u64
        && stats.edges == eg.edge_count() as u64
        && stats.max_degree == eg.max_degree()
        && stats.diameter == diameter(&eg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pns_graph::factories;

    #[test]
    fn grid_stats() {
        let s = product_stats(&factories::path(4), 2);
        assert_eq!(s.nodes, 16);
        assert_eq!(s.edges, 24);
        assert_eq!(s.diameter, 6); // 2 * (N-1)
        assert!(verify_stats(&factories::path(4), 2));
    }

    #[test]
    fn hypercube_stats() {
        let s = product_stats(&factories::k2(), 5);
        assert_eq!(s.nodes, 32);
        assert_eq!(s.edges, 80);
        assert_eq!(s.diameter, 5);
        assert_eq!(s.max_degree, 5);
        assert!(verify_stats(&factories::k2(), 5));
    }

    #[test]
    fn verified_for_various_factors() {
        assert!(verify_stats(&factories::cycle(4), 2));
        assert!(verify_stats(&factories::complete_binary_tree(2), 2));
        assert!(verify_stats(&factories::petersen(), 1));
        assert!(verify_stats(&factories::path(3), 3));
    }
}
