//! Subgraph extraction: the `[u]PG^i_{r-1}` decompositions of Section 2.
//!
//! Erasing all dimension-`i` edges of `PG_r` and keeping the nodes whose
//! labels carry `u` at position `i` yields a subgraph isomorphic to
//! `PG_{r-1}`; fixing several positions yields lower products. The sorting
//! algorithm constantly works with such subgraphs: the `N` input sequences
//! of a merge live on `[u]PG^k_{k-1}` subgraphs, Step 4 operates on the
//! `PG_2` subgraphs at dimensions `{1, 2}`, and so on.

use crate::network::ProductNetwork;
use pns_order::radix::Shape;
use pns_order::snake::snake_pos_of_node;

/// A subgraph of `PG_r` specified by fixing digits at some dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphSpec {
    /// `(dimension index, digit value)` pairs; dimensions must be distinct.
    pub fixed: Vec<(usize, usize)>,
}

impl SubgraphSpec {
    /// Fix a single dimension: the paper's `[u]PG^i_{r-1}` (with
    /// `i = dim + 1` in the paper's 1-based indexing).
    #[must_use]
    pub fn fix(dim: usize, digit: usize) -> Self {
        SubgraphSpec {
            fixed: vec![(dim, digit)],
        }
    }

    /// Fix several dimensions, e.g. `[u, v]PG^{k,1}_{r-2}`.
    #[must_use]
    pub fn fix_many(fixed: &[(usize, usize)]) -> Self {
        let mut dims: Vec<usize> = fixed.iter().map(|&(d, _)| d).collect();
        dims.sort_unstable();
        dims.dedup();
        assert_eq!(dims.len(), fixed.len(), "fixed dimensions must be distinct");
        SubgraphSpec {
            fixed: fixed.to_vec(),
        }
    }

    /// The free (unfixed) dimensions, ascending.
    #[must_use]
    pub fn free_dims(&self, r: usize) -> Vec<usize> {
        (0..r)
            .filter(|d| !self.fixed.iter().any(|&(fd, _)| fd == *d))
            .collect()
    }

    /// `true` iff `node` belongs to this subgraph.
    #[must_use]
    pub fn contains(&self, shape: Shape, node: u64) -> bool {
        self.fixed.iter().all(|&(d, v)| shape.digit(node, d) == v)
    }
}

/// All node ranks of the subgraph, ordered by the mixed-radix value of
/// their free digits (least-significant free dimension varies fastest).
#[must_use]
pub fn subgraph_nodes(shape: Shape, spec: &SubgraphSpec) -> Vec<u64> {
    let free = spec.free_dims(shape.r());
    let mut base = 0u64;
    for &(d, v) in &spec.fixed {
        base = shape.with_digit(base, d, v);
    }
    let count = pns_order::radix::pow(shape.n(), free.len());
    let mut out = Vec::with_capacity(count as usize);
    for m in 0..count {
        let mut node = base;
        let mut rest = m;
        for &d in &free {
            node = shape.with_digit(node, d, (rest % shape.n() as u64) as usize);
            rest /= shape.n() as u64;
        }
        out.push(node);
    }
    out
}

/// The nodes of a `PG_2` subgraph over dimensions `(dim_a, dim_b)` with the
/// remaining digits given by `group`, listed in the subgraph's *forward
/// snake order*: position `p` holds the node whose `(x_a, x_b)` coordinates
/// are `snake2_unrank(p)` with `dim_a` playing the role of dimension 1.
///
/// `group` supplies the digits of the non-free dimensions in ascending
/// dimension order.
#[must_use]
pub fn pg2_subgraph_nodes(
    shape: Shape,
    dim_a: usize,
    dim_b: usize,
    group: &[(usize, usize)],
) -> Vec<u64> {
    assert_ne!(dim_a, dim_b);
    let n = shape.n();
    let mut base = 0u64;
    for &(d, v) in group {
        assert!(d != dim_a && d != dim_b, "group digit on a free dimension");
        base = shape.with_digit(base, d, v);
    }
    let mut out = Vec::with_capacity(n * n);
    for pos in 0..(n * n) as u64 {
        let (xa, xb) = pns_order::snake::snake2_unrank(n, pos);
        let node = shape.with_digit(shape.with_digit(base, dim_a, xa), dim_b, xb);
        out.push(node);
    }
    out
}

/// Verify (for tests and the structural experiments) that a subgraph with
/// one fixed dimension is isomorphic to `PG_{r-1}`: same node count, and
/// the induced adjacency matches `PG_{r-1}` adjacency under digit deletion.
#[must_use]
pub fn subgraph_is_lower_product(pg: &ProductNetwork, dim: usize, digit: usize) -> bool {
    let shape = pg.shape();
    let r = shape.r();
    if r < 2 {
        return false;
    }
    let spec = SubgraphSpec::fix(dim, digit);
    let nodes = subgraph_nodes(shape, &spec);
    let lower = ProductNetwork::new(pg.factor(), r - 1);
    let delete_digit = |node: u64| -> u64 {
        let mut digits = shape.unrank(node);
        digits.remove(dim);
        lower.shape().rank(&digits)
    };
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(i + 1) {
            let here = pg.has_edge(a, b);
            let there = lower.has_edge(delete_digit(a), delete_digit(b));
            if here != there {
                return false;
            }
        }
    }
    true
}

/// Snake positions (within the whole network) of a subgraph's nodes — used
/// to check Step 1's "no data movement" claim in tests.
#[must_use]
pub fn snake_positions(shape: Shape, nodes: &[u64]) -> Vec<u64> {
    nodes.iter().map(|&v| snake_pos_of_node(shape, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pns_graph::factories;
    use pns_order::positions_of_dim1_digit;

    #[test]
    fn fixing_one_dim_gives_lower_product() {
        let pg = ProductNetwork::new(&factories::path(3), 3);
        for dim in 0..3 {
            for digit in 0..3 {
                assert!(
                    subgraph_is_lower_product(&pg, dim, digit),
                    "dim={dim} digit={digit}"
                );
            }
        }
    }

    #[test]
    fn fig2_decomposition_counts() {
        // Fig. 2: erasing dimension-one edges of the 27-node PG_3 leaves
        // three PG_2 subgraphs of 9 nodes each.
        let pg = ProductNetwork::new(&factories::path(3), 3);
        let shape = pg.shape();
        let mut all = Vec::new();
        for u in 0..3 {
            let nodes = subgraph_nodes(shape, &SubgraphSpec::fix(0, u));
            assert_eq!(nodes.len(), 9);
            all.extend(nodes);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 27, "subgraphs partition the nodes");
    }

    #[test]
    fn fix_many_rejects_duplicate_dims() {
        let result = std::panic::catch_unwind(|| SubgraphSpec::fix_many(&[(0, 1), (0, 2)]));
        assert!(result.is_err());
    }

    #[test]
    fn pg2_nodes_follow_forward_snake() {
        let shape = Shape::new(3, 3);
        let nodes = pg2_subgraph_nodes(shape, 0, 1, &[(2, 2)]);
        assert_eq!(nodes.len(), 9);
        for (pos, &node) in nodes.iter().enumerate() {
            let (x1, x2) = pns_order::snake::snake2_unrank(3, pos as u64);
            assert_eq!(shape.digit(node, 0), x1);
            assert_eq!(shape.digit(node, 1), x2);
            assert_eq!(shape.digit(node, 2), 2);
        }
    }

    /// Section 2 / Step 1: if `PG_r` holds keys sorted in snake order, the
    /// keys on `[u]PG¹_{r-1}` occupy positions u, 2N-u-1, 2N+u, … of the
    /// whole sequence, and are themselves in the subgraph's snake order.
    #[test]
    fn dim1_subgraph_positions_match_paper_formula() {
        let shape = Shape::new(3, 3);
        for u in 0..3usize {
            let nodes = subgraph_nodes(shape, &SubgraphSpec::fix(0, u));
            let mut positions = snake_positions(shape, &nodes);
            positions.sort_unstable();
            let expect: Vec<u64> = positions_of_dim1_digit(3, 27, u).collect();
            assert_eq!(positions, expect, "u={u}");
        }
    }

    #[test]
    fn free_dims_are_complement() {
        let spec = SubgraphSpec::fix_many(&[(0, 1), (3, 2)]);
        assert_eq!(spec.free_dims(5), vec![1, 2, 4]);
    }

    #[test]
    fn contains_checks_fixed_digits() {
        let shape = Shape::new(3, 3);
        let spec = SubgraphSpec::fix_many(&[(0, 1), (2, 2)]);
        for node in shape.ranks() {
            let expect = shape.digit(node, 0) == 1 && shape.digit(node, 2) == 2;
            assert_eq!(spec.contains(shape, node), expect);
        }
    }
}
