//! Bit-sliced "vertical" batch execution: the third compilation tier.
//!
//! The kernel tier (`kernel.rs`) removed per-op interpretation; this
//! tier removes per-*lane* work. A batch is transposed into lane-major
//! structure-of-arrays form — the "vertical" layout of bitonic-sorter
//! hardware and of Piotrów's periodic merging networks — so one machine
//! word carries the same network node for up to [`WORD_LANES`]
//! independent input vectors at once:
//!
//! * **0/1 workloads** ([`BspMachine::run_vertical_bits`]): the word
//!   *is* the data. One `u64` per node holds bit `l` = lane `l`'s key,
//!   and a compare-exchange on the edge `(a, b)` is two bitwise ops —
//!   `min = a & b`, `max = a | b` — for all 64 lanes together. By the
//!   zero-one principle the network is comparator-shaped, so this path
//!   doubles as an *exhaustive* correctness oracle: sweeping all `2^n`
//!   masks costs `2^n / 64` executions (`tests/vertical.rs` does
//!   exactly that for every small fixture).
//! * **Full keys** ([`BspMachine::run_vertical_batch`]): lanes are
//!   blocked into groups of ≤ [`WORD_LANES`] and each node becomes a
//!   contiguous *column* of `w` keys. Compare rounds build a `u64`
//!   swap-decision mask per edge and commit set bits; route rounds move
//!   whole columns through word-indexed transit slots. Same memory
//!   discipline as the kernel tier: a caller-owned
//!   [`VerticalScratch`]/[`VerticalPool`] makes warm runs allocation-free
//!   (`tests/vertical_alloc.rs` proves zero heap allocations).
//!
//! Both executors walk the *same* [`KernelProgram`] rounds in the same
//! order — a [`VerticalProgram`] is a layout commitment, not a new
//! lowering — so round indices, op indices, and therefore
//! `FaultSite {round, op}` keys are shared 1:1 with the interpreter and
//! kernel paths. [`BspMachine::run_vertical_batch_with_faults`] leans
//! on that: it injects from the identical per-lane forked plans and is
//! bit-identical, reports included, to
//! [`BspMachine::run_batch_with_faults`].

use std::collections::HashSet;
use std::sync::Arc;

use pns_fault::detect::sampled_subgraph_certificate;
use pns_fault::{FaultKind, FaultPlan, FaultSite, OpClass, RetryPolicy};
use pns_obs::{Event, SpanClass, Stage, Tier, ROUND_OBS_MIN_OPS, SORT_OBS_MIN_OPS};
use pns_order::radix::Shape;

use crate::bsp::BspMachine;
use crate::fault::{segments, Detection, FaultError, FaultReport, InjectedFault, Retry};
use crate::kernel::{
    exec_kernel, ExecScratch, KernelProgram, RoundClass, RoundDesc, FLAG_PRIMARY, FLAG_SLOT1,
    TAG_CX, TAG_MOVE,
};
use crate::verify::subgraphs_snake_sorted;

/// Lanes per machine word: the widest block the vertical layout packs
/// into one `u64` of decision (or data) bits.
pub const WORD_LANES: usize = 64;

/// Batch size at which [`crate::machine::Machine::sort_batch`] switches
/// from the per-lane kernel tier to the vertical tier: one full word of
/// lanes. Below this the transpose overhead has no word-parallelism to
/// amortize against.
pub const VERTICAL_MIN_LANES: usize = WORD_LANES;

/// A kernel program committed to the vertical (lane-major) layout.
///
/// Lowering is a wrapper, not a rewrite: the vertical executors read
/// the kernel's flat round/pair/micro-op tables directly, which is what
/// guarantees round and op indices — and with them fault sites and
/// certificate boundaries — stay aligned across all three tiers. The
/// type exists so the [`crate::cache::ProgramCache`] can track vertical
/// adoption separately and so callers cannot accidentally hand a
/// horizontal scratch to a vertical run.
#[derive(Debug, Clone)]
pub struct VerticalProgram {
    kernel: Arc<KernelProgram>,
}

impl VerticalProgram {
    /// Commit a lowered kernel to the vertical layout.
    #[must_use]
    pub fn lower(kernel: Arc<KernelProgram>) -> VerticalProgram {
        VerticalProgram { kernel }
    }

    /// Shape of `PG_r` the program runs on.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.kernel.shape()
    }

    /// Rounds in the program (identical to the source kernel).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.kernel.rounds()
    }

    /// The underlying kernel program.
    #[must_use]
    pub fn kernel(&self) -> &Arc<KernelProgram> {
        &self.kernel
    }

    /// Word-level operations one full-width run executes: every
    /// compare-exchange pair and every route micro-op touches one word
    /// (or one column) regardless of how many lanes ride in it.
    #[must_use]
    pub fn word_ops(&self) -> usize {
        self.kernel.cx_pair_count() + self.kernel.micro_op_count()
    }
}

// ---------------------------------------------------------------------------
// 0/1 path: one u64 word per node, 64 lanes per bit position.
// ---------------------------------------------------------------------------

/// Reusable state for [`BspMachine::run_vertical_bits`]: word-wide
/// transit slots (two per node, like the scalar machine model) and the
/// deferred-move buffer. Warm resets reuse capacity — zero allocations.
#[derive(Debug, Default)]
pub struct BitScratch {
    /// Transit words, indexed `node * 2 + slot`.
    transit: Vec<u64>,
    /// Deferred moves `(node * 2 + slot, payload word)`, committed at
    /// round end so transit reads see previous-round state.
    incoming: Vec<(u32, u64)>,
}

impl BitScratch {
    /// Fresh, empty scratch; the first run sizes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        if self.transit.len() == 2 * n {
            self.transit.fill(0);
        } else {
            self.transit.clear();
            self.transit.resize(2 * n, 0);
        }
        self.incoming.clear();
    }
}

/// Pack up to [`WORD_LANES`] zero-one vectors into the vertical word
/// layout: bit `i` of `masks[l]` is lane `l`'s key at node rank `i`,
/// and bit `l` of the returned `words[i]` is the same key. Requires
/// `nodes <= 64` because each lane's vector is itself a `u64` mask —
/// the word layout proper ([`BspMachine::run_vertical_bits`]) has no
/// node-count limit.
///
/// # Panics
///
/// Panics if more than [`WORD_LANES`] masks or more than 64 nodes.
#[must_use]
pub fn pack_zero_one_masks(masks: &[u64], nodes: usize) -> Vec<u64> {
    let mut words = Vec::new();
    pack_zero_one_masks_into(masks, nodes, &mut words);
    words
}

/// [`pack_zero_one_masks`] into a caller-owned buffer (reused capacity,
/// no allocation when warm).
///
/// # Panics
///
/// Panics if more than [`WORD_LANES`] masks or more than 64 nodes.
pub fn pack_zero_one_masks_into(masks: &[u64], nodes: usize, words: &mut Vec<u64>) {
    assert!(masks.len() <= WORD_LANES, "at most one lane per word bit");
    assert!(nodes <= 64, "mask packing needs node ranks to fit a u64");
    words.clear();
    words.resize(nodes, 0);
    for (l, &mask) in masks.iter().enumerate() {
        for (i, word) in words.iter_mut().enumerate() {
            *word |= ((mask >> i) & 1) << l;
        }
    }
}

/// Extract lane `l`'s 0/1 key vector from the vertical word layout.
///
/// # Panics
///
/// Panics if `lane >= 64`.
#[must_use]
pub fn unpack_zero_one_lane(words: &[u64], lane: usize) -> Vec<u8> {
    let mut keys = Vec::new();
    unpack_zero_one_lane_into(words, lane, &mut keys);
    keys
}

/// [`unpack_zero_one_lane`] into a caller-owned buffer.
///
/// # Panics
///
/// Panics if `lane >= 64`.
pub fn unpack_zero_one_lane_into(words: &[u64], lane: usize, keys: &mut Vec<u8>) {
    assert!(lane < WORD_LANES, "one lane per word bit");
    keys.clear();
    keys.extend(words.iter().map(|&w| ((w >> lane) & 1) as u8));
}

/// Word-wide compare-exchange: `AND` is the 64-lane minimum of 0/1
/// keys, `OR` the maximum — one edge, two ops, 64 lanes.
#[inline]
fn bit_cx(words: &mut [u64], a: u32, b: u32, min_to_a: bool) {
    let (ai, bi) = (a as usize, b as usize);
    let (mn, mx) = (words[ai] & words[bi], words[ai] | words[bi]);
    if min_to_a {
        words[ai] = mn;
        words[bi] = mx;
    } else {
        words[ai] = mx;
        words[bi] = mn;
    }
}

/// One vertical 0/1 round: the same micro-op order as
/// [`crate::kernel`]'s `exec_kernel_round`, word-wide. `Resolve` is a
/// one-op merge: keep-min is `AND`, keep-max is `OR` — the arrived word
/// folds into the resident word per lane.
fn exec_bits_round(words: &mut [u64], kernel: &KernelProgram, ri: usize, scratch: &mut BitScratch) {
    let desc = kernel.rounds[ri];
    match desc.class {
        RoundClass::Empty => {}
        RoundClass::Compare => {
            for gi in desc.start as usize..desc.end as usize {
                let (a, b) = kernel.cx_pairs[gi];
                bit_cx(words, a, b, kernel.dir(gi));
            }
        }
        RoundClass::Route => {
            for m in &kernel.micro[desc.start as usize..desc.end as usize] {
                let ai = m.a as usize;
                match m.tag {
                    TAG_CX => bit_cx(words, m.a, m.b, m.flags & FLAG_PRIMARY != 0),
                    TAG_MOVE => {
                        let si = usize::from(m.flags & FLAG_SLOT1 != 0);
                        let payload = if m.flags & FLAG_PRIMARY != 0 {
                            words[ai]
                        } else {
                            scratch.transit[ai * 2 + si]
                        };
                        scratch.incoming.push((m.b * 2 + si as u32, payload));
                    }
                    _ => {
                        let si = usize::from(m.flags & FLAG_SLOT1 != 0);
                        let arrived = scratch.transit[ai * 2 + si];
                        if m.flags & FLAG_PRIMARY != 0 {
                            words[ai] &= arrived;
                        } else {
                            words[ai] |= arrived;
                        }
                    }
                }
            }
            for (idx, payload) in scratch.incoming.drain(..) {
                scratch.transit[idx as usize] = payload;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Full-key path: node-major columns of w ≤ 64 lanes, swap-on-mask.
// ---------------------------------------------------------------------------

/// Reusable state for one vertical block of up to [`WORD_LANES`] lanes:
/// the transposed key columns, column-wide transit slots, and the
/// round-local staging buffer for deferred moves.
///
/// `reset` is **width-aware**: transit and staging are indexed
/// `(node * 2 + slot) * w + lane`, so a scratch warmed for a 64-lane
/// block must be rebuilt — not blindly reused — when a narrower tail
/// block borrows it, or stale wider-stride slots would alias live ones.
/// The pool therefore resizes on any `(nodes, lanes)` change and only
/// skips the rebuild on an exact match.
#[derive(Debug)]
pub struct VerticalScratch<K> {
    /// Node count the buffers are currently sized for.
    n: usize,
    /// Lane width (block size) the buffers are currently sized for.
    w: usize,
    /// Transposed keys, node-major: `cols[node * w + lane]`.
    cols: Vec<K>,
    /// Transit columns: `transit[(node * 2 + slot) * w + lane]`.
    transit: Vec<Option<K>>,
    /// Deferred-move staging, same indexing as `transit`.
    staged: Vec<Option<K>>,
    /// Transit slot indices (`node * 2 + slot`) staged this round.
    touched: Vec<u32>,
}

impl<K> Default for VerticalScratch<K> {
    fn default() -> Self {
        VerticalScratch {
            n: 0,
            w: 0,
            cols: Vec::new(),
            transit: Vec::new(),
            staged: Vec::new(),
            touched: Vec::new(),
        }
    }
}

impl<K> VerticalScratch<K> {
    /// Fresh, empty scratch; the first block sizes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Lane width the scratch is currently sized for (0 when unused).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.w
    }

    /// Size for an `n`-node, `w`-lane block, rebuilding the strided
    /// buffers whenever either dimension changed.
    fn reset(&mut self, n: usize, w: usize) {
        debug_assert!((1..=WORD_LANES).contains(&w), "block width fits one word");
        if self.n == n && self.w == w {
            for t in &mut self.transit {
                *t = None;
            }
            for s in &mut self.staged {
                *s = None;
            }
        } else {
            self.n = n;
            self.w = w;
            self.transit.clear();
            self.transit.resize_with(n * 2 * w, || None);
            self.staged.clear();
            self.staged.resize_with(n * 2 * w, || None);
        }
        self.cols.clear();
        self.touched.clear();
    }
}

/// A pool of per-block [`VerticalScratch`]es for batched vertical runs,
/// grown on demand and reused across batches — the vertical analogue of
/// [`crate::kernel::ScratchPool`].
#[derive(Debug)]
pub struct VerticalPool<K> {
    slots: Vec<VerticalScratch<K>>,
}

impl<K> Default for VerticalPool<K> {
    fn default() -> Self {
        VerticalPool { slots: Vec::new() }
    }
}

impl<K> VerticalPool<K> {
    /// Fresh, empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn ensure(&mut self, blocks: usize) -> &mut [VerticalScratch<K>] {
        if self.slots.len() < blocks {
            self.slots.resize_with(blocks, VerticalScratch::new);
        }
        &mut self.slots[..blocks]
    }

    /// Block scratches currently pooled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool has served no block yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Column-wide compare-exchange: phase 1 builds a swap-decision bitmask
/// for the whole column pair (branch-free per lane), phase 2 commits
/// only the set bits — the same decide/commit split as the kernel
/// tier's chunked parallel path, here over lanes instead of pairs.
#[inline]
fn col_cx<K: Ord>(cols: &mut [K], w: usize, a: u32, b: u32, min_to_a: bool) {
    let (abase, bbase) = (a as usize * w, b as usize * w);
    let mut swaps: u64 = 0;
    for l in 0..w {
        swaps |= u64::from((cols[abase + l] <= cols[bbase + l]) != min_to_a) << l;
    }
    while swaps != 0 {
        let l = swaps.trailing_zeros() as usize;
        swaps &= swaps - 1;
        cols.swap(abase + l, bbase + l);
    }
}

/// One vertical full-key round over a `w`-lane block. Identical op
/// order and transit schedule as the scalar kernel round — moves stage
/// into `staged` and commit at round end, so transit reads see
/// previous-round state.
fn exec_cols_round<K: Ord + Clone>(
    kernel: &KernelProgram,
    desc: RoundDesc,
    w: usize,
    cols: &mut [K],
    transit: &mut [Option<K>],
    staged: &mut [Option<K>],
    touched: &mut Vec<u32>,
) {
    match desc.class {
        RoundClass::Empty => {}
        RoundClass::Compare => {
            for gi in desc.start as usize..desc.end as usize {
                let (a, b) = kernel.cx_pairs[gi];
                col_cx(cols, w, a, b, kernel.dir(gi));
            }
        }
        RoundClass::Route => {
            touched.clear();
            for m in &kernel.micro[desc.start as usize..desc.end as usize] {
                let ai = m.a as usize;
                let si = usize::from(m.flags & FLAG_SLOT1 != 0);
                let primary = m.flags & FLAG_PRIMARY != 0;
                match m.tag {
                    TAG_CX => col_cx(cols, w, m.a, m.b, primary),
                    TAG_MOVE => {
                        let fbase = (ai * 2 + si) * w;
                        let tbase = (m.b as usize * 2 + si) * w;
                        for l in 0..w {
                            let payload = if primary {
                                cols[ai * w + l].clone()
                            } else {
                                transit[fbase + l].take().expect("validated: slot occupied")
                            };
                            staged[tbase + l] = Some(payload);
                        }
                        touched.push(m.b * 2 + si as u32);
                    }
                    _ => {
                        let base = (ai * 2 + si) * w;
                        for l in 0..w {
                            let arrived =
                                transit[base + l].take().expect("validated: slot occupied");
                            let resident = &mut cols[ai * w + l];
                            let keep_arrived = if primary {
                                arrived < *resident
                            } else {
                                arrived > *resident
                            };
                            if keep_arrived {
                                *resident = arrived;
                            }
                        }
                    }
                }
            }
            for &idx in touched.iter() {
                let base = idx as usize * w;
                for l in 0..w {
                    transit[base + l] = staged[base + l].take();
                }
            }
        }
    }
}

/// Transpose a block of lanes in, run every round, transpose back.
fn exec_cols_block<K: Ord + Clone>(
    lanes: &mut [Vec<K>],
    kernel: &KernelProgram,
    scratch: &mut VerticalScratch<K>,
) {
    let w = lanes.len();
    let n = lanes[0].len();
    scratch.reset(n, w);
    for node in 0..n {
        for lane in lanes.iter() {
            scratch.cols.push(lane[node].clone());
        }
    }
    for ri in 0..kernel.rounds() {
        exec_cols_round(
            kernel,
            kernel.rounds[ri],
            w,
            &mut scratch.cols,
            &mut scratch.transit,
            &mut scratch.staged,
            &mut scratch.touched,
        );
    }
    debug_assert!(
        scratch.transit.iter().all(Option::is_none),
        "transit values left in flight after the program ended"
    );
    for node in 0..n {
        for (l, lane) in lanes.iter_mut().enumerate() {
            std::mem::swap(&mut lane[node], &mut scratch.cols[node * w + l]);
        }
    }
}

impl BspMachine {
    /// Validate and lower `program` straight to the vertical tier —
    /// [`BspMachine::lower`] plus the layout commitment.
    ///
    /// # Errors
    ///
    /// The first machine-model violation, as from
    /// [`BspMachine::try_validate`].
    pub fn lower_vertical(
        &self,
        program: &crate::bsp::CompiledProgram,
    ) -> Result<VerticalProgram, crate::bsp::ProgramError> {
        let kernel = Arc::new(self.lower(program)?);
        let _lower_span = self
            .logger
            .span(Tier::Vertical, Stage::LowerVertical, SpanClass::None);
        Ok(VerticalProgram::lower(kernel))
    }

    /// Execute a vertical program on up to 64 packed 0/1 vectors at
    /// once: `words[i]` holds bit `l` = lane `l`'s key at node rank
    /// `i` (see [`pack_zero_one_masks`]). Every lane lands exactly
    /// where [`BspMachine::run`] would put its scalar 0/1 vector —
    /// compare-exchange on 0/1 keys *is* `AND`/`OR`, and the routing
    /// schedule is data-independent.
    ///
    /// Returns the number of rounds executed; performs zero heap
    /// allocations once `scratch` is warm.
    ///
    /// # Panics
    ///
    /// Panics if the program was lowered for another shape or `words`
    /// is not one word per node.
    pub fn run_vertical_bits(
        &self,
        words: &mut [u64],
        vertical: &VerticalProgram,
        scratch: &mut BitScratch,
    ) -> u64 {
        let kernel = vertical.kernel();
        assert_eq!(
            kernel.shape(),
            self.shape(),
            "vertical program lowered for another shape"
        );
        assert_eq!(words.len() as u64, self.shape().len(), "one word per node");
        // Sort-grain span only above the program-size gate, same as the
        // scalar kernel (DESIGN.md §13): a bit-sliced pass over a small
        // program finishes in microseconds, and batch callers get their
        // amortized span from `run_vertical_batch` regardless.
        let _sort_span = self.logger.span_if(
            vertical.word_ops() >= SORT_OBS_MIN_OPS,
            Tier::Vertical,
            Stage::Sort,
            SpanClass::None,
        );
        scratch.reset(words.len());
        for ri in 0..kernel.rounds() {
            // Same round-grain gating as the kernel tier (DESIGN.md §13):
            // word-wide rounds run in nanoseconds, so only rounds with
            // enough ops get their own events and span.
            let observed = kernel.round_len(ri) >= ROUND_OBS_MIN_OPS;
            if observed {
                self.logger.log(|| Event::RoundStart {
                    round: ri as u64,
                    ops: kernel.round_len(ri) as u64,
                    parallel: false,
                });
            }
            let _round_span = self.logger.span_if(
                observed,
                Tier::Vertical,
                Stage::Round,
                kernel.rounds[ri].class.span_class(),
            );
            exec_bits_round(words, kernel, ri, scratch);
            if observed {
                self.logger.log(|| Event::RoundEnd { round: ri as u64 });
            }
        }
        kernel.rounds() as u64
    }

    /// Drive a batch of full-key vectors through the vertical tier:
    /// lanes are blocked 64 to a word, each block transposed into
    /// node-major columns and executed with word-wide swap masks, then
    /// transposed back. Bit-identical to [`BspMachine::run_kernel_batch`]
    /// (and therefore to per-lane [`BspMachine::run`]) on every input;
    /// blocks run in parallel, and warm pools make reruns allocation-free.
    ///
    /// Returns the number of rounds executed (same for every lane).
    ///
    /// # Panics
    ///
    /// Panics if the program was lowered for another shape or any
    /// vector is not one key per node.
    pub fn run_vertical_batch<K>(
        &self,
        batch: &mut [Vec<K>],
        vertical: &VerticalProgram,
        pool: &mut VerticalPool<K>,
    ) -> u64
    where
        K: Ord + Clone + Send + Sync,
    {
        let kernel = vertical.kernel();
        assert_eq!(
            kernel.shape(),
            self.shape(),
            "vertical program lowered for another shape"
        );
        for keys in batch.iter() {
            assert_eq!(keys.len() as u64, self.shape().len(), "one key per node");
        }
        let _batch_span = self
            .logger
            .span(Tier::Vertical, Stage::Batch, SpanClass::None);
        self.logger.log(|| Event::BatchScheduled {
            batch: batch.len() as u64,
            lanes: batch.len().min(rayon::current_num_threads()) as u64,
        });
        let blocks = batch.len().div_ceil(WORD_LANES);
        let scratches = pool.ensure(blocks);
        if blocks <= 1 {
            for (lanes, scratch) in batch.chunks_mut(WORD_LANES).zip(scratches.iter_mut()) {
                exec_cols_block(lanes, kernel, scratch);
            }
        } else {
            /// Distinct `&mut` targets per worker (the vendored `rayon`
            /// subset has no zip, so blocks pair lanes with scratch).
            struct Block<'a, K> {
                lanes: &'a mut [Vec<K>],
                scratch: &'a mut VerticalScratch<K>,
            }
            use rayon::prelude::*;
            let mut work: Vec<Block<'_, K>> = batch
                .chunks_mut(WORD_LANES)
                .zip(scratches.iter_mut())
                .map(|(lanes, scratch)| Block { lanes, scratch })
                .collect();
            work.par_iter_mut()
                .for_each(|b| exec_cols_block(b.lanes, kernel, b.scratch));
        }
        kernel.rounds() as u64
    }
}

// ---------------------------------------------------------------------------
// Fault injection on the vertical tier.
// ---------------------------------------------------------------------------

/// Iterate the set bit positions (lanes) of a mask, ascending.
#[derive(Clone, Copy)]
struct Lanes(u64);

impl Iterator for Lanes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let l = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(l)
    }
}

/// Per-lane fault decision, honouring the transient model (a fired
/// site never fires again for that lane) — the vertical copy of
/// `FaultCtx::decide`, with the fired set and injection log owned per
/// lane of the block.
fn decide_lane(
    plan: &FaultPlan,
    site: FaultSite,
    class: OpClass,
    fired: &mut HashSet<FaultSite>,
    injected: &mut Vec<InjectedFault>,
) -> Option<FaultKind> {
    let fault = if fired.contains(&site) {
        None
    } else {
        plan.decide(site, class)
    };
    if let Some(kind) = fault {
        fired.insert(site);
        injected.push(InjectedFault { site, kind });
    }
    fault
}

/// Mutable per-lane fault state for one block, split out so the round
/// executor can borrow it alongside the column buffers.
struct BlockFaults<'a> {
    plans: &'a [FaultPlan],
    fired: &'a mut [HashSet<FaultSite>],
    reports: &'a mut [FaultReport],
}

/// One faulty vertical round over the lanes in `active`. Op-major like
/// every other executor — for each op, every active lane consults its
/// own plan at the shared `FaultSite {round, op}` and applies the op
/// (possibly perturbed per `apply_op_faulty`'s semantics) to its
/// column slice. Inactive lanes' columns are untouched.
#[allow(clippy::too_many_arguments)]
fn exec_cols_round_faulty<K: Ord + Clone>(
    kernel: &KernelProgram,
    ri: usize,
    w: usize,
    active: u64,
    faults: &mut BlockFaults<'_>,
    cols: &mut [K],
    transit: &mut [Option<K>],
    staged: &mut [Option<K>],
    touched: &mut Vec<u32>,
) {
    let desc = kernel.rounds[ri];
    let round_idx = ri as u64;
    let cx = |cols: &mut [K],
              faults: &mut BlockFaults<'_>,
              oi: usize,
              a: u32,
              b: u32,
              min_to_a: bool| {
        let site = FaultSite {
            round: round_idx,
            op: oi as u64,
        };
        for l in Lanes(active) {
            let fault = decide_lane(
                &faults.plans[l],
                site,
                OpClass::Compare,
                &mut faults.fired[l],
                &mut faults.reports[l].injected,
            );
            let dir = min_to_a != fault.is_some();
            let (x, y) = (a as usize * w + l, b as usize * w + l);
            if (cols[x] <= cols[y]) != dir {
                cols.swap(x, y);
            }
        }
    };
    match desc.class {
        RoundClass::Empty => {}
        RoundClass::Compare => {
            for (oi, gi) in (desc.start as usize..desc.end as usize).enumerate() {
                let (a, b) = kernel.cx_pairs[gi];
                cx(cols, faults, oi, a, b, kernel.dir(gi));
            }
        }
        RoundClass::Route => {
            touched.clear();
            for (oi, m) in kernel.micro[desc.start as usize..desc.end as usize]
                .iter()
                .enumerate()
            {
                let ai = m.a as usize;
                let si = usize::from(m.flags & FLAG_SLOT1 != 0);
                let primary = m.flags & FLAG_PRIMARY != 0;
                let site = FaultSite {
                    round: round_idx,
                    op: oi as u64,
                };
                match m.tag {
                    TAG_CX => cx(cols, faults, oi, m.a, m.b, primary),
                    TAG_MOVE => {
                        let fbase = (ai * 2 + si) * w;
                        let tbase = (m.b as usize * 2 + si) * w;
                        for l in Lanes(active) {
                            let fault = decide_lane(
                                &faults.plans[l],
                                site,
                                OpClass::Route,
                                &mut faults.fired[l],
                                &mut faults.reports[l].injected,
                            );
                            // The source slot is consumed even when the
                            // payload is dropped (the wire fired).
                            let payload = if primary {
                                cols[ai * w + l].clone()
                            } else {
                                transit[fbase + l].take().expect("validated: slot occupied")
                            };
                            let payload = if fault.is_some() {
                                // Dropped in flight: the receiver's slot
                                // latches a stale copy of its own
                                // resident key.
                                cols[m.b as usize * w + l].clone()
                            } else {
                                payload
                            };
                            staged[tbase + l] = Some(payload);
                        }
                        touched.push(m.b * 2 + si as u32);
                    }
                    _ => {
                        let base = (ai * 2 + si) * w;
                        for l in Lanes(active) {
                            let fault = decide_lane(
                                &faults.plans[l],
                                site,
                                OpClass::Resolve,
                                &mut faults.fired[l],
                                &mut faults.reports[l].injected,
                            );
                            let arrived =
                                transit[base + l].take().expect("validated: slot occupied");
                            if fault.is_none() {
                                let resident = &mut cols[ai * w + l];
                                let keep_arrived = if primary {
                                    arrived < *resident
                                } else {
                                    arrived > *resident
                                };
                                if keep_arrived {
                                    *resident = arrived;
                                }
                            }
                            // Stalled: arrived discarded, resident
                            // survives, slot cleared on schedule.
                        }
                    }
                }
            }
            for &idx in touched.iter() {
                let base = idx as usize * w;
                for l in Lanes(active) {
                    transit[base + l] = staged[base + l].take();
                }
            }
        }
    }
}

impl BspMachine {
    /// [`BspMachine::run_batch_with_faults`] on the vertical tier:
    /// lanes are blocked into columns and run the checkpoint/retry
    /// protocol in **lockstep** — segment rounds execute op-major over
    /// the still-active lanes of the block, each lane injecting from
    /// its own `plan.fork(lane)` at the shared `FaultSite {round, op}`
    /// keys, then each active lane checks its own certificate at the
    /// boundary. Lanes that pass drop out of the retry set; lanes that
    /// fail restore only their own checkpoint columns and re-run.
    ///
    /// Lockstep preserves the serial accounting exactly: a lane stays
    /// in the retry set only while *it* keeps failing, so its k-th
    /// attempt here is its k-th attempt serially — same probe seeds,
    /// same detections, same retries, and (faults being per-lane
    /// transient) the same keys. Reports and outputs are bit-identical
    /// to [`BspMachine::run_batch_with_faults`], which the differential
    /// suite pins, event sequences included.
    ///
    /// Degrades like the scalar batch: a lane that exhausts its retries
    /// is quarantined — restored to its original input and re-run clean
    /// through the kernel tier — so every `Ok` lane ends snake-sorted.
    /// Per-lane errors are only the non-recoverable kinds (wrong key
    /// count). Never panics on any input.
    ///
    /// # Panics
    ///
    /// Panics if the program was lowered for another shape.
    pub fn run_vertical_batch_with_faults<K>(
        &self,
        batch: &mut [Vec<K>],
        vertical: &VerticalProgram,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        pool: &mut VerticalPool<K>,
    ) -> Vec<Result<FaultReport, FaultError>>
    where
        K: Ord + Clone + Send + Sync,
    {
        let kernel = vertical.kernel();
        assert_eq!(
            kernel.shape(),
            self.shape(),
            "vertical program lowered for another shape"
        );
        let _batch_span = self.logger.span(Tier::Fault, Stage::Batch, SpanClass::None);
        self.logger.log(|| Event::BatchScheduled {
            batch: batch.len() as u64,
            lanes: batch.len().min(rayon::current_num_threads()) as u64,
        });
        let shape = self.shape();
        let expected = shape.len();
        let n = expected as usize;
        let total_rounds = kernel.rounds();
        let mut results: Vec<Option<Result<FaultReport, FaultError>>> = batch
            .iter()
            .map(|keys| {
                (keys.len() as u64 != expected).then_some(Err(FaultError::WrongKeyCount {
                    expected,
                    got: keys.len(),
                }))
            })
            .collect();
        let good: Vec<usize> = (0..batch.len()).filter(|&i| results[i].is_none()).collect();
        let mut lane_buf: Vec<K> = Vec::new();
        let mut checkpoint: Vec<K> = Vec::new();
        for chunk in good.chunks(WORD_LANES) {
            let w = chunk.len();
            let scratch = &mut pool.ensure(1)[0];
            scratch.reset(n, w);
            // Transpose in, node-major: `node` strides one position of
            // *every* lane's vector at once, so there is no single
            // container for the loop to iterate.
            #[allow(clippy::needless_range_loop)]
            for node in 0..n {
                let cols = &mut scratch.cols;
                cols.extend(chunk.iter().map(|&bi| batch[bi][node].clone()));
            }
            if !plan.is_enabled() {
                // Fast path: plain vertical execution, no hashing, no
                // checks — fault-free execution of a validated program
                // is correct by construction.
                for ri in 0..total_rounds {
                    exec_cols_round(
                        kernel,
                        kernel.rounds[ri],
                        w,
                        &mut scratch.cols,
                        &mut scratch.transit,
                        &mut scratch.staged,
                        &mut scratch.touched,
                    );
                }
                for (l, &bi) in chunk.iter().enumerate() {
                    for (node, key) in batch[bi].iter_mut().enumerate() {
                        *key = scratch.cols[node * w + l].clone();
                    }
                    let mut report = FaultReport::default();
                    report.counters.useful_rounds = total_rounds as u64;
                    report.rounds = total_rounds as u64;
                    results[bi] = Some(Ok(report));
                }
                continue;
            }
            // Lanes keep their *original batch index* as the fork key —
            // malformed lanes still consume an index, exactly as the
            // scalar batch numbers its lanes.
            let plans: Vec<FaultPlan> = chunk.iter().map(|&bi| plan.fork(bi as u64)).collect();
            let originals: Vec<Vec<K>> = chunk.iter().map(|&bi| batch[bi].clone()).collect();
            let mut reports: Vec<FaultReport> = vec![FaultReport::default(); w];
            let mut fired: Vec<HashSet<FaultSite>> = vec![HashSet::new(); w];
            let full: u64 = if w == WORD_LANES { !0 } else { (1 << w) - 1 };
            let mut live: u64 = full;
            let mut dead: u64 = 0;
            for seg in segments(kernel.cert_points(), total_rounds) {
                if live == 0 {
                    break;
                }
                let seg_rounds = (seg.end - seg.start) as u64;
                // Transit is empty at segment boundaries, so the column
                // matrix is the entire checkpoint (shared by all lanes;
                // restores copy back per-lane slices).
                if policy.max_retries > 0 && seg.check.is_some() {
                    checkpoint.clear();
                    checkpoint.extend(scratch.cols.iter().cloned());
                }
                let mut active = live;
                let mut attempt: u32 = 0;
                loop {
                    for ri in seg.start..seg.end {
                        exec_cols_round_faulty(
                            kernel,
                            ri,
                            w,
                            active,
                            &mut BlockFaults {
                                plans: &plans,
                                fired: &mut fired,
                                reports: &mut reports,
                            },
                            &mut scratch.cols,
                            &mut scratch.transit,
                            &mut scratch.staged,
                            &mut scratch.touched,
                        );
                    }
                    debug_assert!(
                        scratch.transit.iter().all(Option::is_none),
                        "transit must drain at certificate boundaries"
                    );
                    let mut passed: u64 = 0;
                    for l in Lanes(active) {
                        // The check yields the failing certificate
                        // directly, so the failure arm cannot run
                        // without one — no panic path (mirrors the
                        // serial loop's structure exactly).
                        let failed_check = match seg.check {
                            None => None,
                            Some((boundary, dims, is_final)) => {
                                lane_buf.clear();
                                for node in 0..n {
                                    lane_buf.push(scratch.cols[node * w + l].clone());
                                }
                                // The final certificate is always checked
                                // in full, matching the serial loop.
                                let ok = if !is_final && policy.recheck_depth > 0 {
                                    sampled_subgraph_certificate(
                                        shape,
                                        &lane_buf,
                                        dims as usize,
                                        policy.recheck_depth,
                                        plans[l].probe_seed(boundary, u64::from(attempt)),
                                    )
                                } else {
                                    subgraphs_snake_sorted(shape, &lane_buf, dims as usize)
                                };
                                (!ok).then_some((boundary, dims, is_final))
                            }
                        };
                        if let Some((boundary, dims, is_final)) = failed_check {
                            reports[l].detections.push(Detection {
                                round: boundary,
                                dims,
                                sampled: !is_final && policy.recheck_depth > 0,
                            });
                            reports[l].counters.detections += 1;
                            reports[l].counters.wasted_rounds += seg_rounds;
                        } else {
                            passed |= 1 << l;
                            reports[l].counters.useful_rounds += seg_rounds;
                        }
                    }
                    active &= !passed;
                    if active == 0 {
                        break;
                    }
                    if attempt >= policy.max_retries {
                        // These lanes are out of retries: serial lanes
                        // return RetryExhausted here and the batch
                        // wrapper quarantines them; we mark them dead
                        // and quarantine below.
                        dead |= active;
                        live &= !active;
                        break;
                    }
                    attempt += 1;
                    // Backoff before the lockstep re-execution (zero —
                    // no syscall — unless the policy enables it). One
                    // sleep covers the whole retrying block, matching
                    // the serial path's per-attempt schedule.
                    let delay_ns = policy.backoff_ns(attempt);
                    if delay_ns > 0 {
                        std::thread::sleep(std::time::Duration::from_nanos(delay_ns));
                    }
                    for node in 0..n {
                        for l in Lanes(active) {
                            scratch.cols[node * w + l] = checkpoint[node * w + l].clone();
                        }
                    }
                    for l in Lanes(active) {
                        reports[l].retries.push(Retry {
                            round: seg.start as u64,
                            attempt,
                        });
                        reports[l].counters.retries += 1;
                    }
                }
            }
            let mut clean = ExecScratch::new();
            for (l, &bi) in chunk.iter().enumerate() {
                let mut report = std::mem::take(&mut reports[l]);
                if dead >> l & 1 == 1 {
                    // Quarantine: everything executed so far is
                    // discarded; re-run clean from the original input.
                    batch[bi].clone_from(&originals[l]);
                    exec_kernel(&mut batch[bi], kernel, &mut clean);
                    report.counters.wasted_rounds += report.counters.useful_rounds;
                    report.counters.useful_rounds = total_rounds as u64;
                    report.quarantined = true;
                } else {
                    for (node, key) in batch[bi].iter_mut().enumerate() {
                        *key = scratch.cols[node * w + l].clone();
                    }
                }
                report.rounds = report.counters.total_rounds();
                results[bi] = Some(Ok(report));
            }
        }
        let results: Vec<Result<FaultReport, FaultError>> = results
            .into_iter()
            .map(|r| r.unwrap_or(Err(FaultError::Internal("batch lane produced no outcome"))))
            .collect();
        for (lane, res) in results.iter().enumerate() {
            if let Ok(report) = res {
                self.emit_fault_events(report, Some(lane as u64));
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsp::compile;
    use crate::netsort::is_snake_sorted;
    use crate::sorters::{OetSnakeSorter, ShearSorter};
    use pns_graph::factories;

    fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            })
            .collect()
    }

    #[test]
    fn bits_path_matches_serial_runs_on_every_3_cube_vector() {
        // All 512 0/1 vectors of the 2-ary 3-cube, 64 lanes per word:
        // every lane must land exactly where the scalar machine puts it.
        let factor = factories::path(2);
        let program = compile(&factor, 3, &ShearSorter);
        let machine = BspMachine::new(&factor, 3);
        let vertical = machine.lower_vertical(&program).expect("validates");
        let n = machine.shape().len() as usize;
        let mut scratch = BitScratch::new();
        for base in (0u64..512).step_by(WORD_LANES) {
            let masks: Vec<u64> = (base..base + WORD_LANES as u64).collect();
            let mut words = pack_zero_one_masks(&masks, n);
            machine.run_vertical_bits(&mut words, &vertical, &mut scratch);
            for (l, &mask) in masks.iter().enumerate() {
                let mut serial: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
                machine.run(&mut serial, &program);
                assert_eq!(
                    unpack_zero_one_lane(&words, l),
                    serial,
                    "mask={mask:#x}: vertical lane vs serial run"
                );
            }
        }
    }

    #[test]
    fn pack_and_unpack_round_trip() {
        let masks: Vec<u64> = (0..7).map(|l| 0x2A ^ (l * 3)).collect();
        let words = pack_zero_one_masks(&masks, 6);
        for (l, &mask) in masks.iter().enumerate() {
            let lane = unpack_zero_one_lane(&words, l);
            let want: Vec<u8> = (0..6).map(|i| ((mask >> i) & 1) as u8).collect();
            assert_eq!(lane, want);
        }
    }

    #[test]
    fn column_batch_matches_kernel_batch_across_block_widths() {
        // 130 lanes = two full words plus a 2-lane tail: the blocked
        // path must agree with the per-lane kernel on every lane,
        // including relay-heavy routing (star factor).
        let cases = [
            (
                factories::path(3),
                3usize,
                &ShearSorter as &dyn crate::sorters::Pg2Sorter,
            ),
            (factories::star(4), 2, &OetSnakeSorter),
        ];
        for (factor, r, sorter) in cases {
            let program = compile(&factor, r, sorter);
            let machine = BspMachine::new(&factor, r);
            let kernel = machine.lower(&program).expect("validates");
            let vertical = machine.lower_vertical(&program).expect("validates");
            let len = machine.shape().len();
            let mut batch: Vec<Vec<u64>> = (0..130).map(|s| lcg_keys(len, s)).collect();
            let mut want = batch.clone();
            let mut pool = VerticalPool::new();
            let mut kpool = crate::kernel::ScratchPool::new();
            machine.run_vertical_batch(&mut batch, &vertical, &mut pool);
            machine.run_kernel_batch(&mut want, &kernel, &mut kpool);
            assert_eq!(batch, want, "factor={} r={r}", factor.name());
            for keys in &batch {
                assert!(is_snake_sorted(machine.shape(), keys));
            }
        }
    }

    #[test]
    fn pool_scratch_resizes_for_narrower_tail_blocks() {
        // Regression (ISSUE 6 satellite): a pool slot warmed by a
        // 64-lane block is strided for w=64; a narrower batch borrowing
        // the same slot must get rebuilt buffers, not stale wide ones.
        let factor = factories::star(4);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, 2);
        let vertical = machine.lower_vertical(&program).expect("validates");
        let len = machine.shape().len();
        let mut pool = VerticalPool::new();

        let mut wide: Vec<Vec<u64>> = (0..64).map(|s| lcg_keys(len, s)).collect();
        machine.run_vertical_batch(&mut wide, &vertical, &mut pool);
        assert_eq!(pool.slots[0].lanes(), 64);

        let mut narrow: Vec<Vec<u64>> = (0..5).map(|s| lcg_keys(len, 100 + s)).collect();
        let mut want = narrow.clone();
        machine.run_vertical_batch(&mut narrow, &vertical, &mut pool);
        assert_eq!(
            pool.slots[0].lanes(),
            5,
            "slot must re-stride to the tail width"
        );
        let mut kpool = crate::kernel::ScratchPool::new();
        let kernel = machine.lower(&program).expect("validates");
        machine.run_kernel_batch(&mut want, &kernel, &mut kpool);
        assert_eq!(narrow, want, "tail block after a wide warm-up");
    }

    #[test]
    fn vertical_fault_batch_matches_scalar_fault_batch() {
        let factor = factories::path(3);
        let program = compile(&factor, 3, &ShearSorter);
        let machine = BspMachine::new(&factor, 3);
        let vertical = machine.lower_vertical(&program).expect("validates");
        let len = machine.shape().len();
        let batch: Vec<Vec<u64>> = (0..10).map(|s| lcg_keys(len, 0xFA17 + s)).collect();
        let mut pool = VerticalPool::new();
        for policy in [RetryPolicy::default(), RetryPolicy::detect_only()] {
            for seed in 0..6u64 {
                let plan = FaultPlan::random(seed, 8_000);
                let mut a = batch.clone();
                let ra = machine.run_batch_with_faults(&mut a, &program, &plan, &policy);
                let mut b = batch.clone();
                let rb = machine
                    .run_vertical_batch_with_faults(&mut b, &vertical, &plan, &policy, &mut pool);
                assert_eq!(ra, rb, "seed={seed}: fault reports diverge");
                assert_eq!(a, b, "seed={seed}: faulty keys diverge");
            }
        }
    }

    #[test]
    fn vertical_fault_batch_flags_malformed_lanes_in_place() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &ShearSorter);
        let machine = BspMachine::new(&factor, 2);
        let vertical = machine.lower_vertical(&program).expect("validates");
        let len = machine.shape().len();
        let mut batch: Vec<Vec<u64>> = (0..5).map(|s| lcg_keys(len, s + 1)).collect();
        batch[2] = vec![7; 3];
        let mut pool = VerticalPool::new();
        let results = machine.run_vertical_batch_with_faults(
            &mut batch,
            &vertical,
            &FaultPlan::random(3, 10_000),
            &RetryPolicy::default(),
            &mut pool,
        );
        assert_eq!(results.len(), 5);
        for (lane, res) in results.iter().enumerate() {
            if lane == 2 {
                assert!(matches!(res, Err(FaultError::WrongKeyCount { .. })));
            } else {
                assert!(res.is_ok(), "lane {lane}");
                assert!(
                    is_snake_sorted(machine.shape(), &batch[lane]),
                    "lane {lane}"
                );
            }
        }
    }

    #[test]
    fn disabled_plan_reports_match_the_scalar_batch() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &ShearSorter);
        let machine = BspMachine::new(&factor, 2);
        let vertical = machine.lower_vertical(&program).expect("validates");
        let len = machine.shape().len();
        let batch: Vec<Vec<u64>> = (0..4).map(|s| lcg_keys(len, s + 9)).collect();
        let plan = FaultPlan::disabled();
        let policy = RetryPolicy::default();
        let mut a = batch.clone();
        let ra = machine.run_batch_with_faults(&mut a, &program, &plan, &policy);
        let mut b = batch.clone();
        let mut pool = VerticalPool::new();
        let rb =
            machine.run_vertical_batch_with_faults(&mut b, &vertical, &plan, &policy, &mut pool);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }
}
