//! Execution engines: charged vs executed cost semantics.
//!
//! Both engines implement [`Engine`], the two primitive parallel rounds of
//! the network algorithm:
//!
//! * `sort_round` — every `PG_2` subgraph (disjoint node sets) sorts its
//!   `N²` keys into forward snake order, ascending or descending;
//! * `oet_round` — disjoint node pairs compare-exchange, minimum kept at
//!   the first node of each pair.
//!
//! The **charged** engine performs the data movement instantly and charges
//! the cost-model constants — the paper's accounting. The **executed**
//! engine runs a real comparator program for each sort and derives the
//! factor-routing cost of every round from the actual labels involved,
//! verifying in the process that each round is realizable on the network
//! (adjacent labels) or routable inside factor copies (Section 4's
//! non-Hamiltonian case).

use crate::cost::CostModel;
use crate::sorters::{run_program, validate_program, Pg2Sorter, Round};
use pns_graph::{route_compare_exchange, Graph};
use pns_obs::{Event, EventLogger};
use pns_order::radix::Shape;
use pns_order::Direction;
use rayon::prelude::*;
use std::collections::HashMap;

/// One `PG_2` sort instance within a parallel round: the subgraph's node
/// ranks in forward snake order, and the direction to sort in.
#[derive(Debug, Clone)]
pub struct Pg2Instance {
    /// Node ranks, indexed by forward snake position.
    pub nodes: Vec<u64>,
    /// Sort direction (ascending for even group labels, Step 4).
    pub dir: Direction,
}

/// The two primitive parallel rounds of the network algorithm. Each
/// returns the number of network steps the round took.
pub trait Engine<K: Ord + Clone + Send + Sync> {
    /// One parallel round of `PG_2` sorts over disjoint subgraphs.
    fn sort_round(&mut self, keys: &mut [K], subgraphs: &[Pg2Instance]) -> u64;

    /// One parallel compare-exchange round over disjoint node pairs; the
    /// minimum ends at the first node of each pair.
    fn oet_round(&mut self, keys: &mut [K], pairs: &[(u64, u64)]) -> u64;
}

/// Charged engine: instant data movement, paper-constant costs.
#[derive(Debug, Clone)]
pub struct ChargedEngine {
    cost: CostModel,
    logger: EventLogger,
}

impl ChargedEngine {
    /// Build a charged engine with the given cost model.
    #[must_use]
    pub fn new(cost: CostModel) -> Self {
        ChargedEngine {
            cost,
            logger: EventLogger::disabled(),
        }
    }

    /// The cost model in use.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Emit one `S2Unit`/`RouteUnit` event per engine round into
    /// `logger` — i.e. exactly where the algorithm's `Counters`
    /// increment, so the event stream's unit sums equal the counter
    /// totals.
    pub fn attach_logger(&mut self, logger: EventLogger) {
        self.logger = logger;
    }
}

/// Below this many independent work items a parallel round runs
/// serially: the rayon fork-join overhead dwarfs the work on tiny
/// rounds. Shared by the engines here and the BSP executor
/// ([`crate::bsp::BspMachine::run_parallel`]).
pub const PAR_THRESHOLD: usize = 64;

impl<K: Ord + Clone + Send + Sync> Engine<K> for ChargedEngine {
    fn sort_round(&mut self, keys: &mut [K], subgraphs: &[Pg2Instance]) -> u64 {
        let gather_sort = |sg: &Pg2Instance, keys: &[K]| {
            let mut buf: Vec<K> = sg.nodes.iter().map(|&v| keys[v as usize].clone()).collect();
            buf.sort_unstable();
            if sg.dir == Direction::Descending {
                buf.reverse();
            }
            buf
        };
        if subgraphs.len() < PAR_THRESHOLD {
            // Serial gather-sort-scatter, one subgraph at a time.
            for sg in subgraphs {
                let buf = gather_sort(sg, keys);
                for (&v, k) in sg.nodes.iter().zip(buf) {
                    keys[v as usize] = k;
                }
            }
        } else {
            // Gather-sort in parallel (subgraphs are disjoint), scatter
            // after.
            let sorted: Vec<Vec<K>> = subgraphs
                .par_iter()
                .map(|sg| gather_sort(sg, keys))
                .collect();
            for (sg, buf) in subgraphs.iter().zip(sorted) {
                for (&v, k) in sg.nodes.iter().zip(buf) {
                    keys[v as usize] = k;
                }
            }
        }
        self.logger.log(|| Event::S2Unit {
            units: 1,
            width: subgraphs.len() as u64,
        });
        self.cost.s2_steps
    }

    fn oet_round(&mut self, keys: &mut [K], pairs: &[(u64, u64)]) -> u64 {
        for &(a, b) in pairs {
            let (a, b) = (a as usize, b as usize);
            if keys[a] > keys[b] {
                keys.swap(a, b);
            }
        }
        self.logger.log(|| Event::RouteUnit {
            units: 1,
            width: pairs.len() as u64,
        });
        self.cost.route_steps
    }
}

/// Executed engine: real comparator programs, real routing costs, full
/// edge-legality verification.
pub struct ExecutedEngine {
    factor: Graph,
    shape: Shape,
    program: Vec<Round>,
    /// Steps each program round costs on this factor (1 if all compared
    /// labels are factor-adjacent, else the measured routing rounds).
    program_round_costs: Vec<u64>,
    /// Cache: set of factor-label pairs → routing cost.
    pattern_cache: HashMap<Vec<(u32, u32)>, u64>,
    sorter_name: &'static str,
    logger: EventLogger,
}

impl ExecutedEngine {
    /// Build an executed engine for the given factor/shape, running
    /// `sorter`'s program for every `PG_2` sort.
    ///
    /// # Panics
    ///
    /// Panics if the program is structurally invalid (see
    /// [`validate_program`]).
    #[must_use]
    pub fn new(factor: &Graph, shape: Shape, sorter: &dyn Pg2Sorter) -> Self {
        assert_eq!(factor.n(), shape.n());
        let program = sorter.program(shape.n());
        validate_program(shape.n(), &program);
        let mut engine = ExecutedEngine {
            factor: factor.clone(),
            shape,
            program: program.clone(),
            program_round_costs: Vec::new(),
            pattern_cache: HashMap::new(),
            sorter_name: sorter.name(),
            logger: EventLogger::disabled(),
        };
        let costs: Vec<u64> = program
            .iter()
            .map(|round| engine.comparator_round_cost(round))
            .collect();
        engine.program_round_costs = costs;
        engine
    }

    /// Total steps one `PG_2` sort takes under this engine.
    #[must_use]
    pub fn s2_steps(&self) -> u64 {
        self.program_round_costs.iter().sum()
    }

    /// The sorter's name.
    #[must_use]
    pub fn sorter_name(&self) -> &'static str {
        self.sorter_name
    }

    /// Emit one `S2Unit`/`RouteUnit` event per engine round into
    /// `logger` (same reconciliation contract as
    /// [`ChargedEngine::attach_logger`]).
    pub fn attach_logger(&mut self, logger: EventLogger) {
        self.logger = logger;
    }

    /// Cost of one comparator round. Comparators run inside factor copies
    /// (a copy = one axis value fixed, the other free); copies route in
    /// parallel, so the round cost is the maximum routing cost over the
    /// per-copy label-pair patterns. Within one copy the pairs are
    /// disjoint (each node appears in at most one comparator per round).
    fn comparator_round_cost(&mut self, round: &[(u32, u32)]) -> u64 {
        let n = self.shape.n();
        // (axis, fixed other-coordinate) → pattern of label pairs.
        let mut by_copy: HashMap<(u8, usize), Vec<(u32, u32)>> = HashMap::new();
        for &(p, q) in round {
            let (a1, a2) = pns_order::snake::snake2_unrank(n, p as u64);
            let (b1, b2) = pns_order::snake::snake2_unrank(n, q as u64);
            if a1 != b1 {
                debug_assert_eq!(a2, b2);
                by_copy
                    .entry((0, a2))
                    .or_default()
                    .push(order_pair(a1 as u32, b1 as u32));
            } else {
                by_copy
                    .entry((1, a1))
                    .or_default()
                    .push(order_pair(a2 as u32, b2 as u32));
            }
        }
        let mut cost = 0u64;
        for (_, mut pairs) in by_copy {
            pairs.sort_unstable();
            pairs.dedup();
            cost = cost.max(self.pattern_cost(pairs));
        }
        cost.max(1)
    }

    /// Steps to realize one simultaneous set of label-pair exchanges
    /// inside a factor copy: 1 if all pairs are edges, else the measured
    /// synchronous routing rounds for the two-way key exchange.
    fn pattern_cost(&mut self, pairs: Vec<(u32, u32)>) -> u64 {
        if let Some(&c) = self.pattern_cache.get(&pairs) {
            return c;
        }
        let cost = if pairs.iter().all(|&(a, b)| self.factor.has_edge(a, b)) {
            1
        } else {
            route_compare_exchange(&self.factor, &pairs).rounds as u64
        };
        self.pattern_cache.insert(pairs, cost);
        cost
    }
}

fn order_pair(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

impl<K: Ord + Clone + Send + Sync> Engine<K> for ExecutedEngine {
    fn sort_round(&mut self, keys: &mut [K], subgraphs: &[Pg2Instance]) -> u64 {
        let program = &self.program;
        let gather_run = |sg: &Pg2Instance, keys: &[K]| {
            let mut buf: Vec<K> = sg.nodes.iter().map(|&v| keys[v as usize].clone()).collect();
            run_program(&mut buf, program, sg.dir);
            buf
        };
        if subgraphs.len() < PAR_THRESHOLD {
            for sg in subgraphs {
                let buf = gather_run(sg, keys);
                for (&v, k) in sg.nodes.iter().zip(buf) {
                    keys[v as usize] = k;
                }
            }
        } else {
            let sorted: Vec<Vec<K>> = subgraphs
                .par_iter()
                .map(|sg| gather_run(sg, keys))
                .collect();
            for (sg, buf) in subgraphs.iter().zip(sorted) {
                for (&v, k) in sg.nodes.iter().zip(buf) {
                    keys[v as usize] = k;
                }
            }
        }
        self.logger.log(|| Event::S2Unit {
            units: 1,
            width: subgraphs.len() as u64,
        });
        self.program_round_costs.iter().sum()
    }

    fn oet_round(&mut self, keys: &mut [K], pairs: &[(u64, u64)]) -> u64 {
        // Derive the per-factor-copy label-pair patterns and verify
        // structure: each pair must differ in exactly one digit, and a
        // copy is identified by the differing dimension plus the node with
        // that digit zeroed. Copies route in parallel: cost = max over
        // per-copy patterns.
        let mut per_copy: HashMap<(usize, u64), Vec<(u32, u32)>> = HashMap::new();
        for &(a, b) in pairs {
            let mut differing = None;
            for d in 0..self.shape.r() {
                let da = self.shape.digit(a, d);
                let db = self.shape.digit(b, d);
                if da != db {
                    assert!(
                        differing.is_none(),
                        "transposition pair ({a}, {b}) differs in more than one dimension"
                    );
                    differing = Some((d, order_pair(da as u32, db as u32)));
                }
            }
            // A degenerate `(a, a)` pair (a sorter bug) is a semantic
            // no-op — it costs nothing and swaps nothing — so it is
            // skipped in the accounting rather than panicking.
            let Some((d, pair)) = differing else {
                continue;
            };
            let copy = self.shape.with_digit(a, d, 0);
            per_copy.entry((d, copy)).or_default().push(pair);
        }
        let mut steps = 0u64;
        for (_, mut pat) in per_copy {
            pat.sort_unstable();
            pat.dedup();
            steps = steps.max(self.pattern_cost(pat));
        }
        for &(a, b) in pairs {
            let (a, b) = (a as usize, b as usize);
            if keys[a] > keys[b] {
                keys.swap(a, b);
            }
        }
        // A synchronous round elapses even when this parity class happens
        // to be empty (Lemma 3 charges both transposition rounds).
        self.logger.log(|| Event::RouteUnit {
            units: 1,
            width: pairs.len() as u64,
        });
        steps.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorters::{Hypercube2Sorter, OetSnakeSorter, ShearSorter};
    use pns_graph::factories;

    fn sort_one_subgraph<E: Engine<u32>>(engine: &mut E, n: usize) -> (Vec<u32>, u64) {
        let len = n * n;
        let mut keys: Vec<u32> = (0..len as u32).rev().collect();
        let nodes: Vec<u64> = {
            // A standalone PG_2: node rank = x2*n + x1; forward snake order.
            (0..len as u64)
                .map(|p| {
                    let (x1, x2) = pns_order::snake::snake2_unrank(n, p);
                    (x2 * n + x1) as u64
                })
                .collect()
        };
        let steps = engine.sort_round(
            &mut keys,
            &[Pg2Instance {
                nodes: nodes.clone(),
                dir: Direction::Ascending,
            }],
        );
        // Read back in snake order.
        let result: Vec<u32> = nodes.iter().map(|&v| keys[v as usize]).collect();
        (result, steps)
    }

    #[test]
    fn charged_engine_sorts_and_charges_constant() {
        let mut e = ChargedEngine::new(CostModel::paper_grid(4));
        let (out, steps) = sort_one_subgraph(&mut e, 4);
        assert_eq!(out, (0..16).collect::<Vec<u32>>());
        assert_eq!(steps, 12); // 3N
    }

    #[test]
    fn executed_engine_on_path_factor_counts_program_rounds() {
        let factor = factories::path(4);
        let shape = Shape::new(4, 2);
        let mut e = ExecutedEngine::new(&factor, shape, &ShearSorter);
        // Path factor with natural labels: every comparator is an edge, so
        // each round costs exactly 1 step.
        let prog_rounds = ShearSorter.program(4).len() as u64;
        assert_eq!(e.s2_steps(), prog_rounds);
        let (out, steps) = sort_one_subgraph(&mut e, 4);
        assert_eq!(out, (0..16).collect::<Vec<u32>>());
        assert_eq!(steps, prog_rounds);
    }

    #[test]
    fn executed_engine_hypercube_sorter_costs_three() {
        let factor = factories::k2();
        let shape = Shape::new(2, 2);
        let mut e = ExecutedEngine::new(&factor, shape, &Hypercube2Sorter);
        assert_eq!(e.s2_steps(), 3);
        let (out, steps) = sort_one_subgraph(&mut e, 2);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(steps, 3);
    }

    #[test]
    fn executed_engine_routes_on_non_hamiltonian_factor() {
        // Star factor: labels 0 (center), 1, 2, 3 — label pairs (1,2),
        // (2,3) are not edges, so rounds must cost more than 1 step.
        let factor = factories::star(4);
        let shape = Shape::new(4, 2);
        let mut e = ExecutedEngine::new(&factor, shape, &OetSnakeSorter);
        assert!(e.s2_steps() > OetSnakeSorter.program(4).len() as u64);
        let (out, _) = sort_one_subgraph(&mut e, 4);
        assert_eq!(
            out,
            (0..16).collect::<Vec<u32>>(),
            "routing preserves sorting"
        );
    }

    #[test]
    fn charged_oet_round_swaps_out_of_order_pairs() {
        let mut e = ChargedEngine::new(CostModel::custom("t", 5, 2));
        let mut keys = vec![9u32, 1, 7, 3];
        let steps = Engine::<u32>::oet_round(&mut e, &mut keys, &[(0, 1), (2, 3)]);
        assert_eq!(keys, vec![1, 9, 3, 7]);
        assert_eq!(steps, 2);
    }

    #[test]
    fn executed_oet_round_costs_one_on_adjacent_labels() {
        let factor = factories::path(3);
        let shape = Shape::new(3, 2);
        let mut e = ExecutedEngine::new(&factor, shape, &OetSnakeSorter);
        // Pairs along dimension 0 with labels (0,1): nodes 0-1 and 3-4.
        let mut keys = vec![5u32, 0, 2, 8, 1, 3, 4, 6, 7];
        let steps = Engine::<u32>::oet_round(&mut e, &mut keys, &[(0, 1), (3, 4)]);
        assert_eq!(steps, 1);
        assert_eq!(keys[0], 0);
        assert_eq!(keys[1], 5);
    }

    #[test]
    #[should_panic(expected = "more than one dimension")]
    fn executed_oet_rejects_diagonal_pairs() {
        let factor = factories::path(3);
        let shape = Shape::new(3, 2);
        let mut e = ExecutedEngine::new(&factor, shape, &OetSnakeSorter);
        let mut keys = vec![0u32; 9];
        // Nodes 0 (0,0) and 4 (1,1) differ in both digits.
        let _ = Engine::<u32>::oet_round(&mut e, &mut keys, &[(0, 4)]);
    }
}
