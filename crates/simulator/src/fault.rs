//! Fault-injecting execution with round-level checkpoint/retry.
//!
//! This module runs a [`CompiledProgram`] under a [`FaultPlan`]: every
//! operation site may suffer a *transient* fault (each site fires at
//! most once per run), and the executor defends itself with the
//! program's stage certificates:
//!
//! 1. **Injection** — [`FaultPlan::decide`] is consulted per site; a
//!    fired site perturbs the op's semantics ([`FaultKind::FlipCompare`]
//!    inverts the comparison direction, [`FaultKind::DropRoute`]
//!    delivers a stale clone of the *receiver's* resident key instead of
//!    the payload, [`FaultKind::StallResolve`] discards the arrived
//!    value and keeps the resident key). All three preserve the
//!    transit-slot occupancy schedule, so the machine-model discipline
//!    validated by `try_validate` still holds and transit is empty at
//!    every certificate boundary.
//! 2. **Detection** — at each [`CertPoint`] the executor checks the
//!    stage invariant (every `dims`-dimensional subgraph over the low
//!    dimensions snake-sorted): in full via
//!    [`crate::verify::subgraphs_snake_sorted`] when
//!    [`RetryPolicy::recheck_depth`] is 0, or by `recheck_depth` sampled
//!    adjacent-pair probes otherwise. The **final** certificate is
//!    always checked in full, so an `Ok` return implies the output is
//!    snake-sorted.
//! 3. **Recovery** — the key vector is checkpointed at each segment
//!    boundary (transit is provably empty there, so keys are the whole
//!    state); a failed check restores the checkpoint and re-runs the
//!    segment, up to [`RetryPolicy::max_retries`] times. Because faults
//!    are transient and already-fired sites are tracked globally, a
//!    retried segment executes clean — the analogue of repairing a
//!    faulty link between synchronous phases of a periodic network.
//!
//! [`BspMachine::run_batch_with_faults`] adds graceful degradation: a
//! lane that exhausts its retries is *quarantined* — its original input
//! is restored and re-sorted serially without injection — while healthy
//! lanes commit their (cheaper) checkpointed runs. The batch never
//! panics and returns one `Result` per lane.
//!
//! When the plan is disabled, execution takes a fast path identical to
//! [`BspMachine::run_batch`]'s inner loop: no decision hashing, no
//! checkpoints, no certificate checks (fault-free execution of a
//! validated program is correct by construction), which keeps the
//! disabled-injection overhead within noise.

use std::collections::HashSet;

use pns_fault::detect::sampled_subgraph_certificate;
use pns_fault::{FaultKind, FaultPlan, FaultSite, OpClass, RetryPolicy};
use pns_obs::{Event, SpanClass, Stage, Tier};
use pns_order::radix::Shape;

use crate::bsp::{
    exec_program, exec_round_serial_scratch, BspMachine, CertPoint, CompiledProgram, Op,
    ProgramError,
};
use crate::kernel::{exec_kernel_round, ExecScratch, KernelProgram, RoundClass};
use crate::verify::subgraphs_snake_sorted;
use pns_core::RetryCounters;

/// Why a fault-tolerant run could not produce a sorted vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The key vector does not have one key per node.
    WrongKeyCount {
        /// Keys the machine's shape requires.
        expected: u64,
        /// Keys actually supplied.
        got: usize,
    },
    /// The program failed static validation; nothing was executed.
    Invalid(ProgramError),
    /// A segment's certificate still failed after the last permitted
    /// retry. The key vector is left in the (corrupted) state of the
    /// final attempt; batch execution quarantines the lane instead of
    /// surfacing this.
    RetryExhausted {
        /// Boundary round of the segment that could not be repaired.
        round: u64,
        /// Attempts executed (initial run plus retries).
        attempts: u32,
    },
    /// An executor invariant broke (e.g. a batch lane produced no
    /// outcome). Unreachable by construction; surfaced as a typed error
    /// rather than a panic so callers stay up regardless.
    Internal(&'static str),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::WrongKeyCount { expected, got } => {
                write!(f, "expected {expected} keys (one per node), got {got}")
            }
            FaultError::Invalid(e) => write!(f, "invalid program: {e}"),
            FaultError::RetryExhausted { round, attempts } => write!(
                f,
                "certificate at round {round} still failing after {attempts} attempts"
            ),
            FaultError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for FaultError {
    fn from(e: ProgramError) -> Self {
        FaultError::Invalid(e)
    }
}

/// One fault that actually fired during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Where it fired.
    pub site: FaultSite,
    /// What fired.
    pub kind: FaultKind,
}

/// One failed certificate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Boundary round the certificate guards.
    pub round: u64,
    /// Subgraph dimensionality the certificate checked.
    pub dims: u32,
    /// Whether the failing check was a sampled probe rather than the
    /// full certificate.
    pub sampled: bool,
}

/// One checkpoint restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry {
    /// Round the re-execution restarts from (the checkpoint).
    pub round: u64,
    /// Attempt number for the segment (1-based).
    pub attempt: u32,
}

/// What happened during a fault-tolerant run. Returned by
/// [`BspMachine::run_with_faults`] on success; batch lanes return one
/// per lane (with [`FaultReport::quarantined`] marking fallbacks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Total rounds executed, useful and wasted
    /// (= `counters.total_rounds()`).
    pub rounds: u64,
    /// Every fault that fired, in execution order.
    pub injected: Vec<InjectedFault>,
    /// Every failed certificate check, in execution order.
    pub detections: Vec<Detection>,
    /// Every checkpoint restore, in execution order.
    pub retries: Vec<Retry>,
    /// Whether the lane fell back to a clean serial re-run (batch
    /// execution only; always `false` for single runs).
    pub quarantined: bool,
    /// Useful/wasted round accounting for step-inflation reporting.
    pub counters: RetryCounters,
}

/// A program segment between certificate boundaries.
pub(crate) struct Segment {
    /// First round (inclusive).
    pub(crate) start: usize,
    /// One past the last round.
    pub(crate) end: usize,
    /// The certificate closing the segment: `(boundary round, dims,
    /// is_final)`. `None` for an uncertified tail (hand-built programs
    /// whose cert points do not reach the end).
    pub(crate) check: Option<(u64, u32, bool)>,
}

/// Split a program into checkpointable segments at its certificate
/// boundaries. Works off the certificate list and the round count
/// alone, so interpreted and lowered programs (which share both, 1:1)
/// segment identically. Programs without certificates (e.g. built via
/// `CompiledProgram::from_rounds`) become a single unchecked segment —
/// the executor then runs open-loop and cannot detect anything.
pub(crate) fn segments(certs: &[CertPoint], rounds: usize) -> Vec<Segment> {
    let mut out = Vec::with_capacity(certs.len() + 1);
    let mut start = 0usize;
    for (i, c) in certs.iter().enumerate() {
        out.push(Segment {
            start,
            end: c.round as usize,
            check: Some((c.round, c.dims, i == certs.len() - 1)),
        });
        start = c.round as usize;
    }
    if start < rounds || certs.is_empty() {
        out.push(Segment {
            start,
            end: rounds,
            check: None,
        });
    }
    out
}

/// Fault-decision state threaded through the round executors: the plan
/// plus the per-run fired set and injection log.
struct FaultCtx<'a> {
    plan: &'a FaultPlan,
    fired: &'a mut HashSet<FaultSite>,
    injected: &'a mut Vec<InjectedFault>,
}

impl FaultCtx<'_> {
    /// Decide whether the site `(round_idx, oi)` fires under the plan,
    /// honouring the transient model (a site that already fired never
    /// fires again, so retried segments execute clean) and recording
    /// what fired. Keyed purely by `(round, op)` indices, which lowering
    /// preserves — so the interpreter and kernel fault paths draw the
    /// identical decision sequence from the same plan.
    fn decide(&mut self, round_idx: u64, oi: usize, class: OpClass) -> Option<FaultKind> {
        let site = FaultSite {
            round: round_idx,
            op: oi as u64,
        };
        let fault = if self.fired.contains(&site) {
            None
        } else {
            self.plan.decide(site, class)
        };
        if let Some(kind) = fault {
            self.fired.insert(site);
            self.injected.push(InjectedFault { site, kind });
        }
        fault
    }
}

/// Apply one op under an (optional) fired fault. Semantics match
/// `exec_round_serial` except at fired sites; the transit occupancy
/// schedule is identical either way. Shared by the interpreter and
/// kernel fault paths, so their fault semantics cannot drift apart.
fn apply_op_faulty<K: Ord + Clone>(
    op: &Op,
    fault: Option<FaultKind>,
    keys: &mut [K],
    transit: &mut [[Option<K>; 2]],
    incoming: &mut Vec<(usize, usize, K)>,
) {
    match *op {
        Op::CompareExchange { a, b, min_to_a } => {
            let min_to_a = if fault.is_some() { !min_to_a } else { min_to_a };
            let (ai, bi) = (a as usize, b as usize);
            let a_has_min = keys[ai] <= keys[bi];
            if a_has_min != min_to_a {
                keys.swap(ai, bi);
            }
        }
        Op::Move {
            from,
            to,
            slot,
            from_key,
        } => {
            let (fi, si) = (from as usize, slot as usize);
            // The source slot is consumed even when the payload is
            // dropped — the wire fired, the message was lost.
            let payload = if from_key {
                keys[fi].clone()
            } else {
                transit[fi][si].take().expect("validated: slot occupied")
            };
            let payload = if fault.is_some() {
                // Dropped in flight: the receiver's slot latches a
                // stale copy of its own resident key.
                keys[to as usize].clone()
            } else {
                payload
            };
            incoming.push((to as usize, si, payload));
        }
        Op::Resolve {
            node,
            slot,
            keep_min,
        } => {
            let (ni, si) = (node as usize, slot as usize);
            let arrived = transit[ni][si].take().expect("validated: slot occupied");
            if fault.is_none() {
                let resident = &mut keys[ni];
                let keep_arrived = if keep_min {
                    arrived < *resident
                } else {
                    arrived > *resident
                };
                if keep_arrived {
                    *resident = arrived;
                }
            }
            // Stalled: the arrived value is discarded, the resident
            // key survives; the slot is still cleared on schedule.
        }
    }
}

/// Execute one interpreted round with fault injection.
fn exec_round_faulty<K: Ord + Clone>(
    keys: &mut [K],
    transit: &mut [[Option<K>; 2]],
    incoming: &mut Vec<(usize, usize, K)>,
    round: &[Op],
    round_idx: u64,
    ctx: &mut FaultCtx<'_>,
) {
    incoming.clear();
    for (oi, op) in round.iter().enumerate() {
        let class = match op {
            Op::CompareExchange { .. } => OpClass::Compare,
            Op::Move { .. } => OpClass::Route,
            Op::Resolve { .. } => OpClass::Resolve,
        };
        let fault = ctx.decide(round_idx, oi, class);
        apply_op_faulty(op, fault, keys, transit, incoming);
    }
    for (to, slot, payload) in incoming.drain(..) {
        transit[to][slot] = Some(payload);
    }
}

/// Execute one *lowered* round with fault injection. Micro-ops decode
/// back to the exact source [`Op`]s in original order (lowering is
/// order-preserving), so the op index — and with it every
/// [`FaultSite`] decision — matches the interpreter path exactly.
fn exec_kernel_round_faulty<K: Ord + Clone>(
    keys: &mut [K],
    transit: &mut [[Option<K>; 2]],
    incoming: &mut Vec<(usize, usize, K)>,
    kernel: &KernelProgram,
    ri: usize,
    ctx: &mut FaultCtx<'_>,
) {
    incoming.clear();
    let desc = kernel.rounds[ri];
    let round_idx = ri as u64;
    match desc.class {
        RoundClass::Empty => {}
        RoundClass::Compare => {
            for (oi, gi) in (desc.start as usize..desc.end as usize).enumerate() {
                let (a, b) = kernel.cx_pairs[gi];
                let op = Op::CompareExchange {
                    a: u64::from(a),
                    b: u64::from(b),
                    min_to_a: kernel.dir(gi),
                };
                let fault = ctx.decide(round_idx, oi, OpClass::Compare);
                apply_op_faulty(&op, fault, keys, transit, incoming);
            }
        }
        RoundClass::Route => {
            for (oi, m) in kernel.micro[desc.start as usize..desc.end as usize]
                .iter()
                .enumerate()
            {
                let op = m.to_op();
                let class = match op {
                    Op::CompareExchange { .. } => OpClass::Compare,
                    Op::Move { .. } => OpClass::Route,
                    Op::Resolve { .. } => OpClass::Resolve,
                };
                let fault = ctx.decide(round_idx, oi, class);
                apply_op_faulty(&op, fault, keys, transit, incoming);
            }
        }
    }
    for (to, slot, payload) in incoming.drain(..) {
        transit[to][slot] = Some(payload);
    }
}

/// Checkpoint/retry loop over an abstract faulty round executor, free
/// of `&BspMachine` so batch lanes can run it from worker threads
/// without sharing the (single-threaded) event logger. The interpreter
/// and kernel paths both drive this loop — segmentation, checkpoints,
/// certificate checks, probe seeds, and accounting are shared code, so
/// the two paths can only differ in per-round execution (and that is
/// pinned by the differential suite). Returns the report plus
/// `Some((boundary, attempts))` if a segment exhausted its retries.
fn checkpoint_retry_loop<K: Ord + Clone>(
    shape: Shape,
    keys: &mut [K],
    certs: &[CertPoint],
    total_rounds: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    mut run_round: impl FnMut(&mut [K], &mut [[Option<K>; 2]], usize, &mut FaultCtx<'_>),
) -> (FaultReport, Option<(u64, u32)>) {
    let mut report = FaultReport::default();
    let mut fired: HashSet<FaultSite> = HashSet::new();
    let mut transit: Vec<[Option<K>; 2]> = vec![[None, None]; keys.len()];
    for seg in segments(certs, total_rounds) {
        // Transit is empty at segment boundaries (relays complete within
        // a stage), so the key vector is the entire checkpoint.
        let checkpoint: Option<Vec<K>> =
            (policy.max_retries > 0 && seg.check.is_some()).then(|| keys.to_vec());
        let seg_rounds = (seg.end - seg.start) as u64;
        let mut attempt: u32 = 0;
        loop {
            for ri in seg.start..seg.end {
                let mut ctx = FaultCtx {
                    plan,
                    fired: &mut fired,
                    injected: &mut report.injected,
                };
                run_round(keys, &mut transit, ri, &mut ctx);
            }
            debug_assert!(
                transit.iter().all(|t| t[0].is_none() && t[1].is_none()),
                "transit must drain at certificate boundaries"
            );
            // Checks produce the failing certificate directly (rather
            // than a bool re-paired with `seg.check` afterwards), so the
            // failure path cannot be reached without one — no panic path.
            let failed_check = match seg.check {
                None => None,
                Some((boundary, dims, is_final)) => {
                    // The final certificate is always checked in full —
                    // an Ok return must imply a snake-sorted output.
                    let ok = if !is_final && policy.recheck_depth > 0 {
                        sampled_subgraph_certificate(
                            shape,
                            keys,
                            dims as usize,
                            policy.recheck_depth,
                            plan.probe_seed(boundary, u64::from(attempt)),
                        )
                    } else {
                        subgraphs_snake_sorted(shape, keys, dims as usize)
                    };
                    (!ok).then_some((boundary, dims, is_final))
                }
            };
            let Some((boundary, dims, is_final)) = failed_check else {
                report.counters.useful_rounds += seg_rounds;
                break;
            };
            report.detections.push(Detection {
                round: boundary,
                dims,
                sampled: !is_final && policy.recheck_depth > 0,
            });
            report.counters.detections += 1;
            report.counters.wasted_rounds += seg_rounds;
            // Retrying requires the checkpoint taken at the segment
            // boundary; it exists whenever max_retries > 0 and the
            // segment is certified (= this branch). Degrade to
            // retry-exhausted rather than panic if that ever breaks.
            let retryable = checkpoint
                .as_deref()
                .filter(|_| attempt < policy.max_retries);
            let Some(restore) = retryable else {
                report.rounds = report.counters.total_rounds();
                return (report, Some((boundary, attempt + 1)));
            };
            attempt += 1;
            // Capped-exponential backoff before the re-execution —
            // zero (no syscall at all) unless the policy enables it.
            let delay_ns = policy.backoff_ns(attempt);
            if delay_ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(delay_ns));
            }
            keys.clone_from_slice(restore);
            report.retries.push(Retry {
                round: seg.start as u64,
                attempt,
            });
            report.counters.retries += 1;
        }
    }
    report.rounds = report.counters.total_rounds();
    (report, None)
}

/// Interpreter fault executor (see [`checkpoint_retry_loop`]).
fn exec_with_faults<K: Ord + Clone>(
    shape: Shape,
    keys: &mut [K],
    program: &CompiledProgram,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> (FaultReport, Option<(u64, u32)>) {
    let rounds = program.round_ops();
    let mut report = FaultReport::default();
    if !plan.is_enabled() {
        // Fast path: plain serial execution, no hashing, no checks.
        let mut transit: Vec<[Option<K>; 2]> = vec![[None, None]; keys.len()];
        let mut incoming: Vec<(usize, usize, K)> = Vec::new();
        for round in rounds {
            exec_round_serial_scratch(keys, &mut transit, round, &mut incoming);
        }
        report.counters.useful_rounds = rounds.len() as u64;
        report.rounds = rounds.len() as u64;
        return (report, None);
    }
    let mut incoming: Vec<(usize, usize, K)> = Vec::new();
    checkpoint_retry_loop(
        shape,
        keys,
        program.cert_points(),
        rounds.len(),
        plan,
        policy,
        |keys, transit, ri, ctx| {
            exec_round_faulty(keys, transit, &mut incoming, &rounds[ri], ri as u64, ctx);
        },
    )
}

/// Kernel-path fault executor: the same [`checkpoint_retry_loop`] over
/// [`exec_kernel_round_faulty`]. `scratch` serves the disabled-plan
/// fast path (identical to [`BspMachine::run_kernel`], zero allocations
/// when warm); the enabled path allocates its own checkpoints like the
/// interpreter does.
fn exec_kernel_with_faults<K: Ord + Clone>(
    shape: Shape,
    keys: &mut [K],
    kernel: &KernelProgram,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    scratch: &mut ExecScratch<K>,
) -> (FaultReport, Option<(u64, u32)>) {
    let mut report = FaultReport::default();
    if !plan.is_enabled() {
        // Fast path: plain kernel execution, no hashing, no checks.
        scratch.reset(keys.len());
        for ri in 0..kernel.rounds() {
            exec_kernel_round(keys, kernel, ri, scratch);
        }
        report.counters.useful_rounds = kernel.rounds() as u64;
        report.rounds = kernel.rounds() as u64;
        return (report, None);
    }
    let mut incoming: Vec<(usize, usize, K)> = Vec::new();
    checkpoint_retry_loop(
        shape,
        keys,
        kernel.cert_points(),
        kernel.rounds(),
        plan,
        policy,
        |keys, transit, ri, ctx| {
            exec_kernel_round_faulty(keys, transit, &mut incoming, kernel, ri, ctx);
        },
    )
}

/// One batch lane: distinct `&mut` targets for the parallel workers,
/// with the per-lane outcome written in place (the vendored `rayon`
/// subset has no indexed map-collect).
struct LaneSlot<'a, K> {
    lane: u64,
    keys: &'a mut Vec<K>,
    outcome: Option<Result<FaultReport, FaultError>>,
}

impl BspMachine {
    /// Emit the observability events a finished lane accumulated. Runs
    /// on the calling thread (the logger's buffers are thread-local).
    pub(crate) fn emit_fault_events(&self, report: &FaultReport, lane: Option<u64>) {
        for f in &report.injected {
            self.logger.log(|| Event::FaultInjected {
                round: f.site.round,
                op: f.site.op,
                kind: f.kind.code(),
            });
        }
        for d in &report.detections {
            self.logger.log(|| Event::FaultDetected {
                round: d.round,
                stage: u64::from(d.dims),
                sampled: d.sampled,
            });
        }
        for r in &report.retries {
            self.logger.log(|| Event::RetryRound {
                round: r.round,
                attempt: u64::from(r.attempt),
            });
        }
        if report.quarantined {
            if let Some(lane) = lane {
                self.logger.log(|| Event::LaneQuarantined { lane });
            }
        }
    }

    /// Execute a compiled program on `keys` under `plan`, detecting
    /// corruption at the program's certificate boundaries and retrying
    /// failed segments from checkpoints per `policy`.
    ///
    /// On `Ok`, the final full certificate passed: `keys` is
    /// snake-sorted. On [`FaultError::RetryExhausted`], `keys` holds the
    /// corrupted state of the last attempt (callers wanting a sorted
    /// result anyway should re-run clean — the batch API does this
    /// automatically).
    ///
    /// # Errors
    ///
    /// [`FaultError::Invalid`] if the program fails static validation
    /// (nothing executed), [`FaultError::WrongKeyCount`] if `keys` is
    /// not one per node, [`FaultError::RetryExhausted`] as above.
    pub fn run_with_faults<K: Ord + Clone>(
        &self,
        keys: &mut [K],
        program: &CompiledProgram,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<FaultReport, FaultError> {
        self.try_validate(program)?;
        if keys.len() as u64 != self.shape().len() {
            return Err(FaultError::WrongKeyCount {
                expected: self.shape().len(),
                got: keys.len(),
            });
        }
        let _sort_span = self.logger.span(Tier::Fault, Stage::Sort, SpanClass::None);
        let (report, failed) = exec_with_faults(self.shape(), keys, program, plan, policy);
        self.emit_fault_events(&report, None);
        match failed {
            None => Ok(report),
            Some((round, attempts)) => Err(FaultError::RetryExhausted { round, attempts }),
        }
    }

    /// [`BspMachine::run_with_faults`] on the kernel tier: execute a
    /// lowered program under `plan` with the same segmentation,
    /// checkpoints, certificate checks, and probe seeds as the
    /// interpreter path. Fault sites are keyed by `(round, op)` indices,
    /// which lowering preserves, so the same `plan` makes the same
    /// decisions on either path — reports and outputs are bit-identical
    /// to [`BspMachine::run_with_faults`] on the source program.
    ///
    /// The kernel is already validated (lowering validates), so the only
    /// input check left is the key count. With a disabled plan this is
    /// [`BspMachine::run_kernel`] plus report assembly — zero heap
    /// allocations once `scratch` is warm.
    ///
    /// # Errors
    ///
    /// [`FaultError::WrongKeyCount`] if `keys` is not one per node,
    /// [`FaultError::RetryExhausted`] as on the interpreter path.
    ///
    /// # Panics
    ///
    /// Panics if the kernel was lowered for another shape.
    pub fn run_kernel_with_faults<K: Ord + Clone>(
        &self,
        keys: &mut [K],
        kernel: &KernelProgram,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        scratch: &mut ExecScratch<K>,
    ) -> Result<FaultReport, FaultError> {
        assert_eq!(
            kernel.shape(),
            self.shape(),
            "kernel lowered for another shape"
        );
        if keys.len() as u64 != self.shape().len() {
            return Err(FaultError::WrongKeyCount {
                expected: self.shape().len(),
                got: keys.len(),
            });
        }
        let _sort_span = self.logger.span(Tier::Fault, Stage::Sort, SpanClass::None);
        let (report, failed) =
            exec_kernel_with_faults(self.shape(), keys, kernel, plan, policy, scratch);
        self.emit_fault_events(&report, None);
        match failed {
            None => Ok(report),
            Some((round, attempts)) => Err(FaultError::RetryExhausted { round, attempts }),
        }
    }

    /// Drive a batch of independent key vectors through one compiled
    /// program under fault injection, one worker per vector, each lane
    /// using `plan.fork(lane)` so lanes fault independently.
    ///
    /// Degrades gracefully instead of failing the batch: a lane that
    /// exhausts its retries is *quarantined* — restored to its original
    /// input and re-run serially without injection — so every `Ok` lane
    /// ends snake-sorted regardless. Per-lane errors are only the
    /// non-recoverable kinds (wrong key count). An invalid program fails
    /// every lane without executing anything. Never panics on any input.
    pub fn run_batch_with_faults<K>(
        &self,
        batch: &mut [Vec<K>],
        program: &CompiledProgram,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Vec<Result<FaultReport, FaultError>>
    where
        K: Ord + Clone + Send + Sync,
    {
        if let Err(e) = self.try_validate(program) {
            return batch
                .iter()
                .map(|_| Err(FaultError::Invalid(e.clone())))
                .collect();
        }
        let _batch_span = self.logger.span(Tier::Fault, Stage::Batch, SpanClass::None);
        self.logger.log(|| Event::BatchScheduled {
            batch: batch.len() as u64,
            // A batch smaller than the worker pool occupies one lane per
            // vector, not one per thread.
            lanes: batch.len().min(rayon::current_num_threads()) as u64,
        });
        let shape = self.shape();
        let expected = shape.len();
        let run_lane = |lane: u64, keys: &mut Vec<K>| -> Result<FaultReport, FaultError> {
            if keys.len() as u64 != expected {
                return Err(FaultError::WrongKeyCount {
                    expected,
                    got: keys.len(),
                });
            }
            let lane_plan = plan.fork(lane);
            // Keep the pristine input around for the quarantine path.
            let original: Option<Vec<K>> = lane_plan.is_enabled().then(|| keys.clone());
            let (mut report, failed) = exec_with_faults(shape, keys, program, &lane_plan, policy);
            if failed.is_some() {
                // Quarantine: everything executed so far is discarded;
                // re-run clean and serial from the original input. Only
                // an enabled plan can fail, so the original was kept;
                // should that invariant ever break, the clean re-run
                // still sorts whatever state the lane is in (the
                // program is a sorting network) instead of panicking.
                if let Some(original) = original {
                    keys.clear();
                    keys.extend(original);
                }
                exec_program(keys, program);
                report.counters.wasted_rounds += report.counters.useful_rounds;
                report.counters.useful_rounds = program.rounds() as u64;
                report.rounds = report.counters.total_rounds();
                report.quarantined = true;
            }
            Ok(report)
        };
        let mut slots: Vec<LaneSlot<'_, K>> = batch
            .iter_mut()
            .enumerate()
            .map(|(i, keys)| LaneSlot {
                lane: i as u64,
                keys,
                outcome: None,
            })
            .collect();
        if slots.len() <= 1 {
            for slot in &mut slots {
                slot.outcome = Some(run_lane(slot.lane, slot.keys));
            }
        } else {
            use rayon::prelude::*;
            slots
                .par_iter_mut()
                .for_each(|slot| slot.outcome = Some(run_lane(slot.lane, slot.keys)));
        }
        let results: Vec<Result<FaultReport, FaultError>> = slots
            .into_iter()
            .map(|slot| {
                slot.outcome
                    .unwrap_or(Err(FaultError::Internal("batch lane produced no outcome")))
            })
            .collect();
        // The logger's buffers are thread-local, so lane events are
        // replayed here, after the join, from the calling thread.
        for (lane, res) in results.iter().enumerate() {
            if let Ok(report) = res {
                self.emit_fault_events(report, Some(lane as u64));
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsp::compile;
    use crate::netsort::is_snake_sorted;
    use crate::sorters::OetSnakeSorter;
    use pns_graph::factories;

    fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 16
            })
            .collect()
    }

    fn setup(r: usize) -> (BspMachine, CompiledProgram) {
        let factor = factories::path(3);
        let program = compile(&factor, r, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, r);
        (machine, program)
    }

    #[test]
    fn disabled_plan_matches_plain_run_exactly() {
        let (machine, program) = setup(3);
        let plan = FaultPlan::disabled();
        let policy = RetryPolicy::default();
        for seed in [1u64, 7, 99] {
            let keys = lcg_keys(machine.shape().len(), seed);
            let mut plain = keys.clone();
            let mut faulty = keys;
            machine.run(&mut plain, &program);
            let report = machine
                .run_with_faults(&mut faulty, &program, &plan, &policy)
                .expect("disabled plan cannot fail");
            assert_eq!(plain, faulty);
            assert_eq!(report.rounds as usize, program.rounds());
            assert!(report.injected.is_empty());
            assert!(report.detections.is_empty());
            assert!(report.retries.is_empty());
            assert_eq!(report.counters.useful_rounds as usize, program.rounds());
            assert_eq!(report.counters.wasted_rounds, 0);
        }
    }

    #[test]
    fn wrong_key_count_is_a_typed_error() {
        let (machine, program) = setup(2);
        let mut keys = vec![1u64; 3];
        let err = machine
            .run_with_faults(
                &mut keys,
                &program,
                &FaultPlan::disabled(),
                &RetryPolicy::default(),
            )
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::WrongKeyCount {
                expected: machine.shape().len(),
                got: 3
            }
        );
    }

    #[test]
    fn injected_faults_are_detected_and_repaired() {
        let (machine, program) = setup(3);
        let policy = RetryPolicy::default();
        let mut repaired = 0u32;
        for seed in 0..40u64 {
            let plan = FaultPlan::random(seed, 2_000); // 0.2% of sites
            let mut keys = lcg_keys(machine.shape().len(), seed + 1);
            let report = machine
                .run_with_faults(&mut keys, &program, &plan, &policy)
                .expect("default policy repairs sparse transients");
            assert!(
                is_snake_sorted(machine.shape(), &keys),
                "seed {seed}: Ok must imply sorted"
            );
            assert_eq!(report.rounds, report.counters.total_rounds());
            if !report.injected.is_empty() {
                repaired += 1;
            }
            // Accounting: every retry re-ran a whole segment.
            assert_eq!(report.counters.retries, report.retries.len() as u64);
            assert_eq!(report.counters.detections, report.detections.len() as u64);
        }
        assert!(
            repaired > 0,
            "rate 2000/M over 40 seeds must fire somewhere"
        );
    }

    #[test]
    fn single_flip_is_harmless_or_detected_by_certificates() {
        // detect_only: no retries, so a detected fault surfaces as
        // RetryExhausted; an undetected one must be harmless.
        let (machine, program) = setup(2);
        let policy = RetryPolicy::detect_only();
        let keys = lcg_keys(machine.shape().len(), 11);
        for (ri, round) in program.round_ops().iter().enumerate() {
            for (oi, op) in round.iter().enumerate() {
                if !matches!(op, Op::CompareExchange { .. }) {
                    continue;
                }
                let site = FaultSite {
                    round: ri as u64,
                    op: oi as u64,
                };
                let plan = FaultPlan::single(FaultKind::FlipCompare, site);
                let mut k = keys.clone();
                match machine.run_with_faults(&mut k, &program, &plan, &policy) {
                    Ok(_) => assert!(
                        is_snake_sorted(machine.shape(), &k),
                        "undetected flip at {site:?} must be harmless"
                    ),
                    Err(FaultError::RetryExhausted { .. }) => {}
                    Err(other) => panic!("unexpected error at {site:?}: {other}"),
                }
            }
        }
    }

    #[test]
    fn sampled_rechecks_still_end_sorted() {
        let (machine, program) = setup(3);
        let policy = RetryPolicy {
            max_retries: 5,
            recheck_depth: 4,
            ..RetryPolicy::default()
        };
        for seed in 0..20u64 {
            let plan = FaultPlan::random(seed, 3_000);
            let mut keys = lcg_keys(machine.shape().len(), seed * 3 + 2);
            // A sampled intermediate check may miss corruption, but the
            // final full check catches it, and the last segment's
            // checkpoint restores enough to repair (the fault already
            // fired, so the retry is clean).
            if machine
                .run_with_faults(&mut keys, &program, &plan, &policy)
                .is_ok()
            {
                assert!(is_snake_sorted(machine.shape(), &keys), "seed {seed}");
            }
        }
    }

    #[test]
    fn batch_quarantines_exhausted_lanes_and_sorts_everything() {
        let (machine, program) = setup(2);
        // detect_only exhausts on the first detection, forcing the
        // quarantine path for any lane whose faults corrupt the output.
        let policy = RetryPolicy::detect_only();
        let plan = FaultPlan::random(5, 20_000); // 2% of sites
        let mut batch: Vec<Vec<u64>> = (0..12)
            .map(|i| lcg_keys(machine.shape().len(), i * 13 + 1))
            .collect();
        let results = machine.run_batch_with_faults(&mut batch, &program, &plan, &policy);
        assert_eq!(results.len(), batch.len());
        let mut quarantined = 0;
        for (lane, res) in results.iter().enumerate() {
            let report = res.as_ref().expect("lanes degrade, they do not fail");
            assert!(
                is_snake_sorted(machine.shape(), &batch[lane]),
                "lane {lane} must end sorted"
            );
            if report.quarantined {
                quarantined += 1;
                assert_eq!(report.counters.useful_rounds as usize, program.rounds());
                assert!(report.counters.wasted_rounds > 0);
            }
        }
        assert!(
            quarantined > 0,
            "2% of sites with no retries must quarantine some lane"
        );
    }

    #[test]
    fn batch_reports_wrong_length_lanes_without_failing_others() {
        let (machine, program) = setup(2);
        let n = machine.shape().len();
        let mut batch: Vec<Vec<u64>> = vec![lcg_keys(n, 1), vec![9, 9, 9], lcg_keys(n, 2)];
        let results = machine.run_batch_with_faults(
            &mut batch,
            &program,
            &FaultPlan::random(1, 1_000),
            &RetryPolicy::default(),
        );
        assert!(results[0].is_ok());
        assert_eq!(
            results[1],
            Err(FaultError::WrongKeyCount {
                expected: n,
                got: 3
            })
        );
        assert!(results[2].is_ok());
        assert!(is_snake_sorted(machine.shape(), &batch[0]));
        assert!(is_snake_sorted(machine.shape(), &batch[2]));
    }

    #[test]
    fn invalid_program_fails_every_lane_without_executing() {
        let (machine, _) = setup(2);
        let bogus = CompiledProgram::from_rounds(
            machine.shape(),
            vec![vec![Op::CompareExchange {
                a: 0,
                b: machine.shape().len() - 1, // not an edge on path(3)^2
                min_to_a: true,
            }]],
        );
        let mut batch: Vec<Vec<u64>> = (0..3)
            .map(|i| lcg_keys(machine.shape().len(), i + 1))
            .collect();
        let before = batch.clone();
        let results = machine.run_batch_with_faults(
            &mut batch,
            &bogus,
            &FaultPlan::disabled(),
            &RetryPolicy::default(),
        );
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(FaultError::Invalid(_)))));
        assert_eq!(batch, before, "nothing may execute");
    }

    #[test]
    fn kernel_fault_path_matches_interpreter_bit_for_bit() {
        let (machine, program) = setup(3);
        let kernel = machine.lower(&program).expect("compiled programs validate");
        let mut scratch = ExecScratch::new();
        // Default policy (repairs) and detect_only (surfaces errors):
        // reports, errors, and final keys must all agree exactly.
        for policy in [RetryPolicy::default(), RetryPolicy::detect_only()] {
            for seed in 0..20u64 {
                let plan = FaultPlan::random(seed, 5_000);
                let keys = lcg_keys(machine.shape().len(), seed + 3);
                let mut interp = keys.clone();
                let mut lowered = keys;
                let ra = machine.run_with_faults(&mut interp, &program, &plan, &policy);
                let rb = machine.run_kernel_with_faults(
                    &mut lowered,
                    &kernel,
                    &plan,
                    &policy,
                    &mut scratch,
                );
                assert_eq!(ra, rb, "seed {seed}: same plan, same report");
                assert_eq!(interp, lowered, "seed {seed}: same plan, same keys");
            }
        }
    }

    #[test]
    fn fault_runs_emit_observability_events() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let mut machine = BspMachine::new(&factor, 2);
        let (sink, reader) = pns_obs::MemorySink::with_capacity(1 << 16);
        machine.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
        let plan = FaultPlan::random(5, 20_000);
        let policy = RetryPolicy::detect_only();
        let mut batch: Vec<Vec<u64>> = (0..12)
            .map(|i| lcg_keys(machine.shape().len(), i * 13 + 1))
            .collect();
        let results = machine.run_batch_with_faults(&mut batch, &program, &plan, &policy);
        machine.logger.flush();
        let events: Vec<Event> = reader.events().into_iter().map(|t| t.event).collect();
        let injected: usize = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.injected.len())
            .sum();
        let quarantined: usize = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .filter(|r| r.quarantined)
            .count();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::FaultInjected { .. }))
                .count(),
            injected
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::LaneQuarantined { .. }))
                .count(),
            quarantined
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::BatchScheduled { .. })));
    }
}
