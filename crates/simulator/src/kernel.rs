//! Flat structure-of-arrays kernel tier for compiled BSP programs.
//!
//! [`crate::bsp::BspMachine::run`] and friends *interpret* a
//! `Vec<Vec<Op>>`: every operation pays an enum discriminant match, and
//! every round allocates scratch (`incoming` buffers, deferred-action
//! vectors). For the throughput experiments that execute one schedule
//! thousands of times, that interpretive overhead dominates. This module
//! lowers a validated [`CompiledProgram`] **once** into a
//! [`KernelProgram`]:
//!
//! * **Pure compare-exchange rounds** become one contiguous slice of
//!   `(u32, u32)` rank pairs plus a direction bitmask (`cx_dirs`, one
//!   bit per pair, indexed globally). Execution is a single tight loop —
//!   no per-op discriminant, no bounds-checked enum payloads.
//! * **Route rounds** (any round containing a `Move` or `Resolve`)
//!   become a packed [`MicroOp`] array in **original op order**, so the
//!   micro-op index within the round equals the op index within the
//!   interpreted round — this is what keeps `FaultSite { round, op }`
//!   keys *path-independent* (a `FaultPlan` fires at the same sites on
//!   the kernel path as on the interpreter path).
//! * **Empty rounds** keep a descriptor so kernel round indices map 1:1
//!   to `CompiledProgram` round indices; `CertPoint` boundaries and
//!   reported step counts stay valid unchanged.
//!
//! Each round carries a [`RoundClass`] tag, so dispatch is one `match`
//! per round instead of one per op. Execution state lives in a reusable
//! [`ExecScratch`]: after the first (warm-up) run, `run_kernel` performs
//! **zero heap allocations** — proven by a counting-allocator test
//! (`tests/kernel_alloc.rs`).
//!
//! Lowering happens after static validation ([`BspMachine::lower`]), so
//! the kernels run unchecked, like `run_parallel` after `validate` —
//! but validation is paid once per program, not once per run.
//!
//! The intra-round parallel path ([`BspMachine::run_kernel_parallel`])
//! replaces the interpreter's `par_iter().map().collect::<Vec<Action>>()`
//! (one allocation per parallel round, plus one heap-allocated action
//! list) with chunked execution over disjoint pair ranges: worker
//! threads write swap decisions into a reusable `u64` bitmask, and the
//! swaps commit serially — bit-identical to serial order because
//! validated compare rounds touch each key at most once.

use pns_obs::{Event, SpanClass, Stage, Tier, ROUND_OBS_MIN_OPS, SORT_OBS_MIN_OPS};
use pns_order::radix::Shape;

use crate::bsp::{BspMachine, CertPoint, CompiledProgram, Op, ProgramError};

/// Minimum compare-pairs in a round before
/// [`BspMachine::run_kernel_parallel`] splits it across threads. The
/// vendored `rayon` spawns OS threads per call, so intra-round
/// parallelism only pays for very large rounds; below this, the serial
/// kernel wins.
pub const KERNEL_PAR_THRESHOLD: usize = 8192;

/// What a lowered round contains, so dispatch is one `match` per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundClass {
    /// No operations (padding the optimizer did not elide).
    Empty,
    /// Only compare-exchanges: runs as a tight pair-list loop.
    Compare,
    /// At least one `Move`/`Resolve`: runs as packed micro-ops with a
    /// deferred incoming commit (transit reads see previous-round state).
    Route,
}

impl RoundClass {
    /// The observability round class this lowered class maps to, for
    /// round spans' `(tier, stage, class)` attribution.
    #[must_use]
    pub fn span_class(self) -> SpanClass {
        match self {
            RoundClass::Empty => SpanClass::Empty,
            RoundClass::Compare => SpanClass::Compare,
            RoundClass::Route => SpanClass::Route,
        }
    }
}

/// One lowered round: a class tag plus a `start..end` range into
/// [`KernelProgram::cx_pairs`] (Compare) or [`KernelProgram::micro`]
/// (Route).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoundDesc {
    pub(crate) class: RoundClass,
    pub(crate) start: u32,
    pub(crate) end: u32,
}

/// Micro-op tags: the [`MicroOp::tag`] values.
pub(crate) const TAG_CX: u8 = 0;
pub(crate) const TAG_MOVE: u8 = 1;
pub(crate) const TAG_RESOLVE: u8 = 2;
/// Flag bit 0: `min_to_a` (CX), `from_key` (Move), `keep_min` (Resolve).
pub(crate) const FLAG_PRIMARY: u8 = 1;
/// Flag bit 1: transit slot 1 rather than 0 (Move/Resolve).
pub(crate) const FLAG_SLOT1: u8 = 2;

/// One packed operation of a route round — 10 bytes instead of a 32-byte
/// enum variant, in the **original op order** of the interpreted round.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    /// First rank: CX `a`, Move `from`, Resolve `node`.
    pub(crate) a: u32,
    /// Second rank: CX `b`, Move `to`, unused for Resolve.
    pub(crate) b: u32,
    /// [`TAG_CX`] / [`TAG_MOVE`] / [`TAG_RESOLVE`].
    pub(crate) tag: u8,
    /// [`FLAG_PRIMARY`] | [`FLAG_SLOT1`].
    pub(crate) flags: u8,
}

impl MicroOp {
    fn pack(op: &Op) -> MicroOp {
        match *op {
            Op::CompareExchange { a, b, min_to_a } => MicroOp {
                a: a as u32,
                b: b as u32,
                tag: TAG_CX,
                flags: u8::from(min_to_a) * FLAG_PRIMARY,
            },
            Op::Move {
                from,
                to,
                slot,
                from_key,
            } => MicroOp {
                a: from as u32,
                b: to as u32,
                tag: TAG_MOVE,
                flags: u8::from(from_key) * FLAG_PRIMARY + u8::from(slot == 1) * FLAG_SLOT1,
            },
            Op::Resolve {
                node,
                slot,
                keep_min,
            } => MicroOp {
                a: node as u32,
                b: 0,
                tag: TAG_RESOLVE,
                flags: u8::from(keep_min) * FLAG_PRIMARY + u8::from(slot == 1) * FLAG_SLOT1,
            },
        }
    }

    /// The interpreted op this micro-op was lowered from — exact, so the
    /// fault executor can reuse the interpreter's per-op semantics.
    pub(crate) fn to_op(self) -> Op {
        let primary = self.flags & FLAG_PRIMARY != 0;
        let slot = u8::from(self.flags & FLAG_SLOT1 != 0);
        match self.tag {
            TAG_CX => Op::CompareExchange {
                a: u64::from(self.a),
                b: u64::from(self.b),
                min_to_a: primary,
            },
            TAG_MOVE => Op::Move {
                from: u64::from(self.a),
                to: u64::from(self.b),
                slot,
                from_key: primary,
            },
            _ => Op::Resolve {
                node: u64::from(self.a),
                slot,
                keep_min: primary,
            },
        }
    }
}

/// A compiled program lowered to flat structure-of-arrays form. Rounds
/// map 1:1 to the source program's rounds (certificates and step counts
/// transfer unchanged); within a round, lowered op order equals
/// interpreted op order (fault sites transfer unchanged).
///
/// Build one with [`BspMachine::lower`] (validates first) or
/// [`KernelProgram::lower`] (assumes a valid program, e.g. straight out
/// of [`crate::bsp::compile`]).
#[derive(Debug, Clone)]
pub struct KernelProgram {
    pub(crate) shape: Shape,
    pub(crate) rounds: Vec<RoundDesc>,
    /// All compare rounds' `(a, b)` rank pairs, concatenated.
    pub(crate) cx_pairs: Vec<(u32, u32)>,
    /// `min_to_a` per pair, one bit per **global** pair index.
    pub(crate) cx_dirs: Vec<u64>,
    /// All route rounds' packed ops, concatenated, original order.
    pub(crate) micro: Vec<MicroOp>,
    pub(crate) cert_points: Vec<CertPoint>,
    compare_rounds: usize,
    route_rounds: usize,
}

impl KernelProgram {
    /// Lower a program. Pure and infallible — but the lowered kernels
    /// execute **unchecked**, so the input must already satisfy
    /// [`BspMachine::try_validate`]'s invariants ([`crate::bsp::compile`]
    /// output always does; for hand-built programs go through
    /// [`BspMachine::lower`]).
    ///
    /// # Panics
    ///
    /// Panics if the network has more than `u32::MAX` nodes (ranks are
    /// packed into `u32`) or a slot index is not 0/1 (validation rejects
    /// those programs anyway).
    #[must_use]
    pub fn lower(program: &CompiledProgram) -> KernelProgram {
        assert!(
            program.shape().len() <= u64::from(u32::MAX),
            "kernel tier packs ranks into u32"
        );
        let source = program.round_ops();
        let mut rounds = Vec::with_capacity(source.len());
        let mut cx_pairs: Vec<(u32, u32)> = Vec::new();
        let mut cx_dirs: Vec<u64> = Vec::new();
        let mut micro: Vec<MicroOp> = Vec::new();
        let (mut compare_rounds, mut route_rounds) = (0, 0);
        for round in source {
            if round.is_empty() {
                rounds.push(RoundDesc {
                    class: RoundClass::Empty,
                    start: 0,
                    end: 0,
                });
            } else if round
                .iter()
                .all(|op| matches!(op, Op::CompareExchange { .. }))
            {
                compare_rounds += 1;
                let start = cx_pairs.len() as u32;
                for op in round {
                    if let Op::CompareExchange { a, b, min_to_a } = *op {
                        let gi = cx_pairs.len();
                        if cx_dirs.len() <= gi >> 6 {
                            cx_dirs.push(0);
                        }
                        if min_to_a {
                            cx_dirs[gi >> 6] |= 1u64 << (gi & 63);
                        }
                        cx_pairs.push((a as u32, b as u32));
                    }
                }
                rounds.push(RoundDesc {
                    class: RoundClass::Compare,
                    start,
                    end: cx_pairs.len() as u32,
                });
            } else {
                route_rounds += 1;
                let start = micro.len() as u32;
                for op in round {
                    if let Op::Move { slot, .. } | Op::Resolve { slot, .. } = *op {
                        assert!(slot < 2, "validation rejects slots >= 2");
                    }
                    micro.push(MicroOp::pack(op));
                }
                rounds.push(RoundDesc {
                    class: RoundClass::Route,
                    start,
                    end: micro.len() as u32,
                });
            }
        }
        KernelProgram {
            shape: program.shape(),
            rounds,
            cx_pairs,
            cx_dirs,
            micro,
            cert_points: program.cert_points().to_vec(),
            compare_rounds,
            route_rounds,
        }
    }

    /// The shape the kernel was lowered for.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Rounds in the kernel (= the source program's round count).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The class of round `ri`.
    ///
    /// # Panics
    ///
    /// Panics if `ri >= self.rounds()`.
    #[must_use]
    pub fn class(&self, ri: usize) -> RoundClass {
        self.rounds[ri].class
    }

    /// Operations in round `ri` (= the source round's op count).
    ///
    /// # Panics
    ///
    /// Panics if `ri >= self.rounds()`.
    #[must_use]
    pub fn round_len(&self, ri: usize) -> usize {
        let d = self.rounds[ri];
        (d.end - d.start) as usize
    }

    /// Pure compare-exchange rounds.
    #[must_use]
    pub fn compare_rounds(&self) -> usize {
        self.compare_rounds
    }

    /// Rounds containing route micro-ops.
    #[must_use]
    pub fn route_rounds(&self) -> usize {
        self.route_rounds
    }

    /// Total compare-exchange pairs across all compare rounds.
    #[must_use]
    pub fn cx_pair_count(&self) -> usize {
        self.cx_pairs.len()
    }

    /// Total packed micro-ops across all route rounds.
    #[must_use]
    pub fn micro_op_count(&self) -> usize {
        self.micro.len()
    }

    /// Total lowered operations across all rounds — the program-size
    /// measure [`SORT_OBS_MIN_OPS`] gates sort-grain spans on.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.cx_pairs.len() + self.micro.len()
    }

    /// Stage certificates, carried over from the source program (round
    /// indices transfer unchanged — lowering is 1:1 per round).
    #[must_use]
    pub fn cert_points(&self) -> &[CertPoint] {
        &self.cert_points
    }

    /// `min_to_a` for the global pair index `gi`.
    #[inline]
    pub(crate) fn dir(&self, gi: usize) -> bool {
        (self.cx_dirs[gi >> 6] >> (gi & 63)) & 1 == 1
    }
}

/// Reusable execution state for the kernel tier: transit slots, the
/// deferred incoming queue, and the parallel path's swap bitmask. One
/// scratch serves one key vector at a time; create it once and reuse it
/// across runs — after the first run sizes the buffers, every later
/// [`BspMachine::run_kernel`] call performs zero heap allocations.
#[derive(Debug, Default)]
pub struct ExecScratch<K> {
    pub(crate) transit: Vec<[Option<K>; 2]>,
    pub(crate) incoming: Vec<(u32, u8, K)>,
    pub(crate) swap_words: Vec<u64>,
}

impl<K> ExecScratch<K> {
    /// An empty scratch; the first run warms it up to the network size.
    #[must_use]
    pub fn new() -> Self {
        ExecScratch {
            transit: Vec::new(),
            incoming: Vec::new(),
            swap_words: Vec::new(),
        }
    }

    /// Size for `n` nodes and clear leftovers (capacity is kept, so
    /// resizing to the same `n` allocates nothing).
    pub(crate) fn reset(&mut self, n: usize) {
        if self.transit.len() == n {
            for t in &mut self.transit {
                t[0] = None;
                t[1] = None;
            }
        } else {
            self.transit.clear();
            self.transit.resize_with(n, || [None, None]);
        }
        self.incoming.clear();
    }
}

/// A pool of [`ExecScratch`]es, one per batch lane, reused across
/// [`BspMachine::run_kernel_batch`] calls so steady-state batches do not
/// reallocate per-lane state.
#[derive(Debug, Default)]
pub struct ScratchPool<K> {
    slots: Vec<ExecScratch<K>>,
}

impl<K> ScratchPool<K> {
    /// An empty pool; lanes are added on demand.
    #[must_use]
    pub fn new() -> Self {
        ScratchPool { slots: Vec::new() }
    }

    /// At least `n` scratches, growing if needed.
    pub(crate) fn ensure(&mut self, n: usize) -> &mut [ExecScratch<K>] {
        while self.slots.len() < n {
            self.slots.push(ExecScratch::new());
        }
        &mut self.slots[..n]
    }

    /// Lanes currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` iff no lane has been warmed up yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// One compare round, serial: a tight loop over the pair list.
#[inline]
fn exec_compare_round<K: Ord>(keys: &mut [K], kernel: &KernelProgram, desc: RoundDesc) {
    for gi in desc.start as usize..desc.end as usize {
        let (a, b) = kernel.cx_pairs[gi];
        let (ai, bi) = (a as usize, b as usize);
        if (keys[ai] <= keys[bi]) != kernel.dir(gi) {
            keys.swap(ai, bi);
        }
    }
}

/// One route round: micro-ops in original order, incoming values
/// buffered and committed at the end (transit reads see previous-round
/// state — the same semantics as `exec_round_serial`).
fn exec_route_round<K: Ord + Clone>(
    keys: &mut [K],
    transit: &mut [[Option<K>; 2]],
    incoming: &mut Vec<(u32, u8, K)>,
    micro: &[MicroOp],
) {
    incoming.clear();
    for m in micro {
        let ai = m.a as usize;
        match m.tag {
            TAG_CX => {
                let bi = m.b as usize;
                if (keys[ai] <= keys[bi]) != (m.flags & FLAG_PRIMARY != 0) {
                    keys.swap(ai, bi);
                }
            }
            TAG_MOVE => {
                let si = usize::from(m.flags & FLAG_SLOT1 != 0);
                let payload = if m.flags & FLAG_PRIMARY != 0 {
                    keys[ai].clone()
                } else {
                    transit[ai][si].take().expect("validated: slot occupied")
                };
                incoming.push((m.b, si as u8, payload));
            }
            _ => {
                let si = usize::from(m.flags & FLAG_SLOT1 != 0);
                let arrived = transit[ai][si].take().expect("validated: slot occupied");
                let resident = &mut keys[ai];
                let keep_arrived = if m.flags & FLAG_PRIMARY != 0 {
                    arrived < *resident
                } else {
                    arrived > *resident
                };
                if keep_arrived {
                    *resident = arrived;
                }
            }
        }
    }
    for (to, slot, payload) in incoming.drain(..) {
        transit[to as usize][slot as usize] = Some(payload);
    }
}

/// One kernel round, serial, unlogged — shared by the serial runner,
/// batch lanes, and the small-round path of the parallel runner.
#[inline]
pub(crate) fn exec_kernel_round<K: Ord + Clone>(
    keys: &mut [K],
    kernel: &KernelProgram,
    ri: usize,
    scratch: &mut ExecScratch<K>,
) {
    let desc = kernel.rounds[ri];
    match desc.class {
        RoundClass::Empty => {}
        RoundClass::Compare => exec_compare_round(keys, kernel, desc),
        RoundClass::Route => exec_route_round(
            keys,
            &mut scratch.transit,
            &mut scratch.incoming,
            &kernel.micro[desc.start as usize..desc.end as usize],
        ),
    }
}

/// A whole kernel program on one key vector, serial, unlogged.
pub(crate) fn exec_kernel<K: Ord + Clone>(
    keys: &mut [K],
    kernel: &KernelProgram,
    scratch: &mut ExecScratch<K>,
) {
    scratch.reset(keys.len());
    for ri in 0..kernel.rounds.len() {
        exec_kernel_round(keys, kernel, ri, scratch);
    }
}

/// One compare round with its decision phase split across threads:
/// disjoint 64-pair-aligned chunks of the swap bitmask are filled by
/// workers reading the immutable start-of-round keys, then the swaps
/// commit serially. Validated compare rounds touch each key at most
/// once, so start-of-round decisions equal in-order serial decisions —
/// bit-identical to [`exec_compare_round`].
fn exec_compare_round_chunked<K: Ord + Send + Sync>(
    keys: &mut [K],
    kernel: &KernelProgram,
    desc: RoundDesc,
    words: &mut Vec<u64>,
    threads: usize,
) {
    let start = desc.start as usize;
    let n_pairs = (desc.end - desc.start) as usize;
    let n_words = n_pairs.div_ceil(64);
    words.clear();
    words.resize(n_words, 0);
    let words_per_chunk = n_words.div_ceil(threads.max(1)).max(1);
    {
        let keys_ref: &[K] = keys;
        std::thread::scope(|s| {
            for (ci, chunk) in words.chunks_mut(words_per_chunk).enumerate() {
                let wbase = ci * words_per_chunk;
                s.spawn(move || {
                    for (wi, w) in chunk.iter_mut().enumerate() {
                        let pair_base = (wbase + wi) * 64;
                        let in_word = 64.min(n_pairs - pair_base);
                        let mut bits = 0u64;
                        for j in 0..in_word {
                            let gi = start + pair_base + j;
                            let (a, b) = kernel.cx_pairs[gi];
                            if (keys_ref[a as usize] <= keys_ref[b as usize]) != kernel.dir(gi) {
                                bits |= 1u64 << j;
                            }
                        }
                        *w = bits;
                    }
                });
            }
        });
    }
    for (wi, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (a, b) = kernel.cx_pairs[start + wi * 64 + j];
            keys.swap(a as usize, b as usize);
        }
    }
}

impl BspMachine {
    /// Validate `program` against this machine, then lower it to a
    /// [`KernelProgram`]. The kernels then run unchecked — validation is
    /// paid once per program instead of once per run (`run_parallel`
    /// re-validates on every call).
    ///
    /// # Errors
    ///
    /// The first machine-model violation, as from
    /// [`BspMachine::try_validate`].
    pub fn lower(&self, program: &CompiledProgram) -> Result<KernelProgram, ProgramError> {
        let _lower_span = self
            .logger
            .span(Tier::Kernel, Stage::LowerKernel, SpanClass::None);
        {
            let _validate_span = self
                .logger
                .span(Tier::Kernel, Stage::Validate, SpanClass::None);
            self.try_validate(program)?;
        }
        Ok(KernelProgram::lower(program))
    }

    /// Execute a lowered program on `keys`, serially. Bit-identical to
    /// [`BspMachine::run`] on every input; performs **zero heap
    /// allocations** once `scratch` is warm (reuse the scratch across
    /// calls — the first call sizes it).
    ///
    /// Returns the number of rounds executed (= `kernel.rounds()`).
    ///
    /// # Panics
    ///
    /// Panics if the kernel was lowered for another shape or `keys` is
    /// not one per node.
    pub fn run_kernel<K: Ord + Clone>(
        &self,
        keys: &mut [K],
        kernel: &KernelProgram,
        scratch: &mut ExecScratch<K>,
    ) -> u64 {
        assert_eq!(
            kernel.shape,
            self.shape(),
            "kernel lowered for another shape"
        );
        assert_eq!(keys.len() as u64, self.shape().len(), "one key per node");
        // Sort-grain span only for programs big enough that its fixed
        // cost disappears into the run (DESIGN.md §13).
        let _sort_span = self.logger.span_if(
            kernel.total_ops() >= SORT_OBS_MIN_OPS,
            Tier::Kernel,
            Stage::Sort,
            SpanClass::None,
        );
        scratch.reset(keys.len());
        for (ri, desc) in kernel.rounds.iter().enumerate() {
            // Round-grain observability only above the op threshold:
            // sub-µs kernel rounds would otherwise pay more for the
            // clock reads than for the round itself (DESIGN.md §13).
            let observed = kernel.round_len(ri) >= ROUND_OBS_MIN_OPS;
            if observed {
                self.logger.log(|| Event::RoundStart {
                    round: ri as u64,
                    ops: kernel.round_len(ri) as u64,
                    parallel: false,
                });
            }
            let _round_span = self.logger.span_if(
                observed,
                Tier::Kernel,
                Stage::Round,
                desc.class.span_class(),
            );
            exec_kernel_round(keys, kernel, ri, scratch);
            if observed {
                self.logger.log(|| Event::RoundEnd { round: ri as u64 });
            }
        }
        debug_assert!(
            scratch
                .transit
                .iter()
                .all(|t| t[0].is_none() && t[1].is_none()),
            "transit values left in flight after the program ended"
        );
        kernel.rounds.len() as u64
    }

    /// As [`BspMachine::run_kernel`], with compare rounds of at least
    /// [`KERNEL_PAR_THRESHOLD`] pairs split across threads (chunked
    /// bitmask decision phase + serial commit). Route and small rounds
    /// run serially. Bit-identical to the serial kernel on every input.
    ///
    /// # Panics
    ///
    /// Panics if the kernel was lowered for another shape or `keys` is
    /// not one per node.
    pub fn run_kernel_parallel<K>(
        &self,
        keys: &mut [K],
        kernel: &KernelProgram,
        scratch: &mut ExecScratch<K>,
    ) -> u64
    where
        K: Ord + Clone + Send + Sync,
    {
        self.run_kernel_parallel_threshold(keys, kernel, scratch, KERNEL_PAR_THRESHOLD)
    }

    /// [`BspMachine::run_kernel_parallel`] with an explicit serial
    /// fallback threshold (compare rounds with fewer pairs run serially).
    /// Exposed so tests and benchmarks can force the chunked path on
    /// small rounds; the default threshold is tuned for the vendored
    /// thread-per-call `rayon` stub.
    ///
    /// # Panics
    ///
    /// Panics if the kernel was lowered for another shape or `keys` is
    /// not one per node.
    pub fn run_kernel_parallel_threshold<K>(
        &self,
        keys: &mut [K],
        kernel: &KernelProgram,
        scratch: &mut ExecScratch<K>,
        threshold: usize,
    ) -> u64
    where
        K: Ord + Clone + Send + Sync,
    {
        assert_eq!(
            kernel.shape,
            self.shape(),
            "kernel lowered for another shape"
        );
        assert_eq!(keys.len() as u64, self.shape().len(), "one key per node");
        let _sort_span = self.logger.span_if(
            kernel.total_ops() >= SORT_OBS_MIN_OPS,
            Tier::Kernel,
            Stage::Sort,
            SpanClass::None,
        );
        let threads = rayon::current_num_threads();
        scratch.reset(keys.len());
        for (ri, desc) in kernel.rounds.iter().enumerate() {
            let par = desc.class == RoundClass::Compare
                && (desc.end - desc.start) as usize >= threshold.max(1)
                && threads > 1;
            let observed = kernel.round_len(ri) >= ROUND_OBS_MIN_OPS;
            if observed {
                self.logger.log(|| Event::RoundStart {
                    round: ri as u64,
                    ops: kernel.round_len(ri) as u64,
                    parallel: par,
                });
            }
            let _round_span = self.logger.span_if(
                observed,
                Tier::Kernel,
                Stage::Round,
                desc.class.span_class(),
            );
            if par {
                exec_compare_round_chunked(keys, kernel, *desc, &mut scratch.swap_words, threads);
            } else {
                exec_kernel_round(keys, kernel, ri, scratch);
            }
            if observed {
                self.logger.log(|| Event::RoundEnd { round: ri as u64 });
            }
        }
        kernel.rounds.len() as u64
    }

    /// Drive a batch of independent key vectors through one lowered
    /// program, one worker lane per vector, each lane running the serial
    /// kernel on its own [`ScratchPool`] slot. Produces exactly the
    /// configurations [`BspMachine::run`] would; steady-state batches
    /// reuse the pool's warm scratches instead of reallocating per lane.
    ///
    /// Returns the number of rounds executed (same for every vector).
    ///
    /// # Panics
    ///
    /// Panics if the kernel was lowered for another shape or any vector
    /// is not one key per node.
    pub fn run_kernel_batch<K>(
        &self,
        batch: &mut [Vec<K>],
        kernel: &KernelProgram,
        pool: &mut ScratchPool<K>,
    ) -> u64
    where
        K: Ord + Clone + Send + Sync,
    {
        assert_eq!(
            kernel.shape,
            self.shape(),
            "kernel lowered for another shape"
        );
        for keys in batch.iter() {
            assert_eq!(keys.len() as u64, self.shape().len(), "one key per node");
        }
        let _batch_span = self
            .logger
            .span(Tier::Kernel, Stage::Batch, SpanClass::None);
        self.logger.log(|| Event::BatchScheduled {
            batch: batch.len() as u64,
            lanes: batch.len().min(rayon::current_num_threads()) as u64,
        });
        let scratches = pool.ensure(batch.len());
        if batch.len() <= 1 {
            for (keys, scratch) in batch.iter_mut().zip(scratches.iter_mut()) {
                exec_kernel(keys, kernel, scratch);
            }
        } else {
            /// Distinct `&mut` targets per worker (the vendored `rayon`
            /// subset has no zip, so lanes pair keys with scratch).
            struct Lane<'a, K> {
                keys: &'a mut Vec<K>,
                scratch: &'a mut ExecScratch<K>,
            }
            use rayon::prelude::*;
            let mut lanes: Vec<Lane<'_, K>> = batch
                .iter_mut()
                .zip(scratches.iter_mut())
                .map(|(keys, scratch)| Lane { keys, scratch })
                .collect();
            lanes
                .par_iter_mut()
                .for_each(|lane| exec_kernel(lane.keys, kernel, lane.scratch));
        }
        kernel.rounds.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsp::compile;
    use crate::netsort::is_snake_sorted;
    use crate::sorters::{Hypercube2Sorter, OetSnakeSorter, Pg2Sorter, ShearSorter};
    use pns_graph::factories;

    fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            })
            .collect()
    }

    #[test]
    fn lowering_is_one_to_one_and_counts_add_up() {
        // star(4) forces relay moves, so both classes appear.
        let factor = factories::star(4);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let kernel = KernelProgram::lower(&program);
        assert_eq!(kernel.rounds(), program.rounds());
        assert_eq!(kernel.cert_points(), program.cert_points());
        assert!(kernel.compare_rounds() > 0, "CX rounds must lower");
        assert!(kernel.route_rounds() > 0, "relay rounds must lower");
        let total: usize = (0..kernel.rounds()).map(|ri| kernel.round_len(ri)).sum();
        assert_eq!(total, program.op_count(), "no op gained or lost");
        assert_eq!(
            kernel.cx_pair_count() + kernel.micro_op_count(),
            program.op_count()
        );
        // Per-round op counts and in-round order are preserved.
        for (ri, round) in program.round_ops().iter().enumerate() {
            assert_eq!(kernel.round_len(ri), round.len(), "round {ri}");
            if kernel.class(ri) == RoundClass::Route {
                let d = kernel.rounds[ri];
                for (oi, op) in round.iter().enumerate() {
                    let m = kernel.micro[d.start as usize + oi];
                    assert_eq!(&m.to_op(), op, "round {ri} op {oi} must round-trip");
                }
            }
        }
    }

    #[test]
    fn micro_op_round_trips_every_variant() {
        let ops = [
            Op::CompareExchange {
                a: 3,
                b: 7,
                min_to_a: true,
            },
            Op::CompareExchange {
                a: 0,
                b: 1,
                min_to_a: false,
            },
            Op::Move {
                from: 5,
                to: 6,
                slot: 1,
                from_key: false,
            },
            Op::Move {
                from: 2,
                to: 9,
                slot: 0,
                from_key: true,
            },
            Op::Resolve {
                node: 4,
                slot: 1,
                keep_min: false,
            },
            Op::Resolve {
                node: 8,
                slot: 0,
                keep_min: true,
            },
        ];
        for op in &ops {
            assert_eq!(&MicroOp::pack(op).to_op(), op, "{op:?}");
        }
    }

    #[test]
    fn kernel_matches_interpreter_on_mixed_factors() {
        let cases: Vec<(pns_graph::Graph, usize, &dyn Pg2Sorter)> = vec![
            (factories::path(3), 3, &ShearSorter),
            (factories::star(4), 2, &OetSnakeSorter),
            (factories::k2(), 4, &Hypercube2Sorter),
        ];
        for (factor, r, sorter) in cases {
            let program = compile(&factor, r, sorter);
            let bsp = BspMachine::new(&factor, r);
            let kernel = bsp.lower(&program).expect("compiled programs validate");
            let mut scratch = ExecScratch::new();
            for seed in [1u64, 42, 0xFEED] {
                let input = lcg_keys(bsp.shape().len(), seed);
                let mut want = input.clone();
                bsp.run(&mut want, &program);
                let mut got = input.clone();
                let rounds = bsp.run_kernel(&mut got, &kernel, &mut scratch);
                assert_eq!(got, want, "{} seed {seed}", factor.name());
                assert_eq!(rounds as usize, program.rounds());
                let mut par = input.clone();
                bsp.run_kernel_parallel_threshold(&mut par, &kernel, &mut scratch, 1);
                assert_eq!(par, want, "{} seed {seed} chunked", factor.name());
            }
        }
    }

    #[test]
    fn kernel_batch_matches_per_vector_runs_and_reuses_the_pool() {
        let factor = factories::path(3);
        let program = compile(&factor, 3, &ShearSorter);
        let bsp = BspMachine::new(&factor, 3);
        let kernel = bsp.lower(&program).expect("valid");
        let mut pool = ScratchPool::new();
        for round in 0..2 {
            let mut batch: Vec<Vec<u64>> = (0..6)
                .map(|i| lcg_keys(bsp.shape().len(), i * 31 + round + 1))
                .collect();
            let want: Vec<Vec<u64>> = batch
                .iter()
                .map(|input| {
                    let mut w = input.clone();
                    bsp.run(&mut w, &program);
                    w
                })
                .collect();
            bsp.run_kernel_batch(&mut batch, &kernel, &mut pool);
            assert_eq!(batch, want, "pass {round}");
            assert_eq!(pool.len(), 6, "one warm scratch per lane");
        }
    }

    #[test]
    fn one_scratch_serves_programs_of_different_sizes() {
        let mut scratch = ExecScratch::new();
        for (factor, r) in [(factories::path(4), 2), (factories::path(3), 3)] {
            let program = compile(&factor, r, &ShearSorter);
            let bsp = BspMachine::new(&factor, r);
            let kernel = bsp.lower(&program).expect("valid");
            let mut keys = lcg_keys(bsp.shape().len(), 9);
            bsp.run_kernel(&mut keys, &kernel, &mut scratch);
            assert!(is_snake_sorted(bsp.shape(), &keys), "{}^{r}", factor.name());
        }
    }

    #[test]
    fn kernel_sorts_every_zero_one_vector_on_the_3_cube() {
        // Exhaustive 0/1 check on k2^3 (8 nodes, 256 inputs): by the
        // zero-one principle this certifies the kernel's comparator
        // schedule for all inputs of this shape.
        let factor = factories::k2();
        let program = compile(&factor, 3, &Hypercube2Sorter);
        let bsp = BspMachine::new(&factor, 3);
        let kernel = bsp.lower(&program).expect("valid");
        let mut scratch = ExecScratch::new();
        for bits in 0u32..256 {
            let mut keys: Vec<u64> = (0..8).map(|i| u64::from(bits >> i & 1)).collect();
            bsp.run_kernel(&mut keys, &kernel, &mut scratch);
            assert!(
                is_snake_sorted(bsp.shape(), &keys),
                "bits {bits:#010b} must sort"
            );
        }
    }

    #[test]
    fn lower_rejects_invalid_programs() {
        let bsp = BspMachine::new(&factories::path(3), 2);
        let bogus = CompiledProgram::from_rounds(
            bsp.shape(),
            vec![vec![Op::CompareExchange {
                a: 0,
                b: 8, // not an edge on path(3)^2
                min_to_a: true,
            }]],
        );
        assert!(bsp.lower(&bogus).is_err(), "lower must validate first");
    }

    #[test]
    fn kernel_round_events_are_gated_by_op_count() {
        // Small fixture: path(3)^2 sits below BOTH observability gates
        // — every round is under ROUND_OBS_MIN_OPS and the whole
        // program is under SORT_OBS_MIN_OPS — so a kernel run emits
        // nothing at all. That silence is the point: the enabled-sink
        // tax on micro-programs is a branch, not a span.
        let factor = factories::path(3);
        let program = compile(&factor, 2, &ShearSorter);
        let mut bsp = BspMachine::new(&factor, 2);
        let kernel = bsp.lower(&program).expect("valid");
        assert!(
            (0..kernel.rounds()).all(|ri| kernel.round_len(ri) < ROUND_OBS_MIN_OPS),
            "fixture must sit below the round observability threshold"
        );
        assert!(
            kernel.total_ops() < SORT_OBS_MIN_OPS,
            "fixture must sit below the sort-span threshold"
        );
        let (sink, reader) = pns_obs::MemorySink::with_capacity(1 << 12);
        bsp.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
        let mut scratch = ExecScratch::new();
        let mut keys = lcg_keys(bsp.shape().len(), 3);
        bsp.run_kernel(&mut keys, &kernel, &mut scratch);
        bsp.logger.flush();
        let events: Vec<Event> = reader.events().into_iter().map(|t| t.event).collect();
        assert!(
            events.is_empty(),
            "sub-threshold programs must emit no events: {events:?}"
        );

        // Large fixture: k2 r=8 clears the sort-span gate and has
        // rounds at or above the round threshold, which must emit the
        // sort span, paired round events, AND classed round spans.
        let factor = factories::k2();
        let program = compile(&factor, 8, &Hypercube2Sorter);
        let mut bsp = BspMachine::new(&factor, 8);
        let kernel = bsp.lower(&program).expect("valid");
        assert!(
            kernel.total_ops() >= SORT_OBS_MIN_OPS,
            "fixture must clear the sort-span threshold"
        );
        let observed: usize = (0..kernel.rounds())
            .filter(|&ri| kernel.round_len(ri) >= ROUND_OBS_MIN_OPS)
            .count();
        assert!(observed > 0, "fixture must cross the threshold");
        let (sink, reader) = pns_obs::MemorySink::with_capacity(1 << 16);
        bsp.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
        let mut scratch = ExecScratch::new();
        let mut keys = lcg_keys(bsp.shape().len(), 5);
        bsp.run_kernel(&mut keys, &kernel, &mut scratch);
        bsp.logger.flush();
        let events: Vec<Event> = reader.events().into_iter().map(|t| t.event).collect();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::RoundStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::RoundEnd { .. }))
            .count();
        assert_eq!(starts, observed);
        assert_eq!(ends, observed);
        let round_spans = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::SpanEnter { stage, .. } if *stage == Stage::Round.code()
                )
            })
            .count();
        assert_eq!(round_spans, observed);
        // Every round span carries a lowered class, never None.
        assert!(events.iter().all(|e| match e {
            Event::SpanEnter { stage, class, .. } if *stage == Stage::Round.code() =>
                *class != SpanClass::None.code(),
            _ => true,
        }));
        let profile = pns_obs::Profile::from_events(&reader.events().to_vec());
        assert_eq!(profile.open_spans(), 0);
        // Self times partition the sort span's duration exactly.
        assert_eq!(profile.total_self_ns(), profile.root_ns());
    }
}
