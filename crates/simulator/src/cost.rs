//! Charged cost models: the `S2(N)` and `R(N)` constants of Section 5.
//!
//! Theorem 1 expresses the sorting time as
//! `S_r(N) = (r-1)² S2(N) + (r-1)(r-2) R(N)`; each Section 5 network
//! instantiates `S2` and `R`. A [`CostModel`] packages one such
//! instantiation so the charged engine can reproduce the paper's closed
//! forms by measurement.

/// A charged cost model: steps per `PG_2` sort round and per factor
/// permutation-routing round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Human-readable name (network + source of the constants).
    pub name: String,
    /// `S2(N)`: steps for one parallel round of `N²`-key `PG_2` sorts.
    pub s2_steps: u64,
    /// `R(N)`: steps for one odd-even transposition round (a permutation
    /// routing within factor copies).
    pub route_steps: u64,
}

impl CostModel {
    /// Arbitrary constants.
    #[must_use]
    pub fn custom(name: &str, s2_steps: u64, route_steps: u64) -> Self {
        CostModel {
            name: name.to_owned(),
            s2_steps,
            route_steps,
        }
    }

    /// §5.1 Grid: Schnorr–Shamir sort `S2 = 3N` \[30\]; a permutation on the
    /// `N`-node linear array takes `R = N - 1` steps. Total:
    /// `4(r-1)²N + o(r²N)`.
    #[must_use]
    pub fn paper_grid(n: usize) -> Self {
        CostModel {
            name: format!("grid(N={n}), Schnorr-Shamir S2=3N, R=N-1"),
            s2_steps: 3 * n as u64,
            route_steps: n as u64 - 1,
        }
    }

    /// Corollary: torus constants — Kunde's sort `S2 = 2.5N` \[16\] (rounded
    /// up) and `R = ⌊N/2⌋` on the `N`-node cycle. Total:
    /// `3(r-1)²N + o(r²N)`.
    #[must_use]
    pub fn paper_torus(n: usize) -> Self {
        CostModel {
            name: format!("torus(N={n}), Kunde S2=2.5N, R=N/2"),
            s2_steps: (5 * n as u64).div_ceil(2),
            route_steps: n as u64 / 2,
        }
    }

    /// Corollary: *any* connected factor graph, by emulating the torus
    /// with slowdown at most 6 (dilation 3, congestion 2):
    /// `S2 = 15N`, `R = 3N`, total `≤ 18(r-1)²N + o(r²N)`.
    #[must_use]
    pub fn paper_universal(n: usize) -> Self {
        CostModel {
            name: format!("universal(N={n}), torus emulation x6"),
            s2_steps: 6 * (5 * n as u64).div_ceil(2),
            route_steps: 6 * (n as u64 / 2),
        }
    }

    /// §5.3 Hypercube (`N = 2`): snake-sorting the 4-node `PG_2` takes 3
    /// steps, routing on the 1-dimensional hypercube takes 1. Total:
    /// `3(r-1)² + (r-1)(r-2)`, matching Batcher's odd-even merge sort.
    #[must_use]
    pub fn paper_hypercube() -> Self {
        CostModel {
            name: "hypercube(N=2), S2=3, R=1".to_owned(),
            s2_steps: 3,
            route_steps: 1,
        }
    }

    /// §5.4 Petersen cube (`N = 10`): the factor is Hamiltonian, so `PG_2`
    /// contains the 10×10 grid as a subgraph and any grid algorithm sorts
    /// the 100 keys in constant time — we charge Schnorr–Shamir's
    /// `3·10 = 30` steps; routing along the embedded 10-node linear array
    /// costs at most `N - 1 = 9`. Total: `O(r²)` with a modest constant,
    /// as the paper remarks.
    #[must_use]
    pub fn paper_petersen() -> Self {
        CostModel {
            name: "petersen(N=10), grid-subgraph S2=30, R=9".to_owned(),
            s2_steps: 30,
            route_steps: 9,
        }
    }

    /// §5.5 Products of (binary) de Bruijn / shuffle-exchange graphs with
    /// `N = 2^b` nodes: `PG_2` emulates the `N²`-node de Bruijn graph with
    /// dilation 2 and congestion 2, and Batcher's bitonic sort runs on the
    /// `2^{2b}`-node shuffle-exchange emulation in `2b(2b+1)/2` stages of
    /// ~2 steps each; we charge `S2 = 2 · (2b)(2b+1) = O(log² N)` and
    /// `R = 2·(2b) = O(log N)` (one complement-routing pass). Total:
    /// `O(r² log² N)`.
    #[must_use]
    pub fn paper_de_bruijn(bits: usize) -> Self {
        let b = bits as u64;
        CostModel {
            name: format!("debruijn(N=2^{bits}), Batcher-on-emulated-SE"),
            s2_steps: 2 * (2 * b) * (2 * b + 1),
            route_steps: 2 * (2 * b),
        }
    }

    /// Theorem 1's closed form under this model: the charged steps of
    /// sorting `N^r` keys, `(r-1)² S2 + (r-1)(r-2) R`.
    #[must_use]
    pub fn predicted_sort_steps(&self, r: usize) -> u64 {
        let r = r as u64;
        (r - 1) * (r - 1) * self.s2_steps + (r - 1) * (r - 2) * self.route_steps
    }

    /// Lemma 3's closed form: charged steps of one `k`-dimensional merge,
    /// `2(k-2)(S2 + R) + S2`.
    #[must_use]
    pub fn predicted_merge_steps(&self, k: usize) -> u64 {
        let k = k as u64;
        2 * (k - 2) * (self.s2_steps + self.route_steps) + self.s2_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_model_matches_section_5_1() {
        let m = CostModel::paper_grid(16);
        assert_eq!(m.s2_steps, 48);
        assert_eq!(m.route_steps, 15);
        // 4(r-1)²N dominates: for r=2, S_2 = S2 = 3N.
        assert_eq!(m.predicted_sort_steps(2), 48);
        // r=3: 4·S2 + 2·R = 12N + 2(N-1).
        assert_eq!(m.predicted_sort_steps(3), 4 * 48 + 2 * 15);
    }

    #[test]
    fn hypercube_model_matches_section_5_3() {
        let m = CostModel::paper_hypercube();
        // 3(r-1)² + (r-1)(r-2).
        for r in 2..12 {
            let rr = r as u64;
            assert_eq!(
                m.predicted_sort_steps(r),
                3 * (rr - 1) * (rr - 1) + (rr - 1) * (rr - 2)
            );
        }
    }

    #[test]
    fn universal_model_is_at_most_18_factor() {
        for n in [4usize, 8, 16, 32] {
            let m = CostModel::paper_universal(n);
            for r in 2..8 {
                let rr = (r - 1) as u64;
                assert!(
                    m.predicted_sort_steps(r) <= 18 * rr * rr * n as u64,
                    "n={n} r={r}"
                );
            }
        }
    }

    #[test]
    fn lemma3_telescopes_to_theorem1() {
        let m = CostModel::paper_torus(9);
        for r in 3..9 {
            let total: u64 = m.s2_steps + (3..=r).map(|k| m.predicted_merge_steps(k)).sum::<u64>();
            assert_eq!(total, m.predicted_sort_steps(r), "r={r}");
        }
    }
}
