//! A cache of compiled BSP programs, keyed by the *structure* of the
//! sort: factor-graph wiring, number of dimensions, and `PG_2` sorter.
//!
//! Compiling a program ([`crate::bsp::compile`]) replays the whole
//! algorithm through a recording engine and lowers every logical round
//! — far more expensive than executing the result once. Repeated sorts
//! on the same topology (parameter sweeps, batched throughput runs)
//! should compile once; this cache makes that automatic and observable
//! (hit/miss counters).
//!
//! The key deliberately stores the factor's **full edge set**, not a
//! hash of it: two factors with equal node and edge counts but
//! different wiring (say, a path and a star on four nodes) can never
//! collide, by construction. [`fingerprint`] offers a compact digest
//! of the same identity for display and logging only.

use crate::bsp::{compile, CompiledProgram};
use crate::kernel::KernelProgram;
use crate::sorters::Pg2Sorter;
use crate::vertical::{VerticalProgram, WORD_LANES};
use pns_graph::Graph;
use pns_obs::{Event, EventLogger, SpanClass, Stage, Tier};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Structural identity of a compiled program: everything [`compile`]'s
/// output depends on, with the edge set stored verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    /// Factor node count.
    pub n: usize,
    /// Product dimensions.
    pub r: usize,
    /// `PG_2` sorter identity ([`Pg2Sorter::id`]) — unlike the display
    /// name, this distinguishes parameterized variants of one
    /// construction, so two sorters that generate different programs can
    /// never share an entry.
    pub sorter: String,
    /// Normalized edge list: each edge as `(min, max)`, sorted.
    pub edges: Vec<(u32, u32)>,
    /// Whether the cached program went through
    /// [`CompiledProgram::optimized`].
    pub optimized: bool,
}

impl ProgramKey {
    /// Key for the program sorting the product of `factor` with `r`
    /// dimensions using `sorter`.
    #[must_use]
    pub fn new(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter, optimized: bool) -> Self {
        ProgramKey {
            n: factor.n(),
            r,
            sorter: sorter.id(),
            edges: normalized_edges(factor),
            optimized,
        }
    }

    /// Compact digest of this key's structural identity (FNV-1a over
    /// node count, dimensions, sorter identity, and the normalized edge
    /// set — `optimized` is excluded, so the digest names the topology,
    /// not the compilation mode). Display/logging only: the cache
    /// compares full keys.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&(self.n as u64).to_le_bytes());
        eat(&(self.r as u64).to_le_bytes());
        eat(self.sorter.as_bytes());
        for &(a, b) in &self.edges {
            eat(&a.to_le_bytes());
            eat(&b.to_le_bytes());
        }
        h
    }
}

pub(crate) fn normalized_edges(factor: &Graph) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = factor.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Compact digest (FNV-1a over node count, dimensions, sorter identity,
/// and the normalized edge set) of a program's structural identity. For
/// display and logging; the cache itself compares full keys, so
/// fingerprint collisions cannot cause wrong programs to be served.
#[must_use]
pub fn fingerprint(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) -> u64 {
    ProgramKey::new(factor, r, sorter, false).fingerprint()
}

/// Point-in-time snapshot of a [`ProgramCache`]'s accounting, for
/// experiment tables and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Distinct programs held at snapshot time.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of requests served from the cache, in `[0, 1]`
    /// (0 when no request has been made).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }

    /// Publish this snapshot into a metrics [`Registry`] under the
    /// `pns_` namespace, labeled by which cache tier it came from
    /// (`program`, `kernel`, or `vertical`).
    ///
    /// [`Registry`]: pns_obs::Registry
    pub fn export_to(&self, registry: &mut pns_obs::Registry, tier: &str) {
        let labels = &[("cache", tier)][..];
        registry.set_counter_with("pns_program_cache_hits_total", labels, self.hits);
        registry.set_counter_with("pns_program_cache_misses_total", labels, self.misses);
        registry.set_counter_with("pns_program_cache_entries", labels, self.entries as u64);
        registry.set_gauge_with("pns_program_cache_hit_ratio", labels, self.hit_ratio());
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit), {} programs",
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.entries
        )
    }
}

/// Thread-safe cache of compiled programs with hit/miss accounting.
/// Lowered kernels ([`KernelProgram`]) and their vertical commitments
/// ([`VerticalProgram`]) are cached alongside, under the same keys,
/// each with their own hit/miss counters — [`CacheStats`] and the
/// program counters are untouched by kernel or vertical traffic.
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: RwLock<HashMap<ProgramKey, Arc<CompiledProgram>>>,
    kernels: RwLock<HashMap<ProgramKey, Arc<KernelProgram>>>,
    verticals: RwLock<HashMap<ProgramKey, Arc<VerticalProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    kernel_hits: AtomicU64,
    kernel_misses: AtomicU64,
    vertical_hits: AtomicU64,
    vertical_misses: AtomicU64,
    logger: EventLogger,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Emit one `CacheLookup` event per lookup into `logger`, carrying
    /// hit/miss and the key's structural fingerprint.
    pub fn attach_logger(&mut self, logger: EventLogger) {
        self.logger = logger;
    }

    /// The compiled program for `(factor, r, sorter)`, compiling on the
    /// first request and returning the shared compiled copy afterwards.
    ///
    /// Robust to lock poisoning: a panic inside a previous compile never
    /// wedges the cache (the map only ever holds fully built programs).
    pub fn get_or_compile(
        &self,
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
    ) -> Arc<CompiledProgram> {
        self.lookup(ProgramKey::new(factor, r, sorter, false), || {
            compile(factor, r, sorter)
        })
    }

    /// As [`ProgramCache::get_or_compile`], but the cached program is
    /// run through [`CompiledProgram::optimized`]. Cached separately
    /// from the unoptimized program.
    pub fn get_or_compile_optimized(
        &self,
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
    ) -> Arc<CompiledProgram> {
        self.lookup(ProgramKey::new(factor, r, sorter, true), || {
            compile(factor, r, sorter).optimized()
        })
    }

    /// The compiled program **and** its lowered kernel for
    /// `(factor, r, sorter)`, compiling and lowering on the first
    /// request. The program side behaves exactly like
    /// [`ProgramCache::get_or_compile`] (one lookup, same counters); the
    /// kernel side is cached under the same key with its own counters
    /// and emits one `KernelLowered` event per lowering.
    pub fn get_or_compile_kernel(
        &self,
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
    ) -> (Arc<CompiledProgram>, Arc<KernelProgram>) {
        let program = self.get_or_compile(factor, r, sorter);
        let kernel = self.kernel_lookup(ProgramKey::new(factor, r, sorter, false), &program);
        (program, kernel)
    }

    /// As [`ProgramCache::get_or_compile_kernel`], for the optimized
    /// program ([`CompiledProgram::optimized`]). Cached separately from
    /// the unoptimized kernel.
    pub fn get_or_compile_kernel_optimized(
        &self,
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
    ) -> (Arc<CompiledProgram>, Arc<KernelProgram>) {
        let program = self.get_or_compile_optimized(factor, r, sorter);
        let kernel = self.kernel_lookup(ProgramKey::new(factor, r, sorter, true), &program);
        (program, kernel)
    }

    /// The compiled program, its lowered kernel, **and** the kernel's
    /// vertical (bit-sliced) commitment for `(factor, r, sorter)`. The
    /// program and kernel sides ride on
    /// [`ProgramCache::get_or_compile_kernel`] — identical counter
    /// deltas — while the vertical side is cached under the same key
    /// with its own counters and emits one `VerticalLowered` event per
    /// commitment.
    pub fn get_or_compile_vertical(
        &self,
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
    ) -> (
        Arc<CompiledProgram>,
        Arc<KernelProgram>,
        Arc<VerticalProgram>,
    ) {
        let (program, kernel) = self.get_or_compile_kernel(factor, r, sorter);
        let vertical = self.vertical_lookup(ProgramKey::new(factor, r, sorter, false), &kernel);
        (program, kernel, vertical)
    }

    /// As [`ProgramCache::get_or_compile_vertical`], for the optimized
    /// program. Cached separately from the unoptimized vertical.
    pub fn get_or_compile_vertical_optimized(
        &self,
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
    ) -> (
        Arc<CompiledProgram>,
        Arc<KernelProgram>,
        Arc<VerticalProgram>,
    ) {
        let (program, kernel) = self.get_or_compile_kernel_optimized(factor, r, sorter);
        let vertical = self.vertical_lookup(ProgramKey::new(factor, r, sorter, true), &kernel);
        (program, kernel, vertical)
    }

    fn vertical_lookup(
        &self,
        key: ProgramKey,
        kernel: &Arc<KernelProgram>,
    ) -> Arc<VerticalProgram> {
        if let Some(hit) = self
            .verticals
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            self.vertical_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let lower_span = self
            .logger
            .span(Tier::Cache, Stage::LowerVertical, SpanClass::None);
        let vertical = Arc::new(VerticalProgram::lower(Arc::clone(kernel)));
        drop(lower_span);
        self.vertical_misses.fetch_add(1, Ordering::Relaxed);
        self.logger.log(|| Event::VerticalLowered {
            rounds: vertical.rounds() as u64,
            compare_rounds: kernel.compare_rounds() as u64,
            route_rounds: kernel.route_rounds() as u64,
            word_ops: vertical.word_ops() as u64,
            lanes: WORD_LANES as u64,
        });
        self.verticals
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, Arc::clone(&vertical));
        vertical
    }

    fn kernel_lookup(&self, key: ProgramKey, program: &CompiledProgram) -> Arc<KernelProgram> {
        if let Some(hit) = self
            .kernels
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            self.kernel_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Lower outside the lock, like `lookup` compiles outside it.
        // Cached programs come from `compile`, whose output satisfies
        // the machine-model invariants lowering assumes.
        let lower_span = self
            .logger
            .span(Tier::Cache, Stage::LowerKernel, SpanClass::None);
        let kernel = Arc::new(KernelProgram::lower(program));
        drop(lower_span);
        self.kernel_misses.fetch_add(1, Ordering::Relaxed);
        self.logger.log(|| Event::KernelLowered {
            rounds: kernel.rounds() as u64,
            compare_rounds: kernel.compare_rounds() as u64,
            route_rounds: kernel.route_rounds() as u64,
            cx_pairs: kernel.cx_pair_count() as u64,
            micro_ops: kernel.micro_op_count() as u64,
        });
        self.kernels
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, Arc::clone(&kernel));
        kernel
    }

    fn lookup(
        &self,
        key: ProgramKey,
        build: impl FnOnce() -> CompiledProgram,
    ) -> Arc<CompiledProgram> {
        if let Some(hit) = self
            .programs
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.logger.log(|| Event::CacheLookup {
                hit: true,
                key_fingerprint: key.fingerprint(),
            });
            return Arc::clone(hit);
        }
        // Compile outside the lock; a concurrent compile of the same key
        // wastes work but stays correct (last insert wins, same program).
        let compile_span = self
            .logger
            .span(Tier::Cache, Stage::Compile, SpanClass::None);
        let program = Arc::new(build());
        drop(compile_span);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.logger.log(|| Event::CacheLookup {
            hit: false,
            key_fingerprint: key.fingerprint(),
        });
        self.programs
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, Arc::clone(&program));
        program
    }

    /// Requests served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to compile.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Kernel requests served from the cache.
    #[must_use]
    pub fn kernel_hits(&self) -> u64 {
        self.kernel_hits.load(Ordering::Relaxed)
    }

    /// Kernel requests that had to lower.
    #[must_use]
    pub fn kernel_misses(&self) -> u64 {
        self.kernel_misses.load(Ordering::Relaxed)
    }

    /// Number of distinct lowered kernels held.
    #[must_use]
    pub fn kernel_len(&self) -> usize {
        self.kernels
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Vertical requests served from the cache.
    #[must_use]
    pub fn vertical_hits(&self) -> u64 {
        self.vertical_hits.load(Ordering::Relaxed)
    }

    /// Vertical requests that had to commit a layout.
    #[must_use]
    pub fn vertical_misses(&self) -> u64 {
        self.vertical_misses.load(Ordering::Relaxed)
    }

    /// Number of distinct vertical programs held.
    #[must_use]
    pub fn vertical_len(&self) -> usize {
        self.verticals
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Consistent snapshot of the accounting, for tables and logs.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.len(),
        }
    }

    /// Number of distinct programs held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.programs
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// `true` iff no program is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached programs and kernels (counters keep their
    /// totals).
    pub fn clear(&self) {
        self.programs
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.kernels
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.verticals
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorters::{OetSnakeSorter, ShearSorter};
    use pns_graph::factories;

    #[test]
    fn second_request_is_a_hit_and_shares_the_program() {
        let cache = ProgramCache::new();
        let factor = factories::path(3);
        let first = cache.get_or_compile(&factor, 2, &ShearSorter);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.get_or_compile(&factor, 2, &ShearSorter);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit must share, not recompile"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let cache = ProgramCache::new();
        let factor = factories::path(3);
        let _ = cache.get_or_compile(&factor, 2, &ShearSorter);
        let _ = cache.get_or_compile(&factor, 3, &ShearSorter); // other r
        let _ = cache.get_or_compile(&factor, 2, &OetSnakeSorter); // other sorter
        let _ = cache.get_or_compile_optimized(&factor, 2, &ShearSorter); // optimized
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn two_sorters_over_the_same_wiring_never_cross_pollinate() {
        // Regression: the key (and its fingerprint) must carry the
        // sorter's identity, so the same factor compiled under two
        // sorters yields two entries with correct per-request counters —
        // never one entry served to both.
        use crate::sorters::MultiwayNSorter;
        let cache = ProgramCache::new();
        let factor = factories::complete(4);
        let a1 = cache.get_or_compile(&factor, 2, &OetSnakeSorter);
        let b1 = cache.get_or_compile(&factor, 2, &MultiwayNSorter);
        assert_eq!((cache.hits(), cache.misses()), (0, 2), "both compile");
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&a1, &b1));
        assert_ne!(a1.rounds(), b1.rounds(), "genuinely different programs");
        // Repeat requests hit their own entry, not each other's.
        let a2 = cache.get_or_compile(&factor, 2, &OetSnakeSorter);
        let b2 = cache.get_or_compile(&factor, 2, &MultiwayNSorter);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(Arc::ptr_eq(&b1, &b2));
        // The fingerprint separates them too.
        assert_ne!(
            fingerprint(&factor, 2, &OetSnakeSorter),
            fingerprint(&factor, 2, &MultiwayNSorter)
        );
    }

    #[test]
    fn parameterized_sorter_variants_get_distinct_entries() {
        // Two variants share a display name but differ in `id()` — the
        // cache must treat them as different sorters.
        use crate::sorters::{PeriodicMergeSorter, Pg2Sorter};
        let plain = PeriodicMergeSorter::default();
        let tuned = PeriodicMergeSorter::with_extra_blocks(1);
        assert_eq!(plain.name(), tuned.name());
        let cache = ProgramCache::new();
        let factor = factories::path(3);
        let p = cache.get_or_compile(&factor, 2, &plain);
        let t = cache.get_or_compile(&factor, 2, &tuned);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
        assert!(t.rounds() > p.rounds(), "extra blocks add rounds");
        assert_ne!(
            fingerprint(&factor, 2, &plain),
            fingerprint(&factor, 2, &tuned)
        );
    }

    #[test]
    fn same_counts_different_wiring_do_not_collide() {
        // path(4) and star(4) both have 4 nodes and 3 edges; the keys
        // must differ because the edge sets differ.
        let path = factories::path(4);
        let star = factories::star(4);
        let kp = ProgramKey::new(&path, 2, &OetSnakeSorter, false);
        let ks = ProgramKey::new(&star, 2, &OetSnakeSorter, false);
        assert_eq!(kp.n, ks.n);
        assert_eq!(kp.edges.len(), ks.edges.len());
        assert_ne!(kp, ks, "wiring must be part of the key");

        let cache = ProgramCache::new();
        let p_path = cache.get_or_compile(&path, 2, &OetSnakeSorter);
        let p_star = cache.get_or_compile(&star, 2, &OetSnakeSorter);
        assert_eq!(cache.misses(), 2, "no collision: both compile");
        // The star program relays through the hub; the path program
        // does not — structurally different schedules.
        assert_ne!(p_path.op_count(), p_star.op_count());
    }

    #[test]
    fn fingerprints_separate_wiring_too() {
        let path = factories::path(4);
        let star = factories::star(4);
        assert_ne!(
            fingerprint(&path, 2, &OetSnakeSorter),
            fingerprint(&star, 2, &OetSnakeSorter)
        );
        assert_eq!(
            fingerprint(&path, 2, &OetSnakeSorter),
            fingerprint(&factories::path(4), 2, &OetSnakeSorter),
            "fingerprint is a pure function of the structure"
        );
    }

    #[test]
    fn stats_snapshot_and_display() {
        let cache = ProgramCache::new();
        let factor = factories::path(3);
        let _ = cache.get_or_compile(&factor, 2, &ShearSorter);
        let _ = cache.get_or_compile(&factor, 2, &ShearSorter);
        let _ = cache.get_or_compile(&factor, 3, &ShearSorter);
        let stats = cache.stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 1,
                misses: 2,
                entries: 2
            }
        );
        assert!((stats.hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
        let shown = stats.to_string();
        assert!(shown.contains("1 hits / 2 misses"), "{shown}");
        assert!(shown.contains("2 programs"), "{shown}");
        assert_eq!(ProgramCache::new().stats().hit_ratio(), 0.0);
    }

    #[test]
    fn lookups_emit_cache_events_with_the_key_fingerprint() {
        let (sink, reader) = pns_obs::MemorySink::with_capacity(16);
        let mut cache = ProgramCache::new();
        cache.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
        let factor = factories::path(3);
        let _ = cache.get_or_compile(&factor, 2, &ShearSorter);
        let _ = cache.get_or_compile(&factor, 2, &ShearSorter);
        // Cache lookups run on the caller's thread; drain its buffer.
        cache.logger.flush();
        let events: Vec<_> = reader.events().iter().map(|e| e.event).collect();
        let fp = fingerprint(&factor, 2, &ShearSorter);
        let lookups: Vec<_> = events
            .iter()
            .copied()
            .filter(|e| matches!(e, pns_obs::Event::CacheLookup { .. }))
            .collect();
        assert_eq!(
            lookups,
            vec![
                pns_obs::Event::CacheLookup {
                    hit: false,
                    key_fingerprint: fp
                },
                pns_obs::Event::CacheLookup {
                    hit: true,
                    key_fingerprint: fp
                },
            ]
        );
        // The miss compiled under a Cache/Compile span; the hit did not.
        let opens: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                pns_obs::Event::SpanEnter { tier, stage, .. } => Some((*tier, *stage)),
                _ => None,
            })
            .collect();
        let closes = events
            .iter()
            .filter(|e| matches!(e, pns_obs::Event::SpanExit { .. }))
            .count();
        assert_eq!(
            opens,
            vec![(Tier::Cache.code(), Stage::Compile.code())],
            "exactly one compile span, on the miss"
        );
        assert_eq!(closes, 1);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ProgramCache::new();
        let factor = factories::path(3);
        let _ = cache.get_or_compile(&factor, 2, &ShearSorter);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
        let _ = cache.get_or_compile(&factor, 2, &ShearSorter);
        assert_eq!(cache.misses(), 2, "cleared entries recompile");
    }

    #[test]
    fn kernel_requests_share_one_lowering_and_leave_program_stats_alone() {
        let cache = ProgramCache::new();
        let factor = factories::path(3);
        let (p1, k1) = cache.get_or_compile_kernel(&factor, 2, &ShearSorter);
        let (p2, k2) = cache.get_or_compile_kernel(&factor, 2, &ShearSorter);
        assert!(Arc::ptr_eq(&p1, &p2), "program comes from the same entry");
        assert!(Arc::ptr_eq(&k1, &k2), "kernel is lowered exactly once");
        assert_eq!(k1.rounds(), p1.rounds());
        assert_eq!((cache.kernel_hits(), cache.kernel_misses()), (1, 1));
        assert_eq!(cache.kernel_len(), 1);
        // Kernel traffic rides on the same program lookups — the
        // program-side stats see exactly one miss then one hit, the
        // same deltas plain `get_or_compile` would produce.
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        // Optimized kernels are distinct cache entries.
        let (_p3, k3) = cache.get_or_compile_kernel_optimized(&factor, 2, &ShearSorter);
        assert!(!Arc::ptr_eq(&k1, &k3));
        assert_eq!(cache.kernel_len(), 2);
        cache.clear();
        assert_eq!(cache.kernel_len(), 0, "clear drops kernels too");
    }

    #[test]
    fn vertical_requests_share_one_commitment_and_leave_other_stats_alone() {
        let cache = ProgramCache::new();
        let factor = factories::path(3);
        let (p1, k1, v1) = cache.get_or_compile_vertical(&factor, 2, &ShearSorter);
        let (p2, _k2, v2) = cache.get_or_compile_vertical(&factor, 2, &ShearSorter);
        assert!(Arc::ptr_eq(&p1, &p2), "program comes from the same entry");
        assert!(Arc::ptr_eq(&v1, &v2), "layout is committed exactly once");
        assert!(
            Arc::ptr_eq(v1.kernel(), &k1),
            "the vertical program wraps the cached kernel"
        );
        assert_eq!((cache.vertical_hits(), cache.vertical_misses()), (1, 1));
        assert_eq!(cache.vertical_len(), 1);
        // Vertical traffic rides on the kernel (and thus program)
        // lookups — both see exactly the plain one-miss-one-hit deltas.
        assert_eq!((cache.kernel_hits(), cache.kernel_misses()), (1, 1));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        // Optimized verticals are distinct cache entries.
        let (_p3, _k3, v3) = cache.get_or_compile_vertical_optimized(&factor, 2, &ShearSorter);
        assert!(!Arc::ptr_eq(&v1, &v3));
        assert_eq!(cache.vertical_len(), 2);
        cache.clear();
        assert_eq!(cache.vertical_len(), 0, "clear drops verticals too");
    }

    #[test]
    fn vertical_misses_emit_one_lowered_event() {
        let (sink, reader) = pns_obs::MemorySink::with_capacity(16);
        let mut cache = ProgramCache::new();
        cache.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
        let factor = factories::path(3);
        let (_program, kernel, vertical) = cache.get_or_compile_vertical(&factor, 2, &ShearSorter);
        let _ = cache.get_or_compile_vertical(&factor, 2, &ShearSorter);
        cache.logger.flush();
        let lowered: Vec<_> = reader
            .events()
            .iter()
            .map(|e| e.event)
            .filter(|e| e.kind() == "vertical_lowered")
            .collect();
        assert_eq!(
            lowered,
            vec![pns_obs::Event::VerticalLowered {
                rounds: vertical.rounds() as u64,
                compare_rounds: kernel.compare_rounds() as u64,
                route_rounds: kernel.route_rounds() as u64,
                word_ops: vertical.word_ops() as u64,
                lanes: WORD_LANES as u64,
            }],
            "the second request is a hit and stays silent"
        );
    }

    #[test]
    fn kernel_misses_emit_one_lowered_event() {
        let (sink, reader) = pns_obs::MemorySink::with_capacity(16);
        let mut cache = ProgramCache::new();
        cache.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
        let factor = factories::path(3);
        let (program, kernel) = cache.get_or_compile_kernel(&factor, 2, &ShearSorter);
        let _ = cache.get_or_compile_kernel(&factor, 2, &ShearSorter);
        cache.logger.flush();
        let lowered: Vec<_> = reader
            .events()
            .iter()
            .map(|e| e.event)
            .filter(|e| e.kind() == "kernel_lowered")
            .collect();
        assert_eq!(
            lowered,
            vec![pns_obs::Event::KernelLowered {
                rounds: program.rounds() as u64,
                compare_rounds: kernel.compare_rounds() as u64,
                route_rounds: kernel.route_rounds() as u64,
                cx_pairs: kernel.cx_pair_count() as u64,
                micro_ops: kernel.micro_op_count() as u64,
            }],
            "the second request is a hit and stays silent"
        );
    }
}
