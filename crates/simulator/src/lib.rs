//! Cycle-accurate synchronous simulation of the multiway-merge sorting
//! algorithm on product networks (Section 4 of Fernández & Efe).
//!
//! The simulator holds one key per node of `PG_r` and executes the
//! network-mapped algorithm as synchronous rounds. Two engines implement
//! the same control flow with different cost semantics:
//!
//! * **Charged** ([`engine::ChargedEngine`]): data operations complete
//!   instantly, and each parallel round of `PG_2` sorts is charged
//!   `S2(N)` steps while each odd-even transposition round is charged
//!   `R(N)` steps — exactly the paper's accounting, with the Section 5
//!   constants packaged as [`cost::CostModel`]s. This reproduces Lemma 3,
//!   Theorem 1 and every Section 5 closed form by measurement.
//! * **Executed** ([`engine::ExecutedEngine`]): `PG_2` sorts run real
//!   comparator programs ([`sorters`]) and transposition rounds run real
//!   routing on the factor graph; the step count is whatever actually
//!   happened, with every compare-exchange checked against the network's
//!   edge set. This demonstrates end-to-end realizability.
//!
//! [`machine::Machine`] is the user-facing entry point.
//!
//! # Layout of data
//!
//! Keys live in a `Vec<K>` indexed by *node rank* (the mixed-radix value of
//! the node label). "Sorted" means sorted in *snake order* (Definition 2):
//! reading nodes in snake order yields a nondecreasing sequence.

pub mod block;
pub mod bsp;
pub mod cache;
pub mod cost;
pub mod engine;
pub mod enumerate;
pub mod fault;
pub mod kernel;
pub mod machine;
pub mod netsort;
pub mod sample;
pub mod select;
pub mod sorters;
pub mod verify;
pub mod vertical;

pub use block::{block_sort, BlockEngine, SortedBlock};
pub use bsp::{
    compile, BspMachine, CertPoint, CompiledProgram, Op, ProgramError, ProgramStats,
    ValidationReport,
};
pub use cache::{fingerprint, CacheStats, ProgramCache, ProgramKey};
pub use cost::CostModel;
pub use engine::{ChargedEngine, Engine, ExecutedEngine, Pg2Instance, PAR_THRESHOLD};
pub use fault::{Detection, FaultError, FaultReport, InjectedFault, Retry};
pub use kernel::{ExecScratch, KernelProgram, RoundClass, ScratchPool, KERNEL_PAR_THRESHOLD};
// The fault plan/policy vocabulary is re-exported so executor callers
// need not depend on `pns-fault` directly.
pub use machine::{Machine, SortError, SortReport};
pub use netsort::{network_sort, NetSortOutcome};
pub use pns_fault::{FaultKind, FaultPlan, FaultSite, OpClass, RetryPolicy};
pub use sample::{sample_sort, try_sample_sort, SampleSortOutcome};
pub use select::{
    candidates, score_sorter, score_sorters, select_sorter, SorterChoice, SorterScore,
};
pub use sorters::{
    Hypercube2Sorter, MultiwayNSorter, OetSnakeSorter, PeriodicMergeSorter, Pg2Sorter, ShearSorter,
};
pub use verify::{network_sort_checked, subgraphs_snake_sorted, LoggingEngine, RoundRecord};
pub use vertical::{
    pack_zero_one_masks, pack_zero_one_masks_into, unpack_zero_one_lane, unpack_zero_one_lane_into,
    BitScratch, VerticalPool, VerticalProgram, VerticalScratch, VERTICAL_MIN_LANES, WORD_LANES,
};
