//! The network-mapped sorting algorithm (Section 4 of the paper).
//!
//! One key per node; "sorted" = nondecreasing in snake order. The sort of
//! `N^r` keys proceeds exactly as Section 3.3, with every operation
//! realized as parallel rounds over subgraphs:
//!
//! * Stage 2 sorts every `PG_2` subgraph over dimensions `{1, 2}` (all in
//!   one parallel round).
//! * Stage `k` (for `k = 3 … r`) runs the multiway merge over dimensions
//!   `{1, …, k}`; the `N^{r-k}` instances over the remaining dimensions
//!   are implicitly parallel — the same rounds cover all of them.
//!
//! Within a merge over dimensions `d_1 … d_k`:
//!
//! * **Step 1** is free: the input subsequences `B_{u,v}` are already
//!   where snake order put them (`[u,v]PG^{k,1}` subgraphs).
//! * **Step 2** recurses on dimensions `d_2 … d_k` (the recursion's
//!   parallelism over `d_1` is again implicit); the base case `k = 2`
//!   sorts `PG_2` subgraphs over `(d_1, d_2)` ascending.
//! * **Step 3** is free: reintroducing dimension-`d_1` edges re-reads the
//!   data in snake order.
//! * **Step 4** sorts the `PG_2` subgraphs over `(d_1, d_2)` in
//!   directions alternating with the Hamming-weight parity of their group
//!   labels (digits at `d_3 … d_k` only), runs two odd-even transposition
//!   rounds between group-sequence-consecutive subgraphs (node pairs
//!   along the one differing dimension), and sorts again.

use crate::engine::{Engine, Pg2Instance};
use crate::enumerate::{base_nodes, digit_weight, pg2_offsets};
use pns_core::Counters;
use pns_order::group::{group_sequence, group_steps, Parity};
use pns_order::radix::Shape;
use pns_order::snake::node_at_snake_pos;
use pns_order::Direction;

/// Measured outcome of a network sort (or merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSortOutcome {
    /// Unit counters (same semantics as the sequence-level algorithm):
    /// `s2_units` parallel sort rounds, `route_units` transposition rounds.
    pub counters: Counters,
    /// Total steps taken (sort + transposition).
    pub steps: u64,
    /// Steps spent in `PG_2` sort rounds.
    pub sort_steps: u64,
    /// Steps spent in odd-even transposition rounds.
    pub oet_steps: u64,
}

/// Sort the network's keys in snake order. `keys[v]` is the key held by
/// node `v` (by rank); on return the keys are sorted in snake order.
///
/// # Panics
///
/// Panics if `keys.len() != N^r` or `r < 2`.
pub fn network_sort<K, E>(shape: Shape, keys: &mut [K], engine: &mut E) -> NetSortOutcome
where
    K: Ord + Clone + Send + Sync,
    E: Engine<K>,
{
    assert_eq!(keys.len() as u64, shape.len(), "one key per node");
    let r = shape.r();
    assert!(r >= 2, "the algorithm needs at least two dimensions");
    let mut out = NetSortOutcome::default();
    let dims: Vec<usize> = (0..r).collect();

    // Stage 2: sort every PG_2 subgraph over dimensions {1, 2}, ascending.
    sort_round(shape, keys, engine, 0, 1, None, &mut out);

    // Stages 3 … r: merge over growing dimension prefixes.
    for k in 3..=r {
        network_merge(shape, keys, engine, &dims[..k], &mut out);
    }
    out
}

/// The network multiway merge over `dims` (all parallel instances over the
/// complement dimensions at once).
///
/// Precondition: for every assignment of the non-`dims` digits and every
/// `u`, the subgraph over `dims[..k-1]` with `digit(dims[k-1]) = u` holds
/// keys sorted in its forward snake order. [`network_sort`] establishes
/// this stage by stage; call this directly only if you maintain it.
pub fn network_merge<K, E>(
    shape: Shape,
    keys: &mut [K],
    engine: &mut E,
    dims: &[usize],
    out: &mut NetSortOutcome,
) where
    K: Ord + Clone + Send + Sync,
    E: Engine<K>,
{
    debug_assert!(dims.len() >= 2);
    out.counters.merges += 1;
    if dims.len() == 2 {
        // Base case: one parallel round of ascending PG_2 sorts.
        sort_round(shape, keys, engine, dims[0], dims[1], None, out);
        return;
    }

    // Step 2: recursive merge on dims[1..]; Steps 1 and 3 are free.
    network_merge(shape, keys, engine, &dims[1..], out);

    // Step 4: clean the dirty window.
    let gdims = &dims[2..];
    sort_round(shape, keys, engine, dims[0], dims[1], Some(gdims), out);
    oet_round(shape, keys, engine, gdims, 0, out);
    oet_round(shape, keys, engine, gdims, 1, out);
    sort_round(shape, keys, engine, dims[0], dims[1], Some(gdims), out);
}

/// One parallel round of `PG_2` sorts over `(dim_a, dim_b)`, covering all
/// assignments of the other digits. With `parity_dims = None` every
/// subgraph sorts ascending; otherwise the direction alternates with the
/// Hamming-weight parity of the digits at `parity_dims` (the group label).
fn sort_round<K, E>(
    shape: Shape,
    keys: &mut [K],
    engine: &mut E,
    dim_a: usize,
    dim_b: usize,
    parity_dims: Option<&[usize]>,
    out: &mut NetSortOutcome,
) where
    K: Ord + Clone + Send + Sync,
    E: Engine<K>,
{
    let offsets = pg2_offsets(shape, dim_a, dim_b);
    let bases = base_nodes(shape, &[dim_a, dim_b]);
    let subgraphs: Vec<Pg2Instance> = bases
        .iter()
        .map(|&base| {
            let dir = match parity_dims {
                None => Direction::Ascending,
                Some(ds) => Direction::for_parity(Parity::of(digit_weight(shape, base, ds))),
            };
            Pg2Instance {
                nodes: offsets.iter().map(|&o| base + o).collect(),
                dir,
            }
        })
        .collect();
    let steps = engine.sort_round(keys, &subgraphs);
    out.counters.s2_units += 1;
    out.counters.base_sorts += subgraphs.len() as u64;
    out.sort_steps += steps;
    out.steps += steps;
}

/// One odd-even transposition round between group-sequence-consecutive
/// `PG_2` subgraphs: for every transition `z → z+1` with `z ≡ parity`,
/// every node of subgraph `z` compares with the node of subgraph `z+1`
/// that matches it in all other digits (they differ only at the one group
/// dimension that changes, by one), keeping the minimum on the `z` side.
fn oet_round<K, E>(
    shape: Shape,
    keys: &mut [K],
    engine: &mut E,
    gdims: &[usize],
    parity: usize,
    out: &mut NetSortOutcome,
) where
    K: Ord + Clone + Send + Sync,
    E: Engine<K>,
{
    let n = shape.n();
    let bases = base_nodes(shape, gdims);
    let seq = group_sequence(n, gdims.len());
    let transitions = group_steps(n, gdims.len());
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    for (z, st) in transitions.iter().enumerate() {
        if z % 2 != parity {
            continue;
        }
        let label = &seq[z].0;
        for &base in &bases {
            let mut a = base;
            for (i, &d) in gdims.iter().enumerate() {
                a = shape.with_digit(a, d, label[i]);
            }
            let b = shape.with_digit(a, gdims[st.dim], st.to);
            pairs.push((a, b));
        }
    }
    // The synchronous round happens even if this parity class is empty
    // (e.g. N = 2 with a single transition): Lemma 3 charges both rounds,
    // and the engines price an empty round like any other.
    let steps = engine.oet_round(keys, &pairs);
    out.counters.route_units += 1;
    out.counters.compare_exchanges += pairs.len() as u64;
    out.oet_steps += steps;
    out.steps += steps;
}

/// `true` iff `keys` (indexed by node rank) are nondecreasing in snake
/// order.
#[must_use]
pub fn is_snake_sorted<K: Ord>(shape: Shape, keys: &[K]) -> bool {
    let mut prev: Option<&K> = None;
    for pos in 0..shape.len() {
        let k = &keys[node_at_snake_pos(shape, pos) as usize];
        if let Some(p) = prev {
            if p > k {
                return false;
            }
        }
        prev = Some(k);
    }
    true
}

/// Read the keys out in snake order (the sorted sequence).
#[must_use]
pub fn read_snake_order<K: Clone>(shape: Shape, keys: &[K]) -> Vec<K> {
    (0..shape.len())
        .map(|pos| keys[node_at_snake_pos(shape, pos) as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::engine::ChargedEngine;
    use pns_core::sort::{predicted_route_units, predicted_s2_units};

    fn charged_sort(n: usize, r: usize, keys: &mut [u64]) -> NetSortOutcome {
        let shape = Shape::new(n, r);
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        network_sort(shape, keys, &mut engine)
    }

    #[test]
    fn sorts_reversed_keys_on_various_shapes() {
        for (n, r) in [
            (2usize, 2usize),
            (2, 4),
            (2, 6),
            (3, 3),
            (3, 4),
            (4, 3),
            (5, 2),
        ] {
            let shape = Shape::new(n, r);
            let len = shape.len() as usize;
            let mut keys: Vec<u64> = (0..len as u64).rev().collect();
            let _ = charged_sort(n, r, &mut keys);
            assert!(is_snake_sorted(shape, &keys), "n={n} r={r}");
            let seq = read_snake_order(shape, &keys);
            assert_eq!(seq, (0..len as u64).collect::<Vec<_>>(), "n={n} r={r}");
        }
    }

    #[test]
    fn theorem1_unit_counts_on_the_network() {
        for (n, r) in [(2usize, 3usize), (2, 5), (3, 3), (3, 4), (4, 3)] {
            let shape = Shape::new(n, r);
            let mut keys: Vec<u64> = (0..shape.len())
                .map(|x| x.wrapping_mul(0x9E37_79B9) % 97)
                .collect();
            let out = charged_sort(n, r, &mut keys);
            assert!(is_snake_sorted(shape, &keys));
            assert_eq!(out.counters.s2_units, predicted_s2_units(r), "n={n} r={r}");
            assert_eq!(
                out.counters.route_units,
                predicted_route_units(r),
                "n={n} r={r}"
            );
        }
    }

    #[test]
    fn charged_steps_match_cost_model_prediction() {
        for (n, r) in [(3usize, 3usize), (4, 3), (2, 5)] {
            let shape = Shape::new(n, r);
            let model = CostModel::paper_grid(n);
            let mut engine = ChargedEngine::new(model.clone());
            let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
            let out = network_sort(shape, &mut keys, &mut engine);
            assert_eq!(out.steps, model.predicted_sort_steps(r), "n={n} r={r}");
        }
    }

    #[test]
    fn network_and_sequence_algorithms_agree() {
        // The network result read in snake order must equal the
        // sequence-level algorithm's output (both equal std sort).
        let (n, r) = (3usize, 3usize);
        let shape = Shape::new(n, r);
        let keys0: Vec<u64> = (0..27u64).map(|x| (x * 11) % 13).collect();
        let mut net = keys0.clone();
        let _ = charged_sort(n, r, &mut net);
        let (seq, _) = pns_core::multiway_merge_sort(&keys0, n, &pns_core::StdBaseSorter);
        assert_eq!(read_snake_order(shape, &net), seq);
    }

    #[test]
    fn merge_alone_satisfies_lemma3_counts() {
        // Prepare the merge precondition by sorting each dim-3 subgraph's
        // keys (over dims 0..2) in its own snake order, then merge.
        let (n, r) = (3usize, 3usize);
        let shape = Shape::new(n, r);
        let mut keys: Vec<u64> = (0..27u64).map(|x| (x * 7) % 19).collect();
        let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let mut out = NetSortOutcome::default();
        // Establish: each [u]PG^3_2 snake-sorted (that's one stage-2 sort
        // round plus one 2-dim merge round in the full algorithm; here we
        // cheat and sort directly — allowed for charged engines).
        sort_round(shape, &mut keys, &mut engine, 0, 1, None, &mut out);
        network_merge(shape, &mut keys, &mut engine, &[0, 1], &mut out);
        let before = out.counters;
        network_merge(shape, &mut keys, &mut engine, &[0, 1, 2], &mut out);
        assert!(is_snake_sorted(shape, &keys));
        let merge_units = out.counters.s2_units - before.s2_units;
        let merge_routes = out.counters.route_units - before.route_units;
        assert_eq!(merge_units, 3, "Lemma 3: 2(k-2)+1 for k=3");
        assert_eq!(merge_routes, 2, "Lemma 3: 2(k-2) for k=3");
    }

    #[test]
    fn zero_one_network_merge_exhaustive_small() {
        // Zero-one exhaustiveness at the network level for N=2, r=3:
        // all 2^8 key assignments (the sort is oblivious under the charged
        // engine with a comparison sort, so this is a full proof for this
        // shape).
        let shape = Shape::new(2, 3);
        for mask in 0u32..256 {
            let mut keys: Vec<u64> = (0..8).map(|i| u64::from((mask >> i) & 1)).collect();
            let _ = charged_sort(2, 3, &mut keys);
            assert!(is_snake_sorted(shape, &keys), "mask={mask}");
            let zeros = (8 - mask.count_ones()) as usize;
            let seq = read_snake_order(shape, &keys);
            assert!(seq[..zeros].iter().all(|&k| k == 0), "mask={mask}");
            assert!(seq[zeros..].iter().all(|&k| k == 1), "mask={mask}");
        }
    }

    #[test]
    fn all_equal_keys_are_a_fixed_point() {
        let shape = Shape::new(3, 3);
        let mut keys = vec![42u64; 27];
        let _ = charged_sort(3, 3, &mut keys);
        assert!(keys.iter().all(|&k| k == 42));
        assert!(is_snake_sorted(shape, &keys));
    }
}
