//! Enumeration helpers for subgraph-parallel rounds.
//!
//! Every round of the network algorithm operates simultaneously on all
//! subgraphs spanned by a set of *active* dimensions; the parallel
//! instances are indexed by the digits of the remaining dimensions. These
//! helpers enumerate those instances directly (never scanning and
//! filtering the whole node space).

use pns_order::radix::Shape;
use pns_order::snake::snake2_unrank;

/// All node ranks whose digits at `zero_dims` are zero, enumerated in
/// mixed-radix order of the remaining dimensions (least significant free
/// dimension varies fastest).
#[must_use]
pub fn base_nodes(shape: Shape, zero_dims: &[usize]) -> Vec<u64> {
    let free: Vec<usize> = (0..shape.r()).filter(|d| !zero_dims.contains(d)).collect();
    let count = pns_order::radix::pow(shape.n(), free.len());
    let mut out = Vec::with_capacity(count as usize);
    for m in 0..count {
        let mut node = 0u64;
        let mut rest = m;
        for &d in &free {
            node = shape.with_digit(node, d, (rest % shape.n() as u64) as usize);
            rest /= shape.n() as u64;
        }
        out.push(node);
    }
    out
}

/// Node-rank offsets of a `PG_2` subgraph over `(dim_a, dim_b)` relative
/// to its base node, indexed by forward snake position: adding
/// `offsets[p]` to a base node (whose `dim_a`/`dim_b` digits are zero)
/// gives the node at snake position `p` of that subgraph.
#[must_use]
pub fn pg2_offsets(shape: Shape, dim_a: usize, dim_b: usize) -> Vec<u64> {
    assert_ne!(dim_a, dim_b);
    let n = shape.n();
    let (sa, sb) = (shape.stride(dim_a), shape.stride(dim_b));
    (0..(n * n) as u64)
        .map(|p| {
            let (xa, xb) = snake2_unrank(n, p);
            xa as u64 * sa + xb as u64 * sb
        })
        .collect()
}

/// Sum of the digits of `node` at `dims` — the Hamming weight of a group
/// label read off a concrete node.
#[inline]
#[must_use]
pub fn digit_weight(shape: Shape, node: u64, dims: &[usize]) -> u64 {
    dims.iter().map(|&d| shape.digit(node, d) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_nodes_have_zero_digits() {
        let shape = Shape::new(3, 4);
        let bases = base_nodes(shape, &[1, 2]);
        assert_eq!(bases.len(), 9);
        for &b in &bases {
            assert_eq!(shape.digit(b, 1), 0);
            assert_eq!(shape.digit(b, 2), 0);
        }
        // Distinct.
        let mut s = bases.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn base_nodes_with_no_zero_dims_is_everything() {
        let shape = Shape::new(2, 3);
        let bases = base_nodes(shape, &[]);
        assert_eq!(bases.len(), 8);
    }

    #[test]
    fn offsets_tile_the_subgraph() {
        let shape = Shape::new(3, 3);
        let offs = pg2_offsets(shape, 0, 2);
        assert_eq!(offs.len(), 9);
        let bases = base_nodes(shape, &[0, 2]);
        let mut all: Vec<u64> = bases
            .iter()
            .flat_map(|&b| offs.iter().map(move |&o| b + o))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 27, "subgraphs tile the node space");
    }

    #[test]
    fn offsets_respect_snake_order() {
        let shape = Shape::new(4, 2);
        let offs = pg2_offsets(shape, 0, 1);
        for (p, &o) in offs.iter().enumerate() {
            let (xa, xb) = snake2_unrank(4, p as u64);
            assert_eq!(shape.digit(o, 0), xa);
            assert_eq!(shape.digit(o, 1), xb);
        }
    }

    #[test]
    fn digit_weight_sums_selected_digits() {
        let shape = Shape::new(3, 4);
        let node = shape.rank(&[2, 1, 0, 2]);
        assert_eq!(digit_weight(shape, node, &[0, 3]), 4);
        assert_eq!(digit_weight(shape, node, &[1, 2]), 1);
        assert_eq!(digit_weight(shape, node, &[]), 0);
    }
}
