//! A bulk-synchronous machine model with per-node state and edge-aligned
//! operations — the paper's machine, made explicit.
//!
//! Section 4: "Before the sorting algorithm starts, each processor holds
//! one of the keys to be sorted. During the sorting algorithm, each
//! processor needs enough memory to hold at most two values being
//! compared." This module enforces exactly that discipline:
//!
//! * every node holds one resident key plus two small transit slots (a
//!   relay buffer per stream direction, needed only on non-Hamiltonian
//!   factors where compare partners are up to three hops apart);
//! * every operation in a round moves data across **one edge** of the
//!   product network or is node-local; the machine *verifies* adjacency
//!   and slot discipline at execution time and panics on violations.
//!
//! Because the sorting algorithm is oblivious, its schedule can be
//! compiled once ([`compile`]) — by replaying the round-level algorithm
//! with a recording engine and lowering every compare round to
//! edge-aligned rounds — and then executed on any input
//! ([`BspMachine::run`]).

use crate::engine::{Engine, Pg2Instance};
use crate::netsort::network_sort;
use crate::sorters::Pg2Sorter;
use pns_graph::Graph;
use pns_order::radix::Shape;
use pns_order::Direction;
use std::collections::HashMap;

/// One machine operation within a synchronous round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Op {
    /// Adjacent compare-exchange: nodes `a` and `b` swap keys over the
    /// edge if out of order; the minimum ends at `a` when `min_to_a`.
    CompareExchange {
        /// First endpoint.
        a: u64,
        /// Second endpoint.
        b: u64,
        /// `true`: minimum to `a`; `false`: minimum to `b`.
        min_to_a: bool,
    },
    /// Copy a value one hop: the source is `from`'s resident key
    /// (`from_key = true`, the first hop of a relay) or `from`'s transit
    /// slot `slot`; the value lands in `to`'s transit slot `slot`.
    Move {
        /// Sending node.
        from: u64,
        /// Receiving node (must be adjacent).
        to: u64,
        /// Transit slot index (0: forward stream, 1: backward stream).
        slot: u8,
        /// Whether the payload is the sender's resident key.
        from_key: bool,
    },
    /// Local resolution at the end of a relayed compare: `node` compares
    /// its resident key with the arrived transit value in `slot` and
    /// keeps the minimum (`keep_min`) or maximum; the slot is cleared.
    Resolve {
        /// Resolving node.
        node: u64,
        /// Transit slot holding the partner's key.
        slot: u8,
        /// Keep the minimum of {resident, arrived}.
        keep_min: bool,
    },
}

/// A synchronous round of operations. Disjointness (each node's key and
/// each slot touched at most once per round, each edge used at most once
/// per direction) is validated at execution.
pub type BspRound = Vec<Op>;

/// A compiled, input-independent schedule for one sort. Serializable, so
/// a schedule can be compiled once and shipped to the machine that runs
/// it (the machine re-validates every operation anyway).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CompiledProgram {
    shape: Shape,
    rounds: Vec<BspRound>,
}

impl CompiledProgram {
    /// Number of synchronous rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total operations across all rounds.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// The rounds themselves (for inspection/statistics).
    #[must_use]
    pub fn round_ops(&self) -> &[BspRound] {
        &self.rounds
    }

    /// The shape this program sorts.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }
}

/// The BSP machine: executes compiled programs with full validation.
pub struct BspMachine {
    network: NetworkView,
    shape: Shape,
}

/// Adjacency view over the product network (rank-based, no edge lists).
struct NetworkView {
    factor: Graph,
    shape: Shape,
}

impl NetworkView {
    fn new(factor: &Graph, shape: Shape) -> Self {
        NetworkView {
            factor: factor.clone(),
            shape,
        }
    }

    /// `true` iff `(a, b)` is an edge of the product network.
    fn has_edge(&self, a: u64, b: u64) -> bool {
        if a == b {
            return false;
        }
        let mut differing = None;
        for i in 0..self.shape.r() {
            let (da, db) = (self.shape.digit(a, i), self.shape.digit(b, i));
            if da != db {
                if differing.is_some() {
                    return false;
                }
                differing = Some((da, db));
            }
        }
        differing.is_some_and(|(da, db)| self.factor.has_edge(da as u32, db as u32))
    }
}

impl BspMachine {
    /// Build a machine over the product of `factor` with `r` dimensions.
    #[must_use]
    pub fn new(factor: &Graph, r: usize) -> Self {
        let shape = Shape::new(factor.n(), r);
        BspMachine {
            network: NetworkView::new(factor, shape),
            shape,
        }
    }

    /// The machine's shape.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Execute a compiled program on `keys` (one per node, by rank).
    /// Returns the number of rounds executed (= `program.rounds()`).
    ///
    /// # Panics
    ///
    /// Panics on any machine-model violation: non-adjacent operation,
    /// edge used twice in one direction in a round, node key or transit
    /// slot accessed twice in a round, move into an occupied slot,
    /// resolve of an empty slot, or leftover transit values at the end.
    pub fn run<K: Ord + Clone>(&self, keys: &mut [K], program: &CompiledProgram) -> u64 {
        assert_eq!(
            program.shape, self.shape,
            "program compiled for another shape"
        );
        assert_eq!(keys.len() as u64, self.shape.len(), "one key per node");
        let n_nodes = keys.len();
        let mut transit: Vec<[Option<K>; 2]> = vec![[None, None]; n_nodes];

        for (ri, round) in program.rounds.iter().enumerate() {
            // Per-round discipline tracking.
            let mut key_touched = vec![false; n_nodes];
            let mut slot_written: HashMap<(u64, u8), ()> = HashMap::new();
            let mut edge_used: HashMap<(u64, u64), ()> = HashMap::new();
            // Reads of transit slots happen against the *previous* round's
            // state: buffer incoming values and commit after the round.
            let mut incoming: Vec<(u64, u8, K)> = Vec::new();
            let mut cleared: Vec<(u64, u8)> = Vec::new();

            let touch_key = |v: u64, key_touched: &mut [bool]| {
                assert!(
                    !key_touched[v as usize],
                    "round {ri}: node {v} key accessed twice"
                );
                key_touched[v as usize] = true;
            };

            for op in round {
                match *op {
                    Op::CompareExchange { a, b, min_to_a } => {
                        assert!(
                            self.network.has_edge(a, b),
                            "round {ri}: compare-exchange ({a},{b}) is not an edge"
                        );
                        for (x, y) in [(a, b), (b, a)] {
                            assert!(
                                edge_used.insert((x, y), ()).is_none(),
                                "round {ri}: edge ({x}->{y}) used twice"
                            );
                        }
                        touch_key(a, &mut key_touched);
                        touch_key(b, &mut key_touched);
                        let (ai, bi) = (a as usize, b as usize);
                        let a_has_min = keys[ai] <= keys[bi];
                        if a_has_min != min_to_a {
                            keys.swap(ai, bi);
                        }
                    }
                    Op::Move {
                        from,
                        to,
                        slot,
                        from_key,
                    } => {
                        assert!(slot < 2, "round {ri}: bad slot {slot}");
                        assert!(
                            self.network.has_edge(from, to),
                            "round {ri}: move ({from}->{to}) is not an edge"
                        );
                        assert!(
                            edge_used.insert((from, to), ()).is_none(),
                            "round {ri}: edge ({from}->{to}) used twice"
                        );
                        let payload =
                            if from_key {
                                keys[from as usize].clone()
                            } else {
                                let v =
                                    transit[from as usize][slot as usize].take().unwrap_or_else(
                                        || panic!("round {ri}: node {from} slot {slot} empty"),
                                    );
                                cleared.push((from, slot));
                                v
                            };
                        assert!(
                            slot_written.insert((to, slot), ()).is_none(),
                            "round {ri}: node {to} slot {slot} written twice"
                        );
                        incoming.push((to, slot, payload));
                    }
                    Op::Resolve {
                        node,
                        slot,
                        keep_min,
                    } => {
                        assert!(slot < 2, "round {ri}: bad slot {slot}");
                        touch_key(node, &mut key_touched);
                        let arrived =
                            transit[node as usize][slot as usize]
                                .take()
                                .unwrap_or_else(|| {
                                    panic!("round {ri}: resolve of empty slot {slot} at {node}")
                                });
                        let resident = &mut keys[node as usize];
                        let keep_arrived = if keep_min {
                            arrived < *resident
                        } else {
                            arrived > *resident
                        };
                        if keep_arrived {
                            *resident = arrived;
                        }
                    }
                }
            }
            // Commit moves.
            for (to, slot, payload) in incoming {
                let dst = &mut transit[to as usize][slot as usize];
                assert!(
                    dst.is_none(),
                    "round {ri}: node {to} slot {slot} still occupied"
                );
                *dst = Some(payload);
            }
            let _ = cleared;
        }
        assert!(
            transit.iter().all(|t| t[0].is_none() && t[1].is_none()),
            "transit values left in flight after the program ended"
        );
        program.rounds.len() as u64
    }
}

/// One logical pair round captured from the algorithm: simultaneous
/// compare-exchanges, possibly between non-adjacent nodes.
#[derive(Debug, Clone)]
struct LogicalRound {
    /// `(a, b, min_to_a)` triples, node-disjoint.
    pairs: Vec<(u64, u64, bool)>,
}

/// Engine that records the algorithm's logical pair rounds instead of
/// costing them. Data is still updated (cheaply) so the replay stays
/// well-formed; obliviousness guarantees the recorded schedule is valid
/// for every input.
struct RecordingEngine {
    program: Vec<Vec<(u32, u32)>>,
    recorded: Vec<LogicalRound>,
}

impl RecordingEngine {
    fn new(sorter: &dyn Pg2Sorter, n: usize) -> Self {
        let program = sorter.program(n);
        crate::sorters::validate_program(n, &program);
        RecordingEngine {
            program,
            recorded: Vec::new(),
        }
    }
}

impl<K: Ord + Clone + Send + Sync> Engine<K> for RecordingEngine {
    fn sort_round(&mut self, keys: &mut [K], subgraphs: &[Pg2Instance]) -> u64 {
        for round in &self.program {
            let mut pairs = Vec::with_capacity(round.len() * subgraphs.len());
            for sg in subgraphs {
                for &(p, q) in round {
                    let (a, b) = (sg.nodes[p as usize], sg.nodes[q as usize]);
                    let min_to_a = sg.dir == Direction::Ascending;
                    pairs.push((a, b, min_to_a));
                    let (ai, bi) = (a as usize, b as usize);
                    let a_has_min = keys[ai] <= keys[bi];
                    if a_has_min != min_to_a {
                        keys.swap(ai, bi);
                    }
                }
            }
            self.recorded.push(LogicalRound { pairs });
        }
        self.program.len() as u64
    }

    fn oet_round(&mut self, keys: &mut [K], pairs: &[(u64, u64)]) -> u64 {
        let mut rec = Vec::with_capacity(pairs.len());
        for &(a, b) in pairs {
            rec.push((a, b, true));
            let (ai, bi) = (a as usize, b as usize);
            if keys[ai] > keys[bi] {
                keys.swap(ai, bi);
            }
        }
        self.recorded.push(LogicalRound { pairs: rec });
        1
    }
}

/// Compile the full sorting algorithm for the product of `factor` with
/// `r` dimensions, using `sorter`'s comparator program for the `PG_2`
/// sorts, into an edge-aligned [`CompiledProgram`].
///
/// ```
/// use pns_graph::factories;
/// use pns_simulator::bsp::{compile, BspMachine};
/// use pns_simulator::Hypercube2Sorter;
///
/// let factor = factories::k2();
/// let program = compile(&factor, 4, &Hypercube2Sorter);
/// let machine = BspMachine::new(&factor, 4);
/// let mut keys: Vec<u32> = (0..16).rev().collect();
/// machine.run(&mut keys, &program); // validates every op against the 4-cube
/// assert!(pns_simulator::netsort::is_snake_sorted(machine.shape(), &keys));
/// ```
///
/// Compare pairs between adjacent nodes become single
/// [`Op::CompareExchange`] rounds; non-adjacent pairs (non-Hamiltonian
/// labelings) are lowered to bidirectional relays along shortest paths,
/// scheduled into edge-disjoint waves.
#[must_use]
pub fn compile(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) -> CompiledProgram {
    let shape = Shape::new(factor.n(), r);
    let mut engine = RecordingEngine::new(sorter, shape.n());
    // Replay on dummy data; the schedule is input-independent.
    let mut dummy: Vec<u32> = (0..shape.len() as u32).collect();
    let _ = network_sort(shape, &mut dummy, &mut engine);

    let mut rounds: Vec<BspRound> = Vec::new();
    for logical in &engine.recorded {
        lower_pair_round(factor, shape, &logical.pairs, &mut rounds);
    }
    CompiledProgram { shape, rounds }
}

/// Lower one logical pair round. Adjacent pairs go into a single
/// compare-exchange round; relayed pairs are grouped into waves whose
/// path edge sets are disjoint, each wave taking `max path length` move
/// rounds plus a shared resolve round.
fn lower_pair_round(
    factor: &Graph,
    shape: Shape,
    pairs: &[(u64, u64, bool)],
    rounds: &mut Vec<BspRound>,
) {
    if pairs.is_empty() {
        // The synchronous round elapses even when this parity class is
        // empty (matching the executed engine's accounting).
        rounds.push(Vec::new());
        return;
    }
    let mut adjacent: BspRound = Vec::new();
    let mut relayed: Vec<(Vec<u64>, bool)> = Vec::new(); // (path a..b, min_to_a)
    for &(a, b, min_to_a) in pairs {
        // Pairs differ in exactly one dimension; the path stays inside
        // that factor copy.
        let dim = (0..shape.r())
            .find(|&i| shape.digit(a, i) != shape.digit(b, i))
            .expect("pair endpoints must differ");
        let (da, db) = (shape.digit(a, dim) as u32, shape.digit(b, dim) as u32);
        if factor.has_edge(da, db) {
            adjacent.push(Op::CompareExchange { a, b, min_to_a });
        } else {
            let fpath = pns_graph::shortest_path(factor, da, db).expect("factor is connected");
            let path: Vec<u64> = fpath
                .iter()
                .map(|&f| shape.with_digit(a, dim, f as usize))
                .collect();
            relayed.push((path, min_to_a));
        }
    }
    if !adjacent.is_empty() {
        rounds.push(adjacent);
    }
    // Wave-schedule the relayed pairs: a wave's paths must be
    // node-disjoint, so every relay node has both transit slots free for
    // its one pair's forward and backward streams.
    let mut remaining = relayed;
    while !remaining.is_empty() {
        let mut wave: Vec<(Vec<u64>, bool)> = Vec::new();
        let mut used_nodes: HashMap<u64, ()> = HashMap::new();
        let mut rest = Vec::new();
        for (path, min_to_a) in remaining {
            if path.iter().any(|v| used_nodes.contains_key(v)) {
                rest.push((path, min_to_a));
            } else {
                for &v in &path {
                    used_nodes.insert(v, ());
                }
                wave.push((path, min_to_a));
            }
        }
        emit_wave(&wave, rounds);
        remaining = rest;
    }
}

/// Emit the move/resolve rounds for one edge-disjoint wave of relays.
fn emit_wave(wave: &[(Vec<u64>, bool)], rounds: &mut Vec<BspRound>) {
    let max_hops = wave.iter().map(|(p, _)| p.len() - 1).max().unwrap_or(0);
    // Hop rounds: slot 0 carries a→b, slot 1 carries b→a, simultaneously
    // (full-duplex edges; the machine checks per-direction capacity).
    for h in 0..max_hops {
        let mut round: BspRound = Vec::new();
        for (path, _) in wave {
            let hops = path.len() - 1;
            if h < hops {
                round.push(Op::Move {
                    from: path[h],
                    to: path[h + 1],
                    slot: 0,
                    from_key: h == 0,
                });
                round.push(Op::Move {
                    from: path[hops - h],
                    to: path[hops - h - 1],
                    slot: 1,
                    from_key: h == 0,
                });
            }
        }
        rounds.push(round);
    }
    // Resolve round: both endpoints decide locally.
    let mut resolve: BspRound = Vec::new();
    for (path, min_to_a) in wave {
        let (a, b) = (path[0], *path.last().expect("non-empty path"));
        resolve.push(Op::Resolve {
            node: a,
            slot: 1,
            keep_min: *min_to_a,
        });
        resolve.push(Op::Resolve {
            node: b,
            slot: 0,
            keep_min: !*min_to_a,
        });
    }
    if !resolve.is_empty() {
        rounds.push(resolve);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorters::{Hypercube2Sorter, OetSnakeSorter, ShearSorter};
    use crate::{ExecutedEngine, Machine};
    use pns_graph::factories;

    fn snake_sorted<K: Ord>(shape: Shape, keys: &[K]) -> bool {
        crate::netsort::is_snake_sorted(shape, keys)
    }

    #[test]
    fn compiled_grid_program_sorts() {
        let factor = factories::path(4);
        let program = compile(&factor, 2, &ShearSorter);
        let machine = BspMachine::new(&factor, 2);
        let mut keys: Vec<u32> = (0..16).rev().collect();
        let rounds = machine.run(&mut keys, &program);
        assert!(snake_sorted(machine.shape(), &keys));
        assert_eq!(rounds as usize, program.rounds());
    }

    #[test]
    fn compiled_rounds_match_executed_engine_on_hamiltonian_factors() {
        // On a Hamiltonian-labeled factor every logical pair is an edge,
        // so BSP rounds == executed-engine steps.
        for (factor, r, sorter) in [
            (factories::path(3), 3usize, &ShearSorter as &dyn Pg2Sorter),
            (factories::path(5), 2, &OetSnakeSorter),
            (factories::k2(), 5, &Hypercube2Sorter),
        ] {
            let program = compile(&factor, r, sorter);
            let shape = program.shape();
            let mut engine = ExecutedEngine::new(&factor, shape, sorter);
            let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
            let out = network_sort(shape, &mut keys, &mut engine);
            assert_eq!(program.rounds() as u64, out.steps, "{factor:?} r={r}");
        }
    }

    #[test]
    fn compiled_program_is_input_independent() {
        let factor = factories::path(3);
        let program = compile(&factor, 3, &ShearSorter);
        let machine = BspMachine::new(&factor, 3);
        let mut state = 11u64;
        for _ in 0..10 {
            let mut keys: Vec<u64> = (0..27)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
                    state >> 40
                })
                .collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            machine.run(&mut keys, &program);
            let sorted = crate::netsort::read_snake_order(machine.shape(), &keys);
            assert_eq!(sorted, expect);
        }
    }

    #[test]
    fn hypercube_program_zero_one_exhaustive() {
        // Exhaustive for the 3-cube; the 4-cube (2^16 inputs) is covered
        // by the release-mode integration sweep.
        let factor = factories::k2();
        let program = compile(&factor, 3, &Hypercube2Sorter);
        let machine = BspMachine::new(&factor, 3);
        for mask in 0u32..(1 << 8) {
            let mut keys: Vec<u8> = (0..8).map(|i| ((mask >> i) & 1) as u8).collect();
            machine.run(&mut keys, &program);
            assert!(snake_sorted(machine.shape(), &keys), "mask={mask:#x}");
        }
    }

    #[test]
    fn non_hamiltonian_factor_uses_relays_and_still_sorts() {
        // Star factor: compares between leaves relay through the hub.
        let factor = factories::star(4);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, 2);
        let mut keys: Vec<u32> = (0..16).map(|x| (x * 11) % 17).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        machine.run(&mut keys, &program);
        assert_eq!(
            crate::netsort::read_snake_order(machine.shape(), &keys),
            expect
        );
        // Relays exist: some rounds carry Move/Resolve ops.
        let has_moves = program
            .rounds
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::Move { .. }));
        assert!(has_moves, "expected relayed compares on the star factor");
    }

    #[test]
    fn bsp_agrees_with_machine_api() {
        let factor = Machine::prepare_factor(&factories::complete_binary_tree(3));
        let program = compile(&factor, 2, &OetSnakeSorter);
        let bsp = BspMachine::new(&factor, 2);
        let keys: Vec<u64> = (0..49).map(|x| (x * 13) % 29).collect();
        let mut bsp_keys = keys.clone();
        bsp.run(&mut bsp_keys, &program);

        let mut m = Machine::executed(&factor, 2, &OetSnakeSorter);
        let rep = m.sort(keys).expect("49 keys");
        assert_eq!(bsp_keys, rep.keys, "final configurations must agree");
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn machine_rejects_non_edge_compare() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let program = CompiledProgram {
            shape: machine.shape(),
            rounds: vec![vec![Op::CompareExchange {
                a: 0,
                b: 2, // labels 0 and 2 are not adjacent on the path
                min_to_a: true,
            }]],
        };
        let mut keys: Vec<u32> = (0..9).collect();
        machine.run(&mut keys, &program);
    }

    #[test]
    #[should_panic(expected = "key accessed twice")]
    fn machine_rejects_node_reuse_in_round() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let program = CompiledProgram {
            shape: machine.shape(),
            rounds: vec![vec![
                Op::CompareExchange {
                    a: 0,
                    b: 1,
                    min_to_a: true,
                },
                Op::CompareExchange {
                    a: 1,
                    b: 2,
                    min_to_a: true,
                },
            ]],
        };
        let mut keys: Vec<u32> = (0..9).collect();
        machine.run(&mut keys, &program);
    }

    #[test]
    #[should_panic(expected = "resolve of empty slot")]
    fn machine_rejects_resolving_empty_slot() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let program = CompiledProgram {
            shape: machine.shape(),
            rounds: vec![vec![Op::Resolve {
                node: 0,
                slot: 0,
                keep_min: true,
            }]],
        };
        let mut keys: Vec<u32> = (0..9).collect();
        machine.run(&mut keys, &program);
    }

    #[test]
    fn compiled_programs_serialize_roundtrip() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let json = serde_json::to_string(&program).expect("serialize");
        let back: CompiledProgram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.rounds(), program.rounds());
        assert_eq!(back.op_count(), program.op_count());
        // The deserialized program still runs and sorts.
        let machine = BspMachine::new(&factor, 2);
        let mut keys: Vec<u32> = (0..9).rev().collect();
        machine.run(&mut keys, &back);
        assert!(snake_sorted(machine.shape(), &keys));
    }

    #[test]
    fn op_counts_are_reported() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &OetSnakeSorter);
        assert!(program.op_count() > 0);
        assert!(program.rounds() > 0);
    }
}
