//! A bulk-synchronous machine model with per-node state and edge-aligned
//! operations — the paper's machine, made explicit.
//!
//! Section 4: "Before the sorting algorithm starts, each processor holds
//! one of the keys to be sorted. During the sorting algorithm, each
//! processor needs enough memory to hold at most two values being
//! compared." This module enforces exactly that discipline:
//!
//! * every node holds one resident key plus two small transit slots (a
//!   relay buffer per stream direction, needed only on non-Hamiltonian
//!   factors where compare partners are up to three hops apart);
//! * every operation in a round moves data across **one edge** of the
//!   product network or is node-local; the machine *verifies* adjacency
//!   and slot discipline at execution time and panics on violations.
//!
//! Because the sorting algorithm is oblivious, its schedule can be
//! compiled once ([`compile`]) — by replaying the round-level algorithm
//! with a recording engine and lowering every compare round to
//! edge-aligned rounds — and then executed on any input
//! ([`BspMachine::run`]).

use crate::engine::{Engine, Pg2Instance};
use crate::netsort::network_merge;
use crate::sorters::Pg2Sorter;
use pns_graph::Graph;
use pns_obs::{Event, EventLogger, SpanClass, Stage, Tier, ROUND_OBS_MIN_OPS};
use pns_order::radix::Shape;
use pns_order::Direction;
use std::collections::HashMap;

/// One machine operation within a synchronous round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Op {
    /// Adjacent compare-exchange: nodes `a` and `b` swap keys over the
    /// edge if out of order; the minimum ends at `a` when `min_to_a`.
    CompareExchange {
        /// First endpoint.
        a: u64,
        /// Second endpoint.
        b: u64,
        /// `true`: minimum to `a`; `false`: minimum to `b`.
        min_to_a: bool,
    },
    /// Copy a value one hop: the source is `from`'s resident key
    /// (`from_key = true`, the first hop of a relay) or `from`'s transit
    /// slot `slot`; the value lands in `to`'s transit slot `slot`.
    Move {
        /// Sending node.
        from: u64,
        /// Receiving node (must be adjacent).
        to: u64,
        /// Transit slot index (0: forward stream, 1: backward stream).
        slot: u8,
        /// Whether the payload is the sender's resident key.
        from_key: bool,
    },
    /// Local resolution at the end of a relayed compare: `node` compares
    /// its resident key with the arrived transit value in `slot` and
    /// keeps the minimum (`keep_min`) or maximum; the slot is cleared.
    Resolve {
        /// Resolving node.
        node: u64,
        /// Transit slot holding the partner's key.
        slot: u8,
        /// Keep the minimum of {resident, arrived}.
        keep_min: bool,
    },
}

/// A synchronous round of operations. Disjointness (each node's key and
/// each slot touched at most once per round, each edge used at most once
/// per direction) is validated at execution.
pub type BspRound = Vec<Op>;

/// Compile-time statistics for a program: size before and after the
/// optimizer ran, plus what each pass removed. For a freshly compiled
/// (unoptimized) program the before/after numbers coincide and the pass
/// counters are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProgramStats {
    /// Rounds before optimization.
    pub rounds_before: u64,
    /// Operations before optimization.
    pub ops_before: u64,
    /// Rounds after optimization.
    pub rounds_after: u64,
    /// Operations after optimization.
    pub ops_after: u64,
    /// Rounds dropped because they contained no operations (empty
    /// parity classes of odd-even transposition rounds, or rounds
    /// emptied by compare-exchange elimination).
    pub empty_rounds_elided: u64,
    /// Compare-exchanges dropped because an identical exchange already
    /// ordered the same pair and nothing touched either key since.
    pub compare_exchanges_elided: u64,
    /// Adjacent rounds merged because their resource footprints
    /// (keys, transit slots, directed edges) are disjoint.
    pub rounds_fused: u64,
}

impl ProgramStats {
    /// Stats for an unoptimized program of the given size.
    fn identity(rounds: u64, ops: u64) -> Self {
        ProgramStats {
            rounds_before: rounds,
            ops_before: ops,
            rounds_after: rounds,
            ops_after: ops,
            ..ProgramStats::default()
        }
    }
}

/// A certificate point of a compiled program: a round boundary at which
/// a stage invariant provably holds on fault-free execution. After the
/// first `round` rounds, every `dims`-dimensional subgraph over
/// dimensions `0 … dims-1` is snake-sorted (the paper's inter-stage
/// invariant; `dims = r` at the final boundary means globally sorted).
///
/// Fault-injecting executors check these certificates between stages and
/// retry the enclosed segment from a checkpoint when one fails. The
/// optimizer treats certificate boundaries as fusion barriers, so they
/// survive optimization exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CertPoint {
    /// Rounds executed before the certificate holds (a boundary index:
    /// `0 ..= program.rounds()`).
    pub round: u64,
    /// Subgraph dimensionality `k` of the certified stage invariant.
    pub dims: u32,
}

/// A compiled, input-independent schedule for one sort. Serializable, so
/// a schedule can be compiled once and shipped to the machine that runs
/// it (the machine re-validates every operation anyway).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CompiledProgram {
    shape: Shape,
    rounds: Vec<BspRound>,
    stats: ProgramStats,
    cert_points: Vec<CertPoint>,
}

impl CompiledProgram {
    /// Build a program directly from rounds (for hand-written or
    /// deserialized schedules; the machine validates every operation).
    /// Hand-built programs carry no certificate points — nothing is
    /// known about what they compute, so fault-injecting executors have
    /// no invariant to check.
    #[must_use]
    pub fn from_rounds(shape: Shape, rounds: Vec<BspRound>) -> Self {
        let ops = rounds.iter().map(Vec::len).sum::<usize>() as u64;
        let stats = ProgramStats::identity(rounds.len() as u64, ops);
        CompiledProgram {
            shape,
            rounds,
            stats,
            cert_points: Vec::new(),
        }
    }

    /// Stage-boundary certificates, in round order ([`compile`] records
    /// one per stage; hand-built programs have none).
    #[must_use]
    pub fn cert_points(&self) -> &[CertPoint] {
        &self.cert_points
    }

    /// Number of synchronous rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total operations across all rounds.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// The rounds themselves (for inspection/statistics).
    #[must_use]
    pub fn round_ops(&self) -> &[BspRound] {
        &self.rounds
    }

    /// The shape this program sorts.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Optimizer statistics (identity for unoptimized programs).
    #[must_use]
    pub fn stats(&self) -> ProgramStats {
        self.stats
    }

    /// Optimize the op stream. Three passes, all semantics-preserving
    /// for every input (the sort is oblivious, so this is provable from
    /// the schedule alone):
    ///
    /// 1. **Idempotent compare-exchange elimination** — a compare
    ///    identical to one already applied, with neither resident key
    ///    touched since, can never swap again and is dropped.
    /// 2. **Empty-round elision** — rounds with no operations (pushed
    ///    by [`compile`] for empty transposition parity classes to
    ///    mirror the executed engine's accounting) are removed.
    /// 3. **Round fusion** — an adjacent pair of rounds whose resource
    ///    footprints are disjoint (resident keys read *or* written,
    ///    transit slots taken *or* written, directed edges) merges into
    ///    one synchronous round; this chains, so runs of disjoint
    ///    rounds (e.g. relay move chains of independent waves)
    ///    agglomerate.
    ///
    /// The result generally has **fewer rounds than the executed
    /// engine's step count**, so [`compile`] does not optimize by
    /// default; opt in where raw round counts are not being compared.
    #[must_use]
    pub fn optimized(&self) -> CompiledProgram {
        let mut stats = ProgramStats::identity(self.rounds.len() as u64, self.op_count() as u64);
        let mut rounds = self.rounds.clone();
        eliminate_idempotent_cx(&mut rounds, &mut stats);
        // Empty-round elision, tracking how each boundary index shifts:
        // kept_before[i] = rounds kept among the first i.
        let mut kept_before: Vec<usize> = Vec::with_capacity(rounds.len() + 1);
        let mut kept: Vec<BspRound> = Vec::with_capacity(rounds.len());
        for round in rounds {
            kept_before.push(kept.len());
            if round.is_empty() {
                stats.empty_rounds_elided += 1;
            } else {
                kept.push(round);
            }
        }
        kept_before.push(kept.len());
        let certs_kept: Vec<CertPoint> = self
            .cert_points
            .iter()
            .map(|c| CertPoint {
                round: kept_before[c.round as usize] as u64,
                dims: c.dims,
            })
            .collect();
        // Certificate boundaries are fusion barriers: the invariant holds
        // *between* two specific rounds, so fusing across the boundary
        // would leave the certificate nowhere to attach.
        let barriers: std::collections::HashSet<usize> =
            certs_kept.iter().map(|c| c.round as usize).collect();
        let (rounds, fused_before) = fuse_disjoint_rounds(kept, &barriers, &mut stats);
        let cert_points = certs_kept
            .iter()
            .map(|c| CertPoint {
                round: fused_before[c.round as usize] as u64,
                dims: c.dims,
            })
            .collect();
        stats.rounds_after = rounds.len() as u64;
        stats.ops_after = rounds.iter().map(Vec::len).sum::<usize>() as u64;
        CompiledProgram {
            shape: self.shape,
            rounds,
            stats,
            cert_points,
        }
    }
}

/// Drop compare-exchanges that re-order an already-ordered pair.
///
/// Walks the op stream in execution order tracking, per node, the fact
/// "this node's key and its partner's key are ordered by a previous
/// exchange". The fact dies as soon as either key is written again (a
/// different compare-exchange or a resolve); moves only *read* keys and
/// preserve it.
fn eliminate_idempotent_cx(rounds: &mut [BspRound], stats: &mut ProgramStats) {
    // node -> (partner, min_to_self): invariant fact[a] = (b, m) iff
    // fact[b] = (a, !m).
    let mut fact: HashMap<u64, (u64, bool)> = HashMap::new();
    for round in rounds.iter_mut() {
        round.retain(|op| match *op {
            Op::CompareExchange { a, b, min_to_a } => {
                if fact.get(&a) == Some(&(b, min_to_a)) {
                    stats.compare_exchanges_elided += 1;
                    false
                } else {
                    for x in [a, b] {
                        if let Some((p, _)) = fact.remove(&x) {
                            fact.remove(&p);
                        }
                    }
                    fact.insert(a, (b, min_to_a));
                    fact.insert(b, (a, !min_to_a));
                    true
                }
            }
            Op::Resolve { node, .. } => {
                if let Some((p, _)) = fact.remove(&node) {
                    fact.remove(&p);
                }
                true
            }
            Op::Move { .. } => true,
        });
    }
}

/// Resource footprint of a round, for fusion safety: resident keys
/// (read or written), transit slots (taken or written), directed edges.
#[derive(Default)]
struct RoundResources {
    keys: std::collections::HashSet<u64>,
    slots: std::collections::HashSet<(u64, u8)>,
    edges: std::collections::HashSet<(u64, u64)>,
}

impl RoundResources {
    fn of(round: &[Op]) -> Self {
        let mut res = RoundResources::default();
        for op in round {
            match *op {
                Op::CompareExchange { a, b, .. } => {
                    res.keys.insert(a);
                    res.keys.insert(b);
                    res.edges.insert((a, b));
                    res.edges.insert((b, a));
                }
                Op::Move {
                    from,
                    to,
                    slot,
                    from_key,
                } => {
                    if from_key {
                        res.keys.insert(from);
                    } else {
                        res.slots.insert((from, slot));
                    }
                    res.slots.insert((to, slot));
                    res.edges.insert((from, to));
                }
                Op::Resolve { node, slot, .. } => {
                    res.keys.insert(node);
                    res.slots.insert((node, slot));
                }
            }
        }
        res
    }

    fn disjoint(&self, other: &RoundResources) -> bool {
        self.keys.is_disjoint(&other.keys)
            && self.slots.is_disjoint(&other.slots)
            && self.edges.is_disjoint(&other.edges)
    }

    fn absorb(&mut self, other: RoundResources) {
        self.keys.extend(other.keys);
        self.slots.extend(other.slots);
        self.edges.extend(other.edges);
    }
}

/// Merge adjacent rounds with disjoint resource footprints. Only
/// *adjacent* rounds fuse (never across a conflicting round), so the
/// sequential semantics are preserved exactly: disjointness means no op
/// of the later round observes or perturbs anything the earlier round
/// touched. A round whose input index is in `barriers` never fuses into
/// its predecessor (certificate boundaries must stay between rounds).
///
/// Also returns the boundary map `out_before`, where `out_before[i]` is
/// the number of output rounds built purely from input rounds `< i` —
/// exact at every barrier index (barriers forbid the fusion that would
/// blur the boundary).
fn fuse_disjoint_rounds(
    rounds: Vec<BspRound>,
    barriers: &std::collections::HashSet<usize>,
    stats: &mut ProgramStats,
) -> (Vec<BspRound>, Vec<usize>) {
    let mut out_before: Vec<usize> = Vec::with_capacity(rounds.len() + 1);
    let mut fused: Vec<(BspRound, RoundResources)> = Vec::new();
    for (i, round) in rounds.into_iter().enumerate() {
        out_before.push(fused.len());
        let res = RoundResources::of(&round);
        if !barriers.contains(&i) {
            if let Some((last, last_res)) = fused.last_mut() {
                if last_res.disjoint(&res) {
                    last.extend(round);
                    last_res.absorb(res);
                    stats.rounds_fused += 1;
                    continue;
                }
            }
        }
        fused.push((round, res));
    }
    out_before.push(fused.len());
    (
        fused.into_iter().map(|(round, _)| round).collect(),
        out_before,
    )
}

/// A machine-model violation found by static validation
/// ([`BspMachine::try_validate`]): which round broke which rule, as
/// typed data. `Display` renders the exact diagnostic the panicking
/// paths use, so wrapping an error in `panic!("{e}")` is
/// message-compatible with the historical asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program was compiled for a different [`Shape`].
    ShapeMismatch,
    /// A compare-exchange between non-adjacent nodes.
    CompareNotEdge {
        /// Offending round index.
        round: usize,
        /// First endpoint.
        a: u64,
        /// Second endpoint.
        b: u64,
    },
    /// A move between non-adjacent nodes.
    MoveNotEdge {
        /// Offending round index.
        round: usize,
        /// Sending node.
        from: u64,
        /// Receiving node.
        to: u64,
    },
    /// A directed edge carried two payloads in one round.
    EdgeReused {
        /// Offending round index.
        round: usize,
        /// Edge tail.
        from: u64,
        /// Edge head.
        to: u64,
    },
    /// A node's resident key was written twice in one round.
    KeyReused {
        /// Offending round index.
        round: usize,
        /// Offending node.
        node: u64,
    },
    /// A node's resident key was both read (relay first hop) and
    /// written (compare/resolve) in one round — order-dependent.
    KeyReadAndWritten {
        /// Offending round index.
        round: usize,
        /// Offending node.
        node: u64,
    },
    /// A transit slot index outside `0..2`.
    BadSlot {
        /// Offending round index.
        round: usize,
        /// The out-of-range slot.
        slot: u8,
    },
    /// A move forwarded from a transit slot that holds nothing.
    SlotEmpty {
        /// Offending round index.
        round: usize,
        /// Node whose slot was read.
        node: u64,
        /// The empty slot.
        slot: u8,
    },
    /// A transit slot received two payloads in one round.
    SlotWrittenTwice {
        /// Offending round index.
        round: usize,
        /// Node whose slot was written.
        node: u64,
        /// The doubly-written slot.
        slot: u8,
    },
    /// A transit slot was taken (forwarded or resolved) twice in one
    /// round.
    SlotTakenTwice {
        /// Offending round index.
        round: usize,
        /// Node whose slot was taken.
        node: u64,
        /// The doubly-taken slot.
        slot: u8,
    },
    /// A resolve targeted an empty transit slot.
    ResolveEmptySlot {
        /// Offending round index.
        round: usize,
        /// Resolving node.
        node: u64,
        /// The empty slot.
        slot: u8,
    },
    /// A move wrote into a slot still occupied from a previous round.
    SlotOccupied {
        /// Offending round index.
        round: usize,
        /// Node whose slot was still full.
        node: u64,
        /// The occupied slot.
        slot: u8,
    },
    /// The program ended with values still in transit.
    TransitLeftover,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProgramError::ShapeMismatch => write!(f, "program compiled for another shape"),
            ProgramError::CompareNotEdge { round, a, b } => {
                write!(
                    f,
                    "round {round}: compare-exchange ({a},{b}) is not an edge"
                )
            }
            ProgramError::MoveNotEdge { round, from, to } => {
                write!(f, "round {round}: move ({from}->{to}) is not an edge")
            }
            ProgramError::EdgeReused { round, from, to } => {
                write!(f, "round {round}: edge ({from}->{to}) used twice")
            }
            ProgramError::KeyReused { round, node } => {
                write!(f, "round {round}: node {node} key accessed twice")
            }
            ProgramError::KeyReadAndWritten { round, node } => write!(
                f,
                "round {round}: node {node} key both read and written in one round \
                 (order-dependent; unsafe for deferred execution)"
            ),
            ProgramError::BadSlot { round, slot } => {
                write!(f, "round {round}: bad slot {slot}")
            }
            ProgramError::SlotEmpty { round, node, slot } => {
                write!(f, "round {round}: node {node} slot {slot} empty")
            }
            ProgramError::SlotWrittenTwice { round, node, slot } => {
                write!(f, "round {round}: node {node} slot {slot} written twice")
            }
            ProgramError::SlotTakenTwice { round, node, slot } => {
                write!(f, "round {round}: node {node} slot {slot} taken twice")
            }
            ProgramError::ResolveEmptySlot { round, node, slot } => {
                write!(f, "round {round}: resolve of empty slot {slot} at {node}")
            }
            ProgramError::SlotOccupied { round, node, slot } => {
                write!(f, "round {round}: node {node} slot {slot} still occupied")
            }
            ProgramError::TransitLeftover => {
                write!(f, "transit values left in flight after the program ended")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// What static validation established about a program, returned by
/// [`BspMachine::try_validate`] on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationReport {
    /// Rounds in the validated program.
    pub rounds: usize,
    /// Operations across all rounds.
    pub ops: usize,
    /// Certificate points the program carries (checkable stage
    /// boundaries for fault-injecting executors).
    pub cert_points: usize,
}

/// The BSP machine: executes compiled programs with full validation.
pub struct BspMachine {
    network: NetworkView,
    shape: Shape,
    pub(crate) logger: EventLogger,
}

/// Adjacency view over the product network (rank-based, no edge lists).
struct NetworkView {
    factor: Graph,
    shape: Shape,
}

impl NetworkView {
    fn new(factor: &Graph, shape: Shape) -> Self {
        NetworkView {
            factor: factor.clone(),
            shape,
        }
    }

    /// `true` iff `(a, b)` is an edge of the product network.
    fn has_edge(&self, a: u64, b: u64) -> bool {
        if a == b {
            return false;
        }
        let mut differing = None;
        for i in 0..self.shape.r() {
            let (da, db) = (self.shape.digit(a, i), self.shape.digit(b, i));
            if da != db {
                if differing.is_some() {
                    return false;
                }
                differing = Some((da, db));
            }
        }
        differing.is_some_and(|(da, db)| self.factor.has_edge(da as u32, db as u32))
    }
}

impl BspMachine {
    /// Build a machine over the product of `factor` with `r` dimensions.
    #[must_use]
    pub fn new(factor: &Graph, r: usize) -> Self {
        let shape = Shape::new(factor.n(), r);
        BspMachine {
            network: NetworkView::new(factor, shape),
            shape,
            logger: EventLogger::disabled(),
        }
    }

    /// The machine's shape.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Emit `RoundStart`/`RoundEnd` per executed round, `Validate` per
    /// static validation, and `BatchScheduled` per batch dispatch into
    /// `logger`. [`BspMachine::run_batch`]'s per-vector inner loops stay
    /// uninstrumented (they are the throughput hot path; the batch-level
    /// events carry their aggregate shape).
    pub fn attach_logger(&mut self, logger: EventLogger) {
        self.logger = logger;
    }

    /// Execute a compiled program on `keys` (one per node, by rank).
    /// Returns the number of rounds executed (= `program.rounds()`).
    ///
    /// # Panics
    ///
    /// Panics on any machine-model violation: non-adjacent operation,
    /// edge used twice in one direction in a round, node key or transit
    /// slot accessed twice in a round, move into an occupied slot,
    /// resolve of an empty slot, or leftover transit values at the end.
    pub fn run<K: Ord + Clone>(&self, keys: &mut [K], program: &CompiledProgram) -> u64 {
        assert_eq!(
            program.shape, self.shape,
            "program compiled for another shape"
        );
        assert_eq!(keys.len() as u64, self.shape.len(), "one key per node");
        let _sort_span = self.logger.span(Tier::Serial, Stage::Sort, SpanClass::None);
        let n_nodes = keys.len();
        let mut transit: Vec<[Option<K>; 2]> = vec![[None, None]; n_nodes];
        // Per-round discipline tracking, hoisted out of the loop and
        // cleared per round so validation scratch is allocated once.
        let mut key_touched = vec![false; n_nodes];
        let mut slot_written: HashMap<(u64, u8), ()> = HashMap::new();
        let mut edge_used: HashMap<(u64, u64), ()> = HashMap::new();
        // Reads of transit slots happen against the *previous* round's
        // state: buffer incoming values and commit after the round.
        let mut incoming: Vec<(u64, u8, K)> = Vec::new();
        let mut cleared: Vec<(u64, u8)> = Vec::new();

        for (ri, round) in program.rounds.iter().enumerate() {
            self.logger.log(|| Event::RoundStart {
                round: ri as u64,
                ops: round.len() as u64,
                parallel: false,
            });
            let _round_span = self.logger.span_if(
                round.len() >= ROUND_OBS_MIN_OPS,
                Tier::Serial,
                Stage::Round,
                SpanClass::None,
            );
            key_touched.fill(false);
            slot_written.clear();
            edge_used.clear();
            cleared.clear();

            let touch_key = |v: u64, key_touched: &mut [bool]| {
                assert!(
                    !key_touched[v as usize],
                    "round {ri}: node {v} key accessed twice"
                );
                key_touched[v as usize] = true;
            };

            for op in round {
                match *op {
                    Op::CompareExchange { a, b, min_to_a } => {
                        assert!(
                            self.network.has_edge(a, b),
                            "round {ri}: compare-exchange ({a},{b}) is not an edge"
                        );
                        for (x, y) in [(a, b), (b, a)] {
                            assert!(
                                edge_used.insert((x, y), ()).is_none(),
                                "round {ri}: edge ({x}->{y}) used twice"
                            );
                        }
                        touch_key(a, &mut key_touched);
                        touch_key(b, &mut key_touched);
                        let (ai, bi) = (a as usize, b as usize);
                        let a_has_min = keys[ai] <= keys[bi];
                        if a_has_min != min_to_a {
                            keys.swap(ai, bi);
                        }
                    }
                    Op::Move {
                        from,
                        to,
                        slot,
                        from_key,
                    } => {
                        assert!(slot < 2, "round {ri}: bad slot {slot}");
                        assert!(
                            self.network.has_edge(from, to),
                            "round {ri}: move ({from}->{to}) is not an edge"
                        );
                        assert!(
                            edge_used.insert((from, to), ()).is_none(),
                            "round {ri}: edge ({from}->{to}) used twice"
                        );
                        let payload =
                            if from_key {
                                keys[from as usize].clone()
                            } else {
                                let v =
                                    transit[from as usize][slot as usize].take().unwrap_or_else(
                                        || panic!("round {ri}: node {from} slot {slot} empty"),
                                    );
                                cleared.push((from, slot));
                                v
                            };
                        assert!(
                            slot_written.insert((to, slot), ()).is_none(),
                            "round {ri}: node {to} slot {slot} written twice"
                        );
                        incoming.push((to, slot, payload));
                    }
                    Op::Resolve {
                        node,
                        slot,
                        keep_min,
                    } => {
                        assert!(slot < 2, "round {ri}: bad slot {slot}");
                        touch_key(node, &mut key_touched);
                        let arrived =
                            transit[node as usize][slot as usize]
                                .take()
                                .unwrap_or_else(|| {
                                    panic!("round {ri}: resolve of empty slot {slot} at {node}")
                                });
                        let resident = &mut keys[node as usize];
                        let keep_arrived = if keep_min {
                            arrived < *resident
                        } else {
                            arrived > *resident
                        };
                        if keep_arrived {
                            *resident = arrived;
                        }
                    }
                }
            }
            // Commit moves.
            for (to, slot, payload) in incoming.drain(..) {
                let dst = &mut transit[to as usize][slot as usize];
                assert!(
                    dst.is_none(),
                    "round {ri}: node {to} slot {slot} still occupied"
                );
                *dst = Some(payload);
            }
            let _ = &cleared;
            self.logger.log(|| Event::RoundEnd { round: ri as u64 });
        }
        assert!(
            transit.iter().all(|t| t[0].is_none() && t[1].is_none()),
            "transit values left in flight after the program ended"
        );
        program.rounds.len() as u64
    }

    /// Statically validate a program against this machine — without any
    /// keys. The schedule is input-independent, so **everything**
    /// [`BspMachine::run`] checks during execution can be checked here
    /// once: adjacency, per-round edge/key/slot discipline, and transit
    /// occupancy across rounds (every take finds a value, every write
    /// finds a free slot, nothing is left in flight at the end).
    ///
    /// This also enforces one condition `run` does not need: within a
    /// round, no resident key may be both read (by a [`Op::Move`] first
    /// hop) and written (by a compare-exchange or resolve). Rounds with
    /// that property execute identically whether ops run in order or
    /// all read the start-of-round state — the guarantee that makes
    /// [`BspMachine::run_parallel`] bit-identical to serial execution.
    /// [`compile`] and [`CompiledProgram::optimized`] never produce
    /// such rounds.
    ///
    /// # Panics
    ///
    /// Panics on any violation, naming the round and the resource.
    pub fn validate(&self, program: &CompiledProgram) {
        if let Err(e) = self.try_validate(program) {
            panic!("{e}");
        }
    }

    /// [`BspMachine::validate`] with a typed result instead of a panic:
    /// `Ok` carries a [`ValidationReport`], `Err` the first violation
    /// found as a [`ProgramError`] naming the round and the resource.
    /// Emits the `Validate` event on success only.
    ///
    /// # Errors
    ///
    /// Returns the first machine-model violation in program order.
    pub fn try_validate(
        &self,
        program: &CompiledProgram,
    ) -> Result<ValidationReport, ProgramError> {
        if program.shape != self.shape {
            return Err(ProgramError::ShapeMismatch);
        }
        let n_nodes = self.shape.len() as usize;
        let mut occupied = vec![[false; 2]; n_nodes];
        for (ri, round) in program.rounds.iter().enumerate() {
            let mut key_read: std::collections::HashSet<u64> = std::collections::HashSet::new();
            let mut key_written: std::collections::HashSet<u64> = std::collections::HashSet::new();
            let mut slot_taken: std::collections::HashSet<(u64, u8)> =
                std::collections::HashSet::new();
            let mut slot_written: std::collections::HashSet<(u64, u8)> =
                std::collections::HashSet::new();
            let mut edge_used: std::collections::HashSet<(u64, u64)> =
                std::collections::HashSet::new();
            for op in round {
                match *op {
                    Op::CompareExchange { a, b, .. } => {
                        if !self.network.has_edge(a, b) {
                            return Err(ProgramError::CompareNotEdge { round: ri, a, b });
                        }
                        for (x, y) in [(a, b), (b, a)] {
                            if !edge_used.insert((x, y)) {
                                return Err(ProgramError::EdgeReused {
                                    round: ri,
                                    from: x,
                                    to: y,
                                });
                            }
                        }
                        for v in [a, b] {
                            if !key_written.insert(v) {
                                return Err(ProgramError::KeyReused { round: ri, node: v });
                            }
                        }
                    }
                    Op::Move {
                        from,
                        to,
                        slot,
                        from_key,
                    } => {
                        if slot >= 2 {
                            return Err(ProgramError::BadSlot { round: ri, slot });
                        }
                        if !self.network.has_edge(from, to) {
                            return Err(ProgramError::MoveNotEdge {
                                round: ri,
                                from,
                                to,
                            });
                        }
                        if !edge_used.insert((from, to)) {
                            return Err(ProgramError::EdgeReused {
                                round: ri,
                                from,
                                to,
                            });
                        }
                        if from_key {
                            key_read.insert(from);
                        } else {
                            if !occupied[from as usize][slot as usize] {
                                return Err(ProgramError::SlotEmpty {
                                    round: ri,
                                    node: from,
                                    slot,
                                });
                            }
                            if !slot_taken.insert((from, slot)) {
                                return Err(ProgramError::SlotTakenTwice {
                                    round: ri,
                                    node: from,
                                    slot,
                                });
                            }
                        }
                        if !slot_written.insert((to, slot)) {
                            return Err(ProgramError::SlotWrittenTwice {
                                round: ri,
                                node: to,
                                slot,
                            });
                        }
                    }
                    Op::Resolve { node, slot, .. } => {
                        if slot >= 2 {
                            return Err(ProgramError::BadSlot { round: ri, slot });
                        }
                        if !occupied[node as usize][slot as usize] {
                            return Err(ProgramError::ResolveEmptySlot {
                                round: ri,
                                node,
                                slot,
                            });
                        }
                        if !slot_taken.insert((node, slot)) {
                            return Err(ProgramError::SlotTakenTwice {
                                round: ri,
                                node,
                                slot,
                            });
                        }
                        if !key_written.insert(node) {
                            return Err(ProgramError::KeyReused { round: ri, node });
                        }
                    }
                }
            }
            if let Some(&v) = key_read.intersection(&key_written).next() {
                return Err(ProgramError::KeyReadAndWritten { round: ri, node: v });
            }
            for &(v, s) in &slot_taken {
                occupied[v as usize][s as usize] = false;
            }
            for &(v, s) in &slot_written {
                if occupied[v as usize][s as usize] {
                    return Err(ProgramError::SlotOccupied {
                        round: ri,
                        node: v,
                        slot: s,
                    });
                }
                occupied[v as usize][s as usize] = true;
            }
        }
        if !occupied.iter().all(|t| !t[0] && !t[1]) {
            return Err(ProgramError::TransitLeftover);
        }
        self.logger.log(|| {
            let stats = program.stats();
            Event::Validate {
                rounds: program.rounds.len() as u64,
                elided_cx: stats.compare_exchanges_elided,
                fused: stats.rounds_fused,
            }
        });
        Ok(ValidationReport {
            rounds: program.rounds.len(),
            ops: program.op_count(),
            cert_points: program.cert_points.len(),
        })
    }

    /// Execute a compiled program with intra-round parallelism. The
    /// program is validated statically up front ([`BspMachine::validate`]);
    /// execution itself then runs without per-op checks. Rounds with at
    /// least [`PAR_THRESHOLD`](crate::engine::PAR_THRESHOLD) operations
    /// are split across threads: every op reads the immutable
    /// start-of-round state and produces a deferred effect, and the
    /// effects (disjoint, by validation) are committed afterwards —
    /// bit-identical to [`BspMachine::run`] on every input. Smaller
    /// rounds run serially; chunking overhead would dominate.
    ///
    /// Returns the number of rounds executed.
    ///
    /// # Panics
    ///
    /// Panics if validation fails or `keys.len()` is not one per node.
    pub fn run_parallel<K>(&self, keys: &mut [K], program: &CompiledProgram) -> u64
    where
        K: Ord + Clone + Send + Sync,
    {
        let _sort_span = self
            .logger
            .span(Tier::Parallel, Stage::Sort, SpanClass::None);
        {
            let _validate_span = self
                .logger
                .span(Tier::Parallel, Stage::Validate, SpanClass::None);
            self.validate(program);
        }
        assert_eq!(keys.len() as u64, self.shape.len(), "one key per node");
        let mut transit: Vec<[Option<K>; 2]> = vec![[None, None]; keys.len()];
        for (ri, round) in program.rounds.iter().enumerate() {
            let par = round.len() >= crate::engine::PAR_THRESHOLD;
            self.logger.log(|| Event::RoundStart {
                round: ri as u64,
                ops: round.len() as u64,
                parallel: par,
            });
            let _round_span = self.logger.span_if(
                round.len() >= ROUND_OBS_MIN_OPS,
                Tier::Parallel,
                Stage::Round,
                SpanClass::None,
            );
            if !par {
                exec_round_serial(keys, &mut transit, round);
            } else {
                use rayon::prelude::*;
                let actions: Vec<Action<K>> = {
                    let keys_ref: &[K] = keys;
                    let transit_ref: &[[Option<K>; 2]] = &transit;
                    round
                        .par_iter()
                        .map(|op| plan_op(op, keys_ref, transit_ref))
                        .collect()
                };
                commit_actions(actions, keys, &mut transit);
            }
            self.logger.log(|| Event::RoundEnd { round: ri as u64 });
        }
        program.rounds.len() as u64
    }

    /// Drive `batch.len()` independent key vectors through one compiled
    /// program, one thread per vector (inter-input parallelism — the
    /// natural grain for throughput, since the vectors share nothing).
    /// The program is validated once for the whole batch; each vector
    /// then executes serially and unchecked, producing exactly the
    /// configuration [`BspMachine::run`] would.
    ///
    /// Returns the number of rounds executed (the same for every
    /// vector — the schedule is oblivious).
    ///
    /// # Panics
    ///
    /// Panics if validation fails or any vector is not one key per node.
    pub fn run_batch<K>(&self, batch: &mut [Vec<K>], program: &CompiledProgram) -> u64
    where
        K: Ord + Clone + Send + Sync,
    {
        let _batch_span = self
            .logger
            .span(Tier::Parallel, Stage::Batch, SpanClass::None);
        {
            let _validate_span = self
                .logger
                .span(Tier::Parallel, Stage::Validate, SpanClass::None);
            self.validate(program);
        }
        for keys in batch.iter() {
            assert_eq!(keys.len() as u64, self.shape.len(), "one key per node");
        }
        self.logger.log(|| Event::BatchScheduled {
            batch: batch.len() as u64,
            // A batch smaller than the worker pool occupies one lane per
            // vector, not one per thread.
            lanes: batch.len().min(rayon::current_num_threads()) as u64,
        });
        if batch.len() <= 1 {
            for keys in batch.iter_mut() {
                exec_program(keys, program);
            }
        } else {
            use rayon::prelude::*;
            batch
                .par_iter_mut()
                .for_each(|keys| exec_program(keys, program));
        }
        program.rounds.len() as u64
    }
}

/// Deferred effect of one op, computed against immutable start-of-round
/// state during parallel round execution.
enum Action<K> {
    /// Compare-exchange that needs no swap.
    Keep,
    /// Compare-exchange swapping the resident keys at two ranks.
    Swap(usize, usize),
    /// Move: write `value` into `(node, slot)`; `clear` is the source
    /// slot to empty when the payload came from transit.
    Write {
        node: usize,
        slot: usize,
        value: K,
        clear: Option<(usize, usize)>,
    },
    /// Resolve: clear `(node, slot)` and, if `value` is set, replace
    /// the resident key with the arrived one.
    Resolved {
        node: usize,
        slot: usize,
        value: Option<K>,
    },
}

/// Compute one op's deferred effect. Only reads; infallible on
/// validated programs.
fn plan_op<K: Ord + Clone>(op: &Op, keys: &[K], transit: &[[Option<K>; 2]]) -> Action<K> {
    match *op {
        Op::CompareExchange { a, b, min_to_a } => {
            let (ai, bi) = (a as usize, b as usize);
            let a_has_min = keys[ai] <= keys[bi];
            if a_has_min == min_to_a {
                Action::Keep
            } else {
                Action::Swap(ai, bi)
            }
        }
        Op::Move {
            from,
            to,
            slot,
            from_key,
        } => {
            let (fi, si) = (from as usize, slot as usize);
            let value = if from_key {
                keys[fi].clone()
            } else {
                transit[fi][si].clone().expect("validated: slot occupied")
            };
            Action::Write {
                node: to as usize,
                slot: si,
                value,
                clear: (!from_key).then_some((fi, si)),
            }
        }
        Op::Resolve {
            node,
            slot,
            keep_min,
        } => {
            let (ni, si) = (node as usize, slot as usize);
            let arrived = transit[ni][si].as_ref().expect("validated: slot occupied");
            let keep_arrived = if keep_min {
                arrived < &keys[ni]
            } else {
                arrived > &keys[ni]
            };
            Action::Resolved {
                node: ni,
                slot: si,
                value: keep_arrived.then(|| arrived.clone()),
            }
        }
    }
}

/// Apply a round's deferred effects: takes clear first (so a slot can
/// be forwarded and refilled within one round), then keys and slot
/// writes land. All effects are disjoint by validation, so order within
/// each phase is irrelevant.
fn commit_actions<K>(actions: Vec<Action<K>>, keys: &mut [K], transit: &mut [[Option<K>; 2]]) {
    for action in &actions {
        match *action {
            Action::Write {
                clear: Some((n, s)),
                ..
            }
            | Action::Resolved {
                node: n, slot: s, ..
            } => transit[n][s] = None,
            _ => {}
        }
    }
    for action in actions {
        match action {
            Action::Keep => {}
            Action::Swap(i, j) => keys.swap(i, j),
            Action::Write {
                node, slot, value, ..
            } => {
                debug_assert!(transit[node][slot].is_none(), "validated: slot free");
                transit[node][slot] = Some(value);
            }
            Action::Resolved { node, value, .. } => {
                if let Some(v) = value {
                    keys[node] = v;
                }
            }
        }
    }
}

/// One round, serial, unchecked — the data semantics of
/// [`BspMachine::run`]'s inner loop (takes read start-of-round transit
/// state; incoming values commit at the end of the round).
pub(crate) fn exec_round_serial<K: Ord + Clone>(
    keys: &mut [K],
    transit: &mut [[Option<K>; 2]],
    round: &[Op],
) {
    let mut incoming: Vec<(usize, usize, K)> = Vec::new();
    exec_round_serial_scratch(keys, transit, round, &mut incoming);
}

/// [`exec_round_serial`] with a caller-owned incoming buffer, so hot
/// loops (whole-program execution, fault segments) allocate the buffer
/// once instead of once per round.
pub(crate) fn exec_round_serial_scratch<K: Ord + Clone>(
    keys: &mut [K],
    transit: &mut [[Option<K>; 2]],
    round: &[Op],
    incoming: &mut Vec<(usize, usize, K)>,
) {
    incoming.clear();
    for op in round {
        match *op {
            Op::CompareExchange { a, b, min_to_a } => {
                let (ai, bi) = (a as usize, b as usize);
                let a_has_min = keys[ai] <= keys[bi];
                if a_has_min != min_to_a {
                    keys.swap(ai, bi);
                }
            }
            Op::Move {
                from,
                to,
                slot,
                from_key,
            } => {
                let (fi, si) = (from as usize, slot as usize);
                let payload = if from_key {
                    keys[fi].clone()
                } else {
                    transit[fi][si].take().expect("validated: slot occupied")
                };
                incoming.push((to as usize, si, payload));
            }
            Op::Resolve {
                node,
                slot,
                keep_min,
            } => {
                let (ni, si) = (node as usize, slot as usize);
                let arrived = transit[ni][si].take().expect("validated: slot occupied");
                let resident = &mut keys[ni];
                let keep_arrived = if keep_min {
                    arrived < *resident
                } else {
                    arrived > *resident
                };
                if keep_arrived {
                    *resident = arrived;
                }
            }
        }
    }
    for (to, slot, payload) in incoming.drain(..) {
        transit[to][slot] = Some(payload);
    }
}

/// Run a whole validated program serially on one key vector.
pub(crate) fn exec_program<K: Ord + Clone>(keys: &mut [K], program: &CompiledProgram) {
    let mut transit: Vec<[Option<K>; 2]> = vec![[None, None]; keys.len()];
    let mut incoming: Vec<(usize, usize, K)> = Vec::new();
    for round in &program.rounds {
        exec_round_serial_scratch(keys, &mut transit, round, &mut incoming);
    }
}

/// One logical pair round captured from the algorithm: simultaneous
/// compare-exchanges, possibly between non-adjacent nodes.
#[derive(Debug, Clone)]
struct LogicalRound {
    /// `(a, b, min_to_a)` triples, node-disjoint.
    pairs: Vec<(u64, u64, bool)>,
}

/// Engine that records the algorithm's logical pair rounds instead of
/// costing them. Data is still updated (cheaply) so the replay stays
/// well-formed; obliviousness guarantees the recorded schedule is valid
/// for every input.
struct RecordingEngine {
    program: Vec<Vec<(u32, u32)>>,
    recorded: Vec<LogicalRound>,
}

impl RecordingEngine {
    fn new(sorter: &dyn Pg2Sorter, n: usize) -> Self {
        let program = sorter.program(n);
        crate::sorters::validate_program(n, &program);
        RecordingEngine {
            program,
            recorded: Vec::new(),
        }
    }
}

impl<K: Ord + Clone + Send + Sync> Engine<K> for RecordingEngine {
    fn sort_round(&mut self, keys: &mut [K], subgraphs: &[Pg2Instance]) -> u64 {
        for round in &self.program {
            let mut pairs = Vec::with_capacity(round.len() * subgraphs.len());
            for sg in subgraphs {
                for &(p, q) in round {
                    let (a, b) = (sg.nodes[p as usize], sg.nodes[q as usize]);
                    let min_to_a = sg.dir == Direction::Ascending;
                    pairs.push((a, b, min_to_a));
                    let (ai, bi) = (a as usize, b as usize);
                    let a_has_min = keys[ai] <= keys[bi];
                    if a_has_min != min_to_a {
                        keys.swap(ai, bi);
                    }
                }
            }
            self.recorded.push(LogicalRound { pairs });
        }
        self.program.len() as u64
    }

    fn oet_round(&mut self, keys: &mut [K], pairs: &[(u64, u64)]) -> u64 {
        let mut rec = Vec::with_capacity(pairs.len());
        for &(a, b) in pairs {
            rec.push((a, b, true));
            let (ai, bi) = (a as usize, b as usize);
            if keys[ai] > keys[bi] {
                keys.swap(ai, bi);
            }
        }
        self.recorded.push(LogicalRound { pairs: rec });
        1
    }
}

/// Compile the full sorting algorithm for the product of `factor` with
/// `r` dimensions, using `sorter`'s comparator program for the `PG_2`
/// sorts, into an edge-aligned [`CompiledProgram`].
///
/// ```
/// use pns_graph::factories;
/// use pns_simulator::bsp::{compile, BspMachine};
/// use pns_simulator::Hypercube2Sorter;
///
/// let factor = factories::k2();
/// let program = compile(&factor, 4, &Hypercube2Sorter);
/// let machine = BspMachine::new(&factor, 4);
/// let mut keys: Vec<u32> = (0..16).rev().collect();
/// machine.run(&mut keys, &program); // validates every op against the 4-cube
/// assert!(pns_simulator::netsort::is_snake_sorted(machine.shape(), &keys));
/// ```
///
/// Compare pairs between adjacent nodes become single
/// [`Op::CompareExchange`] rounds; non-adjacent pairs (non-Hamiltonian
/// labelings) are lowered to bidirectional relays along shortest paths,
/// scheduled into edge-disjoint waves.
#[must_use]
pub fn compile(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) -> CompiledProgram {
    let shape = Shape::new(factor.n(), r);
    let mut engine = RecordingEngine::new(sorter, shape.n());
    // Replay on dummy data, stage by stage; the schedule is
    // input-independent. Lowering after each stage lets the program
    // record a certificate point at every stage boundary: after stage
    // `k`, the paper's invariant says every `k`-dimensional subgraph is
    // snake-sorted (the final boundary, `k = r`, is global
    // snake-sortedness).
    let mut dummy: Vec<u32> = (0..shape.len() as u32).collect();
    let dims: Vec<usize> = (0..r).collect();
    let mut out = crate::netsort::NetSortOutcome::default();
    let mut rounds: Vec<BspRound> = Vec::new();
    let mut cert_points: Vec<CertPoint> = Vec::new();
    let mut lowered = 0;
    let lower_new_rounds =
        |engine: &RecordingEngine, rounds: &mut Vec<BspRound>, lowered: &mut usize| {
            for logical in &engine.recorded[*lowered..] {
                lower_pair_round(factor, shape, &logical.pairs, rounds);
            }
            *lowered = engine.recorded.len();
        };

    // Stage 2 (the initial parallel PG_2 sort round) is exactly the
    // 2-dimensional merge's base case; the recorded schedule is
    // identical to network_sort's.
    network_merge(shape, &mut dummy, &mut engine, &dims[..2], &mut out);
    lower_new_rounds(&engine, &mut rounds, &mut lowered);
    cert_points.push(CertPoint {
        round: rounds.len() as u64,
        dims: 2,
    });
    for k in 3..=r {
        network_merge(shape, &mut dummy, &mut engine, &dims[..k], &mut out);
        lower_new_rounds(&engine, &mut rounds, &mut lowered);
        cert_points.push(CertPoint {
            round: rounds.len() as u64,
            dims: k as u32,
        });
    }

    let mut program = CompiledProgram::from_rounds(shape, rounds);
    program.cert_points = cert_points;
    program
}

/// Lower one logical pair round. Adjacent pairs go into a single
/// compare-exchange round; relayed pairs are grouped into waves whose
/// path edge sets are disjoint, each wave taking `max path length` move
/// rounds plus a shared resolve round.
fn lower_pair_round(
    factor: &Graph,
    shape: Shape,
    pairs: &[(u64, u64, bool)],
    rounds: &mut Vec<BspRound>,
) {
    if pairs.is_empty() {
        // The synchronous round elapses even when this parity class is
        // empty (matching the executed engine's accounting).
        rounds.push(Vec::new());
        return;
    }
    let mut adjacent: BspRound = Vec::new();
    let mut relayed: Vec<(Vec<u64>, bool)> = Vec::new(); // (path a..b, min_to_a)
    for &(a, b, min_to_a) in pairs {
        // Pairs differ in exactly one dimension; the path stays inside
        // that factor copy. A degenerate `(a, a)` pair (a sorter bug)
        // is a semantic no-op — comparing a key with itself never
        // swaps — so it lowers to nothing rather than panicking.
        let Some(dim) = (0..shape.r()).find(|&i| shape.digit(a, i) != shape.digit(b, i)) else {
            continue;
        };
        let (da, db) = (shape.digit(a, dim) as u32, shape.digit(b, dim) as u32);
        if factor.has_edge(da, db) {
            adjacent.push(Op::CompareExchange { a, b, min_to_a });
        } else if let Some(fpath) = pns_graph::shortest_path(factor, da, db) {
            let path: Vec<u64> = fpath
                .iter()
                .map(|&f| shape.with_digit(a, dim, f as usize))
                .collect();
            relayed.push((path, min_to_a));
        } else {
            // Unreachable for the connected factors every machine
            // constructor validates; on a disconnected factor the pair
            // cannot be routed at all — drop it (the program's final
            // certificate will expose the unsorted result) instead of
            // panicking mid-compile.
            continue;
        }
    }
    if !adjacent.is_empty() {
        rounds.push(adjacent);
    }
    // Wave-schedule the relayed pairs: a wave's paths must be
    // node-disjoint, so every relay node has both transit slots free for
    // its one pair's forward and backward streams.
    let mut remaining = relayed;
    while !remaining.is_empty() {
        let mut wave: Vec<(Vec<u64>, bool)> = Vec::new();
        let mut used_nodes: HashMap<u64, ()> = HashMap::new();
        let mut rest = Vec::new();
        for (path, min_to_a) in remaining {
            if path.iter().any(|v| used_nodes.contains_key(v)) {
                rest.push((path, min_to_a));
            } else {
                for &v in &path {
                    used_nodes.insert(v, ());
                }
                wave.push((path, min_to_a));
            }
        }
        emit_wave(&wave, rounds);
        remaining = rest;
    }
}

/// Emit the move/resolve rounds for one edge-disjoint wave of relays.
fn emit_wave(wave: &[(Vec<u64>, bool)], rounds: &mut Vec<BspRound>) {
    let max_hops = wave.iter().map(|(p, _)| p.len() - 1).max().unwrap_or(0);
    // Hop rounds: slot 0 carries a→b, slot 1 carries b→a, simultaneously
    // (full-duplex edges; the machine checks per-direction capacity).
    for h in 0..max_hops {
        let mut round: BspRound = Vec::new();
        for (path, _) in wave {
            let hops = path.len() - 1;
            if h < hops {
                round.push(Op::Move {
                    from: path[h],
                    to: path[h + 1],
                    slot: 0,
                    from_key: h == 0,
                });
                round.push(Op::Move {
                    from: path[hops - h],
                    to: path[hops - h - 1],
                    slot: 1,
                    from_key: h == 0,
                });
            }
        }
        rounds.push(round);
    }
    // Resolve round: both endpoints decide locally.
    let mut resolve: BspRound = Vec::new();
    for (path, min_to_a) in wave {
        let (Some(&a), Some(&b)) = (path.first(), path.last()) else {
            continue; // an empty path has no endpoints to resolve
        };
        resolve.push(Op::Resolve {
            node: a,
            slot: 1,
            keep_min: *min_to_a,
        });
        resolve.push(Op::Resolve {
            node: b,
            slot: 0,
            keep_min: !*min_to_a,
        });
    }
    if !resolve.is_empty() {
        rounds.push(resolve);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsort::network_sort;
    use crate::sorters::{Hypercube2Sorter, OetSnakeSorter, ShearSorter};
    use crate::{ExecutedEngine, Machine};
    use pns_graph::factories;

    fn snake_sorted<K: Ord>(shape: Shape, keys: &[K]) -> bool {
        crate::netsort::is_snake_sorted(shape, keys)
    }

    #[test]
    fn compiled_grid_program_sorts() {
        let factor = factories::path(4);
        let program = compile(&factor, 2, &ShearSorter);
        let machine = BspMachine::new(&factor, 2);
        let mut keys: Vec<u32> = (0..16).rev().collect();
        let rounds = machine.run(&mut keys, &program);
        assert!(snake_sorted(machine.shape(), &keys));
        assert_eq!(rounds as usize, program.rounds());
    }

    #[test]
    fn compiled_rounds_match_executed_engine_on_hamiltonian_factors() {
        // On a Hamiltonian-labeled factor every logical pair is an edge,
        // so BSP rounds == executed-engine steps.
        for (factor, r, sorter) in [
            (factories::path(3), 3usize, &ShearSorter as &dyn Pg2Sorter),
            (factories::path(5), 2, &OetSnakeSorter),
            (factories::k2(), 5, &Hypercube2Sorter),
        ] {
            let program = compile(&factor, r, sorter);
            let shape = program.shape();
            let mut engine = ExecutedEngine::new(&factor, shape, sorter);
            let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
            let out = network_sort(shape, &mut keys, &mut engine);
            assert_eq!(program.rounds() as u64, out.steps, "{factor:?} r={r}");
        }
    }

    #[test]
    fn compiled_program_is_input_independent() {
        let factor = factories::path(3);
        let program = compile(&factor, 3, &ShearSorter);
        let machine = BspMachine::new(&factor, 3);
        let mut state = 11u64;
        for _ in 0..10 {
            let mut keys: Vec<u64> = (0..27)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
                    state >> 40
                })
                .collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            machine.run(&mut keys, &program);
            let sorted = crate::netsort::read_snake_order(machine.shape(), &keys);
            assert_eq!(sorted, expect);
        }
    }

    #[test]
    fn hypercube_program_zero_one_exhaustive() {
        // Exhaustive for the 3-cube; the 4-cube (2^16 inputs) is covered
        // by the release-mode integration sweep.
        let factor = factories::k2();
        let program = compile(&factor, 3, &Hypercube2Sorter);
        let machine = BspMachine::new(&factor, 3);
        for mask in 0u32..(1 << 8) {
            let mut keys: Vec<u8> = (0..8).map(|i| ((mask >> i) & 1) as u8).collect();
            machine.run(&mut keys, &program);
            assert!(snake_sorted(machine.shape(), &keys), "mask={mask:#x}");
        }
    }

    #[test]
    fn non_hamiltonian_factor_uses_relays_and_still_sorts() {
        // Star factor: compares between leaves relay through the hub.
        let factor = factories::star(4);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, 2);
        let mut keys: Vec<u32> = (0..16).map(|x| (x * 11) % 17).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        machine.run(&mut keys, &program);
        assert_eq!(
            crate::netsort::read_snake_order(machine.shape(), &keys),
            expect
        );
        // Relays exist: some rounds carry Move/Resolve ops.
        let has_moves = program
            .rounds
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::Move { .. }));
        assert!(has_moves, "expected relayed compares on the star factor");
    }

    #[test]
    fn bsp_agrees_with_machine_api() {
        let factor = Machine::prepare_factor(&factories::complete_binary_tree(3));
        let program = compile(&factor, 2, &OetSnakeSorter);
        let bsp = BspMachine::new(&factor, 2);
        let keys: Vec<u64> = (0..49).map(|x| (x * 13) % 29).collect();
        let mut bsp_keys = keys.clone();
        bsp.run(&mut bsp_keys, &program);

        let mut m = Machine::executed(&factor, 2, &OetSnakeSorter);
        let rep = m.sort(keys).expect("49 keys");
        assert_eq!(bsp_keys, rep.keys, "final configurations must agree");
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn machine_rejects_non_edge_compare() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let program = CompiledProgram::from_rounds(
            machine.shape(),
            vec![vec![Op::CompareExchange {
                a: 0,
                b: 2, // labels 0 and 2 are not adjacent on the path
                min_to_a: true,
            }]],
        );
        let mut keys: Vec<u32> = (0..9).collect();
        machine.run(&mut keys, &program);
    }

    #[test]
    #[should_panic(expected = "key accessed twice")]
    fn machine_rejects_node_reuse_in_round() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let program = CompiledProgram::from_rounds(
            machine.shape(),
            vec![vec![
                Op::CompareExchange {
                    a: 0,
                    b: 1,
                    min_to_a: true,
                },
                Op::CompareExchange {
                    a: 1,
                    b: 2,
                    min_to_a: true,
                },
            ]],
        );
        let mut keys: Vec<u32> = (0..9).collect();
        machine.run(&mut keys, &program);
    }

    #[test]
    #[should_panic(expected = "resolve of empty slot")]
    fn machine_rejects_resolving_empty_slot() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let program = CompiledProgram::from_rounds(
            machine.shape(),
            vec![vec![Op::Resolve {
                node: 0,
                slot: 0,
                keep_min: true,
            }]],
        );
        let mut keys: Vec<u32> = (0..9).collect();
        machine.run(&mut keys, &program);
    }

    #[test]
    fn compiled_programs_serialize_roundtrip() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let json = serde_json::to_string(&program).expect("serialize");
        let back: CompiledProgram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.rounds(), program.rounds());
        assert_eq!(back.op_count(), program.op_count());
        // The deserialized program still runs and sorts.
        let machine = BspMachine::new(&factor, 2);
        let mut keys: Vec<u32> = (0..9).rev().collect();
        machine.run(&mut keys, &back);
        assert!(snake_sorted(machine.shape(), &keys));
    }

    #[test]
    fn op_counts_are_reported() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &OetSnakeSorter);
        assert!(program.op_count() > 0);
        assert!(program.rounds() > 0);
    }

    /// Deterministic pseudo-random keys for differential checks.
    fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
                state >> 33
            })
            .collect()
    }

    #[test]
    fn run_parallel_is_bit_identical_to_run() {
        // k2 r=8 has 64-op compare rounds (hits the parallel path);
        // star relays exercise Move/Resolve on the serial-fallback path.
        for (factor, r, sorter) in [
            (factories::k2(), 8usize, &Hypercube2Sorter as &dyn Pg2Sorter),
            (factories::star(4), 2, &OetSnakeSorter),
            (factories::path(4), 3, &ShearSorter),
        ] {
            let program = compile(&factor, r, sorter);
            let machine = BspMachine::new(&factor, r);
            for seed in [1u64, 99, 4242] {
                let keys = lcg_keys(machine.shape().len(), seed);
                let mut serial = keys.clone();
                let mut parallel = keys;
                machine.run(&mut serial, &program);
                machine.run_parallel(&mut parallel, &program);
                assert_eq!(serial, parallel, "{factor:?} r={r} seed={seed}");
                assert!(snake_sorted(machine.shape(), &parallel));
            }
        }
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let factor = factories::star(4);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, 2);
        let mut batch: Vec<Vec<u64>> = (0..8)
            .map(|seed| lcg_keys(machine.shape().len(), seed * 7 + 1))
            .collect();
        let expected: Vec<Vec<u64>> = batch
            .iter()
            .map(|keys| {
                let mut k = keys.clone();
                machine.run(&mut k, &program);
                k
            })
            .collect();
        let rounds = machine.run_batch(&mut batch, &program);
        assert_eq!(rounds as usize, program.rounds());
        assert_eq!(batch, expected);
    }

    #[test]
    fn optimized_program_sorts_identically_with_fewer_rounds() {
        for (factor, r, sorter) in [
            (factories::k2(), 4usize, &Hypercube2Sorter as &dyn Pg2Sorter),
            (factories::star(4), 2, &OetSnakeSorter),
            (factories::path(3), 3, &ShearSorter),
        ] {
            let program = compile(&factor, r, sorter);
            let opt = program.optimized();
            let stats = opt.stats();
            // Bookkeeping identities: every dropped op and round is
            // attributed to exactly one pass.
            assert_eq!(
                stats.ops_after,
                stats.ops_before - stats.compare_exchanges_elided,
                "{factor:?}"
            );
            assert_eq!(
                stats.rounds_after,
                stats.rounds_before - stats.empty_rounds_elided - stats.rounds_fused,
                "{factor:?}"
            );
            assert!(stats.rounds_after <= stats.rounds_before);
            // The optimized program still produces the exact serial
            // configuration, in both executors.
            let machine = BspMachine::new(&factor, r);
            let keys = lcg_keys(machine.shape().len(), 5);
            let mut baseline = keys.clone();
            machine.run(&mut baseline, &program);
            let mut via_opt = keys.clone();
            machine.run(&mut via_opt, &opt);
            assert_eq!(baseline, via_opt, "{factor:?} optimized serial");
            let mut via_opt_par = keys;
            machine.run_parallel(&mut via_opt_par, &opt);
            assert_eq!(baseline, via_opt_par, "{factor:?} optimized parallel");
        }
    }

    #[test]
    fn optimizer_elides_empty_parity_rounds() {
        // N=2 transposition rounds have an empty parity class: the
        // compiled program carries empty rounds which optimization
        // removes.
        let program = compile(&factories::k2(), 4, &Hypercube2Sorter);
        let stats = program.optimized().stats();
        assert!(
            stats.empty_rounds_elided > 0,
            "expected empty parity rounds on the 4-cube, got {stats:?}"
        );
    }

    #[test]
    fn optimizer_drops_repeated_compare_exchanges() {
        let factor = factories::path(3);
        let shape = Shape::new(3, 2);
        let cx = Op::CompareExchange {
            a: 0,
            b: 1,
            min_to_a: true,
        };
        // Same exchange twice with nothing touching nodes 0/1 between:
        // the second is a provable no-op. A third with the opposite
        // direction is NOT dropped (it can swap).
        let program = CompiledProgram::from_rounds(
            shape,
            vec![
                vec![cx],
                vec![cx],
                vec![Op::CompareExchange {
                    a: 0,
                    b: 1,
                    min_to_a: false,
                }],
            ],
        );
        let opt = program.optimized();
        assert_eq!(opt.stats().compare_exchanges_elided, 1);
        assert_eq!(opt.op_count(), 2);
        // Behaviour unchanged.
        let machine = BspMachine::new(&factor, 2);
        let mut a: Vec<u32> = vec![5, 3, 8, 1, 9, 2, 7, 4, 6];
        let mut b = a.clone();
        machine.run(&mut a, &program);
        machine.run(&mut b, &opt);
        assert_eq!(a, b);
    }

    #[test]
    fn optimizer_fuses_disjoint_adjacent_rounds() {
        let shape = Shape::new(3, 2);
        // Two rounds touching disjoint node pairs fuse into one.
        let program = CompiledProgram::from_rounds(
            shape,
            vec![
                vec![Op::CompareExchange {
                    a: 0,
                    b: 1,
                    min_to_a: true,
                }],
                vec![Op::CompareExchange {
                    a: 3,
                    b: 4,
                    min_to_a: true,
                }],
            ],
        );
        let opt = program.optimized();
        assert_eq!(opt.stats().rounds_fused, 1);
        assert_eq!(opt.rounds(), 1);
        assert_eq!(opt.op_count(), 2);
        let machine = BspMachine::new(&factories::path(3), 2);
        let mut keys: Vec<u32> = (0..9).rev().collect();
        let mut expect = keys.clone();
        machine.run(&mut keys, &opt);
        machine.run(&mut expect, &program);
        assert_eq!(keys, expect);
    }

    #[test]
    fn validate_accepts_every_compiled_and_optimized_program() {
        for (factor, r, sorter) in [
            (factories::path(4), 2usize, &ShearSorter as &dyn Pg2Sorter),
            (factories::star(4), 2, &OetSnakeSorter),
            (factories::k2(), 5, &Hypercube2Sorter),
            (
                Machine::prepare_factor(&factories::petersen()),
                2,
                &OetSnakeSorter,
            ),
        ] {
            let machine = BspMachine::new(&factor, r);
            let program = compile(&factor, r, sorter);
            machine.validate(&program);
            machine.validate(&program.optimized());
        }
    }

    #[test]
    #[should_panic(expected = "read and written in one round")]
    fn validate_rejects_order_dependent_rounds() {
        // Node 1's key is read by a relay first hop and written by a
        // compare-exchange in the same round: serial execution order
        // would decide which value the relay carries.
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let program = CompiledProgram::from_rounds(
            machine.shape(),
            vec![
                vec![
                    Op::Move {
                        from: 1,
                        to: 2,
                        slot: 0,
                        from_key: true,
                    },
                    Op::CompareExchange {
                        a: 0,
                        b: 1,
                        min_to_a: true,
                    },
                ],
                vec![Op::Resolve {
                    node: 2,
                    slot: 0,
                    keep_min: true,
                }],
            ],
        );
        machine.validate(&program);
    }

    /// Build a machine wired to an in-memory event ring.
    fn traced_machine(factor: &Graph, r: usize) -> (BspMachine, pns_obs::MemoryReader) {
        let (sink, reader) = pns_obs::MemorySink::with_capacity(1 << 16);
        let mut machine = BspMachine::new(factor, r);
        let logger = pns_obs::EventLogger::new(Box::new(sink));
        machine.attach_logger(logger);
        (machine, reader)
    }

    fn drain(machine: &BspMachine, reader: &pns_obs::MemoryReader) -> Vec<pns_obs::TimedEvent> {
        machine.logger.flush();
        reader.events()
    }

    #[test]
    fn round_events_pair_up_and_are_monotone() {
        let factor = factories::star(4);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let (machine, reader) = traced_machine(&factor, 2);
        let mut keys: Vec<u64> = (0..16).rev().collect();
        machine.run(&mut keys, &program);
        let events = drain(&machine, &reader);
        let mut open: Option<u64> = None;
        let mut next_round = 0u64;
        let mut span_opens = 0u64;
        let mut span_closes = 0u64;
        for ev in &events {
            match ev.event {
                Event::RoundStart { round, .. } => {
                    assert!(open.is_none(), "RoundStart {round} inside an open round");
                    assert_eq!(round, next_round, "round indices must be monotone");
                    open = Some(round);
                }
                Event::RoundEnd { round } => {
                    assert_eq!(open.take(), Some(round), "RoundEnd {round} without start");
                    next_round += 1;
                }
                Event::SpanEnter { .. } => span_opens += 1,
                Event::SpanExit { .. } => span_closes += 1,
                other => panic!("serial run emitted unexpected {other:?}"),
            }
        }
        assert!(open.is_none(), "every RoundStart needs a matching RoundEnd");
        assert_eq!(next_round as usize, program.rounds());
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.event, Event::RoundStart { .. } | Event::RoundEnd { .. }))
                .count(),
            2 * program.rounds()
        );
        // The run itself is wrapped in one serial sort span (the star²
        // rounds are below ROUND_OBS_MIN_OPS, so no round spans), and
        // every opened span closed.
        assert_eq!(span_opens, span_closes);
        assert!(span_opens >= 1, "expected at least the sort span");
        let sort_enter = events
            .iter()
            .find_map(|e| match e.event {
                Event::SpanEnter {
                    span, tier, stage, ..
                } => Some((span, tier, stage)),
                _ => None,
            })
            .expect("sort span enter");
        assert_eq!(sort_enter.1, pns_obs::Tier::Serial.code());
        assert_eq!(sort_enter.2, pns_obs::Stage::Sort.code());
        assert!(
            events
                .iter()
                .any(|e| matches!(e.event, Event::SpanExit { span, .. } if span == sort_enter.0)),
            "sort span must close"
        );
    }

    #[test]
    fn serial_and_parallel_runs_emit_identical_logical_round_events() {
        // k2 r=8 has rounds above PAR_THRESHOLD, so the parallel path
        // really engages and sets the `parallel` flag.
        let factor = factories::k2();
        let program = compile(&factor, 8, &Hypercube2Sorter);
        let keys = lcg_keys(1 << 8, 7);

        let (serial_machine, serial_reader) = traced_machine(&factor, 8);
        let mut serial_keys = keys.clone();
        serial_machine.run(&mut serial_keys, &program);
        let serial = drain(&serial_machine, &serial_reader);

        let (par_machine, par_reader) = traced_machine(&factor, 8);
        let mut par_keys = keys;
        par_machine.run_parallel(&mut par_keys, &program);
        let parallel = drain(&par_machine, &par_reader);

        // run_parallel validates first (one extra Validate event) and
        // raises the `parallel` flag on big rounds; the *logical* round
        // sequence must match the serial run's exactly.
        let rounds_of = |events: &[pns_obs::TimedEvent]| -> Vec<Event> {
            events
                .iter()
                .map(|e| e.event)
                .filter(|e| matches!(e, Event::RoundStart { .. } | Event::RoundEnd { .. }))
                .map(Event::logical)
                .collect()
        };
        assert_eq!(rounds_of(&serial), rounds_of(&parallel));
        assert!(
            serial.iter().all(|e| e.event.logical() == e.event),
            "serial round events must already be in logical form"
        );
        assert!(
            parallel
                .iter()
                .any(|e| matches!(e.event, Event::RoundStart { parallel: true, .. })),
            "expected at least one parallel round on the 8-cube"
        );
        assert_eq!(
            parallel
                .iter()
                .filter(|e| matches!(e.event, Event::Validate { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn batches_emit_schedule_and_validate_events() {
        let factor = factories::path(3);
        let program = compile(&factor, 2, &OetSnakeSorter).optimized();
        let (machine, reader) = traced_machine(&factor, 2);
        let mut batch: Vec<Vec<u64>> = (0..5).map(|s| lcg_keys(9, s + 1)).collect();
        machine.run_batch(&mut batch, &program);
        let events = drain(&machine, &reader);
        let stats = program.stats();
        assert!(events.iter().any(|e| e.event
            == Event::Validate {
                rounds: program.rounds() as u64,
                elided_cx: stats.compare_exchanges_elided,
                fused: stats.rounds_fused,
            }));
        let scheduled: Vec<Event> = events
            .iter()
            .map(|e| e.event)
            .filter(|e| matches!(e, Event::BatchScheduled { .. }))
            .collect();
        assert_eq!(
            scheduled,
            vec![Event::BatchScheduled {
                batch: 5,
                lanes: 5.min(rayon::current_num_threads() as u64),
            }]
        );
    }

    #[test]
    fn compiled_programs_carry_stage_certificates() {
        for (factor, r, sorter) in [
            (factories::path(3), 3usize, &ShearSorter as &dyn Pg2Sorter),
            (factories::star(4), 2, &OetSnakeSorter),
            (factories::k2(), 5, &Hypercube2Sorter),
        ] {
            let program = compile(&factor, r, sorter);
            let certs = program.cert_points();
            // One certificate per stage: dims 2, 3, …, r.
            assert_eq!(certs.len(), r - 1, "{factor:?} r={r}");
            for (i, c) in certs.iter().enumerate() {
                assert_eq!(c.dims as usize, i + 2);
            }
            // Boundaries are monotone and the last one closes the program.
            assert!(certs.windows(2).all(|w| w[0].round <= w[1].round));
            assert_eq!(
                certs.last().expect("nonempty").round as usize,
                program.rounds()
            );
            // The certified invariant actually holds at each boundary.
            let machine = BspMachine::new(&factor, r);
            let mut keys = lcg_keys(machine.shape().len(), 23);
            let mut transit: Vec<[Option<u64>; 2]> = vec![[None, None]; keys.len()];
            let mut next_cert = 0;
            for (ri, round) in program.round_ops().iter().enumerate() {
                while next_cert < certs.len() && certs[next_cert].round as usize == ri {
                    assert!(
                        crate::verify::subgraphs_snake_sorted(
                            machine.shape(),
                            &keys,
                            certs[next_cert].dims as usize
                        ),
                        "{factor:?} r={r}: certificate at round {ri} violated"
                    );
                    next_cert += 1;
                }
                exec_round_serial(&mut keys, &mut transit, round);
            }
            for c in &certs[next_cert..] {
                assert_eq!(c.round as usize, program.rounds());
                assert!(crate::verify::subgraphs_snake_sorted(
                    machine.shape(),
                    &keys,
                    c.dims as usize
                ));
            }
        }
    }

    #[test]
    fn optimizer_remaps_certificates_to_surviving_boundaries() {
        for (factor, r, sorter) in [
            (factories::k2(), 4usize, &Hypercube2Sorter as &dyn Pg2Sorter),
            (factories::star(4), 2, &OetSnakeSorter),
            (factories::path(3), 3, &ShearSorter),
        ] {
            let program = compile(&factor, r, sorter);
            let opt = program.optimized();
            assert_eq!(opt.cert_points().len(), program.cert_points().len());
            assert_eq!(
                opt.cert_points().last().expect("nonempty").round as usize,
                opt.rounds(),
                "{factor:?}: final certificate must still close the program"
            );
            // Certified invariants hold at the remapped boundaries too.
            let machine = BspMachine::new(&factor, r);
            let mut keys = lcg_keys(machine.shape().len(), 29);
            let mut transit: Vec<[Option<u64>; 2]> = vec![[None, None]; keys.len()];
            let certs = opt.cert_points();
            let mut next_cert = 0;
            for (ri, round) in opt.round_ops().iter().enumerate() {
                while next_cert < certs.len() && certs[next_cert].round as usize == ri {
                    assert!(
                        crate::verify::subgraphs_snake_sorted(
                            machine.shape(),
                            &keys,
                            certs[next_cert].dims as usize
                        ),
                        "{factor:?} r={r}: optimized certificate at round {ri} violated"
                    );
                    next_cert += 1;
                }
                exec_round_serial(&mut keys, &mut transit, round);
            }
            assert!(crate::netsort::is_snake_sorted(machine.shape(), &keys));
        }
    }

    #[test]
    fn try_validate_reports_typed_errors_with_legacy_messages() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        let bad = CompiledProgram::from_rounds(
            machine.shape(),
            vec![vec![Op::CompareExchange {
                a: 0,
                b: 2,
                min_to_a: true,
            }]],
        );
        let err = machine.try_validate(&bad).expect_err("not an edge");
        assert_eq!(
            err,
            ProgramError::CompareNotEdge {
                round: 0,
                a: 0,
                b: 2
            }
        );
        assert_eq!(
            err.to_string(),
            "round 0: compare-exchange (0,2) is not an edge"
        );

        let empty_resolve = CompiledProgram::from_rounds(
            machine.shape(),
            vec![vec![Op::Resolve {
                node: 1,
                slot: 0,
                keep_min: true,
            }]],
        );
        let err = machine
            .try_validate(&empty_resolve)
            .expect_err("empty slot");
        assert_eq!(
            err,
            ProgramError::ResolveEmptySlot {
                round: 0,
                node: 1,
                slot: 0
            }
        );
        assert_eq!(err.to_string(), "round 0: resolve of empty slot 0 at 1");

        let other_machine = BspMachine::new(&factor, 3);
        assert_eq!(
            other_machine.try_validate(&bad),
            Err(ProgramError::ShapeMismatch)
        );

        // A good program reports its size and certificates.
        let good = compile(&factor, 2, &OetSnakeSorter);
        let report = machine.try_validate(&good).expect("valid program");
        assert_eq!(report.rounds, good.rounds());
        assert_eq!(report.ops, good.op_count());
        assert_eq!(report.cert_points, 1);
    }

    #[test]
    fn try_validate_flags_transit_leftovers() {
        let factor = factories::path(3);
        let machine = BspMachine::new(&factor, 2);
        // A single move parks a value in transit and never resolves it.
        let program = CompiledProgram::from_rounds(
            machine.shape(),
            vec![vec![Op::Move {
                from: 0,
                to: 1,
                slot: 0,
                from_key: true,
            }]],
        );
        assert_eq!(
            machine.try_validate(&program),
            Err(ProgramError::TransitLeftover)
        );
    }

    #[test]
    fn stats_survive_serialization() {
        let program = compile(&factories::k2(), 3, &Hypercube2Sorter).optimized();
        let json = serde_json::to_string(&program).expect("serialize");
        let back: CompiledProgram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.stats(), program.stats());
    }
}
