//! Sorting more keys than nodes: blocks and merge-split.
//!
//! The paper assumes one key per processor. The standard extension when
//! `M > N^r` (and the regime where, as the paper notes of Columnsort-like
//! algorithms, "the number of keys is large compared with the number of
//! processors") gives every node a sorted *block* of `b = M / N^r` keys
//! and applies the replacement principle: every compare-exchange becomes
//! a **merge-split** (the lower node keeps the smaller half of the union)
//! and every `PG_2` sort becomes a full sort of the subgraph's `b·N²`
//! keys redistributed block-wise along snake order. Because the
//! underlying algorithm is an oblivious composition of sorts and
//! comparators, the blocked version inherits its correctness.
//!
//! Charged cost: a step that moves one key now moves a block, so every
//! key-level step is charged `b` block steps (`BlockEngine` scales the
//! [`CostModel`] accordingly). Theorem 1 becomes
//! `S_r = b·((r-1)² S2 + (r-1)(r-2) R)`.

use crate::cost::CostModel;
use crate::engine::{Engine, Pg2Instance};
use crate::netsort::{network_sort, NetSortOutcome};
use pns_order::radix::Shape;
use pns_order::snake::node_at_snake_pos;
use pns_order::Direction;
use std::cmp::Ordering;

/// A node's block: internally always sorted ascending.
///
/// The `Ord` implementation is lexicographic and purely representational
/// (the [`Engine`] trait requires it); the block engine never compares
/// whole blocks — it merges and splits them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedBlock<K>(Vec<K>);

impl<K: Ord> SortedBlock<K> {
    /// Wrap keys (sorting them).
    #[must_use]
    pub fn new(mut keys: Vec<K>) -> Self {
        keys.sort_unstable();
        SortedBlock(keys)
    }

    /// The keys, ascending.
    #[must_use]
    pub fn keys(&self) -> &[K] {
        &self.0
    }

    /// Consume into the sorted key vector.
    #[must_use]
    pub fn into_keys(self) -> Vec<K> {
        self.0
    }

    /// Block size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the block is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<K: Ord> PartialOrd for SortedBlock<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for SortedBlock<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

/// Charged engine over blocks: merge-split comparators, flatten-sort
/// subgraph rounds, costs scaled by the block size.
#[derive(Debug, Clone)]
pub struct BlockEngine {
    cost: CostModel,
    block: usize,
}

impl BlockEngine {
    /// A block engine charging `block × cost` per round.
    #[must_use]
    pub fn new(cost: CostModel, block: usize) -> Self {
        assert!(block >= 1, "block size must be positive");
        BlockEngine { cost, block }
    }
}

impl<K: Ord + Clone + Send + Sync> Engine<SortedBlock<K>> for BlockEngine {
    fn sort_round(&mut self, keys: &mut [SortedBlock<K>], subgraphs: &[Pg2Instance]) -> u64 {
        for sg in subgraphs {
            // Flatten, sort, redistribute block-wise along snake order.
            let mut all: Vec<K> = sg
                .nodes
                .iter()
                .flat_map(|&v| keys[v as usize].0.iter().cloned())
                .collect();
            all.sort_unstable();
            let b = self.block;
            for (pos, &v) in sg.nodes.iter().enumerate() {
                let chunk = match sg.dir {
                    Direction::Ascending => pos,
                    Direction::Descending => sg.nodes.len() - 1 - pos,
                };
                keys[v as usize].0.clear();
                keys[v as usize]
                    .0
                    .extend_from_slice(&all[chunk * b..(chunk + 1) * b]);
            }
        }
        self.cost.s2_steps * self.block as u64
    }

    fn oet_round(&mut self, keys: &mut [SortedBlock<K>], pairs: &[(u64, u64)]) -> u64 {
        for &(a, b) in pairs {
            let (a, b) = (a as usize, b as usize);
            merge_split(keys, a, b);
        }
        self.cost.route_steps * self.block as u64
    }
}

/// Merge two blocks; the node at `lo` keeps the smaller half.
fn merge_split<K: Ord + Clone>(keys: &mut [SortedBlock<K>], lo: usize, hi: usize) {
    let b = keys[lo].0.len();
    debug_assert_eq!(b, keys[hi].0.len(), "blocks must have equal size");
    // Fast path: already in order.
    if keys[lo]
        .0
        .last()
        .zip(keys[hi].0.first())
        .is_some_and(|(l, h)| l <= h)
    {
        return;
    }
    let mut merged: Vec<K> = Vec::with_capacity(2 * b);
    {
        let (x, y) = (&keys[lo].0, &keys[hi].0);
        let (mut i, mut j) = (0, 0);
        while i < x.len() && j < y.len() {
            if x[i] <= y[j] {
                merged.push(x[i].clone());
                i += 1;
            } else {
                merged.push(y[j].clone());
                j += 1;
            }
        }
        merged.extend_from_slice(&x[i..]);
        merged.extend_from_slice(&y[j..]);
    }
    keys[hi].0.clear();
    keys[hi].0.extend_from_slice(&merged[b..]);
    merged.truncate(b);
    keys[lo].0 = merged;
}

/// Sort `keys` (`block · N^r` of them) on the product network with
/// `block` keys per node. Returns the fully sorted keys and the charged
/// outcome (unit counters are the key-level Theorem 1 counts; steps are
/// scaled by the block size).
///
/// ```
/// use pns_order::radix::Shape;
/// use pns_simulator::{block::block_sort, CostModel};
///
/// // 4 keys per node on a 3×3 grid: 36 keys.
/// let shape = Shape::new(3, 2);
/// let keys: Vec<u32> = (0..36).rev().collect();
/// let (sorted, outcome) = block_sort(shape, 4, keys, CostModel::paper_grid(3));
/// assert_eq!(sorted, (0..36).collect::<Vec<u32>>());
/// assert_eq!(outcome.counters.s2_units, 1); // (r-1)² for r = 2
/// ```
///
/// # Panics
///
/// Panics if `keys.len()` is not `block · N^r` or `r < 2`.
pub fn block_sort<K: Ord + Clone + Send + Sync>(
    shape: Shape,
    block: usize,
    keys: Vec<K>,
    cost: CostModel,
) -> (Vec<K>, NetSortOutcome) {
    assert!(block >= 1, "block size must be positive");
    assert_eq!(
        keys.len() as u64,
        shape.len() * block as u64,
        "need block × N^r keys"
    );
    // Deal keys into per-node blocks (initial placement is arbitrary;
    // blocks sort themselves locally on construction).
    let mut blocks: Vec<SortedBlock<K>> = keys
        .chunks(block)
        .map(|c| SortedBlock::new(c.to_vec()))
        .collect();
    let mut engine = BlockEngine::new(cost, block);
    let outcome = network_sort(shape, &mut blocks, &mut engine);

    // Read out: blocks in snake order, each ascending.
    let mut out = Vec::with_capacity(keys_len(&blocks));
    for pos in 0..shape.len() {
        let node = node_at_snake_pos(shape, pos) as usize;
        out.extend(blocks[node].0.iter().cloned());
    }
    (out, outcome)
}

fn keys_len<K: Ord>(blocks: &[SortedBlock<K>]) -> usize {
    blocks.iter().map(SortedBlock::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pns_core::sort::{predicted_route_units, predicted_s2_units};

    fn check(n: usize, r: usize, block: usize, seed: u64) {
        let shape = Shape::new(n, r);
        let len = shape.len() as usize * block;
        let mut state = seed | 1;
        let keys: Vec<u64> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 30) % 1000
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, outcome) = block_sort(shape, block, keys, CostModel::custom("unit", 1, 1));
        assert_eq!(sorted, expect, "n={n} r={r} block={block}");
        // Key-level unit counts are unchanged; steps scale by the block.
        assert_eq!(outcome.counters.s2_units, predicted_s2_units(r));
        assert_eq!(outcome.counters.route_units, predicted_route_units(r));
        assert_eq!(
            outcome.steps,
            (predicted_s2_units(r) + predicted_route_units(r)) * block as u64
        );
    }

    #[test]
    fn block_size_one_degenerates_to_key_sort() {
        check(3, 3, 1, 5);
    }

    #[test]
    fn sorts_with_various_block_sizes() {
        check(2, 3, 2, 7);
        check(2, 4, 4, 8);
        check(3, 3, 3, 9);
        check(3, 2, 8, 10);
        check(4, 3, 2, 11);
    }

    #[test]
    fn merge_split_keeps_halves() {
        let mut blocks = vec![
            SortedBlock::new(vec![5u32, 1, 9]),
            SortedBlock::new(vec![2u32, 8, 0]),
        ];
        merge_split(&mut blocks, 0, 1);
        assert_eq!(blocks[0].keys(), &[0, 1, 2]);
        assert_eq!(blocks[1].keys(), &[5, 8, 9]);
    }

    #[test]
    fn merge_split_noop_when_in_order() {
        let mut blocks = vec![
            SortedBlock::new(vec![1u32, 2]),
            SortedBlock::new(vec![3u32, 4]),
        ];
        merge_split(&mut blocks, 0, 1);
        assert_eq!(blocks[0].keys(), &[1, 2]);
        assert_eq!(blocks[1].keys(), &[3, 4]);
    }

    #[test]
    fn duplicates_survive_blocking() {
        let shape = Shape::new(2, 3);
        let keys = vec![3u8; 32];
        let (sorted, _) = block_sort(shape, 4, keys.clone(), CostModel::paper_hypercube());
        assert_eq!(sorted, keys);
    }

    #[test]
    fn zero_one_blocked_small_exhaustive() {
        // All 0/1 inputs for 2 keys per node on the 2-cube (2^8 inputs).
        let shape = Shape::new(2, 2);
        for mask in 0u32..256 {
            let keys: Vec<u8> = (0..8).map(|i| ((mask >> i) & 1) as u8).collect();
            let zeros = keys.iter().filter(|&&k| k == 0).count();
            let (sorted, _) = block_sort(shape, 2, keys, CostModel::custom("unit", 1, 1));
            assert!(sorted[..zeros].iter().all(|&k| k == 0), "mask={mask:#x}");
            assert!(sorted[zeros..].iter().all(|&k| k == 1), "mask={mask:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "block × N^r keys")]
    fn rejects_wrong_key_count() {
        let shape = Shape::new(2, 2);
        let _ = block_sort(shape, 2, vec![1u8; 7], CostModel::custom("u", 1, 1));
    }
}
