//! Executable `PG_2` sorters as comparator programs.
//!
//! A *program* is a sequence of synchronous rounds; each round is a set of
//! disjoint comparators `(p, q)` over forward-snake positions `0 … N²-1`
//! with `p < q`: ascending execution leaves the minimum at `p`. Programs
//! are *oblivious*, so the zero-one principle applies and small programs
//! are verified exhaustively in tests.
//!
//! A comparator compares positions whose nodes differ in exactly one
//! product dimension; the executed engine derives the factor-label pairs
//! per round to decide whether the round is a single compare-exchange step
//! (adjacent labels) or a routed exchange (non-adjacent labels — the
//! Section 4 "permutation routing within G" case).

use pns_core::netbuild::{BaseNetwork, BatcherBase, PeriodicBalancedBase};
use pns_order::snake::{snake2_rank, snake2_unrank};
use pns_order::Direction;

/// One synchronous round of disjoint comparators over snake positions.
pub type Round = Vec<(u32, u32)>;

/// An oblivious sorting program for the `N²` keys of a `PG_2` subgraph,
/// sorting into forward snake order.
pub trait Pg2Sorter: Send + Sync {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Cache identity. Unlike [`name`](Self::name) this must distinguish
    /// *parameterized* variants of the same construction: two sorters
    /// whose `id` strings are equal must produce identical programs for
    /// every `n`, because `ProgramCache` keys compiled programs on it.
    fn id(&self) -> String {
        self.name().to_owned()
    }

    /// Whether this sorter can produce a program for factor size `n`.
    /// Specialized constructions (e.g. the 3-step hypercube sorter)
    /// override this; the auto-selector only scores supported sorters.
    fn supports(&self, n: usize) -> bool {
        n >= 2
    }

    /// The comparator program for factor size `n`.
    ///
    /// Every comparator `(p, q)` must have `p < q`, each round's
    /// comparators must be disjoint, and the two nodes at snake positions
    /// `p` and `q` must differ in exactly one of the two product
    /// coordinates (so the executed engine can realize or route it).
    fn program(&self, n: usize) -> Vec<Round>;
}

/// Odd-even transposition sort along the snake sequence: `N²` rounds of
/// alternating-parity adjacent comparators. Works on any factor whose
/// labels follow a Hamiltonian path (then every comparator is an edge);
/// simple, and the natural executable counterpart of the paper's
/// linear-array reasoning.
#[derive(Debug, Clone, Copy, Default)]
pub struct OetSnakeSorter;

impl Pg2Sorter for OetSnakeSorter {
    fn name(&self) -> &'static str {
        "oet-snake"
    }

    fn program(&self, n: usize) -> Vec<Round> {
        let len = (n * n) as u32;
        (0..len)
            .map(|round| {
                let parity = round % 2;
                (parity..len.saturating_sub(1))
                    .step_by(2)
                    .map(|p| (p, p + 1))
                    .collect()
            })
            .collect()
    }
}

/// Shearsort on the `N×N` mesh, sorting into snake order:
/// `⌈log₂ N⌉` iterations of (row phase, column phase) plus a final row
/// phase, each phase an `N`-round odd-even transposition sort. Exactly
/// `N·(2⌈log₂ N⌉ + 1)` rounds. Rows in snake-position space are
/// consecutive blocks of `N` positions (the boustrophedon is already baked
/// into snake ranks), columns connect equal `x_1` across adjacent `x_2`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShearSorter;

impl ShearSorter {
    fn row_phase(n: usize, out: &mut Vec<Round>) {
        let n32 = n as u32;
        for r in 0..n32 {
            let parity = r % 2;
            let mut round = Vec::new();
            for row in 0..n32 {
                let base = row * n32;
                let mut j = parity;
                while j + 1 < n32 {
                    round.push((base + j, base + j + 1));
                    j += 2;
                }
            }
            out.push(round);
        }
    }

    fn col_phase(n: usize, out: &mut Vec<Round>) {
        let n32 = n as u32;
        for r in 0..n32 {
            let parity = r % 2;
            let mut round = Vec::new();
            for x1 in 0..n {
                let mut x2 = parity as usize;
                while x2 + 1 < n {
                    let p = snake2_rank(n, x1, x2) as u32;
                    let q = snake2_rank(n, x1, x2 + 1) as u32;
                    round.push((p.min(q), p.max(q)));
                    x2 += 2;
                }
            }
            out.push(round);
        }
    }
}

impl Pg2Sorter for ShearSorter {
    fn name(&self) -> &'static str {
        "shearsort"
    }

    fn program(&self, n: usize) -> Vec<Round> {
        let phases = usize::BITS - (n - 1).leading_zeros(); // ⌈log₂ n⌉
        let mut out = Vec::new();
        for _ in 0..phases.max(1) {
            Self::row_phase(n, &mut out);
            Self::col_phase(n, &mut out);
        }
        Self::row_phase(n, &mut out);
        out
    }
}

/// Emit one *row phase*: sort every row of the `N×N` mesh with `net`'s
/// comparator rounds over local indices. Row `j` occupies the contiguous
/// snake ranks `[jN, (j+1)N)` and rank order already bakes in the
/// boustrophedon, so sorting ascending-by-rank is exactly the alternating
/// left-to-right / right-to-left row sweep shearsort needs.
fn net_row_phase(n: usize, net: &dyn BaseNetwork, out: &mut Vec<Round>) {
    let n32 = n as u32;
    for local in net.rounds(n) {
        let mut round = Round::new();
        for row in 0..n32 {
            let base = row * n32;
            round.extend(local.iter().map(|&(i, j)| (base + i, base + j)));
        }
        out.push(round);
    }
}

/// Emit one *column phase*: sort every column ascending in `x₂` with
/// `net`'s rounds. `snake2_rank(n, x1, ·)` is monotone in `x₂` for fixed
/// `x₁`, so mapping local index `t` to that rank keeps comparators
/// ordered; both endpoints share `x₁`, so every comparator stays
/// axis-aligned (possibly non-adjacent — the executed engine routes it).
fn net_col_phase(n: usize, net: &dyn BaseNetwork, out: &mut Vec<Round>) {
    for local in net.rounds(n) {
        let mut round = Round::new();
        for x1 in 0..n {
            round.extend(local.iter().map(|&(i, j)| {
                let p = snake2_rank(n, x1, i as usize) as u32;
                let q = snake2_rank(n, x1, j as usize) as u32;
                (p, q)
            }));
        }
        out.push(round);
    }
}

/// The shear schedule with a pluggable full-sort phase network:
/// `⌈log₂ N⌉` iterations of (row phase, column phase) plus a final row
/// phase. Shearsort's correctness proof only needs each phase to *sort*
/// its rows/columns — it never looks inside the phase — so any sorting
/// network slots in.
fn shear_schedule(n: usize, net: &dyn BaseNetwork) -> Vec<Round> {
    let phases = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let mut out = Vec::new();
    for _ in 0..phases {
        net_row_phase(n, net, &mut out);
        net_col_phase(n, net, &mut out);
    }
    net_row_phase(n, net, &mut out);
    out
}

/// The enhanced multiway n-sorter construction (Shi/Yan/Wagh,
/// arXiv 1407.0961): compose full `N`-key sorters — here Batcher's
/// odd-even merge networks, pruned to arbitrary `N` — as the row/column
/// phases of the shear schedule. Depth `(2⌈lg N⌉+1)·D_B(N)` versus the
/// OET snake's `N²`: 15 vs 16 rounds at `N=4`, 42 vs 64 at `N=8`,
/// 90 vs 256 at `N=16`. Comparators span whole rows/columns, so on
/// factors without all-pairs edges the engine routes them; the
/// auto-selector weighs that cost per shape.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiwayNSorter;

impl Pg2Sorter for MultiwayNSorter {
    fn name(&self) -> &'static str {
        "multiway-nsorter"
    }

    fn program(&self, n: usize) -> Vec<Round> {
        shear_schedule(n, &BatcherBase)
    }
}

/// Constant-periodic phases in the spirit of Piotrów's periodic merging
/// networks (arXiv 1401.0396 / 1409.1749): each shear phase is the
/// Dowd–Perl–Rudolph–Saks balanced block — one fixed `⌈lg N⌉`-level
/// wiring — replayed `⌈lg N⌉ (+ extra)` times. The whole `PG_2` program
/// therefore cycles through a tiny set of distinct round shapes, which is
/// the property that makes periodic programs ideal compile targets.
/// Depth `(2⌈lg N⌉+1)·⌈lg N⌉²(1 + extra/⌈lg N⌉)`: beats the OET snake
/// once `N ≥ 8` (63 vs 64 rounds, 144 vs 256 at `N=16`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeriodicMergeSorter {
    /// Extra block replays per phase beyond the `⌈lg N⌉` required —
    /// harmless for correctness (sorted rows/columns are fixed points of
    /// the block) but a genuinely different program, so it must get a
    /// distinct cache [`id`](Pg2Sorter::id).
    pub extra_blocks: usize,
}

impl PeriodicMergeSorter {
    /// The parameterized variant with `extra` additional block replays
    /// per phase.
    #[must_use]
    pub fn with_extra_blocks(extra: usize) -> Self {
        PeriodicMergeSorter {
            extra_blocks: extra,
        }
    }
}

impl Pg2Sorter for PeriodicMergeSorter {
    fn name(&self) -> &'static str {
        "periodic-merge"
    }

    fn id(&self) -> String {
        if self.extra_blocks == 0 {
            self.name().to_owned()
        } else {
            format!("{}+b{}", self.name(), self.extra_blocks)
        }
    }

    fn program(&self, n: usize) -> Vec<Round> {
        let base = PeriodicBalancedBase {
            extra_blocks: self.extra_blocks,
        };
        shear_schedule(n, &base)
    }
}

/// The 3-step snake sorter for the two-dimensional hypercube (`N = 2`,
/// Section 5.3: "It is not hard to sort in snake order on the
/// two-dimensional hypercube in three steps"). The 4-node `PG_2` of `K_2`
/// is a 4-cycle; snake positions `0,1,2,3` sit at labels `00, 01, 11, 10`,
/// and the three rounds use only cycle edges:
/// dimension-1 pairs, dimension-2 pairs, dimension-1 pairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hypercube2Sorter;

impl Pg2Sorter for Hypercube2Sorter {
    fn name(&self) -> &'static str {
        "hypercube-3step"
    }

    fn supports(&self, n: usize) -> bool {
        n == 2
    }

    fn program(&self, n: usize) -> Vec<Round> {
        assert_eq!(n, 2, "the 3-step sorter is specific to N = 2");
        vec![
            vec![(0, 1), (2, 3)], // labels (00,01) and (11,10): dim-1 edges
            vec![(0, 3), (1, 2)], // labels (00,10) and (01,11): dim-2 edges
            vec![(0, 1), (2, 3)],
        ]
    }
}

/// Apply a program to `keys` (indexed by snake position) in the given
/// direction. Descending execution flips every comparator.
pub fn run_program<K: Ord>(keys: &mut [K], program: &[Round], dir: Direction) {
    for round in program {
        for &(p, q) in round {
            let (p, q) = (p as usize, q as usize);
            let out_of_order = match dir {
                Direction::Ascending => keys[p] > keys[q],
                Direction::Descending => keys[p] < keys[q],
            };
            if out_of_order {
                keys.swap(p, q);
            }
        }
    }
}

/// Structural validation of a program: comparators ordered and in range,
/// rounds disjoint, and each comparator's endpoints differ in exactly one
/// of the two `PG_2` coordinates.
///
/// # Panics
///
/// Panics with a description of the first violation.
pub fn validate_program(n: usize, program: &[Round]) {
    let len = (n * n) as u32;
    for (i, round) in program.iter().enumerate() {
        let mut used = vec![false; len as usize];
        for &(p, q) in round {
            assert!(p < q, "round {i}: comparator ({p},{q}) not ordered");
            assert!(q < len, "round {i}: position {q} out of range");
            for v in [p, q] {
                assert!(!used[v as usize], "round {i}: position {v} reused");
                used[v as usize] = true;
            }
            let (a1, a2) = snake2_unrank(n, p as u64);
            let (b1, b2) = snake2_unrank(n, q as u64);
            let diffs = usize::from(a1 != b1) + usize::from(a2 != b2);
            assert_eq!(
                diffs, 1,
                "round {i}: comparator ({p},{q}) spans both dimensions"
            );
        }
    }
}

/// Exhaustive zero-one check that the program sorts (feasible for
/// `N ≤ 4`, i.e. up to 2^16 inputs).
#[must_use]
pub fn program_sorts_all_zero_one(n: usize, program: &[Round]) -> bool {
    let len = n * n;
    assert!(len <= 20, "exhaustive check is for small N");
    for mask in 0u32..(1 << len) {
        let mut keys: Vec<u8> = (0..len).map(|i| ((mask >> i) & 1) as u8).collect();
        run_program(&mut keys, program, Direction::Ascending);
        if !keys.windows(2).all(|w| w[0] <= w[1]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oet_snake_is_valid_and_sorts() {
        for n in 2..=4 {
            let p = OetSnakeSorter.program(n);
            assert_eq!(p.len(), n * n);
            validate_program(n, &p);
            assert!(program_sorts_all_zero_one(n, &p), "n={n}");
        }
    }

    #[test]
    fn shearsort_is_valid_and_sorts() {
        for n in 2..=4 {
            let p = ShearSorter.program(n);
            let phases = usize::BITS as usize - (n - 1).leading_zeros() as usize;
            assert_eq!(p.len(), n * (2 * phases.max(1) + 1));
            validate_program(n, &p);
            assert!(program_sorts_all_zero_one(n, &p), "n={n}");
        }
    }

    #[test]
    fn shearsort_sorts_random_permutations_for_larger_n() {
        // Beyond exhaustive range: permutations, checked against std sort.
        for n in [5usize, 8, 9] {
            let prog = ShearSorter.program(n);
            validate_program(n, &prog);
            let len = n * n;
            let mut state: u64 = 0x9E3779B97F4A7C15;
            for _ in 0..20 {
                let mut keys: Vec<u64> = (0..len as u64)
                    .map(|i| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
                        state >> 33
                    })
                    .collect();
                let mut expect = keys.clone();
                expect.sort_unstable();
                run_program(&mut keys, &prog, Direction::Ascending);
                assert_eq!(keys, expect, "n={n}");
            }
        }
    }

    #[test]
    fn multiway_nsorter_is_valid_and_sorts() {
        for n in 2..=4 {
            let p = MultiwayNSorter.program(n);
            validate_program(n, &p);
            assert!(program_sorts_all_zero_one(n, &p), "n={n}");
        }
    }

    #[test]
    fn periodic_merge_is_valid_and_sorts() {
        for n in 2..=4 {
            for extra in [0usize, 1] {
                let p = PeriodicMergeSorter::with_extra_blocks(extra).program(n);
                validate_program(n, &p);
                assert!(program_sorts_all_zero_one(n, &p), "n={n} extra={extra}");
            }
        }
    }

    #[test]
    fn new_sorters_sort_random_permutations_for_larger_n() {
        for n in [5usize, 8, 9, 16] {
            for sorter in [
                &MultiwayNSorter as &dyn Pg2Sorter,
                &PeriodicMergeSorter { extra_blocks: 0 },
                &PeriodicMergeSorter { extra_blocks: 1 },
            ] {
                let prog = sorter.program(n);
                validate_program(n, &prog);
                let len = n * n;
                let mut state: u64 = 0x243F6A8885A308D3;
                for _ in 0..10 {
                    let mut keys: Vec<u64> = (0..len as u64)
                        .map(|i| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
                            state >> 33
                        })
                        .collect();
                    let mut expect = keys.clone();
                    expect.sort_unstable();
                    run_program(&mut keys, &prog, Direction::Ascending);
                    assert_eq!(keys, expect, "n={n} sorter={}", sorter.name());
                }
            }
        }
    }

    #[test]
    fn multiway_nsorter_depth_beats_oet_at_practical_widths() {
        // (2⌈lg N⌉+1)·D_B(N) versus N².
        for (n, depth) in [(4usize, 15usize), (8, 42), (16, 90)] {
            let p = MultiwayNSorter.program(n);
            assert_eq!(p.len(), depth, "n={n}");
            assert!(p.len() < OetSnakeSorter.program(n).len());
        }
        // Size also drops at N=4: 100 comparators vs the OET snake's 120.
        let size = |prog: &[Round]| prog.iter().map(Vec::len).sum::<usize>();
        assert!(size(&MultiwayNSorter.program(4)) < size(&OetSnakeSorter.program(4)));
    }

    #[test]
    fn periodic_merge_depth_beats_oet_from_n8() {
        for (n, depth) in [(8usize, 63usize), (16, 144)] {
            let p = PeriodicMergeSorter::default().program(n);
            assert_eq!(p.len(), depth, "n={n}");
            assert!(p.len() < OetSnakeSorter.program(n).len());
        }
    }

    #[test]
    fn periodic_merge_phases_replay_a_fixed_block() {
        // Constant-periodicity surfaced at the PG_2 level: the program
        // cycles through at most 2·⌈lg N⌉ distinct round shapes (one
        // block's worth per axis).
        let n = 8usize;
        let k = 3usize; // ⌈lg 8⌉
        let prog = PeriodicMergeSorter::default().program(n);
        let mut distinct: Vec<&Round> = Vec::new();
        for round in &prog {
            if !distinct.contains(&round) {
                distinct.push(round);
            }
        }
        assert_eq!(distinct.len(), 2 * k);
    }

    #[test]
    fn sorter_ids_distinguish_parameterized_variants() {
        assert_eq!(MultiwayNSorter.id(), "multiway-nsorter");
        assert_eq!(PeriodicMergeSorter::default().id(), "periodic-merge");
        let tuned = PeriodicMergeSorter::with_extra_blocks(2);
        assert_eq!(tuned.name(), "periodic-merge");
        assert_eq!(tuned.id(), "periodic-merge+b2");
        assert_ne!(tuned.id(), PeriodicMergeSorter::default().id());
    }

    #[test]
    fn supports_gates_specialized_sorters() {
        assert!(Hypercube2Sorter.supports(2));
        assert!(!Hypercube2Sorter.supports(3));
        for n in 2..=16 {
            assert!(MultiwayNSorter.supports(n));
            assert!(PeriodicMergeSorter::default().supports(n));
            assert!(OetSnakeSorter.supports(n));
            assert!(ShearSorter.supports(n));
        }
    }

    #[test]
    fn hypercube_3step_sorts_exhaustively() {
        let p = Hypercube2Sorter.program(2);
        assert_eq!(p.len(), 3);
        validate_program(2, &p);
        assert!(program_sorts_all_zero_one(2, &p));
        // Also over all 4! permutations.
        let perms = [
            [0, 1, 2, 3],
            [0, 1, 3, 2],
            [0, 2, 1, 3],
            [0, 2, 3, 1],
            [0, 3, 1, 2],
            [0, 3, 2, 1],
            [1, 0, 2, 3],
            [1, 0, 3, 2],
            [1, 2, 0, 3],
            [1, 2, 3, 0],
            [1, 3, 0, 2],
            [1, 3, 2, 0],
            [2, 0, 1, 3],
            [2, 0, 3, 1],
            [2, 1, 0, 3],
            [2, 1, 3, 0],
            [2, 3, 0, 1],
            [2, 3, 1, 0],
            [3, 0, 1, 2],
            [3, 0, 2, 1],
            [3, 1, 0, 2],
            [3, 1, 2, 0],
            [3, 2, 0, 1],
            [3, 2, 1, 0],
        ];
        for perm in perms {
            let mut keys = perm.to_vec();
            run_program(&mut keys, &p, Direction::Ascending);
            assert_eq!(keys, vec![0, 1, 2, 3], "input {perm:?}");
        }
    }

    #[test]
    fn descending_execution_reverses() {
        let prog = ShearSorter.program(3);
        let mut keys: Vec<u32> = vec![4, 7, 1, 0, 8, 3, 2, 6, 5];
        run_program(&mut keys, &prog, Direction::Descending);
        assert_eq!(keys, vec![8, 7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "specific to N = 2")]
    fn hypercube_sorter_rejects_other_n() {
        let _ = Hypercube2Sorter.program(3);
    }

    #[test]
    #[should_panic(expected = "spans both dimensions")]
    fn validate_rejects_diagonal_comparators() {
        // Positions 0 (0,0) and 3 (2,... for n=2: pos 3 is (0,1)? snake2:
        // pos 3 = (x1=0, x2=1)… use n=3: pos 0=(0,0), pos 4=(1,1) diagonal.
        validate_program(3, &[vec![(0, 4)]]);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn validate_rejects_overlapping_comparators() {
        validate_program(2, &[vec![(0, 1), (1, 2)]]);
    }
}
