//! User-facing entry point: build a machine over a factor graph, feed it
//! keys, get back a sorted configuration and a step report.

use crate::bsp::{BspMachine, CompiledProgram};
use crate::cache::ProgramCache;
use crate::cost::CostModel;
use crate::engine::{ChargedEngine, ExecutedEngine};
use crate::kernel::{ExecScratch, KernelProgram, ScratchPool};
use crate::netsort::{is_snake_sorted, network_sort, read_snake_order, NetSortOutcome};
use crate::select::SorterChoice;
use crate::sorters::Pg2Sorter;
use crate::vertical::{VerticalPool, VerticalProgram, VERTICAL_MIN_LANES};
use pns_graph::{Graph, LinearEmbedding};
use pns_obs::{Event, EventLogger};
use pns_order::radix::Shape;
use std::fmt;
use std::sync::Arc;

/// Errors reported by [`Machine::sort`], [`Machine::sort_batch`] (per
/// lane), and [`crate::sample::try_sample_sort`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// The key vector does not have one key per node.
    WrongKeyCount {
        /// `N^r`.
        expected: u64,
        /// What was supplied.
        got: usize,
    },
    /// Sample sort: the per-node block size is zero.
    ZeroBlockSize,
    /// Sample sort: the oversampling factor is outside `1..=b`.
    BadOversample {
        /// Requested samples per node.
        oversample: usize,
        /// Per-node block size `b`.
        block: usize,
    },
    /// Sample sort: the key count is not `b·N^r`.
    WrongBlockedKeyCount {
        /// `b·N^r`.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// A machine invariant broke (e.g. a batch lane lost its sorted
    /// vector). Unreachable by construction; surfaced as a typed error
    /// rather than a panic so callers stay up regardless.
    Internal(&'static str),
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::WrongKeyCount { expected, got } => {
                write!(f, "expected {expected} keys (one per node), got {got}")
            }
            SortError::ZeroBlockSize => write!(f, "block size must be positive"),
            SortError::BadOversample { oversample, block } => {
                write!(
                    f,
                    "need 1 ≤ oversample ≤ b, got oversample {oversample} with b = {block}"
                )
            }
            SortError::WrongBlockedKeyCount { expected, got } => {
                write!(f, "need b·N^r keys: expected {expected}, got {got}")
            }
            SortError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SortError {}

enum EngineKind {
    Charged(ChargedEngine),
    Executed(ExecutedEngine),
    Compiled(CompiledKind),
}

/// A machine backed by a compiled BSP program (possibly shared through
/// a [`ProgramCache`]).
struct CompiledKind {
    bsp: BspMachine,
    program: Arc<CompiledProgram>,
    /// The program lowered to the flat kernel tier (shared through the
    /// same cache) — the form sorts actually execute.
    kernel: Arc<KernelProgram>,
    /// The kernel committed to the bit-sliced vertical layout (same
    /// cache) — the form large batches execute.
    vertical: Arc<VerticalProgram>,
    /// Logical unit counters for one sort on this shape — a pure
    /// function of the shape, captured once at construction.
    counters: pns_core::Counters,
    /// Steps one `PG_2` sort round costs under the executed engine.
    s2_steps: u64,
    logger: EventLogger,
}

impl CompiledKind {
    /// The outcome every sort through this program reports: `steps`
    /// counts **BSP rounds** (the compiled schedule's synchronous
    /// rounds); the sort/transposition split of the logical engines
    /// does not survive lowering, so those both read zero.
    fn outcome(&self) -> NetSortOutcome {
        NetSortOutcome {
            counters: self.counters,
            steps: self.program.rounds() as u64,
            sort_steps: 0,
            oet_steps: 0,
        }
    }

    /// Emit the logical unit charge of `sorts` sorts through this
    /// program as aggregated events. The logical sort/transposition
    /// rounds do not survive lowering to BSP ops, so a compiled machine
    /// cannot emit per-round unit events; instead the whole charge goes
    /// out as one `S2Unit` and one `RouteUnit` with `width = 0`
    /// (aggregated) — the stream's unit sums still equal the reported
    /// `Counters` totals.
    fn emit_units(&self, sorts: u64) {
        if sorts == 0 {
            return;
        }
        self.logger.log(|| Event::S2Unit {
            units: self.counters.s2_units * sorts,
            width: 0,
        });
        self.logger.log(|| Event::RouteUnit {
            units: self.counters.route_units * sorts,
            width: 0,
        });
    }
}

/// A simulated `PG_r` machine ready to sort.
pub struct Machine {
    shape: Shape,
    factor_name: String,
    engine: EngineKind,
}

impl Machine {
    /// A machine with the paper's charged cost accounting.
    #[must_use]
    pub fn charged(factor: &Graph, r: usize, cost: CostModel) -> Self {
        assert!(pns_graph::is_connected(factor), "factor must be connected");
        Machine {
            shape: Shape::new(factor.n(), r),
            factor_name: factor.name().to_owned(),
            engine: EngineKind::Charged(ChargedEngine::new(cost)),
        }
    }

    /// A machine that executes real comparator programs and real factor
    /// routing, counting actual steps.
    #[must_use]
    pub fn executed(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) -> Self {
        assert!(pns_graph::is_connected(factor), "factor must be connected");
        let shape = Shape::new(factor.n(), r);
        Machine {
            shape,
            factor_name: factor.name().to_owned(),
            engine: EngineKind::Executed(ExecutedEngine::new(factor, shape, sorter)),
        }
    }

    /// A machine that executes a compiled BSP program, fetched from (or
    /// compiled into) `cache` together with its lowered kernel.
    /// Repeated construction for the same `(factor, r, sorter)` reuses
    /// both — no recompilation, no re-lowering, observable via the
    /// cache's hit counters.
    ///
    /// Sorts run through [`BspMachine::run_kernel_parallel`]; batches
    /// ([`Machine::sort_batch`]) run through
    /// [`BspMachine::run_kernel_batch`], or through the bit-sliced
    /// vertical tier ([`BspMachine::run_vertical_batch`]) once the
    /// batch reaches [`VERTICAL_MIN_LANES`] lanes. All are bit-identical
    /// to serial BSP execution.
    #[must_use]
    pub fn compiled(
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
        cache: &ProgramCache,
    ) -> Self {
        let (program, kernel, vertical) = cache.get_or_compile_vertical(factor, r, sorter);
        Machine::with_program(factor, r, sorter, program, kernel, vertical)
    }

    /// As [`Machine::compiled`], but the program is optimized
    /// ([`CompiledProgram::optimized`]): empty rounds elided, idempotent
    /// compare-exchanges dropped, disjoint adjacent rounds fused. The
    /// reported step count is the optimized round count, generally
    /// *below* the executed engine's.
    #[must_use]
    pub fn compiled_optimized(
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
        cache: &ProgramCache,
    ) -> Self {
        let (program, kernel, vertical) =
            cache.get_or_compile_vertical_optimized(factor, r, sorter);
        Machine::with_program(factor, r, sorter, program, kernel, vertical)
    }

    /// As [`Machine::executed`], with the sorter resolved from a
    /// [`SorterChoice`] — [`SorterChoice::Auto`] scores every candidate
    /// on this factor and uses the routing-aware winner.
    #[must_use]
    pub fn executed_with(factor: &Graph, r: usize, choice: SorterChoice) -> Self {
        Machine::executed(factor, r, choice.resolve(factor))
    }

    /// As [`Machine::compiled`], with the sorter resolved from a
    /// [`SorterChoice`]. The resolved sorter's identity is part of the
    /// cache key, so machines built with different choices (or different
    /// auto-selected winners) never share programs.
    #[must_use]
    pub fn compiled_with(
        factor: &Graph,
        r: usize,
        choice: SorterChoice,
        cache: &ProgramCache,
    ) -> Self {
        Machine::compiled(factor, r, choice.resolve(factor), cache)
    }

    /// As [`Machine::compiled_optimized`], with the sorter resolved from
    /// a [`SorterChoice`].
    #[must_use]
    pub fn compiled_optimized_with(
        factor: &Graph,
        r: usize,
        choice: SorterChoice,
        cache: &ProgramCache,
    ) -> Self {
        Machine::compiled_optimized(factor, r, choice.resolve(factor), cache)
    }

    fn with_program(
        factor: &Graph,
        r: usize,
        sorter: &dyn Pg2Sorter,
        program: Arc<CompiledProgram>,
        kernel: Arc<KernelProgram>,
        vertical: Arc<VerticalProgram>,
    ) -> Self {
        assert!(pns_graph::is_connected(factor), "factor must be connected");
        let shape = Shape::new(factor.n(), r);
        assert_eq!(program.shape(), shape, "cached program shape mismatch");
        assert_eq!(kernel.shape(), shape, "cached kernel shape mismatch");
        assert_eq!(vertical.shape(), shape, "cached vertical shape mismatch");
        // The logical unit counters are engine-independent (pure control
        // flow of the algorithm): capture them with a unit-cost replay.
        let mut dummy: Vec<u32> = (0..shape.len() as u32).collect();
        let mut counter_engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
        let counters = network_sort(shape, &mut dummy, &mut counter_engine).counters;
        let s2_steps = ExecutedEngine::new(factor, shape, sorter).s2_steps();
        Machine {
            shape,
            factor_name: factor.name().to_owned(),
            engine: EngineKind::Compiled(CompiledKind {
                bsp: BspMachine::new(factor, r),
                program,
                kernel,
                vertical,
                counters,
                s2_steps,
                logger: EventLogger::disabled(),
            }),
        }
    }

    /// The compiled program backing this machine, if it is a compiled
    /// machine (for stats inspection and direct BSP runs).
    #[must_use]
    pub fn program(&self) -> Option<&Arc<CompiledProgram>> {
        match &self.engine {
            EngineKind::Compiled(c) => Some(&c.program),
            _ => None,
        }
    }

    /// The lowered kernel backing this machine, if it is a compiled
    /// machine (for stats inspection and direct kernel runs).
    #[must_use]
    pub fn kernel(&self) -> Option<&Arc<KernelProgram>> {
        match &self.engine {
            EngineKind::Compiled(c) => Some(&c.kernel),
            _ => None,
        }
    }

    /// The vertical (bit-sliced) program backing this machine, if it is
    /// a compiled machine (for stats inspection and direct vertical
    /// runs).
    #[must_use]
    pub fn vertical(&self) -> Option<&Arc<VerticalProgram>> {
        match &self.engine {
            EngineKind::Compiled(c) => Some(&c.vertical),
            _ => None,
        }
    }

    /// Trace this machine's sorts into `logger`. Charged/executed
    /// machines emit one `S2Unit`/`RouteUnit` event per logical engine
    /// round; compiled machines emit `RoundStart`/`RoundEnd`/`Validate`/
    /// `BatchScheduled` from the BSP executor plus one aggregated
    /// `S2Unit`/`RouteUnit` pair per sort. Either way, the stream's
    /// unit sums equal the `Counters` totals the sort reports.
    pub fn attach_logger(&mut self, logger: EventLogger) {
        match &mut self.engine {
            EngineKind::Charged(e) => e.attach_logger(logger),
            EngineKind::Executed(e) => e.attach_logger(logger),
            EngineKind::Compiled(c) => {
                c.bsp.attach_logger(logger.clone());
                c.logger = logger;
            }
        }
    }

    /// Relabel a factor graph along its best linear embedding (Hamiltonian
    /// path if one exists, Sekanina ordering otherwise), as Section 2
    /// recommends: with such labels, label-consecutive nodes are within
    /// distance ≤ 3, which keeps executed sorting programs cheap.
    #[must_use]
    pub fn prepare_factor(factor: &Graph) -> Graph {
        let emb = LinearEmbedding::best(factor);
        // emb.order[i] is the node at linear position i; we want the node
        // formerly known as emb.order[i] to get the new label i.
        let mut perm = vec![0u32; factor.n()];
        for (i, &v) in emb.order.iter().enumerate() {
            perm[v as usize] = i as u32;
        }
        factor.relabeled(&perm)
    }

    /// The machine's shape.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Steps one `PG_2` sort round costs on this machine.
    #[must_use]
    pub fn s2_steps(&self) -> u64 {
        match &self.engine {
            EngineKind::Charged(e) => e.cost().s2_steps,
            EngineKind::Executed(e) => e.s2_steps(),
            EngineKind::Compiled(c) => c.s2_steps,
        }
    }

    /// Sort `keys` (one per node, indexed by node rank).
    ///
    /// # Errors
    ///
    /// [`SortError::WrongKeyCount`] if `keys.len() != N^r`.
    pub fn sort<K>(&mut self, keys: Vec<K>) -> Result<SortReport<K>, SortError>
    where
        K: Ord + Clone + Send + Sync,
    {
        self.sort_impl(keys, false)
    }

    /// As [`Machine::sort`], additionally asserting the inter-stage
    /// invariant (after stage `k`, every `k`-dimensional subgraph is
    /// snake-sorted) — slower, for debugging and validation runs.
    ///
    /// # Errors
    ///
    /// [`SortError::WrongKeyCount`] if `keys.len() != N^r`.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated (an implementation bug, never
    /// bad input).
    pub fn sort_checked<K>(&mut self, keys: Vec<K>) -> Result<SortReport<K>, SortError>
    where
        K: Ord + Clone + Send + Sync,
    {
        self.sort_impl(keys, true)
    }

    fn sort_impl<K>(&mut self, mut keys: Vec<K>, checked: bool) -> Result<SortReport<K>, SortError>
    where
        K: Ord + Clone + Send + Sync,
    {
        if keys.len() as u64 != self.shape.len() {
            return Err(SortError::WrongKeyCount {
                expected: self.shape.len(),
                got: keys.len(),
            });
        }
        let shape = self.shape;
        let outcome = match (&mut self.engine, checked) {
            (EngineKind::Charged(e), false) => network_sort(shape, &mut keys, e),
            (EngineKind::Charged(e), true) => {
                crate::verify::network_sort_checked(shape, &mut keys, e)
            }
            (EngineKind::Executed(e), false) => network_sort(shape, &mut keys, e),
            (EngineKind::Executed(e), true) => {
                crate::verify::network_sort_checked(shape, &mut keys, e)
            }
            (EngineKind::Compiled(c), checked) => {
                let mut scratch = ExecScratch::new();
                c.bsp
                    .run_kernel_parallel(&mut keys, &c.kernel, &mut scratch);
                // The per-stage invariant of `network_sort_checked` does
                // not survive lowering; checked mode verifies the final
                // configuration instead.
                assert!(
                    !checked || is_snake_sorted(shape, &keys),
                    "compiled program left keys unsorted"
                );
                c.emit_units(1);
                c.outcome()
            }
        };
        Ok(SortReport {
            shape: self.shape,
            factor_name: self.factor_name.clone(),
            keys,
            outcome,
        })
    }

    /// Sort many independent key vectors through this machine, returning
    /// one `Result` per lane in input order.
    ///
    /// On a compiled machine ([`Machine::compiled`]) the valid lanes run
    /// through one lowered kernel with one thread per vector
    /// ([`BspMachine::run_kernel_batch`]); batches of at least
    /// [`VERTICAL_MIN_LANES`] valid lanes switch to the bit-sliced
    /// vertical tier ([`BspMachine::run_vertical_batch`]), which blocks
    /// 64 lanes to a word. Other engine kinds sort the vectors one
    /// after another; results are identical on every path.
    ///
    /// A lane whose vector is not one key per node reports
    /// [`SortError::WrongKeyCount`] without affecting the other lanes —
    /// a malformed input degrades that lane, never the batch.
    pub fn sort_batch<K>(&mut self, batch: Vec<Vec<K>>) -> Vec<Result<SortReport<K>, SortError>>
    where
        K: Ord + Clone + Send + Sync,
    {
        match &mut self.engine {
            EngineKind::Compiled(c) => {
                let expected = self.shape.len();
                // Partition out the malformed lanes, keeping slots so the
                // results come back in input order.
                let mut good: Vec<Vec<K>> = Vec::with_capacity(batch.len());
                let mut slots: Vec<Result<(), SortError>> = Vec::with_capacity(batch.len());
                for keys in batch {
                    if keys.len() as u64 == expected {
                        slots.push(Ok(()));
                        good.push(keys);
                    } else {
                        slots.push(Err(SortError::WrongKeyCount {
                            expected,
                            got: keys.len(),
                        }));
                    }
                }
                if !good.is_empty() {
                    if good.len() >= VERTICAL_MIN_LANES {
                        let mut pool = VerticalPool::new();
                        c.bsp.run_vertical_batch(&mut good, &c.vertical, &mut pool);
                    } else {
                        let mut pool = ScratchPool::new();
                        c.bsp.run_kernel_batch(&mut good, &c.kernel, &mut pool);
                    }
                    // Every vector is charged the full logical unit cost,
                    // so the aggregated events cover the whole batch (=
                    // the sum of the returned reports' counters).
                    c.emit_units(good.len() as u64);
                }
                let outcome = c.outcome();
                let mut sorted = good.into_iter();
                slots
                    .into_iter()
                    .map(|slot| {
                        slot.and_then(|()| {
                            // One sorted vector exists per Ok slot by
                            // construction; a typed error, not a panic,
                            // if that ever breaks.
                            sorted
                                .next()
                                .ok_or(SortError::Internal("batch lane lost its sorted vector"))
                        })
                        .map(|keys| SortReport {
                            shape: self.shape,
                            factor_name: self.factor_name.clone(),
                            keys,
                            outcome,
                        })
                    })
                    .collect()
            }
            _ => batch.into_iter().map(|keys| self.sort(keys)).collect(),
        }
    }
}

/// Result of a sort: the final key configuration and the measured costs.
#[derive(Debug, Clone)]
pub struct SortReport<K> {
    shape: Shape,
    factor_name: String,
    /// Final keys, indexed by node rank.
    pub keys: Vec<K>,
    /// Unit counters and step totals.
    pub outcome: NetSortOutcome,
}

impl<K: Ord + Clone> SortReport<K> {
    /// `true` iff the configuration is sorted in snake order.
    #[must_use]
    pub fn is_snake_sorted(&self) -> bool {
        is_snake_sorted(self.shape, &self.keys)
    }

    /// The sorted sequence (keys read in snake order).
    #[must_use]
    pub fn into_sorted_vec(self) -> Vec<K> {
        read_snake_order(self.shape, &self.keys)
    }

    /// Total steps taken.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.outcome.steps
    }

    /// The shape sorted on.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Name of the factor graph.
    #[must_use]
    pub fn factor_name(&self) -> &str {
        &self.factor_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorters::{Hypercube2Sorter, OetSnakeSorter, ShearSorter};
    use pns_graph::factories;

    #[test]
    fn charged_grid_machine_sorts_and_predicts() {
        let factor = factories::path(4);
        let model = CostModel::paper_grid(4);
        let predicted = model.predicted_sort_steps(3);
        let mut m = Machine::charged(&factor, 3, model);
        let keys: Vec<u32> = (0..64).rev().collect();
        let report = m.sort(keys).unwrap();
        assert!(report.is_snake_sorted());
        assert_eq!(report.steps(), predicted);
        assert_eq!(report.into_sorted_vec(), (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn executed_hypercube_machine_matches_batcher_complexity() {
        // N = 2, S2 = 3 (three-step PG_2 sorter), R = 1 (every transposition
        // pair is a hypercube edge): total = 3(r-1)² + (r-1)(r-2).
        for r in 2..=7usize {
            let factor = factories::k2();
            let mut m = Machine::executed(&factor, r, &Hypercube2Sorter);
            let len = 1u64 << r;
            let keys: Vec<u64> = (0..len).map(|x| (x * 2654435761) % 101).collect();
            let report = m.sort(keys).unwrap();
            assert!(report.is_snake_sorted(), "r={r}");
            let rr = r as u64;
            assert_eq!(
                report.steps(),
                3 * (rr - 1) * (rr - 1) + (rr - 1) * (rr - 2),
                "r={r}"
            );
        }
    }

    #[test]
    fn executed_grid_machine_obeys_theorem1_with_measured_s2() {
        // Theorem 1 holds for any S2/R: with shearsort's fixed round count
        // as S2 and R = 1 (path factor: all transpositions are edges),
        // total = (r-1)²·S2 + (r-1)(r-2)·1.
        let factor = factories::path(3);
        for r in 2..=4usize {
            let mut m = Machine::executed(&factor, r, &ShearSorter);
            let s2 = m.s2_steps();
            let len = 3u64.pow(r as u32);
            let keys: Vec<u64> = (0..len).rev().collect();
            let report = m.sort(keys).unwrap();
            assert!(report.is_snake_sorted(), "r={r}");
            let rr = r as u64;
            assert_eq!(
                report.steps(),
                (rr - 1) * (rr - 1) * s2 + (rr - 1) * (rr - 2),
                "r={r}"
            );
        }
    }

    #[test]
    fn executed_machine_on_non_hamiltonian_tree_factor() {
        // Complete binary tree (7 nodes), relabeled along its Sekanina
        // order: comparator labels are within distance 3, everything
        // routes; the sort must still be correct.
        let factor = Machine::prepare_factor(&factories::complete_binary_tree(3));
        let mut m = Machine::executed(&factor, 2, &OetSnakeSorter);
        let keys: Vec<u32> = (0..49).map(|x| (x * 13) % 23).collect();
        let report = m.sort(keys.clone()).unwrap();
        assert!(report.is_snake_sorted());
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(report.into_sorted_vec(), expect);
    }

    #[test]
    fn petersen_executed_machine_sorts() {
        let factor = Machine::prepare_factor(&factories::petersen());
        let mut m = Machine::executed(&factor, 2, &ShearSorter);
        let keys: Vec<u32> = (0..100).rev().collect();
        let report = m.sort(keys).unwrap();
        assert!(report.is_snake_sorted());
    }

    #[test]
    fn sort_checked_verifies_stage_invariants() {
        let factor = factories::path(3);
        let mut m = Machine::executed(&factor, 3, &ShearSorter);
        let keys: Vec<u32> = (0..27).map(|x| (x * 7) % 11).collect();
        let report = m.sort_checked(keys).unwrap();
        assert!(report.is_snake_sorted());
        assert_eq!(report.outcome.counters.s2_units, 4);
    }

    #[test]
    fn wrong_key_count_is_an_error() {
        let mut m = Machine::charged(&factories::path(3), 2, CostModel::paper_grid(3));
        let err = m.sort(vec![1u32, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            SortError::WrongKeyCount {
                expected: 9,
                got: 3
            }
        );
        assert!(err.to_string().contains("expected 9 keys"));
    }

    #[test]
    fn compiled_machine_agrees_with_executed_machine() {
        let cache = crate::cache::ProgramCache::new();
        let factor = Machine::prepare_factor(&factories::complete_binary_tree(3));
        let keys: Vec<u64> = (0..49).map(|x| (x * 31) % 37).collect();
        let mut compiled = Machine::compiled(&factor, 2, &OetSnakeSorter, &cache);
        let mut executed = Machine::executed(&factor, 2, &OetSnakeSorter);
        let rc = compiled.sort(keys.clone()).unwrap();
        let re = executed.sort(keys).unwrap();
        assert_eq!(rc.keys, re.keys, "configurations must agree");
        assert!(rc.is_snake_sorted());
        assert_eq!(rc.steps() as usize, compiled.program().unwrap().rounds());
    }

    #[test]
    fn sorter_choice_constructors_resolve_and_never_cross_pollinate() {
        let cache = crate::cache::ProgramCache::new();
        let factor = Machine::prepare_factor(&factories::complete(4));
        let mut auto = Machine::compiled_with(&factor, 2, crate::SorterChoice::Auto, &cache);
        let mut oet = Machine::compiled_with(&factor, 2, crate::SorterChoice::OetSnake, &cache);
        // K_4 auto-selects the multiway n-sorter: a genuinely different,
        // shallower program under its own cache entry.
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(auto.program().unwrap().rounds() < oet.program().unwrap().rounds());
        let keys: Vec<u64> = (0..16).map(|x| (x * 13) % 17).collect();
        let ra = auto.sort(keys.clone()).unwrap();
        let ro = oet.sort(keys).unwrap();
        assert_eq!(ra.keys, ro.keys, "same sorted configuration");
        assert!(ra.is_snake_sorted());
        // A second auto machine reuses the winner's entry.
        let _again = Machine::compiled_with(&factor, 2, crate::SorterChoice::Auto, &cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        // The executed constructor resolves the same way.
        let exec = Machine::executed_with(&factor, 2, crate::SorterChoice::Auto);
        assert_eq!(exec.s2_steps(), 15, "multiway rounds, all edges on K_4");
    }

    #[test]
    fn compiled_machines_share_programs_through_the_cache() {
        let cache = crate::cache::ProgramCache::new();
        let factor = factories::path(3);
        let mut first = Machine::compiled(&factor, 2, &ShearSorter, &cache);
        let mut second = Machine::compiled(&factor, 2, &ShearSorter, &cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!((cache.kernel_hits(), cache.kernel_misses()), (1, 1));
        assert!(
            Arc::ptr_eq(first.kernel().unwrap(), second.kernel().unwrap()),
            "machines share one lowered kernel"
        );
        let r1 = first.sort((0..9u32).rev().collect()).unwrap();
        let r2 = second.sort((0..9u32).rev().collect()).unwrap();
        assert_eq!(r1.keys, r2.keys);
    }

    #[test]
    fn sort_batch_matches_single_sorts_on_every_engine_kind() {
        let cache = crate::cache::ProgramCache::new();
        let factor = factories::path(3);
        let batch: Vec<Vec<u64>> = (0..6)
            .map(|s| (0..27u64).map(|x| (x * 7 + s * 13) % 29).collect())
            .collect();
        let mut machines = [
            Machine::compiled(&factor, 3, &ShearSorter, &cache),
            Machine::compiled_optimized(&factor, 3, &ShearSorter, &cache),
            Machine::executed(&factor, 3, &ShearSorter),
            Machine::charged(&factor, 3, CostModel::paper_grid(3)),
        ];
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for m in &mut machines {
            let reports = m.sort_batch(batch.clone());
            let keys: Vec<Vec<u64>> = reports
                .into_iter()
                .map(|r| r.expect("valid lane").keys)
                .collect();
            match &reference {
                None => reference = Some(keys),
                Some(expect) => assert_eq!(&keys, expect),
            }
        }
    }

    #[test]
    fn sort_batch_degrades_wrong_length_lanes_without_failing_others() {
        let cache = crate::cache::ProgramCache::new();
        let mut m = Machine::compiled(&factories::path(3), 2, &ShearSorter, &cache);
        let results = m.sort_batch(vec![(0..9u32).rev().collect(), vec![0u32; 8]]);
        let good = results[0].as_ref().expect("valid lane sorts");
        assert!(good.is_snake_sorted());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &SortError::WrongKeyCount {
                expected: 9,
                got: 8
            }
        );
    }

    #[test]
    fn compiled_optimized_machine_reports_fewer_or_equal_steps() {
        let cache = crate::cache::ProgramCache::new();
        let factor = factories::k2();
        let keys: Vec<u64> = (0..32).rev().collect();
        let mut plain = Machine::compiled(&factor, 5, &Hypercube2Sorter, &cache);
        let mut opt = Machine::compiled_optimized(&factor, 5, &Hypercube2Sorter, &cache);
        let rp = plain.sort(keys.clone()).unwrap();
        let ro = opt.sort_checked(keys).unwrap();
        assert_eq!(rp.keys, ro.keys);
        assert!(
            ro.steps() < rp.steps(),
            "optimizer must shrink the 5-cube program"
        );
    }

    #[test]
    fn prepare_factor_gives_hamiltonian_labels_when_possible() {
        let g = Machine::prepare_factor(&factories::petersen());
        // After relabeling, consecutive labels are adjacent.
        for v in 0..9u32 {
            assert!(g.has_edge(v, v + 1), "labels {v},{} not adjacent", v + 1);
        }
    }
}
