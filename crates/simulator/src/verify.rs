//! Deep verification utilities: stage invariants and round logging.
//!
//! The sorting algorithm maintains a strong invariant between stages:
//! after stage `k`, *every* `k`-dimensional subgraph over dimensions
//! `1 … k` holds its keys sorted in its own snake order
//! (that is exactly the precondition the stage-`k+1` merge needs).
//! [`network_sort_checked`] asserts the invariant after every stage, and
//! [`LoggingEngine`] records what every round did — both are test/debug
//! instruments that never perturb the algorithm itself.

use crate::engine::{Engine, Pg2Instance};
use crate::enumerate::base_nodes;
use crate::netsort::{network_merge, NetSortOutcome};
use pns_order::radix::Shape;
use pns_order::snake::snake_pos_of_node;
use pns_order::Direction;

/// `true` iff every subgraph spanned by dimensions `0 … k-1` (for each
/// assignment of the remaining digits) is sorted in its own forward snake
/// order.
#[must_use]
pub fn subgraphs_snake_sorted<K: Ord>(shape: Shape, keys: &[K], k: usize) -> bool {
    let dims: Vec<usize> = (0..k).collect();
    let sub_shape = Shape::new(shape.n(), k);
    for base in base_nodes(shape, &dims) {
        let mut prev: Option<&K> = None;
        for pos in 0..sub_shape.len() {
            // Map the sub-shape snake position onto the full network.
            let local = pns_order::snake::node_at_snake_pos(sub_shape, pos);
            let mut node = base;
            for (i, &d) in dims.iter().enumerate() {
                node = shape.with_digit(node, d, sub_shape.digit(local, i));
            }
            let key = &keys[node as usize];
            if let Some(p) = prev {
                if p > key {
                    return false;
                }
            }
            prev = Some(key);
        }
    }
    true
}

/// [`crate::netsort::network_sort`] with the inter-stage invariant
/// asserted: after the initial stage and after every merge stage `k`, all
/// `k`-dimensional subgraphs must be snake-sorted.
///
/// # Panics
///
/// Panics if the invariant is ever violated (which would indicate a bug
/// in the algorithm implementation, not bad input).
pub fn network_sort_checked<K, E>(shape: Shape, keys: &mut [K], engine: &mut E) -> NetSortOutcome
where
    K: Ord + Clone + Send + Sync,
    E: Engine<K>,
{
    assert_eq!(keys.len() as u64, shape.len(), "one key per node");
    let r = shape.r();
    assert!(r >= 2);
    let mut out = NetSortOutcome::default();
    let dims: Vec<usize> = (0..r).collect();

    // Stage 2 (initial PG_2 sorts) is itself a 2-dimensional merge.
    stage2(shape, keys, engine, &mut out);
    assert!(
        subgraphs_snake_sorted(shape, keys, 2),
        "invariant violated after stage 2"
    );
    for k in 3..=r {
        network_merge(shape, keys, engine, &dims[..k], &mut out);
        assert!(
            subgraphs_snake_sorted(shape, keys, k),
            "invariant violated after stage {k}"
        );
    }
    out
}

fn stage2<K, E>(shape: Shape, keys: &mut [K], engine: &mut E, out: &mut NetSortOutcome)
where
    K: Ord + Clone + Send + Sync,
    E: Engine<K>,
{
    // One parallel ascending sort round over PG_2(dims 0,1) — identical
    // to what network_sort does internally.
    let offsets = crate::enumerate::pg2_offsets(shape, 0, 1);
    let subgraphs: Vec<Pg2Instance> = base_nodes(shape, &[0, 1])
        .into_iter()
        .map(|base| Pg2Instance {
            nodes: offsets.iter().map(|&o| base + o).collect(),
            dir: Direction::Ascending,
        })
        .collect();
    let steps = engine.sort_round(keys, &subgraphs);
    out.counters.s2_units += 1;
    out.counters.base_sorts += subgraphs.len() as u64;
    out.sort_steps += steps;
    out.steps += steps;
}

/// What one engine round did — captured by [`LoggingEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundRecord {
    /// A parallel `PG_2`-sort round.
    Sort {
        /// Number of subgraphs sorted.
        subgraphs: usize,
        /// Steps charged/measured.
        steps: u64,
    },
    /// An odd-even transposition round.
    Oet {
        /// Number of node pairs compared.
        pairs: usize,
        /// Steps charged/measured.
        steps: u64,
    },
}

/// Engine wrapper that records a [`RoundRecord`] per round, delegating
/// all semantics to the inner engine.
pub struct LoggingEngine<E> {
    inner: E,
    /// The recorded rounds, in execution order.
    pub log: Vec<RoundRecord>,
}

impl<E> LoggingEngine<E> {
    /// Wrap an engine.
    pub fn new(inner: E) -> Self {
        LoggingEngine {
            inner,
            log: Vec::new(),
        }
    }
}

impl<K, E> Engine<K> for LoggingEngine<E>
where
    K: Ord + Clone + Send + Sync,
    E: Engine<K>,
{
    fn sort_round(&mut self, keys: &mut [K], subgraphs: &[Pg2Instance]) -> u64 {
        let steps = self.inner.sort_round(keys, subgraphs);
        self.log.push(RoundRecord::Sort {
            subgraphs: subgraphs.len(),
            steps,
        });
        steps
    }

    fn oet_round(&mut self, keys: &mut [K], pairs: &[(u64, u64)]) -> u64 {
        let steps = self.inner.oet_round(keys, pairs);
        self.log.push(RoundRecord::Oet {
            pairs: pairs.len(),
            steps,
        });
        steps
    }
}

/// Snake position of every key's node, useful when debugging a
/// configuration: `positions[i]` is where `keys[i]`'s node sits in snake
/// order.
#[must_use]
pub fn snake_positions(shape: Shape) -> Vec<u64> {
    (0..shape.len())
        .map(|v| snake_pos_of_node(shape, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::engine::ChargedEngine;
    use crate::netsort::is_snake_sorted;

    #[test]
    fn checked_sort_passes_and_matches_unit_counts() {
        for (n, r) in [(3usize, 3usize), (2, 5), (4, 3)] {
            let shape = Shape::new(n, r);
            let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
            let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
            let out = network_sort_checked(shape, &mut keys, &mut engine);
            assert!(is_snake_sorted(shape, &keys));
            let rr = r as u64;
            assert_eq!(out.counters.s2_units, (rr - 1) * (rr - 1), "n={n} r={r}");
            assert_eq!(out.counters.route_units, (rr - 1) * (rr - 2));
        }
    }

    #[test]
    fn invariant_detector_flags_unsorted_subgraphs() {
        let shape = Shape::new(3, 3);
        let global_sorted: Vec<u64> = {
            // A fully snake-sorted configuration.
            let mut keys = vec![0u64; 27];
            for pos in 0..27u64 {
                let node = pns_order::snake::node_at_snake_pos(shape, pos);
                keys[node as usize] = pos;
            }
            keys
        };
        // Globally sorted ⇒ the full 3-dimensional invariant holds …
        assert!(subgraphs_snake_sorted(shape, &global_sorted, 3));
        // … but NOT the 2-dimensional one: odd dim-3 slices run backwards
        // in their own forward frame (that is what snake order means).
        assert!(!subgraphs_snake_sorted(shape, &global_sorted, 2));

        // A stage-2-like configuration: every PG_2 subgraph ascending in
        // its own forward snake order.
        let sub = Shape::new(3, 2);
        let mut stage2 = vec![0u64; 27];
        for u in 0..3u64 {
            for pos in 0..9u64 {
                let local = pns_order::snake::node_at_snake_pos(sub, pos);
                let node = shape.with_digit(local, 2, u as usize);
                stage2[node as usize] = u * 9 + pos;
            }
        }
        assert!(subgraphs_snake_sorted(shape, &stage2, 2));
        let mut broken = stage2;
        broken.swap(0, 1);
        assert!(!subgraphs_snake_sorted(shape, &broken, 2));
    }

    #[test]
    fn logging_engine_records_the_round_structure() {
        let shape = Shape::new(3, 3);
        let mut keys: Vec<u64> = (0..27).rev().collect();
        let mut engine = LoggingEngine::new(ChargedEngine::new(CostModel::custom("unit", 1, 1)));
        let out = crate::netsort::network_sort(shape, &mut keys, &mut engine);
        let sorts = engine
            .log
            .iter()
            .filter(|r| matches!(r, RoundRecord::Sort { .. }))
            .count() as u64;
        let oets = engine
            .log
            .iter()
            .filter(|r| matches!(r, RoundRecord::Oet { .. }))
            .count() as u64;
        assert_eq!(sorts, out.counters.s2_units);
        assert_eq!(oets, out.counters.route_units);
        // Every sort round covers all N^{r-2} = 3 subgraphs.
        for rec in &engine.log {
            if let RoundRecord::Sort { subgraphs, .. } = rec {
                assert_eq!(*subgraphs, 3);
            }
        }
    }
}
