//! Randomized sample sort on product networks — the paper's closing
//! future-work item, prototyped.
//!
//! The conclusion notes that randomized algorithms (e.g. the CM-2 sample
//! sorts of Blelloch et al., the paper's \[5\]) beat Batcher-style
//! algorithms on hypercubic networks in practice, and asks whether they
//! generalize to product networks. This module implements the natural
//! generalization for the blocked regime (`b` keys per node):
//!
//! 1. **Local sort** — each node sorts its block (local work,
//!    `b·⌈log₂ b⌉` charged steps).
//! 2. **Splitter selection** — each node contributes `s` random samples;
//!    the samples are sorted with the *deterministic* multiway-merge
//!    algorithm (blocked, `s` per node) and the `P-1` splitters at block
//!    boundaries are broadcast (`r·diam(G)` steps).
//! 3. **Routing** — every key belongs to the bucket of one snake
//!    position; keys travel dimension by dimension along BFS paths in
//!    each factor copy. Charged per dimension as the pipelined
//!    store-and-forward bound `max_edge_load + max_path_len`, computed
//!    from the *actual* per-edge loads of the run.
//! 4. **Final local sort** of what arrived, then **rebalancing** along
//!    the snake path so every node holds exactly `b` keys again (charged
//!    as the maximum prefix imbalance that must cross any snake
//!    boundary).
//!
//! The result is exactly sorted; the outcome reports per-phase charges
//! and the observed load factor, so experiment E15 can compare against
//! the deterministic blocked algorithm as \[5\] did on the CM-2.

use crate::cost::CostModel;
use crate::machine::SortError;
use pns_graph::{bfs_distances, diameter, Graph};
use pns_order::radix::Shape;
use pns_order::snake::node_at_snake_pos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-phase charged costs of one sample sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSortOutcome {
    /// Local sorting (initial + final), charged `load·⌈log₂ load⌉`.
    pub local_steps: u64,
    /// Splitter selection: deterministic sort of the samples plus the
    /// broadcast.
    pub splitter_steps: u64,
    /// Dimension-by-dimension key routing (pipelined bound from actual
    /// edge loads).
    pub route_steps: u64,
    /// Rebalancing along the snake path.
    pub rebalance_steps: u64,
    /// Largest number of keys any node held after routing.
    pub max_load: usize,
}

impl SampleSortOutcome {
    /// Total charged steps.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.local_steps + self.splitter_steps + self.route_steps + self.rebalance_steps
    }
}

fn log2_ceil(x: usize) -> u64 {
    if x <= 1 {
        0
    } else {
        u64::from(usize::BITS - (x - 1).leading_zeros())
    }
}

/// Randomized sample sort of `b·N^r` keys on the product of `factor`.
/// `oversample` is the number of samples per node (higher = better
/// balance); `cost` supplies the deterministic `S2`/`R` constants used to
/// price the splitter sort.
///
/// Returns the fully sorted keys and the per-phase charges.
///
/// # Panics
///
/// Panics if `keys.len() != b·N^r`, `b == 0`, or `oversample == 0` or
/// `oversample > b`. [`try_sample_sort`] reports the same conditions as
/// typed errors instead.
pub fn sample_sort<K: Ord + Clone + Send + Sync>(
    factor: &Graph,
    r: usize,
    b: usize,
    keys: Vec<K>,
    oversample: usize,
    seed: u64,
    cost: &CostModel,
) -> (Vec<K>, SampleSortOutcome) {
    try_sample_sort(factor, r, b, keys, oversample, seed, cost).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`sample_sort`], but malformed parameters come back as typed
/// errors instead of panics.
///
/// # Errors
///
/// [`SortError::ZeroBlockSize`] if `b == 0`,
/// [`SortError::BadOversample`] unless `1 ≤ oversample ≤ b`,
/// [`SortError::WrongBlockedKeyCount`] if `keys.len() != b·N^r`. No key
/// is moved on any error.
pub fn try_sample_sort<K: Ord + Clone + Send + Sync>(
    factor: &Graph,
    r: usize,
    b: usize,
    keys: Vec<K>,
    oversample: usize,
    seed: u64,
    cost: &CostModel,
) -> Result<(Vec<K>, SampleSortOutcome), SortError> {
    let shape = Shape::new(factor.n(), r);
    let p = shape.len() as usize;
    if b == 0 {
        return Err(SortError::ZeroBlockSize);
    }
    if oversample == 0 || oversample > b {
        return Err(SortError::BadOversample {
            oversample,
            block: b,
        });
    }
    if keys.len() != p * b {
        return Err(SortError::WrongBlockedKeyCount {
            expected: p * b,
            got: keys.len(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Phase 1: deal blocks and sort locally.
    let mut blocks: Vec<Vec<K>> = keys.chunks(b).map(<[K]>::to_vec).collect();
    for blk in &mut blocks {
        blk.sort_unstable();
    }
    let mut outcome = SampleSortOutcome {
        local_steps: b as u64 * log2_ceil(b),
        splitter_steps: 0,
        route_steps: 0,
        rebalance_steps: 0,
        max_load: 0,
    };

    // Phase 2: sample and select splitters.
    let mut samples: Vec<K> = Vec::with_capacity(p * oversample);
    for blk in &blocks {
        for _ in 0..oversample {
            samples.push(blk[rng.random_range(0..b)].clone());
        }
    }
    samples.sort_unstable();
    // Splitters at the p-1 interior block boundaries of the sample set.
    let splitters: Vec<K> = (1..p)
        .map(|i| samples[i * oversample - 1].clone())
        .collect();
    // Charge: deterministic blocked sort of `oversample` keys/node plus a
    // broadcast of the splitters.
    outcome.splitter_steps =
        oversample as u64 * cost.predicted_sort_steps(r) + r as u64 * u64::from(diameter(factor));

    // Phase 3: route every key to its bucket node, dimension by dimension.
    // Bucket of a key = the snake position whose splitter interval holds
    // it (upper_bound over splitters).
    let bucket_of = |k: &K| -> u64 {
        let pos = splitters.partition_point(|s| s <= k);
        node_at_snake_pos(shape, pos as u64)
    };
    // In-flight items: (current node, destination node, key).
    let mut in_flight: Vec<(u64, u64, K)> = Vec::new();
    for (v, blk) in blocks.iter_mut().enumerate() {
        for k in blk.drain(..) {
            let dst = bucket_of(&k);
            in_flight.push((v as u64, dst, k));
        }
    }
    // All-pairs factor distances for path accounting.
    let fdist: Vec<Vec<u32>> = (0..factor.n() as u32)
        .map(|v| bfs_distances(factor, v))
        .collect();
    // Per-directed-factor-edge loads, per copy — we only need the max,
    // so aggregate by (copy base, edge). One map serves every dimension
    // (cleared between passes) so the routing loop does not reallocate.
    let mut edge_loads: std::collections::HashMap<(u64, u32, u32), u64> =
        std::collections::HashMap::new();
    for dim in 0..r {
        edge_loads.clear();
        let mut max_path = 0u32;
        for (at, dst, _) in &mut in_flight {
            let from = shape.digit(*at, dim) as u32;
            let to = shape.digit(*dst, dim) as u32;
            if from == to {
                continue;
            }
            let copy = shape.with_digit(*at, dim, 0);
            // Unreachable for the connected factors the machine
            // constructors validate; a missing path skips only this
            // key's cost accounting (delivery below routes by `dst`,
            // so the output stays correct) instead of panicking.
            if let Some(path) = pns_graph::shortest_path(factor, from, to) {
                max_path = max_path.max(fdist[from as usize][to as usize]);
                for w in path.windows(2) {
                    *edge_loads.entry((copy, w[0], w[1])).or_insert(0) += 1;
                }
            }
            *at = shape.with_digit(*at, dim, to as usize);
        }
        let max_edge = edge_loads.values().copied().max().unwrap_or(0);
        // Pipelined store-and-forward: all keys of this pass arrive within
        // max_edge_load + max_path_len rounds.
        outcome.route_steps += max_edge + u64::from(max_path);
    }
    // Deliver.
    let mut received: Vec<Vec<K>> = vec![Vec::new(); p];
    for (at, dst, k) in in_flight {
        debug_assert_eq!(at, dst);
        received[dst as usize].push(k);
    }
    outcome.max_load = received.iter().map(Vec::len).max().unwrap_or(0);

    // Phase 4: final local sorts.
    for blk in &mut received {
        blk.sort_unstable();
    }
    outcome.local_steps += outcome.max_load as u64 * log2_ceil(outcome.max_load.max(1));

    // Phase 5: rebalance along the snake path so each node holds exactly
    // b keys. The charge is the largest cumulative imbalance that must
    // cross a snake boundary (pipelined shift).
    let mut out: Vec<K> = Vec::with_capacity(p * b);
    let mut max_carry: i64 = 0;
    let mut carry: i64 = 0;
    for pos in 0..p as u64 {
        let node = node_at_snake_pos(shape, pos) as usize;
        carry += received[node].len() as i64 - b as i64;
        max_carry = max_carry.max(carry.abs());
        out.append(&mut received[node]);
    }
    outcome.rebalance_steps = max_carry as u64;
    // The concatenation in snake order is already globally sorted because
    // buckets are snake-position intervals.
    debug_assert!(out.windows(2).all(|w| w[0] <= w[1]));
    Ok((out, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pns_graph::factories;

    fn run(n: usize, r: usize, b: usize, s: usize, seed: u64) -> SampleSortOutcome {
        let factor = factories::path(n);
        let p = (n as u64).pow(r as u32) as usize;
        let mut state = seed | 1;
        let keys: Vec<u64> = (0..p * b)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 30
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, outcome) =
            sample_sort(&factor, r, b, keys, s, seed, &CostModel::paper_grid(n));
        assert_eq!(sorted, expect, "n={n} r={r} b={b} s={s}");
        outcome
    }

    #[test]
    fn sorts_various_configurations() {
        for (n, r, b, s) in [
            (4usize, 2usize, 4usize, 2usize),
            (4, 2, 16, 4),
            (3, 3, 8, 4),
            (8, 2, 32, 8),
        ] {
            let out = run(n, r, b, s, 42);
            assert!(out.total() > 0);
            assert!(out.max_load >= b, "bucket loads can't all be below average");
        }
    }

    #[test]
    fn sorts_with_heavy_duplicates() {
        let factor = factories::path(4);
        let keys: Vec<u8> = (0..64).map(|i| (i % 3) as u8).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, _) = sample_sort(&factor, 2, 4, keys, 2, 7, &CostModel::paper_grid(4));
        assert_eq!(sorted, expect);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run(4, 2, 8, 4, 123);
        let b = run(4, 2, 8, 4, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn oversampling_improves_balance() {
        // More samples per node → splitters closer to true quantiles →
        // smaller max load (statistically; fixed seeds keep this stable).
        let light = run(4, 2, 64, 1, 9);
        let heavy = run(4, 2, 64, 16, 9);
        assert!(
            heavy.max_load <= light.max_load,
            "s=16 load {} vs s=1 load {}",
            heavy.max_load,
            light.max_load
        );
    }

    #[test]
    fn works_on_cycle_and_tree_factors() {
        for factor in [factories::cycle(5), factories::complete_binary_tree(3)] {
            let p = factor.n() * factor.n();
            let keys: Vec<u32> = (0..p as u32 * 8).rev().collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            let (sorted, _) = sample_sort(
                &factor,
                2,
                8,
                keys,
                4,
                11,
                &CostModel::paper_universal(factor.n()),
            );
            assert_eq!(sorted, expect, "{factor:?}");
        }
    }

    #[test]
    fn try_sample_sort_reports_typed_errors() {
        let factor = factories::path(3);
        let cost = CostModel::paper_grid(3);
        assert_eq!(
            try_sample_sort::<u8>(&factor, 2, 0, vec![], 1, 1, &cost).unwrap_err(),
            SortError::ZeroBlockSize
        );
        assert_eq!(
            try_sample_sort(&factor, 2, 4, vec![0u8; 36], 9, 1, &cost).unwrap_err(),
            SortError::BadOversample {
                oversample: 9,
                block: 4
            }
        );
        assert_eq!(
            try_sample_sort(&factor, 2, 4, vec![0u8; 35], 2, 1, &cost).unwrap_err(),
            SortError::WrongBlockedKeyCount {
                expected: 36,
                got: 35
            }
        );
    }

    #[test]
    #[should_panic(expected = "1 ≤ oversample ≤ b")]
    fn rejects_bad_oversample() {
        let factor = factories::path(3);
        let _ = sample_sort(
            &factor,
            2,
            4,
            vec![0u8; 36],
            9,
            1,
            &CostModel::paper_grid(3),
        );
    }
}
