//! Auto-selection of the `PG_2` base sorter, per factor shape.
//!
//! The a02 ablation proved the total sort cost moves by exactly
//! `(r-1)²·ΔS2`, so picking the cheapest base program per topology
//! multiplies through the whole stack. No single sorter dominates:
//! the multiway n-sorter's long row/column comparators are free on
//! dense factors (15 vs 16 rounds already at `N = 4` on `K_4`) but
//! routing makes them ruinous on a path, where the OET snake's
//! adjacent-only comparators win. The selector scores every candidate
//! with the *executed* engine's routing-aware step count and caches the
//! winner per `(n, wiring)`.
//!
//! Scoring is deliberately cheap — it builds each candidate's program
//! and prices every round against the factor's edge set (the same
//! arithmetic [`ExecutedEngine::new`] does on construction), without
//! compiling, lowering, or sorting anything.

use crate::cache::normalized_edges;
use crate::engine::ExecutedEngine;
use crate::sorters::{
    Hypercube2Sorter, MultiwayNSorter, OetSnakeSorter, PeriodicMergeSorter, Pg2Sorter, ShearSorter,
};
use pns_graph::Graph;
use pns_order::radix::Shape;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// The shared candidate instances, in scoring order. Ties on every
/// criterion resolve to the earliest candidate, so specialized
/// constructions come first.
static HYPERCUBE2: Hypercube2Sorter = Hypercube2Sorter;
static MULTIWAY: MultiwayNSorter = MultiwayNSorter;
static PERIODIC: PeriodicMergeSorter = PeriodicMergeSorter { extra_blocks: 0 };
static SHEAR: ShearSorter = ShearSorter;
static OET: OetSnakeSorter = OetSnakeSorter;

/// Every sorter the auto-selector considers.
#[must_use]
pub fn candidates() -> [&'static dyn Pg2Sorter; 5] {
    [&HYPERCUBE2, &MULTIWAY, &PERIODIC, &SHEAR, &OET]
}

/// One candidate's score for a factor: network shape metrics plus the
/// routing-aware executed step count that actually decides selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SorterScore {
    /// Display name ([`Pg2Sorter::name`]).
    pub name: &'static str,
    /// Cache identity ([`Pg2Sorter::id`]).
    pub id: String,
    /// Program depth (rounds) on this factor size.
    pub depth: usize,
    /// Program size (comparators).
    pub size: usize,
    /// Executed `S2` steps on this factor: each round costs 1 if all its
    /// comparator label pairs are edges, else the routed-exchange round
    /// count. This is the quantity Theorem 1 multiplies by `(r-1)²`.
    pub s2_steps: u64,
}

/// Score one sorter on a (prepared) factor.
#[must_use]
pub fn score_sorter(factor: &Graph, sorter: &dyn Pg2Sorter) -> SorterScore {
    let n = factor.n();
    let program = sorter.program(n);
    let engine = ExecutedEngine::new(factor, Shape::new(n, 2), sorter);
    SorterScore {
        name: sorter.name(),
        id: sorter.id(),
        depth: program.len(),
        size: program.iter().map(Vec::len).sum(),
        s2_steps: engine.s2_steps(),
    }
}

/// Score every supported candidate on a (prepared) factor, in candidate
/// order.
#[must_use]
pub fn score_sorters(factor: &Graph) -> Vec<SorterScore> {
    candidates()
        .into_iter()
        .filter(|s| s.supports(factor.n()))
        .map(|s| score_sorter(factor, s))
        .collect()
}

type WinnerCache = Mutex<HashMap<(usize, Vec<(u32, u32)>), usize>>;

fn winner_cache() -> &'static WinnerCache {
    static CACHE: OnceLock<WinnerCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Pick the best sorter for a (prepared) factor: minimum executed
/// `s2_steps`, ties broken by depth, then size, then candidate order.
/// The winner is memoized per `(n, wiring)`, so repeated construction of
/// machines over the same topology scores once.
#[must_use]
pub fn select_sorter(factor: &Graph) -> &'static dyn Pg2Sorter {
    let key = (factor.n(), normalized_edges(factor));
    if let Some(&idx) = winner_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return candidates()[idx];
    }
    let (idx, _) = candidates()
        .into_iter()
        .enumerate()
        .filter(|(_, s)| s.supports(factor.n()))
        .map(|(i, s)| (i, score_sorter(factor, s)))
        .min_by_key(|(_, sc)| (sc.s2_steps, sc.depth, sc.size))
        .expect("at least one candidate supports every n ≥ 2");
    winner_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, idx);
    candidates()[idx]
}

/// A sorter choice threaded through machine and service construction:
/// either a fixed named construction, or per-shape auto-selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SorterChoice {
    /// Score all candidates on the shape and use the winner.
    #[default]
    Auto,
    /// The paper's odd-even transposition snake ([`OetSnakeSorter`]).
    OetSnake,
    /// Shearsort with OET phases ([`ShearSorter`]).
    Shear,
    /// The `N = 2` 3-step sorter ([`Hypercube2Sorter`]).
    Hypercube3Step,
    /// Batcher-phase multiway n-sorter ([`MultiwayNSorter`]).
    MultiwayNsorter,
    /// Periodic balanced-block phases ([`PeriodicMergeSorter`]).
    PeriodicMerge,
}

impl SorterChoice {
    /// Stable config/display token for this choice.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SorterChoice::Auto => "auto",
            SorterChoice::OetSnake => "oet-snake",
            SorterChoice::Shear => "shearsort",
            SorterChoice::Hypercube3Step => "hypercube-3step",
            SorterChoice::MultiwayNsorter => "multiway-nsorter",
            SorterChoice::PeriodicMerge => "periodic-merge",
        }
    }

    /// Parse a config token ([`SorterChoice::as_str`] round-trips).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "auto" => Some(SorterChoice::Auto),
            "oet-snake" => Some(SorterChoice::OetSnake),
            "shearsort" => Some(SorterChoice::Shear),
            "hypercube-3step" => Some(SorterChoice::Hypercube3Step),
            "multiway-nsorter" => Some(SorterChoice::MultiwayNsorter),
            "periodic-merge" => Some(SorterChoice::PeriodicMerge),
            _ => None,
        }
    }

    /// Resolve to a concrete sorter for a (prepared) factor. A fixed
    /// choice that does not support the factor's size (the 3-step
    /// hypercube sorter away from `N = 2`) falls back to auto-selection
    /// rather than panicking, so a service config stays valid across its
    /// whole shape registry.
    #[must_use]
    pub fn resolve(self, factor: &Graph) -> &'static dyn Pg2Sorter {
        let fixed: &'static dyn Pg2Sorter = match self {
            SorterChoice::Auto => return select_sorter(factor),
            SorterChoice::OetSnake => &OET,
            SorterChoice::Shear => &SHEAR,
            SorterChoice::Hypercube3Step => &HYPERCUBE2,
            SorterChoice::MultiwayNsorter => &MULTIWAY,
            SorterChoice::PeriodicMerge => &PERIODIC,
        };
        if fixed.supports(factor.n()) {
            fixed
        } else {
            select_sorter(factor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use pns_graph::factories;

    #[test]
    fn dense_factors_pick_the_multiway_nsorter() {
        // On K_4 and K_8 every comparator is an edge, so the shallowest
        // program wins outright.
        for n in [4usize, 8] {
            let factor = Machine::prepare_factor(&factories::complete(n));
            let winner = select_sorter(&factor);
            assert_eq!(winner.name(), "multiway-nsorter", "n={n}");
        }
    }

    #[test]
    fn sparse_factors_fall_back_to_adjacent_comparators() {
        // On a path, the multiway n-sorter's long comparators route and
        // lose; the winner must be one of the adjacent-only schedules
        // (shearsort's rows and columns are both path-adjacent, and its
        // 56 rounds beat the OET snake's 64).
        let factor = Machine::prepare_factor(&factories::path(8));
        let winner = select_sorter(&factor);
        assert_eq!(winner.name(), "shearsort");
        let scores = score_sorters(&factor);
        let oet = scores.iter().find(|s| s.name == "oet-snake").unwrap();
        let shear = scores.iter().find(|s| s.name == "shearsort").unwrap();
        let multi = scores
            .iter()
            .find(|s| s.name == "multiway-nsorter")
            .unwrap();
        assert!(oet.s2_steps < multi.s2_steps, "routing must be priced in");
        assert!(shear.s2_steps < oet.s2_steps);
        assert_eq!(oet.s2_steps, 64, "adjacent-only rounds cost 1 each");
    }

    #[test]
    fn k2_picks_the_3_step_hypercube_sorter() {
        let factor = Machine::prepare_factor(&factories::k2());
        let winner = select_sorter(&factor);
        assert_eq!(winner.name(), "hypercube-3step");
        assert_eq!(score_sorter(&factor, winner).s2_steps, 3);
    }

    #[test]
    fn selection_is_memoized_per_wiring() {
        let factor = Machine::prepare_factor(&factories::complete(4));
        let a = select_sorter(&factor);
        let b = select_sorter(&factor);
        assert!(std::ptr::eq(a, b), "same static instance both times");
        // A different wiring on the same node count is its own entry.
        let cycle = Machine::prepare_factor(&factories::cycle(4));
        let c = select_sorter(&cycle);
        assert_ne!(c.name(), "multiway-nsorter", "cycle routes long pairs");
    }

    #[test]
    fn candidates_gate_on_support() {
        let n3 = Machine::prepare_factor(&factories::path(3));
        let names: Vec<_> = score_sorters(&n3).iter().map(|s| s.name).collect();
        assert!(!names.contains(&"hypercube-3step"), "n=3 unsupported");
        let n2 = Machine::prepare_factor(&factories::k2());
        let names: Vec<_> = score_sorters(&n2).iter().map(|s| s.name).collect();
        assert!(names.contains(&"hypercube-3step"));
    }

    #[test]
    fn choice_tokens_round_trip_and_resolve() {
        for choice in [
            SorterChoice::Auto,
            SorterChoice::OetSnake,
            SorterChoice::Shear,
            SorterChoice::Hypercube3Step,
            SorterChoice::MultiwayNsorter,
            SorterChoice::PeriodicMerge,
        ] {
            assert_eq!(SorterChoice::from_name(choice.as_str()), Some(choice));
        }
        assert_eq!(SorterChoice::from_name("bogus"), None);
        assert_eq!(SorterChoice::default(), SorterChoice::Auto);

        let k4 = Machine::prepare_factor(&factories::complete(4));
        assert_eq!(
            SorterChoice::OetSnake.resolve(&k4).name(),
            "oet-snake",
            "fixed choices are honored"
        );
        assert_eq!(
            SorterChoice::Auto.resolve(&k4).name(),
            "multiway-nsorter",
            "auto picks the per-shape winner"
        );
        // Unsupported fixed choice falls back to selection, not a panic.
        assert_eq!(
            SorterChoice::Hypercube3Step.resolve(&k4).name(),
            "multiway-nsorter"
        );
    }
}
