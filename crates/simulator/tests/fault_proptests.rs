//! Property-based tests for the fault-injecting executor: a transient
//! fault is either harmless or caught by the stage certificates, the
//! default retry policy always repairs sparse faults, and batch
//! execution degrades instead of panicking.

use pns_simulator::netsort::is_snake_sorted;
use pns_simulator::{
    compile, BspMachine, CompiledProgram, FaultError, FaultKind, FaultPlan, FaultSite, Machine,
    OetSnakeSorter, Op, RetryPolicy, ShearSorter, VerticalPool,
};
use proptest::prelude::*;

fn keys_for(len: u64, seed: u64, modulus: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 30) % modulus
        })
        .collect()
}

/// All sites of a given operation class in the program.
fn sites_of(program: &CompiledProgram, compare: bool) -> Vec<(FaultSite, FaultKind)> {
    let mut out = Vec::new();
    for (ri, round) in program.round_ops().iter().enumerate() {
        for (oi, op) in round.iter().enumerate() {
            let kind = match op {
                Op::CompareExchange { .. } if compare => FaultKind::FlipCompare,
                Op::Move { .. } if !compare => FaultKind::DropRoute,
                Op::Resolve { .. } if !compare => FaultKind::StallResolve,
                _ => continue,
            };
            out.push((
                FaultSite {
                    round: ri as u64,
                    op: oi as u64,
                },
                kind,
            ));
        }
    }
    out
}

/// With detection but no retries, a single injected fault must leave the
/// output sorted (harmless) or surface as `RetryExhausted` (detected).
fn harmless_or_detected(
    machine: &BspMachine,
    program: &CompiledProgram,
    keys: &[u64],
    site: FaultSite,
    kind: FaultKind,
) -> Result<(), String> {
    let plan = FaultPlan::single(kind, site);
    let mut k = keys.to_vec();
    match machine.run_with_faults(&mut k, program, &plan, &RetryPolicy::detect_only()) {
        Ok(report) => {
            if !is_snake_sorted(machine.shape(), &k) {
                return Err(format!(
                    "undetected {kind:?} at {site:?} left keys unsorted (injected: {})",
                    report.injected.len()
                ));
            }
            Ok(())
        }
        Err(FaultError::RetryExhausted { .. }) => Ok(()),
        Err(other) => Err(format!("unexpected error at {site:?}: {other}")),
    }
}

/// Exhaustive sweep, not sampled: every comparator flip in a small
/// `PG_2` sort is harmless or detected.
#[test]
fn every_single_comparator_flip_is_harmless_or_detected() {
    for (n, keys_seed) in [(3usize, 5u64), (4, 17)] {
        let factor = pns_graph::factories::path(n);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, 2);
        let keys = keys_for(machine.shape().len(), keys_seed, 1000);
        for (site, kind) in sites_of(&program, true) {
            harmless_or_detected(&machine, &program, &keys, site, kind)
                .unwrap_or_else(|msg| panic!("n={n}: {msg}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_single_faults_are_harmless_or_detected(
        n in 3usize..6, pick in any::<u64>(), seed in any::<u64>(), modulus in 1u64..1000,
        compare in any::<bool>(),
    ) {
        let factor = pns_graph::factories::path(n);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, 2);
        let keys = keys_for(machine.shape().len(), seed, modulus);
        let sites = sites_of(&program, compare);
        prop_assume!(!sites.is_empty());
        let (site, kind) = sites[(pick % sites.len() as u64) as usize];
        if let Err(msg) = harmless_or_detected(&machine, &program, &keys, site, kind) {
            return Err(TestCaseError::Fail(msg));
        }
    }

    #[test]
    fn default_policy_repairs_sparse_random_faults(
        n in 3usize..5, r in 2usize..4, plan_seed in any::<u64>(),
        seed in any::<u64>(), modulus in 1u64..1000, rate in 1u64..2_000,
    ) {
        prop_assume!((n as u64).pow(r as u32) <= 256);
        let factor = pns_graph::factories::path(n);
        let program = compile(&factor, r, &ShearSorter);
        let machine = BspMachine::new(&factor, r);
        let mut keys = keys_for(machine.shape().len(), seed, modulus);
        let plan = FaultPlan::random(plan_seed, rate);
        // Up to 0.2% of sites firing: the default policy's three retries
        // per segment always recover (transients never repeat).
        let report = machine
            .run_with_faults(&mut keys, &program, &plan, &RetryPolicy::default())
            .map_err(|e| TestCaseError::Fail(format!("unrepaired: {e}")))?;
        prop_assert!(is_snake_sorted(machine.shape(), &keys));
        prop_assert_eq!(report.rounds, report.counters.total_rounds());
        prop_assert!(report.counters.useful_rounds >= program.rounds() as u64);
    }

    #[test]
    fn batches_degrade_gracefully_and_never_panic(
        n in 3usize..5, lanes in 1usize..9, plan_seed in any::<u64>(),
        seed in any::<u64>(), rate in 1u64..50_000,
    ) {
        let factor = pns_graph::factories::path(n);
        let program = compile(&factor, 2, &OetSnakeSorter);
        let machine = BspMachine::new(&factor, 2);
        let len = machine.shape().len();
        let mut batch: Vec<Vec<u64>> = (0..lanes as u64)
            .map(|i| keys_for(len, seed ^ (i * 7919), 1000))
            .collect();
        let plan = FaultPlan::random(plan_seed, rate);
        // No retries: heavy rates force the quarantine path often.
        let results =
            machine.run_batch_with_faults(&mut batch, &program, &plan, &RetryPolicy::detect_only());
        prop_assert_eq!(results.len(), lanes);
        for (lane, res) in results.iter().enumerate() {
            let report = res
                .as_ref()
                .map_err(|e| TestCaseError::Fail(format!("lane {lane} failed: {e}")))?;
            prop_assert!(
                is_snake_sorted(machine.shape(), &batch[lane]),
                "lane {} unsorted (quarantined: {})", lane, report.quarantined
            );
        }
    }

    #[test]
    fn vertical_fault_batch_matches_the_scalar_batch_on_random_factors(
        n in 3usize..6, lanes in 1usize..70, plan_seed in any::<u64>(),
        seed in any::<u64>(), rate in 1u64..50_000, optimized in any::<bool>(),
        max_retries in 0u32..3, recheck_depth in 0u32..3,
    ) {
        // Random relabeled factors exercise relay moves (Route rounds
        // with transit traffic) through the lockstep vertical fault
        // executor. Whatever the plan, policy, lowering, or lane count
        // (including multi-block batches with a partial tail word),
        // every report and every output key must match the scalar
        // batch bit for bit.
        let factor = Machine::prepare_factor(&pns_graph::factories::random_connected(n, 2, seed));
        let program = compile(&factor, 2, &OetSnakeSorter);
        let program = if optimized { program.optimized() } else { program };
        let machine = BspMachine::new(&factor, 2);
        let vertical = machine
            .lower_vertical(&program)
            .map_err(|e| TestCaseError::Fail(format!("lowering failed: {e}")))?;
        let len = machine.shape().len();
        let batch: Vec<Vec<u64>> = (0..lanes as u64)
            .map(|i| keys_for(len, seed ^ (i * 7919), 1000))
            .collect();
        let plan = FaultPlan::random(plan_seed, rate);
        let policy = RetryPolicy { max_retries, recheck_depth, ..RetryPolicy::default() };
        let mut a = batch.clone();
        let ra = machine.run_batch_with_faults(&mut a, &program, &plan, &policy);
        let mut b = batch;
        let mut pool = VerticalPool::new();
        let rb = machine.run_vertical_batch_with_faults(&mut b, &vertical, &plan, &policy, &mut pool);
        prop_assert_eq!(ra, rb, "fault reports diverge");
        prop_assert_eq!(a, b, "faulty keys diverge");
    }
}
