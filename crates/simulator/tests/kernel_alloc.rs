//! Allocation accounting for the kernel tier: after one warm-up run,
//! `BspMachine::run_kernel` with a caller-owned [`ExecScratch`] must
//! perform **zero** heap allocations per call — the whole point of the
//! flat structure-of-arrays lowering.
//!
//! The proof is a counting `#[global_allocator]` wrapping the system
//! allocator. This must be the only test in the binary: the counter is
//! process-global, and a concurrent test would pollute the deltas.

use pns_graph::factories;
use pns_simulator::{compile, BspMachine, ExecScratch, ShearSorter};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        })
        .collect()
}

#[test]
fn warm_kernel_runs_do_not_allocate() {
    // Two shapes with different round mixes: the 3-ary 3-cube (pure
    // grid routing) and a star factor square (relay moves → Route
    // rounds with transit traffic).
    let cases = [(factories::path(3), 3usize), (factories::star(4), 2usize)];
    for (factor, r) in cases {
        let program = compile(&factor, r, &ShearSorter);
        let bsp = BspMachine::new(&factor, r);
        let kernel = bsp.lower(&program).expect("compiled programs validate");
        let len = kernel.shape().len();

        let input = lcg_keys(len, 7);
        let mut keys = input.clone();
        let mut scratch = ExecScratch::new();

        // Warm-up: scratch buffers grow to the program's high-water mark.
        bsp.run_kernel(&mut keys, &kernel, &mut scratch);
        let reference = keys.clone();

        let before = allocations();
        for _ in 0..32 {
            keys.clone_from_slice(&input);
            bsp.run_kernel(&mut keys, &kernel, &mut scratch);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "factor={} r={r}: {delta} allocations across 32 warm run_kernel calls",
            factor.name()
        );

        // The measured runs did real work: same output as the warm-up.
        assert_eq!(keys, reference, "warm runs stay correct");
        assert!(
            pns_simulator::netsort::is_snake_sorted(kernel.shape(), &keys),
            "factor={} r={r}: kernel output must be sorted",
            factor.name()
        );
    }
}
