//! Allocation accounting for the vertical tier: after one warm-up run,
//! both vertical executors — the bit-sliced 0/1 path
//! (`run_vertical_bits` with a caller-owned `BitScratch`) and the
//! full-key column path (`run_vertical_batch` with a warm
//! `VerticalPool`) — must perform **zero** heap allocations per call,
//! the same contract `kernel_alloc.rs` pins for the kernel tier.
//!
//! The proof is a counting `#[global_allocator]` wrapping the system
//! allocator. This must be the only test in the binary: the counter is
//! process-global, and a concurrent test would pollute the deltas.

use pns_graph::factories;
use pns_simulator::{
    compile, pack_zero_one_masks, unpack_zero_one_lane, BitScratch, BspMachine, ShearSorter,
    VerticalPool, WORD_LANES,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        })
        .collect()
}

#[test]
fn warm_vertical_runs_do_not_allocate() {
    // Two shapes with different round mixes: the 3-ary 3-cube (pure
    // grid routing) and a star factor square (relay moves → Route
    // rounds with transit traffic).
    let cases = [(factories::path(3), 3usize), (factories::star(4), 2usize)];
    for (factor, r) in cases {
        let program = compile(&factor, r, &ShearSorter);
        let bsp = BspMachine::new(&factor, r);
        let vertical = bsp
            .lower_vertical(&program)
            .expect("compiled programs validate");
        let len = vertical.shape().len();

        // --- Bit-sliced 0/1 path: one word per node, 64 lanes. ---
        let masks: Vec<u64> = (0..WORD_LANES as u64)
            .map(|l| l.wrapping_mul(0x9E37_79B9))
            .collect();
        let nodes = (len as usize).min(64);
        let mut lane_masks = masks.clone();
        for m in &mut lane_masks {
            *m &= (1u64 << nodes) - 1;
        }
        // The packing helpers need node ranks to fit a u64; both test
        // shapes satisfy that (27 and 16 nodes).
        assert!(len <= 64, "fixture fits the mask-packing helpers");
        let input_words = pack_zero_one_masks(&lane_masks, len as usize);
        let mut words = input_words.clone();
        let mut bits = BitScratch::new();

        // Warm-up: scratch buffers grow to the program's high-water mark.
        bsp.run_vertical_bits(&mut words, &vertical, &mut bits);
        let bits_reference = words.clone();

        let before = allocations();
        for _ in 0..32 {
            words.copy_from_slice(&input_words);
            bsp.run_vertical_bits(&mut words, &vertical, &mut bits);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "factor={} r={r}: {delta} allocations across 32 warm run_vertical_bits calls",
            factor.name()
        );
        assert_eq!(words, bits_reference, "warm bit runs stay correct");

        // --- Full-key column path: one 64-lane block. ---
        let inputs: Vec<Vec<u64>> = (0..WORD_LANES as u64).map(|s| lcg_keys(len, s)).collect();
        let mut batch = inputs.clone();
        let mut pool = VerticalPool::new();

        bsp.run_vertical_batch(&mut batch, &vertical, &mut pool);
        let cols_reference = batch.clone();

        let before = allocations();
        for _ in 0..32 {
            for (lane, src) in batch.iter_mut().zip(&inputs) {
                lane.clone_from_slice(src);
            }
            bsp.run_vertical_batch(&mut batch, &vertical, &mut pool);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "factor={} r={r}: {delta} allocations across 32 warm run_vertical_batch calls",
            factor.name()
        );

        // The measured runs did real work: same outputs as the warm-up,
        // and both paths sorted every lane.
        assert_eq!(batch, cols_reference, "warm column runs stay correct");
        for keys in &batch {
            assert!(
                pns_simulator::netsort::is_snake_sorted(vertical.shape(), keys),
                "factor={} r={r}: vertical output must be sorted",
                factor.name()
            );
        }
        for lane in 0..WORD_LANES {
            let keys = unpack_zero_one_lane(&words, lane);
            assert!(
                pns_simulator::netsort::is_snake_sorted(vertical.shape(), &keys),
                "factor={} r={r} lane={lane}: bit output must be sorted",
                factor.name()
            );
        }
    }
}
