//! Property-based tests for the simulator: machines on random factors
//! and random inputs always sort, and the accounting never drifts.

use pns_graph::factories;
use pns_order::radix::Shape;
use pns_order::Direction;
use pns_simulator::netsort::{is_snake_sorted, network_sort, read_snake_order};
use pns_simulator::sorters::{run_program, validate_program};
use pns_simulator::{
    block_sort, compile, sample_sort, BspMachine, ChargedEngine, CostModel, ExecScratch,
    ExecutedEngine, Machine, MultiwayNSorter, OetSnakeSorter, PeriodicMergeSorter, Pg2Sorter,
    ScratchPool, ShearSorter, SorterChoice,
};
use proptest::prelude::*;

fn keys_for(len: u64, seed: u64, modulus: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 30) % modulus
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn charged_sort_is_correct_on_random_factors(
        n in 3usize..8, r in 2usize..4, extra in 0usize..4,
        seed in any::<u64>(), modulus in 1u64..1000,
    ) {
        prop_assume!((n as u64).pow(r as u32) <= 1024);
        let _factor = factories::random_connected(n, extra, seed);
        let shape = Shape::new(n, r);
        let mut keys = keys_for(shape.len(), seed ^ 0xABCD, modulus);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut engine = ChargedEngine::new(CostModel::paper_universal(n));
        let out = network_sort(shape, &mut keys, &mut engine);
        prop_assert!(is_snake_sorted(shape, &keys));
        prop_assert_eq!(read_snake_order(shape, &keys), expect);
        // Theorem 1 units hold for any factor.
        let rr = r as u64;
        prop_assert_eq!(out.counters.s2_units, (rr - 1) * (rr - 1));
        prop_assert_eq!(out.counters.route_units, (rr - 1) * (rr - 2));
    }

    #[test]
    fn executed_sort_is_correct_on_relabeled_random_factors(
        n in 3usize..7, seed in any::<u64>(), modulus in 1u64..100,
    ) {
        let factor = Machine::prepare_factor(&factories::random_connected(n, 2, seed));
        let shape = Shape::new(n, 2);
        let mut keys = keys_for(shape.len(), seed ^ 0x1234, modulus);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut engine = ExecutedEngine::new(&factor, shape, &OetSnakeSorter);
        let _ = network_sort(shape, &mut keys, &mut engine);
        prop_assert_eq!(read_snake_order(shape, &keys), expect);
    }

    #[test]
    fn new_sorter_programs_sort_above_the_exhaustive_range(
        n in 5usize..17, seed in any::<u64>(), modulus in 1u64..1000,
        which in 0usize..3,
    ) {
        // Widths 25..=256 — past any zero-one sweep; random keys with
        // heavy duplication (small moduli) stress the merge structure.
        let sorter: &dyn Pg2Sorter = match which {
            0 => &MultiwayNSorter,
            1 => &PeriodicMergeSorter { extra_blocks: 0 },
            _ => &PeriodicMergeSorter { extra_blocks: 1 },
        };
        let prog = sorter.program(n);
        validate_program(n, &prog);
        let mut keys = keys_for((n * n) as u64, seed, modulus);
        let mut expect = keys.clone();
        expect.sort_unstable();
        run_program(&mut keys, &prog, Direction::Ascending);
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn auto_selected_machines_sort_random_factors(
        n in 3usize..6, extra in 0usize..4, seed in any::<u64>(), modulus in 1u64..100,
    ) {
        // Whatever the selector picks on a random wiring must sort, and
        // its executed step count can never exceed the OET snake's (the
        // snake is always a candidate).
        let factor = Machine::prepare_factor(&factories::random_connected(n, extra, seed));
        let shape = Shape::new(n, 2);
        let mut auto = Machine::executed_with(&factor, 2, SorterChoice::Auto);
        let oet = Machine::executed(&factor, 2, &OetSnakeSorter);
        prop_assert!(auto.s2_steps() <= oet.s2_steps());
        let mut keys = keys_for(shape.len(), seed ^ 0xBEEF, modulus);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let report = auto.sort(keys.split_off(0)).unwrap();
        prop_assert!(report.is_snake_sorted());
        prop_assert_eq!(report.into_sorted_vec(), expect);
    }

    #[test]
    fn executed_steps_are_input_independent(
        n in 3usize..6, seed_a in any::<u64>(), seed_b in any::<u64>(),
    ) {
        // Obliviousness: step totals cannot depend on the data.
        let factor = factories::path(n);
        let shape = Shape::new(n, 3);
        let run = |seed: u64| {
            let mut keys = keys_for(shape.len(), seed, 1000);
            let mut engine = ExecutedEngine::new(&factor, shape, &ShearSorter);
            network_sort(shape, &mut keys, &mut engine).steps
        };
        prop_assert_eq!(run(seed_a), run(seed_b));
    }

    #[test]
    fn bsp_agrees_with_round_level_execution(
        n in 3usize..6, seed in any::<u64>(), modulus in 1u64..50,
    ) {
        let factor = factories::path(n);
        let r = 2;
        let shape = Shape::new(n, r);
        let keys = keys_for(shape.len(), seed, modulus);

        let program = compile(&factor, r, &OetSnakeSorter);
        let bsp = BspMachine::new(&factor, r);
        let mut bsp_keys = keys.clone();
        bsp.run(&mut bsp_keys, &program);

        let mut engine = ExecutedEngine::new(&factor, shape, &OetSnakeSorter);
        let mut net_keys = keys;
        let _ = network_sort(shape, &mut net_keys, &mut engine);

        prop_assert_eq!(bsp_keys, net_keys);
    }

    #[test]
    fn kernel_paths_agree_with_the_interpreter(
        n in 3usize..6, seed in any::<u64>(), modulus in 1u64..50,
        optimized in any::<bool>(),
    ) {
        // The lowered kernel — serial, chunked (threshold 1), and
        // batched — is bit-identical to interpreted execution on random
        // relabeled factors, where relay moves exercise Route rounds.
        let factor = Machine::prepare_factor(&factories::random_connected(n, 2, seed));
        let r = 2;
        let shape = Shape::new(n, r);
        let program = compile(&factor, r, &OetSnakeSorter);
        let program = if optimized { program.optimized() } else { program };
        let bsp = BspMachine::new(&factor, r);
        let kernel = bsp.lower(&program).expect("compiled programs validate");

        let keys = keys_for(shape.len(), seed ^ 0x77, modulus);
        let mut reference = keys.clone();
        bsp.run(&mut reference, &program);

        let mut scratch = ExecScratch::new();
        let mut serial = keys.clone();
        bsp.run_kernel(&mut serial, &kernel, &mut scratch);
        prop_assert_eq!(&serial, &reference);

        let mut chunked = keys.clone();
        bsp.run_kernel_parallel_threshold(&mut chunked, &kernel, &mut scratch, 1);
        prop_assert_eq!(&chunked, &reference);

        let mut batch = vec![keys; 3];
        let mut pool = ScratchPool::new();
        bsp.run_kernel_batch(&mut batch, &kernel, &mut pool);
        for lane in &batch {
            prop_assert_eq!(lane, &reference);
        }
    }

    #[test]
    fn charged_steps_follow_theorem1_for_random_costs(
        s2 in 1u64..1000, route in 0u64..1000, r in 2usize..5,
    ) {
        let n = 3usize;
        let shape = Shape::new(n, r);
        let mut keys = keys_for(shape.len(), s2 ^ route, 100);
        let mut engine = ChargedEngine::new(CostModel::custom("prop", s2, route));
        let out = network_sort(shape, &mut keys, &mut engine);
        let rr = r as u64;
        prop_assert_eq!(
            out.steps,
            (rr - 1) * (rr - 1) * s2 + (rr - 1) * (rr - 2) * route
        );
    }

    #[test]
    fn block_sort_matches_std_sort(
        n in 2usize..6, r in 2usize..4, block in 1usize..9,
        seed in any::<u64>(), modulus in 1u64..10_000,
    ) {
        prop_assume!((n as u64).pow(r as u32) <= 256);
        let shape = Shape::new(n, r);
        let keys = keys_for(shape.len() * block as u64, seed, modulus);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, outcome) = block_sort(shape, block, keys, CostModel::custom("prop", 1, 1));
        prop_assert_eq!(sorted, expect);
        // Theorem 1 units are block-size independent.
        let rr = r as u64;
        prop_assert_eq!(outcome.counters.s2_units, (rr - 1) * (rr - 1));
        prop_assert_eq!(outcome.counters.route_units, (rr - 1) * (rr - 2));
    }

    #[test]
    fn sample_sort_matches_std_sort(
        n in 2usize..6, b in 4usize..33, oversample in 1usize..5,
        seed in any::<u64>(), modulus in 1u64..10_000,
    ) {
        prop_assume!(oversample <= b);
        let factor = factories::path(n);
        let r = 2;
        let p = n * n;
        let keys = keys_for((p * b) as u64, seed, modulus);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, outcome) =
            sample_sort(&factor, r, b, keys, oversample, seed ^ 0x5A5A, &CostModel::custom("prop", 1, 1));
        prop_assert_eq!(sorted, expect);
        // Every key lands somewhere: the fullest bucket holds at least
        // the average load.
        prop_assert!(outcome.max_load >= b);
    }
}
