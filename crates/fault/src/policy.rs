//! Retry policies for checkpointed execution.

use serde::{Deserialize, Serialize};

/// How an executor reacts when a certificate check fails.
///
/// The executor snapshots the key vector at every certificate boundary
/// (stage boundaries of the compiled program). When the check at the
/// end of a segment fails, it restores the snapshot and re-executes the
/// segment — up to `max_retries` times per segment. Because injected
/// faults are transient (a site fires at most once per run), the first
/// re-execution of a segment is already clean; retries beyond the first
/// guard against corruption that slipped *into* a checkpoint past a
/// sampled check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-executions allowed per segment before the run gives up
    /// (`RetryExhausted`; batch executors then quarantine the lane).
    /// `0` disables recovery: detection still runs, failures surface
    /// immediately.
    pub max_retries: u32,
    /// Intermediate-certificate thoroughness: `0` checks the full
    /// subgraph snake-order certificate at every stage boundary
    /// (exhaustive; the default), `d > 0` probes `d` sampled adjacent
    /// snake pairs per boundary instead (O(d) per check). The *final*
    /// certificate is always checked in full, so a successful run
    /// guarantees a snake-sorted output under either setting.
    pub recheck_depth: u32,
}

impl Default for RetryPolicy {
    /// Three retries per segment, exhaustive intermediate certificates.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            recheck_depth: 0,
        }
    }
}

impl RetryPolicy {
    /// Detection without recovery: certificates are checked (in full)
    /// but a failure surfaces immediately instead of retrying. The
    /// configuration exhaustive fault sweeps use to ask "was this
    /// fault detected?".
    #[must_use]
    pub fn detect_only() -> Self {
        RetryPolicy {
            max_retries: 0,
            recheck_depth: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_retries_with_full_certificates() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.recheck_depth, 0);
    }

    #[test]
    fn detect_only_never_retries() {
        assert_eq!(RetryPolicy::detect_only().max_retries, 0);
    }

    #[test]
    fn policies_serialize_roundtrip() {
        let p = RetryPolicy {
            max_retries: 7,
            recheck_depth: 16,
        };
        let json = serde_json::to_string(&p).expect("serialize");
        let back: RetryPolicy = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, p);
    }
}
