//! Retry policies for checkpointed execution.

use serde::{Deserialize, Serialize};

/// How an executor reacts when a certificate check fails.
///
/// The executor snapshots the key vector at every certificate boundary
/// (stage boundaries of the compiled program). When the check at the
/// end of a segment fails, it restores the snapshot and re-executes the
/// segment — up to `max_retries` times per segment. Because injected
/// faults are transient (a site fires at most once per run), the first
/// re-execution of a segment is already clean; retries beyond the first
/// guard against corruption that slipped *into* a checkpoint past a
/// sampled check.
///
/// The optional backoff fields delay each re-execution by a
/// capped-exponential, deterministically jittered amount — the shape a
/// service layer wants when a retry storm would make an overload worse.
/// With `backoff_base_ns == 0` (the default) retries re-execute
/// immediately, exactly as before the fields existed, so every
/// previously valid configuration behaves bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-executions allowed per segment before the run gives up
    /// (`RetryExhausted`; batch executors then quarantine the lane).
    /// `0` disables recovery: detection still runs, failures surface
    /// immediately.
    pub max_retries: u32,
    /// Intermediate-certificate thoroughness: `0` checks the full
    /// subgraph snake-order certificate at every stage boundary
    /// (exhaustive; the default), `d > 0` probes `d` sampled adjacent
    /// snake pairs per boundary instead (O(d) per check). The *final*
    /// certificate is always checked in full, so a successful run
    /// guarantees a snake-sorted output under either setting.
    pub recheck_depth: u32,
    /// Base delay of the capped exponential backoff before retry
    /// attempt `a` (nanoseconds; the undelayed attempt is attempt 0).
    /// `0` — the default — disables backoff entirely: retries
    /// re-execute immediately and [`RetryPolicy::backoff_ns`] is `0`
    /// for every attempt.
    pub backoff_base_ns: u64,
    /// Ceiling on any single computed delay (nanoseconds). `0` means
    /// "uncapped" (the exponential still saturates instead of
    /// overflowing).
    pub backoff_cap_ns: u64,
    /// Seed for the deterministic jitter: the same
    /// `(seed, attempt)` pair always yields the same delay, so a
    /// replayed run waits out the identical schedule and tests can
    /// assert delays exactly.
    pub backoff_jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three retries per segment, exhaustive intermediate certificates,
    /// no backoff (immediate re-execution).
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            recheck_depth: 0,
            backoff_base_ns: 0,
            backoff_cap_ns: 0,
            backoff_jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Detection without recovery: certificates are checked (in full)
    /// but a failure surfaces immediately instead of retrying. The
    /// configuration exhaustive fault sweeps use to ask "was this
    /// fault detected?".
    #[must_use]
    pub fn detect_only() -> Self {
        RetryPolicy {
            max_retries: 0,
            recheck_depth: 0,
            ..RetryPolicy::default()
        }
    }

    /// This policy with capped-exponential backoff enabled: attempt `a`
    /// (1-based) is delayed by roughly `base · 2^(a-1)`, never more
    /// than `cap`, with deterministic jitter drawn from `jitter_seed`.
    #[must_use]
    pub fn with_backoff(self, base_ns: u64, cap_ns: u64, jitter_seed: u64) -> Self {
        RetryPolicy {
            backoff_base_ns: base_ns,
            backoff_cap_ns: cap_ns,
            backoff_jitter_seed: jitter_seed,
            ..self
        }
    }

    /// The delay before retry `attempt` (1-based; attempt 0 is the
    /// initial, undelayed execution), in nanoseconds.
    ///
    /// Equal-jitter capped exponential: the raw delay doubles per
    /// attempt from `backoff_base_ns`, saturates at `backoff_cap_ns`
    /// (or at `u64::MAX` when the cap is 0), and the returned value is
    /// `raw/2 + jitter` with `jitter` drawn deterministically from
    /// `[0, raw/2]` by hashing `(backoff_jitter_seed, attempt)` — so
    /// concurrent retriers spread out, but a replay waits the exact
    /// same schedule. Always `0` when backoff is disabled
    /// (`backoff_base_ns == 0`) or for `attempt == 0`.
    #[must_use]
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        if self.backoff_base_ns == 0 || attempt == 0 {
            return 0;
        }
        let cap = if self.backoff_cap_ns == 0 {
            u64::MAX
        } else {
            self.backoff_cap_ns
        };
        // base · 2^(attempt-1), saturating well before the shift wraps.
        let shift = (attempt - 1).min(63);
        let raw = self
            .backoff_base_ns
            .checked_shl(shift)
            .filter(|&v| v >> shift == self.backoff_base_ns)
            .unwrap_or(u64::MAX)
            .min(cap);
        let half = raw / 2;
        let jitter = splitmix(self.backoff_jitter_seed ^ u64::from(attempt)) % (half + 1);
        half.saturating_add(jitter).min(cap)
    }
}

/// SplitMix64 finalizer: full-avalanche hash for the jitter draw.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_retries_with_full_certificates() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.recheck_depth, 0);
        assert_eq!(p.backoff_base_ns, 0);
        assert_eq!(p.backoff_cap_ns, 0);
    }

    #[test]
    fn detect_only_never_retries() {
        assert_eq!(RetryPolicy::detect_only().max_retries, 0);
    }

    #[test]
    fn policies_serialize_roundtrip() {
        let p = RetryPolicy {
            max_retries: 7,
            recheck_depth: 16,
            ..RetryPolicy::default()
        }
        .with_backoff(1_000, 64_000, 42);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: RetryPolicy = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, p);
    }

    #[test]
    fn disabled_backoff_is_always_zero() {
        let p = RetryPolicy::default();
        for attempt in 0..40 {
            assert_eq!(p.backoff_ns(attempt), 0);
        }
    }

    #[test]
    fn backoff_grows_exponentially_within_the_jitter_band() {
        let p = RetryPolicy::default().with_backoff(1_000, 0, 7);
        assert_eq!(p.backoff_ns(0), 0, "attempt 0 is the initial run");
        for attempt in 1..10u32 {
            let raw = 1_000u64 << (attempt - 1);
            let d = p.backoff_ns(attempt);
            assert!(
                (raw / 2..=raw).contains(&d),
                "attempt {attempt}: delay {d} outside [{}, {raw}]",
                raw / 2
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_and_seed_dependent() {
        let a = RetryPolicy::default().with_backoff(10_000, 1_000_000, 1);
        let b = RetryPolicy::default().with_backoff(10_000, 1_000_000, 2);
        let series = |p: &RetryPolicy| (1..12u32).map(|n| p.backoff_ns(n)).collect::<Vec<_>>();
        assert_eq!(series(&a), series(&a), "same seed, same schedule");
        assert_ne!(series(&a), series(&b), "different seed jitters differently");
    }

    #[test]
    fn backoff_respects_the_cap_and_never_overflows() {
        let p = RetryPolicy::default().with_backoff(1_000, 8_000, 3);
        for attempt in 1..200u32 {
            assert!(p.backoff_ns(attempt) <= 8_000, "attempt {attempt}");
        }
        // Uncapped: the exponential saturates instead of wrapping.
        let huge = RetryPolicy::default().with_backoff(u64::MAX / 2, 0, 0);
        assert!(huge.backoff_ns(64) >= u64::MAX / 4);
    }
}
