//! Cheap snake-order certificates: sampled adjacent-pair probes.
//!
//! The executor's per-phase invariant is "every `k`-dimensional
//! subgraph over dimensions `0 … k-1` is snake-sorted". Checking it in
//! full costs one pass over the keys; this module offers the sampled
//! alternative for hot paths: probe `d` randomly chosen adjacent pairs
//! in subgraph snake order. Each probe is a two-key zero-one spot check
//! (by the zero-one principle, a pair `a > b` at adjacent snake
//! positions is exactly a 0/1 witness of unsortedness), so a failing
//! configuration with `f` inverted adjacent pairs escapes `d` probes
//! with probability `(1 - f/P)^d` for `P` total pairs.
//!
//! Sampling is seeded and deterministic: the same `(seed, attempt)`
//! probes the same pairs, so failing runs replay exactly.

use pns_order::radix::Shape;
use pns_order::snake::node_at_snake_pos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probe `probes` sampled adjacent snake pairs of the `k`-dimensional
/// subgraphs of `shape` (dimensions `0 … k-1`; every subgraph is an
/// equally likely target). Returns `true` when every probed pair is in
/// order — a sampled version of the full certificate, never a false
/// alarm.
///
/// Dimensions `0 … k-1` are the low radix digits, so subgraph `g`'s
/// nodes are exactly the ranks `g·N^k + local`.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds `shape.r()`, or if `keys` is not one
/// key per node.
#[must_use]
pub fn sampled_subgraph_certificate<K: Ord>(
    shape: Shape,
    keys: &[K],
    k: usize,
    probes: u32,
    seed: u64,
) -> bool {
    assert!(k >= 1 && k <= shape.r(), "need 1 ≤ k ≤ r");
    assert_eq!(keys.len() as u64, shape.len(), "one key per node");
    let sub = shape.sub(k);
    let sub_len = sub.len();
    if sub_len < 2 {
        return true;
    }
    let groups = shape.len() / sub_len;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..probes {
        let g = rng.random_range(0..groups);
        let pos = rng.random_range(0..sub_len - 1);
        let base = g * sub_len;
        let a = base + node_at_snake_pos(sub, pos);
        let b = base + node_at_snake_pos(sub, pos + 1);
        if keys[a as usize] > keys[b as usize] {
            return false;
        }
    }
    true
}

/// The full `k`-dimensional certificate: every adjacent snake pair of
/// every subgraph over dimensions `0 … k-1`, exhaustively. Equivalent
/// to `pns-simulator`'s `subgraphs_snake_sorted` (re-derived here so
/// detection has no executor dependency); with `k = shape.r()` this is
/// global snake-sortedness.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds `shape.r()`, or if `keys` is not one
/// key per node.
#[must_use]
pub fn full_subgraph_certificate<K: Ord>(shape: Shape, keys: &[K], k: usize) -> bool {
    assert!(k >= 1 && k <= shape.r(), "need 1 ≤ k ≤ r");
    assert_eq!(keys.len() as u64, shape.len(), "one key per node");
    let sub = shape.sub(k);
    let sub_len = sub.len();
    let groups = shape.len() / sub_len;
    for g in 0..groups {
        let base = g * sub_len;
        let mut prev: Option<&K> = None;
        for pos in 0..sub_len {
            let key = &keys[(base + node_at_snake_pos(sub, pos)) as usize];
            if let Some(p) = prev {
                if p > key {
                    return false;
                }
            }
            prev = Some(key);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A configuration where every k-dim subgraph (low dims) is sorted
    /// in its own snake order.
    fn stagewise_sorted(shape: Shape, k: usize) -> Vec<u64> {
        let sub = shape.sub(k);
        let sub_len = sub.len();
        let mut keys = vec![0u64; shape.len() as usize];
        for g in 0..shape.len() / sub_len {
            for pos in 0..sub_len {
                let node = g * sub_len + node_at_snake_pos(sub, pos);
                keys[node as usize] = g * sub_len + pos;
            }
        }
        keys
    }

    #[test]
    fn full_certificate_accepts_stagewise_sorted_configurations() {
        for (n, r, k) in [(3usize, 3usize, 2usize), (3, 3, 3), (2, 4, 2), (4, 2, 2)] {
            let shape = Shape::new(n, r);
            let keys = stagewise_sorted(shape, k);
            assert!(
                full_subgraph_certificate(shape, &keys, k),
                "n={n} r={r} k={k}"
            );
        }
    }

    #[test]
    fn full_certificate_rejects_any_adjacent_inversion() {
        let shape = Shape::new(3, 2);
        let mut keys = stagewise_sorted(shape, 2);
        // Swap two adjacent snake positions.
        let a = node_at_snake_pos(shape, 3) as usize;
        let b = node_at_snake_pos(shape, 4) as usize;
        keys.swap(a, b);
        assert!(!full_subgraph_certificate(shape, &keys, 2));
    }

    #[test]
    fn sampled_certificate_never_false_alarms() {
        let shape = Shape::new(3, 3);
        let keys = stagewise_sorted(shape, 2);
        for seed in 0..32 {
            assert!(sampled_subgraph_certificate(shape, &keys, 2, 16, seed));
        }
    }

    #[test]
    fn sampled_certificate_catches_gross_corruption() {
        // Reverse a whole subgraph: about half its adjacent pairs
        // invert, so 64 probes miss with probability ~2^-40 per seed.
        let shape = Shape::new(3, 3);
        let mut keys = stagewise_sorted(shape, 2);
        keys[..9].reverse();
        let caught = (0..16u64)
            .filter(|&seed| !sampled_subgraph_certificate(shape, &keys, 2, 64, seed))
            .count();
        assert_eq!(caught, 16, "every seed should catch a reversed subgraph");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let shape = Shape::new(3, 3);
        let mut keys = stagewise_sorted(shape, 2);
        keys.swap(0, 4);
        for seed in 0..8 {
            let a = sampled_subgraph_certificate(shape, &keys, 2, 2, seed);
            let b = sampled_subgraph_certificate(shape, &keys, 2, 2, seed);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn full_dimensional_certificate_is_global_snake_order() {
        let shape = Shape::new(2, 3);
        // Globally snake-sorted configuration.
        let mut keys = vec![0u64; 8];
        for pos in 0..8u64 {
            keys[node_at_snake_pos(shape, pos) as usize] = pos;
        }
        assert!(full_subgraph_certificate(shape, &keys, 3));
        keys.swap(
            node_at_snake_pos(shape, 0) as usize,
            node_at_snake_pos(shape, 7) as usize,
        );
        assert!(!full_subgraph_certificate(shape, &keys, 3));
    }
}
