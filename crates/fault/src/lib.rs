//! Fault injection and recovery primitives for product-network sorting.
//!
//! The paper's correctness story (Lemmas 1–3, Theorem 1) assumes every
//! comparator exchange and every routing step executes faithfully. A
//! production sorting service cannot: comparators glitch, messages drop,
//! lanes stall. This crate provides the machinery to *model* those
//! failures deterministically and to *recover* from them:
//!
//! * [`FaultPlan`] — a seedable, deterministic injector deciding, per
//!   execution site (round × operation), whether a transient fault
//!   fires and of which [`FaultKind`]. Decisions are pure functions of
//!   the plan's seed, so a failing run replays bit-identically.
//! * [`RetryPolicy`] — how aggressively an executor re-runs from its
//!   last clean checkpoint when a certificate check fails, and how
//!   deeply intermediate certificates are probed.
//! * [`detect`] — cheap snake-order certificates: sampled adjacent-pair
//!   probes in subgraph snake order (each probe is a two-key zero-one
//!   spot check) backing the executor's per-phase detection.
//!
//! The executor integration (checkpointing, retry, quarantine) lives in
//! `pns-simulator`'s `fault` module; this crate stays dependency-light
//! (shapes and snake order only) so plans can be built and shipped
//! anywhere — including serialized into job specs ([`serde`] support on
//! all types).
//!
//! Transient semantics: a fault *site* fires at most once per run. The
//! injecting executor tracks fired sites, so re-execution from a
//! checkpoint is clean — exactly the repair primitive periodic sorting
//! networks exploit (re-applying a comparator network fixes transient
//! comparator faults).

pub mod detect;
pub mod plan;
pub mod policy;

pub use plan::{FaultKind, FaultPlan, FaultSite, OpClass};
pub use policy::RetryPolicy;
