//! Deterministic, seedable fault plans.
//!
//! A [`FaultPlan`] answers one question — "does a transient fault fire
//! at this execution site, and of which kind?" — as a pure function of
//! the plan's seed and the site coordinates. Purity is the point:
//! a failing run replays bit-identically from its seed, per-lane plans
//! fork deterministically from a batch seed, and a plan can be
//! serialized into a job spec and re-evaluated anywhere.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a fired fault does to its operation. Every kind preserves the
/// machine-model discipline (slots still fill and clear on schedule),
/// so a faulty program always runs to completion — faults corrupt
/// *data*, never the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A compare-exchange applies the *inverted* direction: the minimum
    /// lands on the wrong side.
    FlipCompare,
    /// A route message is lost: the receiving transit slot is filled
    /// with a stale copy of the receiver's resident key instead of the
    /// payload (the source slot is still cleared on schedule).
    DropRoute,
    /// A resolve stalls: the arrived value is discarded and the
    /// resident key kept unconditionally.
    StallResolve,
}

impl FaultKind {
    /// All kinds, in declaration order.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::FlipCompare,
        FaultKind::DropRoute,
        FaultKind::StallResolve,
    ];

    /// Stable small code for event payloads (`0` flip, `1` drop,
    /// `2` stall).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            FaultKind::FlipCompare => 0,
            FaultKind::DropRoute => 1,
            FaultKind::StallResolve => 2,
        }
    }

    /// The operation class this kind strikes.
    #[must_use]
    pub fn class(self) -> OpClass {
        match self {
            FaultKind::FlipCompare => OpClass::Compare,
            FaultKind::DropRoute => OpClass::Route,
            FaultKind::StallResolve => OpClass::Resolve,
        }
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FlipCompare => "flip-compare",
            FaultKind::DropRoute => "drop-route",
            FaultKind::StallResolve => "stall-resolve",
        }
    }
}

/// Classification of machine operations for fault eligibility — the
/// executor maps its op enum onto this, keeping this crate independent
/// of the executor's types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpClass {
    /// An adjacent compare-exchange.
    Compare,
    /// A one-hop message move.
    Route,
    /// A local resolve of an arrived transit value.
    Resolve,
}

impl OpClass {
    /// The fault kind that strikes this class of operation.
    #[must_use]
    pub fn fault_kind(self) -> FaultKind {
        match self {
            OpClass::Compare => FaultKind::FlipCompare,
            OpClass::Route => FaultKind::DropRoute,
            OpClass::Resolve => FaultKind::StallResolve,
        }
    }
}

/// One execution site: the `op`-th operation of round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSite {
    /// Round index within the compiled program.
    pub round: u64,
    /// Operation index within the round.
    pub op: u64,
}

/// Scale of the per-million rate: a site fires iff its hash bucket in
/// `[0, RATE_SCALE)` falls below `rate_per_million`.
const RATE_SCALE: u64 = 1_000_000;

/// A deterministic fault plan: which sites fault, and how.
///
/// Construction picks among three modes:
/// * [`FaultPlan::disabled`] — never fires (zero-cost guard for
///   production paths).
/// * [`FaultPlan::random`] / [`FaultPlan::random_with_kinds`] — every
///   eligible site fires independently with probability
///   `rate_per_million / 1e6`, decided by a seeded hash (the seed is
///   expanded through the vendored `rand` [`StdRng`], so plan streams
///   are as well-mixed as the workspace's other randomness).
/// * [`FaultPlan::single`] — exactly one chosen site fires (the
///   building block for exhaustive single-fault sweeps).
///
/// Fields stay flat (no tuples or arrays) so the derived serde impls
/// cover them with the workspace's vendored stand-in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Mixed seed material (already expanded; 0 is a valid mix).
    mix: u64,
    /// Firing threshold in `[0, RATE_SCALE]`.
    rate_per_million: u64,
    /// Compare-exchange sites eligible for [`FaultKind::FlipCompare`].
    flip_compare: bool,
    /// Move sites eligible for [`FaultKind::DropRoute`].
    drop_route: bool,
    /// Resolve sites eligible for [`FaultKind::StallResolve`].
    stall_resolve: bool,
    /// When set (with `target_kind`), only this exact site fires.
    target_site: Option<FaultSite>,
    /// The kind fired at `target_site`.
    target_kind: Option<FaultKind>,
    enabled: bool,
}

impl FaultPlan {
    /// The plan that never fires. [`FaultPlan::is_enabled`] is `false`,
    /// so executors can skip per-op checks entirely.
    #[must_use]
    pub fn disabled() -> Self {
        FaultPlan {
            mix: 0,
            rate_per_million: 0,
            flip_compare: false,
            drop_route: false,
            stall_resolve: false,
            target_site: None,
            target_kind: None,
            enabled: false,
        }
    }

    /// Random transient faults of every kind at the given rate
    /// (`rate_per_million` faults per million eligible operations).
    #[must_use]
    pub fn random(seed: u64, rate_per_million: u64) -> Self {
        FaultPlan::random_with_kinds(seed, rate_per_million, &FaultKind::ALL)
    }

    /// As [`FaultPlan::random`], restricted to the given kinds — the
    /// fault-matrix axis of experiment E18.
    #[must_use]
    pub fn random_with_kinds(seed: u64, rate_per_million: u64, kinds: &[FaultKind]) -> Self {
        FaultPlan {
            mix: StdRng::seed_from_u64(seed).next_u64(),
            rate_per_million: rate_per_million.min(RATE_SCALE),
            flip_compare: kinds.contains(&FaultKind::FlipCompare),
            drop_route: kinds.contains(&FaultKind::DropRoute),
            stall_resolve: kinds.contains(&FaultKind::StallResolve),
            target_site: None,
            target_kind: None,
            enabled: rate_per_million > 0 && !kinds.is_empty(),
        }
    }

    /// Exactly one fault: `kind` at `site`, nothing else. The site must
    /// hold an operation of the matching class at run time, or nothing
    /// fires.
    #[must_use]
    pub fn single(kind: FaultKind, site: FaultSite) -> Self {
        FaultPlan {
            mix: 0,
            rate_per_million: 0,
            flip_compare: false,
            drop_route: false,
            stall_resolve: false,
            target_site: Some(site),
            target_kind: Some(kind),
            enabled: true,
        }
    }

    /// A per-lane plan derived from this one: same rate and kinds,
    /// independently mixed decisions. Forking is deterministic —
    /// `plan.fork(i)` is the same plan for every evaluation — and
    /// `fork(a)` and `fork(b)` decide independently for `a != b`.
    #[must_use]
    pub fn fork(&self, lane: u64) -> Self {
        let mut forked = self.clone();
        if self.target_site.is_none() {
            forked.mix = StdRng::seed_from_u64(self.mix ^ lane.wrapping_mul(0xA076_1D64_78BD_642F))
                .next_u64();
        }
        forked
    }

    /// `false` iff no site can ever fire — executors use this to take
    /// the unwrapped fast path.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Deterministic seed for an executor's sampled certificate probes
    /// at a retry `attempt` of the segment ending at `boundary`. Derived
    /// from the plan's mix so a replayed run probes the same pairs, and
    /// salted so probe positions never correlate with fault decisions
    /// (which hash the raw mix).
    #[must_use]
    pub fn probe_seed(&self, boundary: u64, attempt: u64) -> u64 {
        site_hash(
            self.mix ^ 0x5851_F42D_4C95_7F2D,
            FaultSite {
                round: boundary,
                op: attempt,
            },
        )
    }

    /// Does a fault fire at `site` for an operation of `class`?
    /// Pure: same plan, same site, same answer. The *transient*
    /// guarantee (each site fires at most once per run) is the
    /// executor's job — it tracks fired sites and consults this only
    /// for fresh ones.
    #[must_use]
    pub fn decide(&self, site: FaultSite, class: OpClass) -> Option<FaultKind> {
        if !self.enabled {
            return None;
        }
        if let (Some(target), Some(kind)) = (self.target_site, self.target_kind) {
            return (target == site && kind.class() == class).then_some(kind);
        }
        let kind = class.fault_kind();
        let eligible = match kind {
            FaultKind::FlipCompare => self.flip_compare,
            FaultKind::DropRoute => self.drop_route,
            FaultKind::StallResolve => self.stall_resolve,
        };
        if !eligible {
            return None;
        }
        (site_hash(self.mix, site) % RATE_SCALE < self.rate_per_million).then_some(kind)
    }
}

/// SplitMix64-style avalanche of the site coordinates into the plan's
/// mix. Full 64-bit diffusion, so the `% RATE_SCALE` bucket is
/// uniform across sites.
fn site_hash(mix: u64, site: FaultSite) -> u64 {
    let mut z = mix
        ^ site.round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ site.op.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> impl Iterator<Item = FaultSite> {
        (0..64u64).flat_map(|round| (0..32u64).map(move |op| FaultSite { round, op }))
    }

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for site in sites() {
            for class in [OpClass::Compare, OpClass::Route, OpClass::Resolve] {
                assert_eq!(plan.decide(site, class), None);
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::random(7, 100_000);
        let b = FaultPlan::random(7, 100_000);
        let c = FaultPlan::random(8, 100_000);
        let decide_all = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            sites().map(|s| p.decide(s, OpClass::Compare)).collect()
        };
        assert_eq!(decide_all(&a), decide_all(&b), "same seed, same stream");
        assert_ne!(decide_all(&a), decide_all(&c), "different seed differs");
    }

    #[test]
    fn rate_controls_firing_frequency() {
        // 10% rate over 2048 sites: expect roughly 205 hits; the hash
        // is uniform enough that [100, 320] is a safe deterministic
        // band for this fixed seed.
        let plan = FaultPlan::random(42, 100_000);
        let fired = sites()
            .filter(|&s| plan.decide(s, OpClass::Compare).is_some())
            .count();
        assert!((100..=320).contains(&fired), "fired {fired} of 2048");
        // Rate zero is disabled outright.
        assert!(!FaultPlan::random(42, 0).is_enabled());
        // Rate 1e6 fires everywhere.
        let always = FaultPlan::random(42, RATE_SCALE);
        assert!(sites().all(|s| always.decide(s, OpClass::Route).is_some()));
    }

    #[test]
    fn kind_mask_gates_op_classes() {
        let plan = FaultPlan::random_with_kinds(3, RATE_SCALE, &[FaultKind::DropRoute]);
        let site = FaultSite { round: 1, op: 2 };
        assert_eq!(plan.decide(site, OpClass::Compare), None);
        assert_eq!(plan.decide(site, OpClass::Resolve), None);
        assert_eq!(
            plan.decide(site, OpClass::Route),
            Some(FaultKind::DropRoute)
        );
    }

    #[test]
    fn single_fault_plan_fires_exactly_once() {
        let target = FaultSite { round: 5, op: 3 };
        let plan = FaultPlan::single(FaultKind::FlipCompare, target);
        assert!(plan.is_enabled());
        let fired: Vec<FaultSite> = sites()
            .filter(|&s| plan.decide(s, OpClass::Compare).is_some())
            .collect();
        assert_eq!(fired, vec![target]);
        // Wrong class at the target site: nothing fires.
        assert_eq!(plan.decide(target, OpClass::Route), None);
    }

    #[test]
    fn forked_lanes_decide_independently_but_deterministically() {
        let base = FaultPlan::random(99, 200_000);
        let stream = |p: &FaultPlan| -> Vec<bool> {
            sites()
                .map(|s| p.decide(s, OpClass::Compare).is_some())
                .collect()
        };
        assert_eq!(stream(&base.fork(4)), stream(&base.fork(4)));
        assert_ne!(stream(&base.fork(0)), stream(&base.fork(1)));
        // Single-site plans target the same site in every lane (the
        // sweep semantics exhaustive tests rely on).
        let single = FaultPlan::single(FaultKind::StallResolve, FaultSite { round: 2, op: 0 });
        assert_eq!(single.fork(0), single.fork(17));
    }

    #[test]
    fn kinds_map_to_classes_and_codes() {
        for kind in FaultKind::ALL {
            assert_eq!(kind.class().fault_kind(), kind);
            assert!(!kind.name().is_empty());
        }
        let codes: Vec<u64> = FaultKind::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(codes, vec![0, 1, 2]);
    }

    #[test]
    fn plans_serialize_roundtrip() {
        for plan in [
            FaultPlan::disabled(),
            FaultPlan::random(11, 5_000),
            FaultPlan::single(FaultKind::DropRoute, FaultSite { round: 9, op: 1 }),
        ] {
            let json = serde_json::to_string(&plan).expect("serialize");
            let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, plan);
        }
    }
}
