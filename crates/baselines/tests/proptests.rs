//! Property-based tests for the baseline sorters.

use pns_baselines::mesh::{oet_sort_rounds, read_mesh_snake, shearsort_mesh, shearsort_steps};
use pns_baselines::stone::{stone_sort, StoneCost};
use pns_baselines::{bitonic_sort_network, columnsort, odd_even_merge_sort_network};
use proptest::prelude::*;

proptest! {
    #[test]
    fn odd_even_merge_sort_network_sorts(k in 1usize..7, keys_seed in any::<u64>()) {
        let n = 1usize << k;
        let net = odd_even_merge_sort_network(n);
        prop_assert_eq!(net.depth(), k * (k + 1) / 2);
        let mut state = keys_seed;
        let mut keys: Vec<u32> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 35) as u32 % 500
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        net.apply(&mut keys);
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn bitonic_network_sorts(k in 1usize..7, keys_seed in any::<u64>()) {
        let n = 1usize << k;
        let net = bitonic_sort_network(n);
        let mut state = keys_seed;
        let mut keys: Vec<u32> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 35) as u32 % 500
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        net.apply(&mut keys);
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn stone_cost_matches_prediction(k in 1usize..10, seed in any::<u64>()) {
        let n = 1usize << k;
        let mut state = seed;
        let mut keys: Vec<u32> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 35) as u32
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let cost = stone_sort(&mut keys);
        prop_assert_eq!(keys, expect);
        prop_assert_eq!(cost, StoneCost::predicted(k));
    }

    #[test]
    fn columnsort_sorts_valid_shapes(cols in 1usize..6, mult in 1usize..4, seed in any::<u64>()) {
        let min_rows = (2 * (cols.saturating_sub(1)).pow(2)).max(1);
        let rows = min_rows.next_multiple_of(cols) * mult;
        let len = rows * cols;
        prop_assume!(len <= 4096);
        let mut state = seed;
        let keys: Vec<u32> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 35) as u32 % 777
            })
            .collect();
        let (sorted, cost) = columnsort(&keys, rows, cols);
        let mut expect = keys;
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
        prop_assert_eq!(cost.sort_rounds, 4);
    }

    #[test]
    fn oet_sorts_any_slice(keys in proptest::collection::vec(0u16..100, 1..64)) {
        let mut keys = keys;
        let mut expect = keys.clone();
        expect.sort_unstable();
        let rounds = oet_sort_rounds(&mut keys);
        prop_assert_eq!(rounds as usize, keys.len());
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn shearsort_sorts_meshes(n in 2usize..10, seed in any::<u64>()) {
        let len = n * n;
        let mut state = seed;
        let mut keys: Vec<u16> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 48) as u16 % 97
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let steps = shearsort_mesh(&mut keys, n);
        prop_assert_eq!(steps, shearsort_steps(n));
        prop_assert_eq!(read_mesh_snake(&keys, n), expect);
    }
}
