//! Leighton's Columnsort \[20\] — the multiway-merge competitor the paper's
//! introduction discusses: "ours outperforms Columnsort due to some
//! fundamental differences … our algorithm is based on a series of merge
//! processes recursively applied, while Columnsort is based on a series of
//! sorting steps".
//!
//! Columnsort sorts `r × s` keys (matrix of `r`-entry columns, sorted
//! output in column-major order) in eight phases — four full column-sort
//! phases interleaved with four fixed permutations — provided
//! `r ≥ 2(s-1)²` and `s | r`.

use std::cmp::Ordering;

/// Cost accounting for one Columnsort run, in the same "charged-unit"
/// spirit as the paper's `S2`/routing units: each of the four column-sort
/// phases is one parallel round of `r`-key sorts, and each of the four
/// permutations is one routing phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnsortCost {
    /// Parallel column-sort rounds (always 4).
    pub sort_rounds: u64,
    /// Fixed-permutation routing phases (always 4).
    pub permute_rounds: u64,
    /// Rows `r` (keys per column sort).
    pub rows: usize,
    /// Columns `s`.
    pub cols: usize,
}

/// Keys padded with sentinels for the shift phase.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Padded<K> {
    NegInf,
    Key(K),
    PosInf,
}

impl<K: Ord> PartialOrd for Padded<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Padded<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        use Padded::{Key, NegInf, PosInf};
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Key(a), Key(b)) => a.cmp(b),
        }
    }
}

/// Sort `keys` with Columnsort on an `rows × cols` matrix (column-major
/// layout and output), returning the sorted sequence and the cost.
///
/// # Panics
///
/// Panics unless `keys.len() == rows·cols`, `cols | rows`, and
/// `rows ≥ 2(cols-1)²` (Leighton's validity condition).
#[must_use]
pub fn columnsort<K: Ord + Clone>(
    keys: &[K],
    rows: usize,
    cols: usize,
) -> (Vec<K>, ColumnsortCost) {
    assert_eq!(keys.len(), rows * cols, "matrix shape mismatch");
    assert!(cols >= 1 && rows >= 1);
    assert_eq!(rows % cols, 0, "Columnsort requires s | r");
    assert!(
        rows >= 2 * (cols - 1) * (cols - 1),
        "Columnsort requires r ≥ 2(s-1)² (r={rows}, s={cols})"
    );

    // Column-major storage: m[j*rows + i] = entry (row i, column j).
    let mut m: Vec<K> = keys.to_vec();

    // Phase 1: sort each column.
    sort_columns(&mut m, rows);

    // Phase 2: "transpose": pick up in row-major order, set down in
    // column-major order (still r × s).
    m = unpermute(&m, rows, cols, |i, j| i * cols + j);

    // Phase 3.
    sort_columns(&mut m, rows);

    // Phase 4: untranspose (inverse of phase 2).
    m = permute(&m, rows, cols, |i, j| i * cols + j);

    // Phase 5.
    sort_columns(&mut m, rows);

    // Phases 6-8: shift the column-major stream forward by ⌊r/2⌋ into an
    // r × (s+1) matrix padded with -∞ / +∞, sort its columns, unshift.
    let h = rows / 2;
    let mut padded: Vec<Padded<K>> = Vec::with_capacity(rows * (cols + 1));
    padded.extend((0..h).map(|_| Padded::NegInf));
    padded.extend(m.iter().cloned().map(Padded::Key));
    padded.extend((0..rows - h).map(|_| Padded::PosInf));
    sort_columns(&mut padded, rows);
    let unshifted: Vec<K> = padded
        .into_iter()
        .skip(h)
        .take(rows * cols)
        .map(|p| match p {
            Padded::Key(k) => k,
            // After sorting, all -∞ sit in the first half-column and all
            // +∞ in the last; the middle slice is real keys.
            Padded::NegInf | Padded::PosInf => {
                unreachable!("sentinels cannot appear among the keys")
            }
        })
        .collect();

    let cost = ColumnsortCost {
        sort_rounds: 4,
        permute_rounds: 4,
        rows,
        cols,
    };
    (unshifted, cost)
}

fn sort_columns<K: Ord>(m: &mut [K], rows: usize) {
    for col in m.chunks_mut(rows) {
        col.sort_unstable();
    }
}

/// Apply the permutation: stream position `t` of the (column-major)
/// output receives the entry whose (row, col) satisfies `pos(i, j) == t`.
fn permute<K: Clone>(
    m: &[K],
    rows: usize,
    cols: usize,
    pos: impl Fn(usize, usize) -> usize,
) -> Vec<K> {
    let mut out = m.to_vec();
    for j in 0..cols {
        for i in 0..rows {
            out[pos(i, j)] = m[j * rows + i].clone();
        }
    }
    out
}

/// Inverse of [`permute`].
fn unpermute<K: Clone>(
    m: &[K],
    rows: usize,
    cols: usize,
    pos: impl Fn(usize, usize) -> usize,
) -> Vec<K> {
    let mut out = m.to_vec();
    for j in 0..cols {
        for i in 0..rows {
            out[j * rows + i] = m[pos(i, j)].clone();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rows: usize, cols: usize) {
        let n = rows * cols;
        let mut state = 5u64;
        for _ in 0..10 {
            let keys: Vec<u32> = (0..n)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i as u64);
                    (state >> 35) as u32 % 1000
                })
                .collect();
            let (sorted, cost) = columnsort(&keys, rows, cols);
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "r={rows} s={cols}");
            assert_eq!(cost.sort_rounds, 4);
            assert_eq!(cost.permute_rounds, 4);
        }
    }

    #[test]
    fn sorts_valid_shapes() {
        check(2, 1);
        check(4, 2);
        check(8, 2);
        check(9, 3);
        check(12, 3);
        check(32, 4);
        check(50, 5);
    }

    #[test]
    fn zero_one_exhaustive_8x2() {
        // Oblivious modulo correct column sorts: 0/1 exhaustive is a proof
        // for this shape.
        let (rows, cols) = (8usize, 2usize);
        let n = rows * cols;
        for mask in 0u32..(1 << n) {
            let keys: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
            let (sorted, _) = columnsort(&keys, rows, cols);
            assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "mask={mask:#x}");
        }
    }

    #[test]
    fn sorts_reverse_input() {
        let keys: Vec<u32> = (0..144u32).rev().collect();
        let (sorted, _) = columnsort(&keys, 48, 3);
        assert_eq!(sorted, (0..144).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "r ≥ 2(s-1)²")]
    fn rejects_too_flat_matrices() {
        let keys: Vec<u32> = (0..16).collect();
        let _ = columnsort(&keys, 4, 4);
    }

    #[test]
    #[should_panic(expected = "s | r")]
    fn rejects_non_divisible_rows() {
        let keys: Vec<u32> = (0..30).collect();
        let _ = columnsort(&keys, 10, 3);
    }
}
