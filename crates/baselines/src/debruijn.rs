//! Batcher's bitonic sort executed on the binary *de Bruijn* graph, with
//! every data movement checked against real de Bruijn edges.
//!
//! §5.5 rests on "Sorting N² keys on the N²-node shuffle-exchange or
//! de Bruijn networks can be done in O(log² n) time by Batcher algorithm
//! \[31\]". [`crate::stone`] executes the algorithm on the
//! shuffle-exchange graph; this module executes it on the de Bruijn graph
//! `B(2, k)`:
//!
//! * a *shuffle* (rotate-left of the node label) moves the key from `v`
//!   to `rotl(v) = (2v + topbit(v)) mod 2^k ∈ {2v, 2v+1} mod 2^k` — a
//!   genuine de Bruijn edge, so one shuffle costs one step;
//! * an *exchange* partner `v ^ 1` is **not** a de Bruijn neighbor, but
//!   both `v = 2w + e` and `v ^ 1 = 2w + (1-e)` are out-neighbors of
//!   `w = v >> 1`, so the compare routes through `w` in exactly two
//!   conflict-free steps (each relay `w` serves exactly its own child
//!   pair `(2w, 2w+1)`).
//!
//! Totals for `2^k` keys: `k²` shuffle steps + `2·k(k+1)/2` exchange
//! steps = `O(log² n)`, measured, with every hop asserted to be an edge.

use crate::stone::StoneCost;
use pns_graph::factories;
use pns_graph::Graph;

/// Step counts of one de Bruijn bitonic sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeBruijnSortCost {
    /// Shuffle steps (one per shuffle; each is a de Bruijn edge): `k²`.
    pub shuffle_steps: u64,
    /// Exchange steps (two per compare, routed via the shared parent):
    /// `k(k+1)`.
    pub exchange_steps: u64,
}

impl DeBruijnSortCost {
    /// Total steps.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.shuffle_steps + self.exchange_steps
    }

    /// Closed form for `2^k` keys.
    #[must_use]
    pub fn predicted(k: usize) -> Self {
        let stone = StoneCost::predicted(k);
        DeBruijnSortCost {
            shuffle_steps: stone.shuffle_steps,
            exchange_steps: 2 * stone.compare_steps,
        }
    }
}

/// Sort `keys` (length `2^k`, indexed by de Bruijn node label) ascending
/// by label, executing Stone's schedule with de Bruijn-legal moves only.
///
/// # Panics
///
/// Panics unless the length is a power of two ≥ 2, or if any scheduled
/// movement would not follow a de Bruijn edge (which would falsify the
/// §5.5 emulation argument — it never fires).
pub fn de_bruijn_sort<K: Ord + Clone>(keys: &mut [K]) -> DeBruijnSortCost {
    let n = keys.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "length must be a power of two ≥ 2"
    );
    let k = n.trailing_zeros() as usize;
    let mask = (n - 1) as u32;
    let graph = factories::de_bruijn(k);
    let rotl = |v: u32| ((v << 1) & mask) | (v >> (k - 1));
    let rotr = |v: u32, s: usize| {
        let s = s % k;
        if s == 0 {
            v
        } else {
            (v >> s) | ((v << (k - s)) & mask)
        }
    };
    let assert_edge = |a: u32, b: u32, what: &str| {
        assert!(
            a == b || graph.has_edge(a, b),
            "{what}: ({a}, {b}) is not a de Bruijn edge"
        );
    };

    let mut cost = DeBruijnSortCost {
        shuffle_steps: 0,
        exchange_steps: 0,
    };
    let mut shuffles_done = 0usize;
    let mut scratch: Vec<Option<K>> = vec![None; n];

    for stage in 0..k {
        for t in 1..=k {
            // Shuffle round: key at v moves to rotl(v) — a de Bruijn edge.
            for v in 0..n as u32 {
                assert_edge(v, rotl(v), "shuffle");
                scratch[rotl(v) as usize] = Some(keys[v as usize].clone());
            }
            for (dst, slot) in keys.iter_mut().zip(scratch.iter_mut()) {
                *dst = slot.take().expect("shuffle is a permutation");
            }
            shuffles_done += 1;
            cost.shuffle_steps += 1;

            let dim = k - t;
            if dim > stage {
                continue;
            }
            // Exchange-compare: pair (2w, 2w+1) routes through w — two
            // steps, both de Bruijn edges, one relay per pair.
            for w in 0..(n / 2) as u32 {
                let (v, u) = (2 * w, 2 * w + 1);
                assert_edge(v, w, "exchange down");
                assert_edge(u, w, "exchange down");
                assert_edge(w, v, "exchange up");
                assert_edge(w, u, "exchange up");
                let lx = rotr(v, shuffles_done);
                let ly = rotr(u, shuffles_done);
                debug_assert_eq!(lx ^ ly, 1 << dim);
                let (lo_node, lo_logical) = if lx < ly { (v, lx) } else { (u, ly) };
                let hi_node = lo_node ^ 1;
                let ascending = (lo_logical >> (stage + 1)) & 1 == 0;
                let out_of_order = if ascending {
                    keys[lo_node as usize] > keys[hi_node as usize]
                } else {
                    keys[lo_node as usize] < keys[hi_node as usize]
                };
                if out_of_order {
                    keys.swap(lo_node as usize, hi_node as usize);
                }
            }
            cost.exchange_steps += 2;
        }
    }
    debug_assert_eq!(shuffles_done % k, 0);
    cost
}

/// The de Bruijn graph the sorter runs on (exposed for callers that want
/// to inspect or render it).
#[must_use]
pub fn network(k: usize) -> Graph {
    factories::de_bruijn(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_costs_match_closed_form() {
        for k in 1..=8usize {
            let n = 1usize << k;
            let mut keys: Vec<u32> = (0..n as u32).rev().collect();
            let cost = de_bruijn_sort(&mut keys);
            assert_eq!(keys, (0..n as u32).collect::<Vec<_>>(), "k={k}");
            assert_eq!(cost, DeBruijnSortCost::predicted(k), "k={k}");
        }
    }

    #[test]
    fn zero_one_exhaustive_small() {
        for k in 1..=4usize {
            let n = 1usize << k;
            for mask in 0u32..(1 << n) {
                let mut keys: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
                let _ = de_bruijn_sort(&mut keys);
                assert!(
                    keys.windows(2).all(|w| w[0] <= w[1]),
                    "k={k} mask={mask:#x}"
                );
            }
        }
    }

    #[test]
    fn cost_is_o_log_squared() {
        let c = DeBruijnSortCost::predicted(10);
        assert_eq!(c.shuffle_steps, 100);
        assert_eq!(c.exchange_steps, 110);
        assert_eq!(c.total(), 210);
    }

    #[test]
    fn agrees_with_stone_on_the_data() {
        // Same schedule, different network: results must be identical.
        let mut a: Vec<u16> = (0..64).map(|i| (i * 37) % 64).collect();
        let mut b = a.clone();
        let _ = de_bruijn_sort(&mut a);
        let _ = crate::stone::stone_sort(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn random_keys_with_duplicates() {
        let mut state = 17u64;
        for k in [5usize, 7] {
            let n = 1usize << k;
            let mut keys: Vec<u8> = (0..n)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i as u64);
                    (state >> 56) as u8 % 13
                })
                .collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            let _ = de_bruijn_sort(&mut keys);
            assert_eq!(keys, expect, "k={k}");
        }
    }
}
