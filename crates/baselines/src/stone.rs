//! Stone's bitonic sort on the shuffle-exchange network \[31\].
//!
//! Section 5.5 rests on this algorithm: sorting `n = 2^k` keys on the
//! `n`-node shuffle-exchange graph in `O(log² n)` steps. Data moves only
//! along *shuffle* edges (cyclic left rotation of the node label) and
//! compares only across *exchange* edges (flip of the lowest label bit).
//!
//! After `S` shuffles, the key that started at logical index `x` sits at
//! node `rotl_S(x)`, so the exchange edge compares logical indices
//! differing in bit `(-S) mod k`. One pass of `k` shuffles therefore makes
//! dimensions `k-1, k-2, …, 0` available in exactly the order the bitonic
//! stages need them; stage `i` uses the last `i + 1` of its pass.
//! Totals: `k²` shuffle steps and `k(k+1)/2` compare steps.

/// Step counts of one Stone sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoneCost {
    /// Shuffle (routing) steps: `k²`.
    pub shuffle_steps: u64,
    /// Compare-exchange steps: `k(k+1)/2`.
    pub compare_steps: u64,
}

impl StoneCost {
    /// Total steps.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.shuffle_steps + self.compare_steps
    }

    /// The closed forms for `2^k` keys.
    #[must_use]
    pub fn predicted(k: usize) -> Self {
        let k = k as u64;
        StoneCost {
            shuffle_steps: k * k,
            compare_steps: k * (k + 1) / 2,
        }
    }
}

/// Sort `keys` (length `2^k`, indexed by shuffle-exchange node label) in
/// place, ascending by node label, simulating the physical data movement.
///
/// ```
/// use pns_baselines::stone::{stone_sort, StoneCost};
///
/// let mut keys: Vec<u32> = (0..16).rev().collect();
/// let cost = stone_sort(&mut keys);
/// assert_eq!(keys, (0..16).collect::<Vec<u32>>());
/// assert_eq!(cost, StoneCost::predicted(4)); // 16 shuffles + 10 compares
/// ```
///
/// # Panics
///
/// Panics unless the length is a power of two ≥ 2.
pub fn stone_sort<K: Ord + Clone>(keys: &mut [K]) -> StoneCost {
    let n = keys.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "length must be a power of two ≥ 2"
    );
    let k = n.trailing_zeros() as usize;
    let mask = (n - 1) as u32;
    let rotl = |v: u32| ((v << 1) & mask) | (v >> (k - 1));
    let rotr = |v: u32, s: usize| {
        let s = s % k;
        if s == 0 {
            v
        } else {
            (v >> s) | ((v << (k - s)) & mask)
        }
    };

    let mut cost = StoneCost {
        shuffle_steps: 0,
        compare_steps: 0,
    };
    let mut shuffles_done = 0usize;
    let mut scratch: Vec<Option<K>> = vec![None; n];

    for stage in 0..k {
        for t in 1..=k {
            // Shuffle: the key at node v moves to node rotl(v).
            for v in 0..n as u32 {
                scratch[rotl(v) as usize] = Some(keys[v as usize].clone());
            }
            for (dst, slot) in keys.iter_mut().zip(scratch.iter_mut()) {
                *dst = slot.take().expect("shuffle is a permutation");
            }
            shuffles_done += 1;
            cost.shuffle_steps += 1;

            // The exchange edge now compares logical dimension k - t.
            let dim = k - t;
            if dim > stage {
                continue;
            }
            for v in (0..n as u32).step_by(2) {
                let w = v | 1;
                let lx = rotr(v, shuffles_done);
                let ly = rotr(w, shuffles_done);
                debug_assert_eq!(lx ^ ly, 1 << dim, "exchange spans logical dim {dim}");
                // Node holding the lower logical index.
                let (lo_node, lo_logical) = if lx < ly { (v, lx) } else { (w, ly) };
                let hi_node = lo_node ^ 1;
                let ascending = (lo_logical >> (stage + 1)) & 1 == 0;
                let out_of_order = if ascending {
                    keys[lo_node as usize] > keys[hi_node as usize]
                } else {
                    keys[lo_node as usize] < keys[hi_node as usize]
                };
                if out_of_order {
                    keys.swap(lo_node as usize, hi_node as usize);
                }
            }
            cost.compare_steps += 1;
        }
    }
    debug_assert_eq!(shuffles_done % k, 0, "labels return to logical order");
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_reversed_input() {
        for k in 1..=8usize {
            let n = 1usize << k;
            let mut keys: Vec<u32> = (0..n as u32).rev().collect();
            let cost = stone_sort(&mut keys);
            assert_eq!(keys, (0..n as u32).collect::<Vec<_>>(), "k={k}");
            assert_eq!(cost, StoneCost::predicted(k), "k={k}");
        }
    }

    #[test]
    fn zero_one_exhaustive_small() {
        for k in 1..=4usize {
            let n = 1usize << k;
            for mask in 0u32..(1 << n) {
                let mut keys: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
                let _ = stone_sort(&mut keys);
                assert!(
                    keys.windows(2).all(|w| w[0] <= w[1]),
                    "k={k} mask={mask:#x}"
                );
            }
        }
    }

    #[test]
    fn sorts_random_keys_with_duplicates() {
        let mut state = 7u64;
        for k in [5usize, 7] {
            let n = 1usize << k;
            let mut keys: Vec<u8> = (0..n)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i as u64);
                    (state >> 56) as u8 % 17
                })
                .collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            let _ = stone_sort(&mut keys);
            assert_eq!(keys, expect, "k={k}");
        }
    }

    #[test]
    fn cost_is_quadratic_in_k() {
        let c = StoneCost::predicted(10);
        assert_eq!(c.shuffle_steps, 100);
        assert_eq!(c.compare_steps, 55);
        assert_eq!(c.total(), 155);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_lengths() {
        let mut keys = vec![3u8, 1, 2];
        let _ = stone_sort(&mut keys);
    }
}
