//! Least-significant-byte radix sort, in the `timely_sort` idiom: a
//! reusable sorter object that owns its 256 buckets, sorting batches
//! through a key-extraction closure so one sorter instance serves many
//! record types and many calls without reallocating.
//!
//! This is the *sequence-level* baseline for the experiment tables: no
//! comparator network, no topology, just the fastest reasonable
//! single-thread integer sort — the number the compiled network tiers
//! are measured against on equal batches.

/// Radix base: one byte per pass.
const BUCKETS: usize = 256;

/// A reusable LSB radix sorter. Buckets keep their capacity between
/// calls, so steady-state sorting of same-sized batches allocates
/// nothing new.
#[derive(Debug)]
pub struct LsbRadixSorter<T> {
    buckets: Vec<Vec<T>>,
}

impl<T> Default for LsbRadixSorter<T> {
    fn default() -> Self {
        LsbRadixSorter::new()
    }
}

impl<T> LsbRadixSorter<T> {
    /// A sorter with empty buckets.
    #[must_use]
    pub fn new() -> Self {
        LsbRadixSorter {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
        }
    }

    /// Sort `items` in place, ascending by `key(item)`. Stable: equal
    /// keys keep their input order (each pass distributes and collects
    /// in order — the classic LSB argument).
    ///
    /// Passes whose key byte is constant across the batch are skipped,
    /// so narrow keys (e.g. all below 2⁸) cost one distribution pass,
    /// not eight.
    pub fn sort_by_key<F: Fn(&T) -> u64>(&mut self, items: &mut Vec<T>, key: F) {
        if items.len() < 2 {
            return;
        }
        // One scan decides which of the 8 byte positions vary.
        let first = key(&items[0]);
        let mut varying = 0u8;
        for item in items.iter() {
            let diff = key(item) ^ first;
            for byte in 0..8 {
                if (diff >> (8 * byte)) & 0xFF != 0 {
                    varying |= 1 << byte;
                }
            }
        }
        for byte in 0..8 {
            if varying & (1 << byte) == 0 {
                continue;
            }
            let shift = 8 * byte;
            for item in items.drain(..) {
                let b = ((key(&item) >> shift) & 0xFF) as usize;
                self.buckets[b].push(item);
            }
            for bucket in &mut self.buckets {
                items.append(bucket); // leaves the bucket empty, capacity kept
            }
        }
    }
}

impl LsbRadixSorter<u64> {
    /// Sort plain `u64` keys in place, ascending.
    pub fn sort_u64(&mut self, keys: &mut Vec<u64>) {
        self.sort_by_key(keys, |&k| k);
    }
}

/// One-shot convenience: sort `keys` ascending with a fresh
/// [`LsbRadixSorter`].
pub fn radix_sort_u64(keys: &mut Vec<u64>) {
    LsbRadixSorter::new().sort_u64(keys);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect()
    }

    #[test]
    fn matches_std_sort_on_random_keys() {
        let mut sorter = LsbRadixSorter::new();
        for (seed, len) in [(1u64, 0usize), (2, 1), (3, 2), (4, 100), (5, 1000)] {
            let mut keys = lcg(seed, len);
            let mut expect = keys.clone();
            expect.sort_unstable();
            sorter.sort_u64(&mut keys);
            assert_eq!(keys, expect, "seed={seed} len={len}");
        }
    }

    #[test]
    fn narrow_keys_and_extremes_sort() {
        let mut sorter = LsbRadixSorter::new();
        let mut keys: Vec<u64> = (0..200u64).rev().map(|x| x % 7).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        sorter.sort_u64(&mut keys);
        assert_eq!(keys, expect);

        let mut keys = vec![u64::MAX, 0, u64::MAX - 1, 1, u64::MAX, 0];
        let mut expect = keys.clone();
        expect.sort_unstable();
        sorter.sort_u64(&mut keys);
        assert_eq!(keys, expect);

        let mut same = vec![42u64; 64];
        sorter.sort_u64(&mut same);
        assert_eq!(same, vec![42u64; 64], "constant batch: every pass skips");
    }

    #[test]
    fn sorts_records_by_key_stably() {
        // (key, sequence) pairs: equal keys must keep input order.
        let mut records: Vec<(u64, usize)> = lcg(9, 500)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k % 16, i))
            .collect();
        let mut expect = records.clone();
        expect.sort_by_key(|&(k, i)| (k, i)); // stable order == (key, seq)
        let mut sorter = LsbRadixSorter::new();
        sorter.sort_by_key(&mut records, |&(k, _)| k);
        assert_eq!(records, expect);
    }

    #[test]
    fn sorter_is_reusable_across_batches_and_types_of_batch() {
        let mut sorter = LsbRadixSorter::new();
        for seed in 0..10u64 {
            let mut keys = lcg(seed, 256);
            let mut expect = keys.clone();
            expect.sort_unstable();
            sorter.sort_u64(&mut keys);
            assert_eq!(keys, expect, "seed={seed}");
        }
        let mut keys = lcg(77, 10_000);
        let mut expect = keys.clone();
        expect.sort_unstable();
        radix_sort_u64(&mut keys);
        assert_eq!(keys, expect);
    }
}
