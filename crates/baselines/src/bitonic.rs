//! Batcher's bitonic sorting network and its hypercube schedule.
//!
//! Bitonic sort of `2^k` keys runs in `k(k+1)/2` rounds; in each round
//! every comparator spans a single bit dimension, so the network maps to
//! the `k`-dimensional hypercube with one compare-exchange step per round
//! — the classic hypercube sorting benchmark the paper's `O(r²)` hypercube
//! result is compared against.

use crate::network::ComparatorNetwork;

/// The bitonic sorting network for `n = 2^k` lines (ascending output).
///
/// Round structure: stages `i = 0 … k-1`; stage `i` runs dimensions
/// `j = i, i-1, …, 0`. A comparator pairs `x` with `x | 1<<j` (for `x`
/// with bit `j` clear); the minimum goes to the lower index iff bit
/// `i + 1` of `x` is clear (ascending region), giving alternating
/// monotonic runs that the next stage merges.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
#[must_use]
pub fn bitonic_sort_network(n: usize) -> ComparatorNetwork {
    let rounds = bitonic_rounds(n);
    ComparatorNetwork::new(n, rounds.into_iter().map(|(_, r)| r).collect())
}

/// The same network with each round tagged by its bit dimension — the
/// hypercube schedule: round `(j, comparators)` is one compare-exchange
/// step across hypercube dimension `j`.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
#[must_use]
pub fn bitonic_hypercube_schedule(n: usize) -> Vec<(usize, Vec<(u32, u32)>)> {
    bitonic_rounds(n)
}

fn bitonic_rounds(n: usize) -> Vec<(usize, Vec<(u32, u32)>)> {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two ≥ 2"
    );
    let k = n.trailing_zeros() as usize;
    let mut rounds = Vec::with_capacity(k * (k + 1) / 2);
    for i in 0..k {
        for j in (0..=i).rev() {
            let mut round = Vec::with_capacity(n / 2);
            for x in 0..n as u32 {
                if x & (1 << j) != 0 {
                    continue;
                }
                let y = x | (1 << j);
                let ascending = (x >> (i + 1)) & 1 == 0;
                round.push(if ascending { (x, y) } else { (y, x) });
            }
            rounds.push((j, round));
        }
    }
    rounds
}

/// Number of compare-exchange rounds bitonic sort takes on the hypercube:
/// `k(k+1)/2` for `2^k` keys.
#[inline]
#[must_use]
pub fn bitonic_hypercube_steps(k: usize) -> u64 {
    (k as u64) * (k as u64 + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitonic_is_a_sorting_network() {
        for k in 1..=4usize {
            let n = 1 << k;
            let net = bitonic_sort_network(n);
            assert!(net.is_sorting_network(), "n={n}");
            assert_eq!(net.depth() as u64, bitonic_hypercube_steps(k));
        }
    }

    #[test]
    fn every_round_is_a_single_hypercube_dimension() {
        for k in 1..=5usize {
            let n = 1 << k;
            for (j, round) in bitonic_hypercube_schedule(n) {
                assert_eq!(round.len(), n / 2, "every node participates");
                for &(a, b) in &round {
                    assert_eq!(
                        (a ^ b),
                        1 << j,
                        "comparator ({a},{b}) not along dimension {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn sorts_random_keys() {
        let net = bitonic_sort_network(64);
        let mut state = 99u64;
        for _ in 0..30 {
            let mut keys: Vec<u32> = (0..64)
                .map(|i| {
                    state = state.wrapping_mul(2862933555777941757).wrapping_add(i);
                    (state >> 33) as u32
                })
                .collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            net.apply(&mut keys);
            assert_eq!(keys, expect);
        }
    }

    #[test]
    fn descending_comparators_exist() {
        // Sanity: the network genuinely uses both orientations.
        let net = bitonic_sort_network(8);
        let has_desc = net.rounds().iter().flatten().any(|&(a, b)| a > b);
        assert!(has_desc);
    }
}
