//! Baseline sorting algorithms the paper builds on or compares against.
//!
//! * [`network`] — a comparator-network framework (size, depth, zero-one
//!   validation): the common substrate of everything Batcher-derived.
//! * [`batcher`] — Batcher's odd-even merging networks and the odd-even
//!   merge sort \[2\], of which the paper's algorithm is the generalization
//!   (and, on the hypercube, a special case).
//! * [`bitonic`] — Batcher's other network: bitonic sort, plus its
//!   canonical hypercube schedule (one bit-dimension per round,
//!   `k(k+1)/2` rounds for `2^k` keys).
//! * [`stone`] — Stone's realization of bitonic sort on the
//!   shuffle-exchange network \[31\], used by §5.5 for products of de Bruijn
//!   and shuffle-exchange graphs.
//! * [`columnsort`](mod@columnsort) — Leighton's Columnsort \[20\], the multiway competitor
//!   discussed in the introduction.
//! * [`debruijn`] — the same bitonic schedule executed on the *de Bruijn*
//!   graph with every hop checked against real edges (§5.5's other
//!   network).
//! * [`mesh`] — mesh baselines: odd-even transposition sort on the linear
//!   array and shearsort on the 2-D mesh (snake order).
//! * [`radix`] — a reusable LSB radix sorter (the `timely_sort` idiom):
//!   the sequence-level baseline the network tiers are measured against.

pub mod batcher;
pub mod bitonic;
pub mod columnsort;
pub mod debruijn;
pub mod mesh;
pub mod network;
pub mod radix;
pub mod stone;

pub use batcher::{odd_even_merge_network, odd_even_merge_sort_network};
pub use bitonic::{bitonic_hypercube_schedule, bitonic_sort_network};
pub use columnsort::{columnsort, ColumnsortCost};
pub use debruijn::{de_bruijn_sort, DeBruijnSortCost};
pub use mesh::{oet_sort_rounds, shearsort_mesh, shearsort_steps};
pub use network::ComparatorNetwork;
pub use radix::{radix_sort_u64, LsbRadixSorter};
pub use stone::{stone_sort, StoneCost};
