//! Mesh baselines: odd-even transposition on the linear array and
//! shearsort on the two-dimensional mesh (snake order).
//!
//! These are the standalone versions of the building blocks the simulator
//! uses as executable `PG_2` sorters, with their exact step counts — the
//! practical stand-ins for the Schnorr–Shamir `3N + o(N)` sorter whose
//! constant the charged cost models cite.

/// Odd-even transposition sort on a linear array of `n` keys: exactly `n`
/// compare-exchange rounds. Returns the number of rounds (always `n`).
pub fn oet_sort_rounds<K: Ord>(keys: &mut [K]) -> u64 {
    let n = keys.len();
    for round in 0..n {
        let mut i = round % 2;
        while i + 1 < n {
            if keys[i] > keys[i + 1] {
                keys.swap(i, i + 1);
            }
            i += 2;
        }
    }
    n as u64
}

/// Exact step count of [`shearsort_mesh`] for an `n × n` mesh:
/// `n · (2⌈log₂ n⌉ + 1)` compare-exchange rounds.
#[must_use]
pub fn shearsort_steps(n: usize) -> u64 {
    let phases = if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    };
    n as u64 * (2 * phases.max(1) + 1)
}

/// Shearsort an `n × n` mesh into *snake order*: `keys[i*n + j]` is the
/// entry at row `i`, column `j`; on return, reading row 0 left-to-right,
/// row 1 right-to-left, … gives a nondecreasing sequence. Returns the
/// number of compare-exchange rounds ([`shearsort_steps`]).
pub fn shearsort_mesh<K: Ord>(keys: &mut [K], n: usize) -> u64 {
    assert_eq!(keys.len(), n * n, "keys must fill the mesh");
    let phases = if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
    .max(1);
    let mut steps = 0u64;
    for _ in 0..phases {
        steps += row_phase(keys, n);
        steps += col_phase(keys, n);
    }
    steps += row_phase(keys, n);
    debug_assert_eq!(steps, shearsort_steps(n));
    steps
}

/// Sort every row in its boustrophedon direction (row `i` ascending
/// left-to-right iff `i` is even) with `n` OET rounds.
fn row_phase<K: Ord>(keys: &mut [K], n: usize) -> u64 {
    for round in 0..n {
        let parity = round % 2;
        for i in 0..n {
            let asc = i % 2 == 0;
            let mut j = parity;
            while j + 1 < n {
                let (a, b) = (i * n + j, i * n + j + 1);
                let bad = if asc {
                    keys[a] > keys[b]
                } else {
                    keys[a] < keys[b]
                };
                if bad {
                    keys.swap(a, b);
                }
                j += 2;
            }
        }
    }
    n as u64
}

/// Sort every column top-to-bottom ascending with `n` OET rounds.
fn col_phase<K: Ord>(keys: &mut [K], n: usize) -> u64 {
    for round in 0..n {
        let parity = round % 2;
        for j in 0..n {
            let mut i = parity;
            while i + 1 < n {
                let (a, b) = (i * n + j, (i + 1) * n + j);
                if keys[a] > keys[b] {
                    keys.swap(a, b);
                }
                i += 2;
            }
        }
    }
    n as u64
}

/// Read a mesh configuration in snake order.
#[must_use]
pub fn read_mesh_snake<K: Clone>(keys: &[K], n: usize) -> Vec<K> {
    let mut out = Vec::with_capacity(n * n);
    for i in 0..n {
        if i % 2 == 0 {
            out.extend(keys[i * n..(i + 1) * n].iter().cloned());
        } else {
            out.extend(keys[i * n..(i + 1) * n].iter().rev().cloned());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oet_sorts_and_costs_n() {
        let mut keys = vec![5, 3, 8, 1, 9, 2, 7];
        let rounds = oet_sort_rounds(&mut keys);
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
        assert_eq!(rounds, 7);
    }

    #[test]
    fn shearsort_sorts_into_snake_order() {
        for n in [2usize, 3, 4, 5, 8] {
            let len = n * n;
            let mut keys: Vec<u32> = (0..len as u32).rev().collect();
            let steps = shearsort_mesh(&mut keys, n);
            assert_eq!(steps, shearsort_steps(n));
            let snake = read_mesh_snake(&keys, n);
            assert_eq!(snake, (0..len as u32).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn shearsort_zero_one_exhaustive_3x3() {
        for mask in 0u32..(1 << 9) {
            let mut keys: Vec<u8> = (0..9).map(|i| ((mask >> i) & 1) as u8).collect();
            let _ = shearsort_mesh(&mut keys, 3);
            let snake = read_mesh_snake(&keys, 3);
            assert!(snake.windows(2).all(|w| w[0] <= w[1]), "mask={mask:#b}");
        }
    }

    #[test]
    fn shearsort_steps_formula() {
        assert_eq!(shearsort_steps(2), 2 * 3); // ⌈log 2⌉ = 1
        assert_eq!(shearsort_steps(4), 4 * 5); // ⌈log 4⌉ = 2
        assert_eq!(shearsort_steps(5), 5 * 7); // ⌈log 5⌉ = 3
        assert_eq!(shearsort_steps(16), 16 * 9);
    }

    #[test]
    fn shearsort_is_o_n_log_n_vs_oet_n_squared() {
        // The comparison the paper's S2 choice cares about: for large N,
        // shearsort's N(2 log N + 1) beats OET's N².
        for n in [16usize, 64, 256] {
            assert!(shearsort_steps(n) < (n * n) as u64);
        }
    }

    #[test]
    fn random_keys_with_duplicates() {
        let n = 6;
        let mut state = 1u64;
        let mut keys: Vec<u8> = (0..36)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
                (state >> 59) as u8
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        shearsort_mesh(&mut keys, n);
        assert_eq!(read_mesh_snake(&keys, n), expect);
    }
}
