//! Comparator networks: the oblivious-sorting substrate.
//!
//! A comparator network over `n` lines is a sequence of *rounds*; each
//! round is a set of disjoint comparators `(a, b)` that place the minimum
//! on line `a` and the maximum on line `b` (for bitonic networks `a > b`
//! comparators occur). Networks are oblivious, so the zero-one principle
//! (Knuth; the paper's correctness tool) applies: a network sorts
//! everything iff it sorts all `2^n` zero-one inputs.

/// A comparator network grouped into parallel rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparatorNetwork {
    n: usize,
    rounds: Vec<Vec<(u32, u32)>>,
}

impl ComparatorNetwork {
    /// Build from rounds, validating ranges, ordering and per-round
    /// disjointness.
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    #[must_use]
    pub fn new(n: usize, rounds: Vec<Vec<(u32, u32)>>) -> Self {
        for (ri, round) in rounds.iter().enumerate() {
            let mut used = vec![false; n];
            for &(i, j) in round {
                assert!(i != j, "round {ri}: degenerate comparator ({i},{j})");
                assert!(
                    (i as usize) < n && (j as usize) < n,
                    "round {ri}: comparator ({i},{j}) out of range"
                );
                for v in [i, j] {
                    assert!(!used[v as usize], "round {ri}: line {v} reused");
                    used[v as usize] = true;
                }
            }
        }
        ComparatorNetwork { n, rounds }
    }

    /// Number of lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.n
    }

    /// Depth (number of parallel rounds).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.rounds.len()
    }

    /// Size (total number of comparators).
    #[must_use]
    pub fn size(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// The rounds.
    #[must_use]
    pub fn rounds(&self) -> &[Vec<(u32, u32)>] {
        &self.rounds
    }

    /// Apply the network to `keys` in place.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != lines()`.
    pub fn apply<K: Ord>(&self, keys: &mut [K]) {
        assert_eq!(keys.len(), self.n);
        for round in &self.rounds {
            for &(i, j) in round {
                if keys[i as usize] > keys[j as usize] {
                    keys.swap(i as usize, j as usize);
                }
            }
        }
    }

    /// Exhaustive zero-one validation (feasible for `n ≤ ~22`).
    #[must_use]
    pub fn is_sorting_network(&self) -> bool {
        assert!(self.n <= 22, "exhaustive check is exponential in n");
        for mask in 0u64..(1 << self.n) {
            let mut keys: Vec<u8> = (0..self.n).map(|i| ((mask >> i) & 1) as u8).collect();
            self.apply(&mut keys);
            if !keys.windows(2).all(|w| w[0] <= w[1]) {
                return false;
            }
        }
        true
    }

    /// Concatenate another network (runs after this one).
    #[must_use]
    pub fn then(mut self, other: ComparatorNetwork) -> ComparatorNetwork {
        assert_eq!(self.n, other.n, "line counts must match");
        self.rounds.extend(other.rounds);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_sorter() -> ComparatorNetwork {
        ComparatorNetwork::new(3, vec![vec![(0, 1)], vec![(1, 2)], vec![(0, 1)]])
    }

    #[test]
    fn three_line_sorter_sorts() {
        let net = three_sorter();
        assert_eq!(net.depth(), 3);
        assert_eq!(net.size(), 3);
        assert!(net.is_sorting_network());
        let mut keys = vec![3, 1, 2];
        net.apply(&mut keys);
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn incomplete_network_is_detected() {
        // Only one comparator: cannot sort 3 lines.
        let net = ComparatorNetwork::new(3, vec![vec![(0, 1)]]);
        assert!(!net.is_sorting_network());
    }

    #[test]
    fn then_concatenates() {
        let a = ComparatorNetwork::new(3, vec![vec![(0, 1)]]);
        let b = ComparatorNetwork::new(3, vec![vec![(1, 2)], vec![(0, 1)]]);
        let c = a.then(b);
        assert_eq!(c.depth(), 3);
        assert!(c.is_sorting_network());
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn rejects_overlap_within_round() {
        let _ = ComparatorNetwork::new(3, vec![vec![(0, 1), (1, 2)]]);
    }

    #[test]
    fn reversed_comparator_places_min_on_first_line() {
        let net = ComparatorNetwork::new(2, vec![vec![(1, 0)]]);
        let mut keys = vec![1, 5];
        net.apply(&mut keys);
        assert_eq!(keys, vec![5, 1], "min moved to line 1");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_degenerate_comparators() {
        let _ = ComparatorNetwork::new(3, vec![vec![(1, 1)]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = ComparatorNetwork::new(2, vec![vec![(0, 5)]]);
    }
}
