//! Batcher's odd-even merging and sorting networks \[2\] — the algorithm
//! this paper generalizes. On the hypercube, "Batcher algorithm is a
//! special case of our algorithm" (Section 5.3).

use crate::network::ComparatorNetwork;

/// Batcher's odd-even *merge* network over the line indices `idx`
/// (a power-of-two count), assuming each half of `idx` carries a sorted
/// sequence: returns the rounds that merge them.
fn merge_rounds(idx: &[u32]) -> Vec<Vec<(u32, u32)>> {
    match idx.len() {
        0 | 1 => Vec::new(),
        2 => vec![vec![(idx[0], idx[1])]],
        len => {
            let evens: Vec<u32> = idx.iter().copied().step_by(2).collect();
            let odds: Vec<u32> = idx.iter().copied().skip(1).step_by(2).collect();
            let re = merge_rounds(&evens);
            let ro = merge_rounds(&odds);
            // Even and odd sub-merges run in parallel: zip their rounds.
            let mut rounds = zip_rounds(re, ro);
            // Final cleanup: compare (1,2), (3,4), …
            let mut last = Vec::with_capacity(len / 2 - 1);
            let mut i = 1;
            while i + 1 < len {
                last.push((idx[i], idx[i + 1]));
                i += 2;
            }
            rounds.push(last);
            rounds
        }
    }
}

fn zip_rounds(a: Vec<Vec<(u32, u32)>>, b: Vec<Vec<(u32, u32)>>) -> Vec<Vec<(u32, u32)>> {
    let depth = a.len().max(b.len());
    let mut out = vec![Vec::new(); depth];
    for (i, round) in a.into_iter().enumerate() {
        out[i].extend(round);
    }
    for (i, round) in b.into_iter().enumerate() {
        out[i].extend(round);
    }
    out
}

fn sort_rounds(idx: &[u32]) -> Vec<Vec<(u32, u32)>> {
    if idx.len() <= 1 {
        return Vec::new();
    }
    let (lo, hi) = idx.split_at(idx.len() / 2);
    let rounds = zip_rounds(sort_rounds(lo), sort_rounds(hi));
    let mut rounds = rounds;
    rounds.extend(merge_rounds(idx));
    rounds
}

/// Batcher's odd-even merge network for two sorted halves of `n = 2^t`
/// lines. Depth `t`, size `(t-1)·2^{t-1} + 1`.
///
/// # Panics
///
/// Panics unless `n` is a power of two, `n ≥ 2`.
#[must_use]
pub fn odd_even_merge_network(n: usize) -> ComparatorNetwork {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two ≥ 2"
    );
    let idx: Vec<u32> = (0..n as u32).collect();
    ComparatorNetwork::new(n, merge_rounds(&idx))
}

/// Batcher's odd-even merge *sort* network for `n = 2^k` lines. Depth
/// `k(k+1)/2`.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
#[must_use]
pub fn odd_even_merge_sort_network(n: usize) -> ComparatorNetwork {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two ≥ 2"
    );
    let idx: Vec<u32> = (0..n as u32).collect();
    ComparatorNetwork::new(n, sort_rounds(&idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_network_merges_sorted_halves() {
        for t in 1..=4usize {
            let n = 1 << t;
            let net = odd_even_merge_network(n);
            assert_eq!(net.depth(), t, "depth is log n");
            // All two-sorted-halves 0/1 inputs: zeros counts (a, b).
            for a in 0..=n / 2 {
                for b in 0..=n / 2 {
                    let mut keys: Vec<u8> = Vec::with_capacity(n);
                    keys.extend(std::iter::repeat_n(0, a));
                    keys.extend(std::iter::repeat_n(1, n / 2 - a));
                    keys.extend(std::iter::repeat_n(0, b));
                    keys.extend(std::iter::repeat_n(1, n / 2 - b));
                    net.apply(&mut keys);
                    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "n={n} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn sort_network_is_a_sorting_network() {
        for k in 1..=4usize {
            let n = 1 << k;
            let net = odd_even_merge_sort_network(n);
            assert!(net.is_sorting_network(), "n={n}");
            assert_eq!(net.depth(), k * (k + 1) / 2, "depth is k(k+1)/2");
        }
    }

    #[test]
    fn sort_network_size_matches_knuth_formula() {
        // Knuth 5.3.4: odd-even merge sort of 2^k keys uses
        // (k² - k + 4)·2^{k-2} - 1 comparators: 1, 5, 19, 63, 191, 543.
        let expect = [1usize, 5, 19, 63, 191, 543];
        for (k, &e) in (1..=6usize).zip(&expect) {
            let net = odd_even_merge_sort_network(1 << k);
            assert_eq!(net.size(), e, "k={k}");
        }
    }

    #[test]
    fn sorts_random_permutations() {
        let net = odd_even_merge_sort_network(32);
        let mut state = 12345u64;
        for _ in 0..50 {
            let mut keys: Vec<u64> = (0..32)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
                    state >> 40
                })
                .collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            net.apply(&mut keys);
            assert_eq!(keys, expect);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = odd_even_merge_sort_network(6);
    }
}
