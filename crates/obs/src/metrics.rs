//! Metrics derived from an event stream: a dependency-free log-bucket
//! histogram and the [`ObsSummary`] aggregate.
//!
//! The summary's `s2_units`/`route_units` are sums of the `units`
//! fields of [`Event::S2Unit`]/[`Event::RouteUnit`] — by construction
//! (engines emit one unit exactly where `Counters` increments; compiled
//! machines emit their whole charge as one event) these sums equal the
//! run's `Counters` totals, which is the reconciliation the experiments
//! assert.

use crate::event::{Event, TimedEvent};
use std::collections::HashMap;
use std::fmt;

/// Number of log2 buckets: enough for any `u64` nanosecond value.
const BUCKETS: usize = 64;

/// Fixed log2-bucket histogram of nanosecond durations. Bucket `i`
/// holds values whose bit length is `i` (bucket 0 holds the value 0),
/// so quantiles are exact to within a factor of two — plenty for
/// "which phase dominates" questions, with no dependencies and O(1)
/// record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Record one duration.
    pub fn record(&mut self, ns: u64) {
        let bucket = (u64::BITS - ns.leading_zeros()) as usize;
        self.counts[bucket.min(BUCKETS - 1)] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold `other` into `self`. The result is identical (by `==`) to a
    /// histogram that recorded both sample sets directly — the log2
    /// buckets, total, saturating sum, and max all compose.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Saturating sum of recorded values.
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Per-bucket sample counts; bucket `i` holds values of bit length
    /// `i` (bucket 0 holds only the value 0, the last bucket also
    /// absorbs everything of greater bit length).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Inclusive upper bound of bucket `i`: 0, then `2^i - 1`, with the
    /// last bucket unbounded (`u64::MAX`, since it absorbs the cap).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Largest recorded value.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.total).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), i.e. an estimate correct to within 2×. Returns 0 when
    /// empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The quantile estimate never exceeds the observed max.
                return Histogram::bucket_upper_bound(bucket).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50≤{} p90≤{} max={} (ns)",
            self.total,
            self.mean_ns(),
            self.quantile_ns(0.5),
            self.quantile_ns(0.9),
            self.max_ns
        )
    }
}

/// Running aggregate of an event stream. Feed it events one at a time
/// ([`ObsSummary::record`]) or all at once ([`ObsSummary::from_events`]);
/// read the derived metrics, or `Display` the whole table.
#[derive(Debug, Clone, Default)]
pub struct ObsSummary {
    /// Total events seen.
    pub events: u64,
    /// `RoundStart` events.
    pub rounds: u64,
    /// Rounds that ran on the intra-round parallel path.
    pub parallel_rounds: u64,
    /// Total operations across all rounds.
    pub ops: u64,
    /// Wall-time per BSP round, from `RoundStart`/`RoundEnd` pairs on
    /// the same round index.
    pub round_ns: Histogram,
    /// Sum of `units` over `S2Unit` events — reconciles with
    /// `Counters::s2_units`.
    pub s2_units: u64,
    /// Sum of `units` over `RouteUnit` events — reconciles with
    /// `Counters::route_units`.
    pub route_units: u64,
    /// `MergePhase` events per paper step (index 0 = step 1).
    pub merge_phases: [u64; 4],
    /// Deepest merge recursion observed.
    pub max_merge_depth: u64,
    /// Cache lookups served from cache.
    pub cache_hits: u64,
    /// Cache lookups that compiled.
    pub cache_misses: u64,
    /// Programs lowered to the flat kernel tier.
    pub kernels_lowered: u64,
    /// Kernels committed to the bit-sliced vertical layout.
    pub verticals_lowered: u64,
    /// Batches scheduled.
    pub batches: u64,
    /// Vectors across all batches.
    pub batch_vectors: u64,
    /// Sum over batches of `batch / (lanes * ceil(batch / lanes))` —
    /// the fraction of lane-slots doing work; divide by `batches` for
    /// the mean utilization.
    lane_util_sum: f64,
    /// Programs validated.
    pub validated: u64,
    /// Compare-exchanges removed by the optimizer, summed.
    pub elided_cx: u64,
    /// Rounds merged by fusion, summed.
    pub fused: u64,
    /// Transient faults fired by injecting executors.
    pub faults_injected: u64,
    /// Certificate checks that failed.
    pub faults_detected: u64,
    /// Checkpoint restores (segment re-executions).
    pub retries: u64,
    /// Batch lanes that fell back to a clean serial re-run.
    pub quarantined: u64,
    /// Timing spans opened (`SpanEnter` events).
    pub spans_opened: u64,
    /// Timing spans closed (`SpanExit` events).
    pub spans_closed: u64,
    /// Span durations, from the guard-measured `dur_ns` on each exit.
    /// The per-`(tier, stage, class)` breakdown lives in
    /// [`crate::Profile`]; this is the undifferentiated roll-up.
    pub span_ns: Histogram,
    open_rounds: HashMap<u64, u64>,
}

impl ObsSummary {
    /// Aggregate a whole stream.
    #[must_use]
    pub fn from_events(events: &[TimedEvent]) -> Self {
        let mut summary = ObsSummary::default();
        for ev in events {
            summary.record(ev);
        }
        summary
    }

    /// Fold one event into the aggregate.
    pub fn record(&mut self, ev: &TimedEvent) {
        self.events += 1;
        match ev.event {
            Event::RoundStart {
                round,
                ops,
                parallel,
            } => {
                self.rounds += 1;
                self.ops += ops;
                if parallel {
                    self.parallel_rounds += 1;
                }
                self.open_rounds.insert(round, ev.t_ns);
            }
            Event::RoundEnd { round } => {
                if let Some(start) = self.open_rounds.remove(&round) {
                    self.round_ns.record(ev.t_ns.saturating_sub(start));
                }
            }
            Event::MergePhase { step, depth } => {
                if (1..=4).contains(&step) {
                    self.merge_phases[(step - 1) as usize] += 1;
                }
                self.max_merge_depth = self.max_merge_depth.max(depth);
            }
            Event::S2Unit { units, .. } => self.s2_units += units,
            Event::RouteUnit { units, .. } => self.route_units += units,
            Event::CacheLookup { hit, .. } => {
                if hit {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
            }
            Event::KernelLowered { .. } => self.kernels_lowered += 1,
            Event::VerticalLowered { .. } => self.verticals_lowered += 1,
            Event::BatchScheduled { batch, lanes } => {
                self.batches += 1;
                self.batch_vectors += batch;
                if batch > 0 && lanes > 0 {
                    let slots = lanes * batch.div_ceil(lanes);
                    #[allow(clippy::cast_precision_loss)]
                    {
                        self.lane_util_sum += batch as f64 / slots as f64;
                    }
                }
            }
            Event::Validate {
                rounds: _,
                elided_cx,
                fused,
            } => {
                self.validated += 1;
                self.elided_cx += elided_cx;
                self.fused += fused;
            }
            Event::FaultInjected { .. } => self.faults_injected += 1,
            Event::FaultDetected { .. } => self.faults_detected += 1,
            Event::RetryRound { .. } => self.retries += 1,
            Event::LaneQuarantined { .. } => self.quarantined += 1,
            Event::SpanEnter { .. } => self.spans_opened += 1,
            Event::SpanExit { dur_ns, .. } => {
                self.spans_closed += 1;
                self.span_ns.record(dur_ns);
            }
        }
    }

    /// Spans whose exit never arrived (0 for a fully drained stream in
    /// which every guard was dropped).
    #[must_use]
    pub fn unmatched_spans(&self) -> u64 {
        self.spans_opened.saturating_sub(self.spans_closed)
    }

    /// Cache hit ratio in `[0, 1]`; 0 when no lookup happened.
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cache_hits as f64 / total as f64
            }
        }
    }

    /// Mean lane utilization over all batches (`[0, 1]`; 0 when no
    /// batch was scheduled). 1.0 means every lane-slot did work.
    #[must_use]
    pub fn lane_utilization(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.lane_util_sum / self.batches as f64
            }
        }
    }

    /// `RoundStart` events whose `RoundEnd` never arrived (0 for a
    /// well-formed, fully drained stream).
    #[must_use]
    pub fn unmatched_rounds(&self) -> usize {
        self.open_rounds.len()
    }
}

impl fmt::Display for ObsSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  {:<22} {:>12}", "events", self.events)?;
        writeln!(
            f,
            "  {:<22} {:>12}  ({} parallel, {} ops)",
            "bsp rounds", self.rounds, self.parallel_rounds, self.ops
        )?;
        writeln!(f, "  {:<22} {}", "round wall-time", self.round_ns)?;
        writeln!(f, "  {:<22} {:>12}", "s2 units", self.s2_units)?;
        writeln!(f, "  {:<22} {:>12}", "route units", self.route_units)?;
        writeln!(
            f,
            "  {:<22} {:>12}  (steps 1..4: {} {} {} {}, max depth {})",
            "merge phases",
            self.merge_phases.iter().sum::<u64>(),
            self.merge_phases[0],
            self.merge_phases[1],
            self.merge_phases[2],
            self.merge_phases[3],
            self.max_merge_depth
        )?;
        writeln!(
            f,
            "  {:<22} {:>7} hits {:>7} misses  (ratio {:.3}, {} kernels lowered, {} vertical)",
            "cache lookups",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_ratio(),
            self.kernels_lowered,
            self.verticals_lowered
        )?;
        writeln!(
            f,
            "  {:<22} {:>12}  ({} vectors, lane util {:.3})",
            "batches",
            self.batches,
            self.batch_vectors,
            self.lane_utilization()
        )?;
        writeln!(
            f,
            "  {:<22} {:>12}  ({} cx elided, {} rounds fused)",
            "programs validated", self.validated, self.elided_cx, self.fused
        )?;
        writeln!(
            f,
            "  {:<22} {:>12}  ({} detected, {} retries, {} quarantined)",
            "faults injected",
            self.faults_injected,
            self.faults_detected,
            self.retries,
            self.quarantined
        )?;
        write!(
            f,
            "  {:<22} {:>12}  ({} open, durations {})",
            "timing spans",
            self.spans_closed,
            self.unmatched_spans(),
            self.span_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t_ns: u64, event: Event) -> TimedEvent {
        TimedEvent { t_ns, event }
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [0, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_ns(), 1_000_000);
        assert!(h.mean_ns() > 0);
        // p50 of 7 samples is the 4th (value 3): bucket upper bound 3.
        assert_eq!(h.quantile_ns(0.5), 3);
        // p100 lands in the 1_000_000 bucket: within 2× of the max.
        let p100 = h.quantile_ns(1.0);
        assert!((1_000_000..2_097_152).contains(&p100), "{p100}");
        assert!(!h.to_string().is_empty());
    }

    #[test]
    fn histogram_power_of_two_boundaries() {
        // A value of bit length i lands in bucket i: 2^k - 1 and 2^k
        // straddle a bucket boundary for every k.
        for k in 1..63u32 {
            let below = (1u64 << k) - 1;
            let at = 1u64 << k;
            let mut h = Histogram::default();
            h.record(below);
            h.record(at);
            let counts = h.bucket_counts();
            assert_eq!(counts[k as usize], 1, "2^{k}-1 in bucket {k}");
            assert_eq!(counts[k as usize + 1], 1, "2^{k} in bucket {}", k + 1);
            assert_eq!(Histogram::bucket_upper_bound(k as usize), below);
        }
    }

    #[test]
    fn histogram_zero_and_max_extremes() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.quantile_ns(1.0), 0);
        h.record(u64::MAX);
        // u64::MAX has bit length 64: capped into the last bucket.
        assert_eq!(h.bucket_counts()[63], 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(h.sum_ns(), u64::MAX, "sum saturates, not wraps");
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
        assert_eq!(h.quantile_ns(0.0), 0);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
        // Saturation holds under further records.
        h.record(u64::MAX);
        assert_eq!(h.sum_ns(), u64::MAX);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let left: Vec<u64> = vec![0, 1, 5, 127, 128, 4096, u64::MAX];
        let right: Vec<u64> = vec![3, 64, 65, 1 << 40, (1 << 40) - 1];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut concat = Histogram::default();
        for &ns in &left {
            a.record(ns);
            concat.record(ns);
        }
        for &ns in &right {
            b.record(ns);
            concat.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, concat);
        // Merging an empty histogram is the identity.
        let before = concat.clone();
        concat.merge(&Histogram::default());
        assert_eq!(concat, before);
    }

    #[test]
    fn summary_counts_spans() {
        let events = vec![
            at(
                0,
                Event::SpanEnter {
                    span: 1,
                    parent: 0,
                    tier: 3,
                    stage: 1,
                    class: 0,
                },
            ),
            at(
                5,
                Event::SpanEnter {
                    span: 2,
                    parent: 1,
                    tier: 3,
                    stage: 3,
                    class: 2,
                },
            ),
            at(9, Event::SpanExit { span: 2, dur_ns: 4 }),
        ];
        let s = ObsSummary::from_events(&events);
        assert_eq!(s.spans_opened, 2);
        assert_eq!(s.spans_closed, 1);
        assert_eq!(s.unmatched_spans(), 1);
        assert_eq!(s.span_ns.count(), 1);
        assert_eq!(s.span_ns.max_ns(), 4);
        assert!(s.to_string().contains("timing spans"));
    }

    #[test]
    fn summary_pairs_rounds_and_sums_units() {
        let events = vec![
            at(
                0,
                Event::RoundStart {
                    round: 0,
                    ops: 4,
                    parallel: false,
                },
            ),
            at(100, Event::RoundEnd { round: 0 }),
            at(
                150,
                Event::RoundStart {
                    round: 1,
                    ops: 6,
                    parallel: true,
                },
            ),
            at(400, Event::RoundEnd { round: 1 }),
            at(410, Event::S2Unit { units: 1, width: 3 }),
            at(420, Event::S2Unit { units: 4, width: 0 }),
            at(430, Event::RouteUnit { units: 2, width: 8 }),
            at(440, Event::MergePhase { step: 2, depth: 1 }),
            at(
                450,
                Event::CacheLookup {
                    hit: true,
                    key_fingerprint: 9,
                },
            ),
            at(
                460,
                Event::CacheLookup {
                    hit: false,
                    key_fingerprint: 9,
                },
            ),
            at(470, Event::BatchScheduled { batch: 6, lanes: 4 }),
            at(
                480,
                Event::Validate {
                    rounds: 12,
                    elided_cx: 3,
                    fused: 2,
                },
            ),
        ];
        let s = ObsSummary::from_events(&events);
        assert_eq!(s.events, 12);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.parallel_rounds, 1);
        assert_eq!(s.ops, 10);
        assert_eq!(s.round_ns.count(), 2);
        assert_eq!(s.round_ns.max_ns(), 250);
        assert_eq!(s.s2_units, 5);
        assert_eq!(s.route_units, 2);
        assert_eq!(s.merge_phases, [0, 1, 0, 0]);
        assert_eq!(s.max_merge_depth, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!((s.cache_hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_vectors, 6);
        // 6 vectors over 4 lanes: 2 waves of 4 slots, 6/8 used.
        assert!((s.lane_utilization() - 0.75).abs() < 1e-9);
        assert_eq!(s.validated, 1);
        assert_eq!(s.elided_cx, 3);
        assert_eq!(s.fused, 2);
        assert_eq!(s.unmatched_rounds(), 0);
        let table = s.to_string();
        assert!(table.contains("s2 units"), "{table}");
    }

    #[test]
    fn summary_counts_fault_events() {
        let events = vec![
            at(
                0,
                Event::FaultInjected {
                    round: 3,
                    op: 1,
                    kind: 0,
                },
            ),
            at(
                1,
                Event::FaultInjected {
                    round: 9,
                    op: 0,
                    kind: 2,
                },
            ),
            at(
                2,
                Event::FaultDetected {
                    round: 5,
                    stage: 2,
                    sampled: false,
                },
            ),
            at(
                3,
                Event::RetryRound {
                    round: 5,
                    attempt: 1,
                },
            ),
            at(4, Event::LaneQuarantined { lane: 2 }),
        ];
        let s = ObsSummary::from_events(&events);
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.faults_detected, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.quarantined, 1);
        let table = s.to_string();
        assert!(table.contains("faults injected"), "{table}");
    }

    #[test]
    fn unmatched_round_start_is_visible() {
        let s = ObsSummary::from_events(&[at(
            0,
            Event::RoundStart {
                round: 7,
                ops: 1,
                parallel: false,
            },
        )]);
        assert_eq!(s.unmatched_rounds(), 1);
        assert_eq!(s.round_ns.count(), 0);
    }
}
