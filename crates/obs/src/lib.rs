//! `pns-obs` — typed event tracing and derived metrics for the product
//! network sorting stack.
//!
//! The crate follows the timely-dataflow logging shape: a cheap,
//! cloneable [`EventLogger`] handle stamps typed [`Event`]s, buffers
//! them **per thread**, and drains whole batches into a pluggable
//! [`Sink`]. A disabled logger costs one branch per call site and
//! never constructs the event (the event expression lives in a closure
//! that is skipped), so the instrumented hot paths in `pns-simulator`
//! pay nothing when tracing is off.
//!
//! Layering: this crate depends only on `serde`/`serde_json` (for the
//! JSONL sink); `pns-core` and `pns-simulator` depend on it and emit
//! events, and `pns-bench` selects sinks via the `PNS_OBS` environment
//! variable (`jsonl[:path]` | `summary` | `profile[:path]` |
//! `prom[:path]` | `off`).
//!
//! On top of the flat events sits v2's timing layer: RAII
//! [`SpanGuard`]s ([`EventLogger::span`]) stamp hierarchical
//! [`Event::SpanEnter`]/[`Event::SpanExit`] pairs whose durations a
//! [`Profile`] aggregates into per-`(tier, stage, round-class)` latency
//! histograms with self-vs-child attribution, and a [`Registry`] of
//! named counters/gauges/histograms snapshots everything as JSON or
//! Prometheus text.
//!
//! The one cross-crate invariant worth stating here: summing the
//! `units` fields of [`Event::S2Unit`] / [`Event::RouteUnit`] in a
//! run's stream reproduces the run's `Counters::s2_units` /
//! `Counters::route_units` exactly — emitters fire exactly where the
//! counters increment. [`ObsSummary`] implements that sum; experiment
//! E17 asserts the reconciliation end to end.

pub mod event;
pub mod logger;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;

pub use event::{Event, TimedEvent};
pub use logger::EventLogger;
pub use metrics::{Histogram, ObsSummary};
pub use profile::{Profile, SpanKey, SpanStat};
pub use registry::Registry;
pub use sink::{
    from_env, sink_from_directive, try_from_env, Directive, DirectiveError, JsonlSink,
    MemoryReader, MemorySink, MultiSink, ProfileSink, PromSink, Sink, SummarySink,
};
pub use span::{SpanClass, SpanGuard, Stage, Tier, ROUND_OBS_MIN_OPS, SORT_OBS_MIN_OPS};
