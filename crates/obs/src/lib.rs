//! `pns-obs` — typed event tracing and derived metrics for the product
//! network sorting stack.
//!
//! The crate follows the timely-dataflow logging shape: a cheap,
//! cloneable [`EventLogger`] handle stamps typed [`Event`]s, buffers
//! them **per thread**, and drains whole batches into a pluggable
//! [`Sink`]. A disabled logger costs one branch per call site and
//! never constructs the event (the event expression lives in a closure
//! that is skipped), so the instrumented hot paths in `pns-simulator`
//! pay nothing when tracing is off.
//!
//! Layering: this crate depends only on `serde`/`serde_json` (for the
//! JSONL sink); `pns-core` and `pns-simulator` depend on it and emit
//! events, and `pns-bench` selects sinks via the `PNS_OBS` environment
//! variable (`jsonl[:path]` | `summary` | `off`).
//!
//! The one cross-crate invariant worth stating here: summing the
//! `units` fields of [`Event::S2Unit`] / [`Event::RouteUnit`] in a
//! run's stream reproduces the run's `Counters::s2_units` /
//! `Counters::route_units` exactly — emitters fire exactly where the
//! counters increment. [`ObsSummary`] implements that sum; experiment
//! E17 asserts the reconciliation end to end.

pub mod event;
pub mod logger;
pub mod metrics;
pub mod sink;

pub use event::{Event, TimedEvent};
pub use logger::EventLogger;
pub use metrics::{Histogram, ObsSummary};
pub use sink::{
    from_env, sink_from_directive, JsonlSink, MemoryReader, MemorySink, MultiSink, Sink,
    SummarySink,
};
