//! Hierarchical timing spans: RAII-guarded `SpanEnter`/`SpanExit`
//! events over the same channels the rest of the event stream uses.
//!
//! A span is a timed interval attributed to a `(tier, stage, class)`
//! coordinate: which execution tier was running (serial interpreter,
//! parallel interpreter, flat kernel, bit-sliced vertical, fault
//! executor, program cache), what it was doing (a whole sort, a batch,
//! one round, validation, lowering), and — for round spans — the
//! lowered round class. [`EventLogger::span`] stamps a `SpanEnter`,
//! pushes the span onto a thread-local parent stack, and returns a
//! [`SpanGuard`]; dropping the guard pops the stack and stamps a
//! `SpanExit` carrying the duration measured *by the guard itself*
//! (monotonic clock), so the aggregator never has to pair timestamps
//! across threads.
//!
//! Cost discipline: a disabled logger returns an inert guard — one
//! branch, no clock read, no allocation. Enabled loggers pay two events
//! and two monotonic clock reads per span, which is why hot executors
//! only open round-grain spans for rounds with at least
//! [`ROUND_OBS_MIN_OPS`] operations (see DESIGN.md §13); sub-threshold
//! rounds are absorbed into the enclosing sort span's self time, so
//! profile self-times still sum to the root span's duration.

use crate::event::Event;
use crate::logger::EventLogger;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum operations in a round before the executors emit round-grain
/// observability (round events and round spans) for it. Rounds below
/// the threshold execute in tens of nanoseconds on the kernel and
/// vertical tiers — two clock reads per round would dominate them and
/// blow the <5% enabled-sink overhead budget. The gate is a pure
/// function of the program (op counts are data-independent), so gated
/// streams stay identical across executions of the same program.
pub const ROUND_OBS_MIN_OPS: usize = 64;

/// Minimum total operations in a lowered program before the kernel and
/// vertical executors emit a *sort-grain* span for a single-vector run.
/// A span costs two sink dispatches plus two clock reads (~hundreds of
/// nanoseconds) — a fixed floor that would exceed the <5% enabled-sink
/// budget on programs that sort in single-digit microseconds (cube³:
/// 558 ops, ~1.6µs; Petersen²: 4050 ops). Above the gate the span is
/// noise: K2⁹ (60k ops) runs for hundreds of microseconds. Batch entry
/// points keep their spans unconditionally — one span amortized over
/// ≥16 lanes is always under budget. The serial and parallel
/// interpreters also keep unconditional sort spans: those are the
/// debuggable tiers, and interpretation dwarfs the span cost. Like
/// [`ROUND_OBS_MIN_OPS`], the gate depends only on the program, so a
/// given program's event stream shape is execution-independent.
pub const SORT_OBS_MIN_OPS: usize = 8192;

/// Distinguishes span identities process-wide (0 is "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost-last stack of open span ids on this thread; the top is
    /// the parent of the next span opened here.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The execution tier a span is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Serial validated interpreter (`BspMachine::run`).
    Serial,
    /// Intra-round / inter-vector parallel interpreter
    /// (`run_parallel`, `run_batch`).
    Parallel,
    /// Flat structure-of-arrays kernel (`run_kernel*`).
    Kernel,
    /// Bit-sliced vertical tier (`run_vertical_*`).
    Vertical,
    /// Fault-injecting checkpoint/retry executors.
    Fault,
    /// Program cache: compilation and lowering.
    Cache,
}

impl Tier {
    /// Wire code for the flat event field.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            Tier::Serial => 1,
            Tier::Parallel => 2,
            Tier::Kernel => 3,
            Tier::Vertical => 4,
            Tier::Fault => 5,
            Tier::Cache => 6,
        }
    }

    /// Inverse of [`Tier::code`]; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u64) -> Option<Tier> {
        Some(match code {
            1 => Tier::Serial,
            2 => Tier::Parallel,
            3 => Tier::Kernel,
            4 => Tier::Vertical,
            5 => Tier::Fault,
            6 => Tier::Cache,
            _ => return None,
        })
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Serial => "serial",
            Tier::Parallel => "parallel",
            Tier::Kernel => "kernel",
            Tier::Vertical => "vertical",
            Tier::Fault => "fault",
            Tier::Cache => "cache",
        }
    }
}

/// What the tier was doing during the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// One full single-vector execution of a program.
    Sort,
    /// One batch dispatch (many vectors through one program).
    Batch,
    /// One synchronous round (only rounds with at least
    /// [`ROUND_OBS_MIN_OPS`] operations get their own span).
    Round,
    /// Static program validation.
    Validate,
    /// Compiling a program from scratch (cache miss).
    Compile,
    /// Lowering a compiled program to the flat kernel tier.
    LowerKernel,
    /// Committing a lowered kernel to the bit-sliced vertical layout.
    LowerVertical,
}

impl Stage {
    /// Wire code for the flat event field.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            Stage::Sort => 1,
            Stage::Batch => 2,
            Stage::Round => 3,
            Stage::Validate => 4,
            Stage::Compile => 5,
            Stage::LowerKernel => 6,
            Stage::LowerVertical => 7,
        }
    }

    /// Inverse of [`Stage::code`]; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u64) -> Option<Stage> {
        Some(match code {
            1 => Stage::Sort,
            2 => Stage::Batch,
            3 => Stage::Round,
            4 => Stage::Validate,
            5 => Stage::Compile,
            6 => Stage::LowerKernel,
            7 => Stage::LowerVertical,
            _ => return None,
        })
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Sort => "sort",
            Stage::Batch => "batch",
            Stage::Round => "round",
            Stage::Validate => "validate",
            Stage::Compile => "compile",
            Stage::LowerKernel => "lower_kernel",
            Stage::LowerVertical => "lower_vertical",
        }
    }
}

/// Round class of a round span; `None` for non-round spans and for
/// tiers that do not classify rounds (the interpreters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanClass {
    /// Not a classified round.
    None,
    /// An empty (elided) round.
    Empty,
    /// A pure compare-exchange round.
    Compare,
    /// A routing round (moves and resolves).
    Route,
}

impl SpanClass {
    /// Wire code for the flat event field.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            SpanClass::None => 0,
            SpanClass::Empty => 1,
            SpanClass::Compare => 2,
            SpanClass::Route => 3,
        }
    }

    /// Inverse of [`SpanClass::code`]; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u64) -> Option<SpanClass> {
        Some(match code {
            0 => SpanClass::None,
            1 => SpanClass::Empty,
            2 => SpanClass::Compare,
            3 => SpanClass::Route,
            _ => return None,
        })
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanClass::None => "-",
            SpanClass::Empty => "empty",
            SpanClass::Compare => "compare",
            SpanClass::Route => "route",
        }
    }
}

struct ActiveSpan {
    logger: EventLogger,
    id: u64,
    start: Instant,
}

/// RAII handle for an open span: dropping it stamps the matching
/// `SpanExit` with the elapsed nanoseconds. Inert (a single branch)
/// when created from a disabled logger.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
#[derive(Default)]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The span's id, or 0 for an inert guard.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.id)
    }

    /// `true` iff this guard will emit a `SpanExit` on drop.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_ns = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // `try_with`: guards may drop during thread teardown, after the
        // stack's own destructor ran.
        let _ = SPAN_STACK.try_with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                // Out-of-order drop (guards stored in a struct, say):
                // remove this span wherever it sits.
                stack.retain(|&id| id != active.id);
            }
        });
        active.logger.log(|| Event::SpanExit {
            span: active.id,
            dur_ns,
        });
    }
}

impl EventLogger {
    /// Open a span at `(tier, stage, class)`: stamps a `SpanEnter`
    /// parented to the innermost span open on this thread and returns
    /// the guard whose drop stamps the `SpanExit`. On a disabled logger
    /// this is one branch — no clock read, no event, no allocation.
    pub fn span(&self, tier: Tier, stage: Stage, class: SpanClass) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard(None);
        }
        self.span_always(tier, stage, class)
    }

    /// [`EventLogger::span`] gated on `cond`: the executors use this to
    /// open round-grain spans only above [`ROUND_OBS_MIN_OPS`].
    pub fn span_if(&self, cond: bool, tier: Tier, stage: Stage, class: SpanClass) -> SpanGuard {
        if !cond || !self.is_enabled() {
            return SpanGuard(None);
        }
        self.span_always(tier, stage, class)
    }

    fn span_always(&self, tier: Tier, stage: Stage, class: SpanClass) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK
            .try_with(|stack| {
                let mut stack = stack.borrow_mut();
                let parent = stack.last().copied().unwrap_or(0);
                stack.push(id);
                parent
            })
            .unwrap_or(0);
        self.log(|| Event::SpanEnter {
            span: id,
            parent,
            tier: tier.code(),
            stage: stage.code(),
            class: class.code(),
        });
        SpanGuard(Some(ActiveSpan {
            logger: self.clone(),
            id,
            start: Instant::now(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimedEvent;
    use crate::sink::MemorySink;

    fn spans_of(events: &[TimedEvent]) -> Vec<Event> {
        events
            .iter()
            .map(|e| e.event)
            .filter(|e| matches!(e, Event::SpanEnter { .. } | Event::SpanExit { .. }))
            .collect()
    }

    #[test]
    fn disabled_logger_returns_an_inert_guard() {
        let logger = EventLogger::disabled();
        let guard = logger.span(Tier::Kernel, Stage::Sort, SpanClass::None);
        assert!(!guard.is_active());
        assert_eq!(guard.id(), 0);
        drop(guard);
        assert_eq!(logger.buffered_len(), 0);
    }

    #[test]
    fn spans_nest_and_carry_durations() {
        let (sink, reader) = MemorySink::with_capacity(64);
        let logger = EventLogger::new(Box::new(sink));
        {
            let outer = logger.span(Tier::Kernel, Stage::Sort, SpanClass::None);
            assert!(outer.is_active());
            {
                let inner = logger.span(Tier::Kernel, Stage::Round, SpanClass::Compare);
                assert!(inner.id() > 0);
                assert_ne!(inner.id(), outer.id());
            }
        }
        logger.flush();
        let events = spans_of(&reader.events());
        assert_eq!(events.len(), 4);
        let (outer_id, inner_id) = match (events[0], events[1]) {
            (
                Event::SpanEnter {
                    span: o, parent: 0, ..
                },
                Event::SpanEnter {
                    span: i, parent: p, ..
                },
            ) => {
                assert_eq!(p, o, "inner span must be parented to the outer");
                (o, i)
            }
            other => panic!("unexpected opening events {other:?}"),
        };
        match (events[2], events[3]) {
            (Event::SpanExit { span: a, .. }, Event::SpanExit { span: b, .. }) => {
                assert_eq!(a, inner_id, "inner closes first");
                assert_eq!(b, outer_id);
            }
            other => panic!("unexpected closing events {other:?}"),
        }
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let (sink, reader) = MemorySink::with_capacity(64);
        let logger = EventLogger::new(Box::new(sink));
        {
            let root = logger.span(Tier::Serial, Stage::Sort, SpanClass::None);
            let root_id = root.id();
            for _ in 0..2 {
                let _round = logger.span(Tier::Serial, Stage::Round, SpanClass::None);
            }
            drop(root);
            assert!(root_id > 0);
        }
        logger.flush();
        let parents: Vec<u64> = reader
            .events()
            .iter()
            .filter_map(|e| match e.event {
                Event::SpanEnter {
                    parent, stage: s, ..
                } if s == Stage::Round.code() => Some(parent),
                _ => None,
            })
            .collect();
        assert_eq!(parents.len(), 2);
        assert_eq!(parents[0], parents[1]);
        assert_ne!(parents[0], 0);
    }

    #[test]
    fn out_of_order_drop_keeps_the_stack_consistent() {
        let (sink, reader) = MemorySink::with_capacity(64);
        let logger = EventLogger::new(Box::new(sink));
        let a = logger.span(Tier::Cache, Stage::Compile, SpanClass::None);
        let b = logger.span(Tier::Cache, Stage::LowerKernel, SpanClass::None);
        drop(a); // out of order: `a` still has `b` above it on the stack
        let c = logger.span(Tier::Cache, Stage::LowerVertical, SpanClass::None);
        let (b_id, c_id) = (b.id(), c.id());
        drop(c);
        drop(b);
        logger.flush();
        // `c` opened after `a` died; its parent must be `b`, the only
        // span still open.
        let c_parent = reader
            .events()
            .iter()
            .find_map(|e| match e.event {
                Event::SpanEnter { span, parent, .. } if span == c_id => Some(parent),
                _ => None,
            })
            .expect("c was recorded");
        assert_eq!(c_parent, b_id);
    }

    #[test]
    fn codes_round_trip() {
        for tier in [
            Tier::Serial,
            Tier::Parallel,
            Tier::Kernel,
            Tier::Vertical,
            Tier::Fault,
            Tier::Cache,
        ] {
            assert_eq!(Tier::from_code(tier.code()), Some(tier));
            assert!(!tier.name().is_empty());
        }
        for stage in [
            Stage::Sort,
            Stage::Batch,
            Stage::Round,
            Stage::Validate,
            Stage::Compile,
            Stage::LowerKernel,
            Stage::LowerVertical,
        ] {
            assert_eq!(Stage::from_code(stage.code()), Some(stage));
            assert!(!stage.name().is_empty());
        }
        for class in [
            SpanClass::None,
            SpanClass::Empty,
            SpanClass::Compare,
            SpanClass::Route,
        ] {
            assert_eq!(SpanClass::from_code(class.code()), Some(class));
            assert!(!class.name().is_empty());
        }
        assert_eq!(Tier::from_code(99), None);
        assert_eq!(Stage::from_code(99), None);
        assert_eq!(SpanClass::from_code(99), None);
    }
}
