//! The event taxonomy: every observable moment of the sorting stack,
//! as a typed enum.
//!
//! Events are deliberately *flat* (only `u64`/`bool` fields) so that any
//! sink can serialize them without pulling in the types of the layers
//! that emit them. The taxonomy spans all execution layers:
//!
//! * **BSP executor** ([`Event::RoundStart`], [`Event::RoundEnd`],
//!   [`Event::Validate`], [`Event::BatchScheduled`]) — emitted by
//!   `pns-simulator`'s `BspMachine` per synchronous round, per static
//!   validation, and per batch dispatch.
//! * **Logical engines** ([`Event::S2Unit`], [`Event::RouteUnit`]) —
//!   emitted once per charged unit, i.e. exactly when the algorithm's
//!   `Counters` increment `s2_units`/`route_units`. Summing the `units`
//!   fields of a run's stream therefore reproduces the run's `Counters`
//!   totals (see `ObsSummary`).
//! * **Merge engine** ([`Event::MergePhase`]) — emitted by
//!   `pns-core::merge` once per Step 1–4 of each multiway merge, with
//!   the recursion depth.
//! * **Program cache** ([`Event::CacheLookup`], [`Event::KernelLowered`])
//!   — one per lookup, with the structural fingerprint of the requested
//!   program; one per program lowered to the flat kernel tier, with the
//!   lowered round/op shape.
//! * **Fault layer** ([`Event::FaultInjected`], [`Event::FaultDetected`],
//!   [`Event::RetryRound`], [`Event::LaneQuarantined`]) — emitted by
//!   `pns-simulator`'s fault-injecting executor: one per fired fault
//!   site, per failed certificate check, per checkpoint restore, and per
//!   batch lane that fell back to a clean serial re-run.
//! * **Span layer** ([`Event::SpanEnter`], [`Event::SpanExit`]) —
//!   emitted by [`crate::SpanGuard`]s opened through
//!   [`crate::EventLogger::span`]: a timed, hierarchical interval
//!   attributed to a `(tier, stage, class)` coordinate (codes defined in
//!   [`crate::span`]). The exit carries the duration measured by the
//!   guard's own monotonic clock, so aggregation never pairs timestamps
//!   across threads.

use serde::{Deserialize, Serialize};

/// One typed observation. See the module docs for who emits what.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A synchronous BSP round is about to execute.
    RoundStart {
        /// Round index within the compiled program (0-based, monotone).
        round: u64,
        /// Operations in the round.
        ops: u64,
        /// Whether the round runs on the intra-round parallel path.
        parallel: bool,
    },
    /// The matching end of a [`Event::RoundStart`] (same `round`).
    RoundEnd {
        /// Round index, equal to the opening `RoundStart`'s.
        round: u64,
    },
    /// One step (1–4) of a multiway merge completed.
    MergePhase {
        /// Paper step number: 1 distribute, 2 merge columns,
        /// 3 interleave, 4 clean.
        step: u64,
        /// Recursion depth of the merge (0 = outermost).
        depth: u64,
    },
    /// One `S2` unit was charged: a parallel round of `N²`-key base
    /// sorts (the quantity Lemma 3 / Theorem 1 count).
    S2Unit {
        /// Units charged (1 per engine round; a compiled machine emits
        /// its whole logical charge as one event).
        units: u64,
        /// Parallel `PG_2` instances covered by the round (0 when the
        /// emitter aggregates, e.g. compiled machines).
        width: u64,
    },
    /// One routing unit was charged: an odd-even transposition round
    /// between `PG_2` subgraphs.
    RouteUnit {
        /// Units charged (see [`Event::S2Unit::units`]).
        units: u64,
        /// Compare-exchange pairs in the round (0 when aggregated).
        width: u64,
    },
    /// A program-cache lookup resolved.
    CacheLookup {
        /// Served from cache (`true`) or compiled on miss (`false`).
        hit: bool,
        /// FNV-1a digest of the structural key (factor wiring, `r`,
        /// sorter) — display identity only; the cache compares full
        /// keys.
        key_fingerprint: u64,
    },
    /// A compiled program was lowered to the flat structure-of-arrays
    /// kernel tier (cache misses on the kernel cache).
    KernelLowered {
        /// Rounds in the lowered kernel (= the source program's rounds).
        rounds: u64,
        /// Rounds that lowered to pure compare-exchange pair lists.
        compare_rounds: u64,
        /// Rounds that lowered to packed route micro-ops.
        route_rounds: u64,
        /// Compare-exchange pairs across all compare rounds.
        cx_pairs: u64,
        /// Packed micro-ops across all route rounds.
        micro_ops: u64,
    },
    /// A lowered kernel was committed to the bit-sliced vertical
    /// (lane-major) layout (cache misses on the vertical cache).
    VerticalLowered {
        /// Rounds in the program (= the source kernel's rounds).
        rounds: u64,
        /// Compare rounds executed as word-wide min/max.
        compare_rounds: u64,
        /// Route rounds executed as column-block permutations.
        route_rounds: u64,
        /// Word-level ops per full-width run (pairs + micro-ops) —
        /// each carries up to 64 lanes.
        word_ops: u64,
        /// Lanes one machine word carries (64).
        lanes: u64,
    },
    /// A batch of independent key vectors was scheduled onto the
    /// batched executor.
    BatchScheduled {
        /// Vectors in the batch.
        batch: u64,
        /// Worker lanes available to spread the batch across.
        lanes: u64,
    },
    /// A compiled program passed static validation; carries the
    /// program's optimizer accounting so perf dashboards can read
    /// savings without the program itself.
    Validate {
        /// Rounds in the validated program.
        rounds: u64,
        /// Compare-exchanges removed by the optimizer (0 for
        /// unoptimized programs).
        elided_cx: u64,
        /// Rounds merged by disjoint-round fusion (0 for unoptimized
        /// programs).
        fused: u64,
    },
    /// A transient fault fired at an execution site (fault-injecting
    /// executors only).
    FaultInjected {
        /// Round index the fault fired in.
        round: u64,
        /// Operation index within the round.
        op: u64,
        /// `FaultKind` code: 0 flip-compare, 1 drop-route,
        /// 2 stall-resolve.
        kind: u64,
    },
    /// A certificate check failed, exposing corrupted state.
    FaultDetected {
        /// Round the failed certificate guards (the segment boundary).
        round: u64,
        /// Subgraph dimensionality `k` the certificate checked.
        stage: u64,
        /// Whether the failing check was a sampled probe (`true`) or
        /// the full certificate (`false`).
        sampled: bool,
    },
    /// The executor restored a checkpoint and is re-running a segment.
    RetryRound {
        /// Round the re-execution restarts from (checkpoint boundary).
        round: u64,
        /// Retry attempt for this segment (1-based).
        attempt: u64,
    },
    /// A batch lane exhausted its retries and was re-run serially,
    /// fault-free, from its original input.
    LaneQuarantined {
        /// Index of the quarantined lane within the batch.
        lane: u64,
    },
    /// A timing span opened (see [`crate::EventLogger::span`]).
    SpanEnter {
        /// Process-unique span id (never 0).
        span: u64,
        /// Id of the innermost span open on the emitting thread when
        /// this one opened; 0 for a root span.
        parent: u64,
        /// Execution-tier code ([`crate::Tier::code`]).
        tier: u64,
        /// Stage code ([`crate::Stage::code`]).
        stage: u64,
        /// Round-class code ([`crate::SpanClass::code`]); 0 for
        /// non-round spans.
        class: u64,
    },
    /// The matching close of a [`Event::SpanEnter`] (same `span`).
    SpanExit {
        /// Id of the closing span.
        span: u64,
        /// Duration in nanoseconds, measured by the guard's monotonic
        /// clock between open and drop.
        dur_ns: u64,
    },
}

impl Event {
    /// The logical identity of the event: execution-strategy details
    /// (the `parallel` flag, round widths) are normalized away, so that
    /// serial and parallel executions of the same program compare equal
    /// event by event. Timing lives outside the event
    /// ([`crate::TimedEvent`]), so it is already excluded.
    #[must_use]
    pub fn logical(self) -> Event {
        match self {
            Event::RoundStart { round, ops, .. } => Event::RoundStart {
                round,
                ops,
                parallel: false,
            },
            other => other,
        }
    }

    /// Short kind tag, for grouping and display.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round_start",
            Event::RoundEnd { .. } => "round_end",
            Event::MergePhase { .. } => "merge_phase",
            Event::S2Unit { .. } => "s2_unit",
            Event::RouteUnit { .. } => "route_unit",
            Event::CacheLookup { .. } => "cache_lookup",
            Event::KernelLowered { .. } => "kernel_lowered",
            Event::VerticalLowered { .. } => "vertical_lowered",
            Event::BatchScheduled { .. } => "batch_scheduled",
            Event::Validate { .. } => "validate",
            Event::FaultInjected { .. } => "fault_injected",
            Event::FaultDetected { .. } => "fault_detected",
            Event::RetryRound { .. } => "retry_round",
            Event::LaneQuarantined { .. } => "lane_quarantined",
            Event::SpanEnter { .. } => "span_enter",
            Event::SpanExit { .. } => "span_exit",
        }
    }
}

/// An event plus the nanoseconds since its logger's epoch. Timestamps
/// are monotone *per emitting thread* (buffers are per-thread); sinks
/// may observe batches from different threads out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Nanoseconds since the logger's creation.
    pub t_ns: u64,
    /// The observation.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_view_normalizes_the_parallel_flag() {
        let serial = Event::RoundStart {
            round: 3,
            ops: 10,
            parallel: false,
        };
        let parallel = Event::RoundStart {
            round: 3,
            ops: 10,
            parallel: true,
        };
        assert_ne!(serial, parallel);
        assert_eq!(serial.logical(), parallel.logical());
        let end = Event::RoundEnd { round: 3 };
        assert_eq!(end.logical(), end);
    }

    #[test]
    fn events_serialize_to_externally_tagged_json() {
        let ev = TimedEvent {
            t_ns: 42,
            event: Event::CacheLookup {
                hit: true,
                key_fingerprint: 7,
            },
        };
        let json = serde_json::to_string(&ev).expect("serialize");
        assert!(json.contains("CacheLookup"), "{json}");
        let back: TimedEvent = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, ev);
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            Event::RoundStart {
                round: 0,
                ops: 0,
                parallel: false,
            }
            .kind(),
            Event::RoundEnd { round: 0 }.kind(),
            Event::MergePhase { step: 1, depth: 0 }.kind(),
            Event::S2Unit { units: 1, width: 1 }.kind(),
            Event::RouteUnit { units: 1, width: 1 }.kind(),
            Event::CacheLookup {
                hit: false,
                key_fingerprint: 0,
            }
            .kind(),
            Event::KernelLowered {
                rounds: 1,
                compare_rounds: 1,
                route_rounds: 0,
                cx_pairs: 4,
                micro_ops: 0,
            }
            .kind(),
            Event::VerticalLowered {
                rounds: 1,
                compare_rounds: 1,
                route_rounds: 0,
                word_ops: 4,
                lanes: 64,
            }
            .kind(),
            Event::BatchScheduled { batch: 1, lanes: 1 }.kind(),
            Event::Validate {
                rounds: 0,
                elided_cx: 0,
                fused: 0,
            }
            .kind(),
            Event::FaultInjected {
                round: 0,
                op: 0,
                kind: 0,
            }
            .kind(),
            Event::FaultDetected {
                round: 0,
                stage: 2,
                sampled: false,
            }
            .kind(),
            Event::RetryRound {
                round: 0,
                attempt: 1,
            }
            .kind(),
            Event::LaneQuarantined { lane: 0 }.kind(),
            Event::SpanEnter {
                span: 1,
                parent: 0,
                tier: 1,
                stage: 1,
                class: 0,
            }
            .kind(),
            Event::SpanExit { span: 1, dur_ns: 0 }.kind(),
        ];
        let mut dedup = kinds.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
    }
}
