//! The span-tree aggregator: folds a stream's `SpanEnter`/`SpanExit`
//! events into per-`(tier, stage, class)` latency statistics with
//! self-vs-child time, alongside a full [`ObsSummary`] of the
//! non-span events.
//!
//! Because every `SpanExit` carries the duration measured by its own
//! guard, aggregation needs no cross-thread timestamp pairing: an exit
//! charges its duration to the matching open span's key, propagates it
//! into the still-open parent's child time, and — when the parent is
//! the root (or was opened on another thread and is invisible here) —
//! into the stream's total root time. For a well-nested same-thread
//! tree the self times therefore sum exactly to the root time, which
//! is what makes E21's ≥95% wall-clock coverage check structural
//! rather than statistical.

use crate::event::{Event, TimedEvent};
use crate::metrics::{Histogram, ObsSummary};
use crate::registry::Registry;
use crate::span::{SpanClass, Stage, Tier};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The `(tier, stage, class)` coordinate a span's time is charged to.
/// Stored as the raw wire codes so unknown codes from a newer stream
/// still aggregate instead of being dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanKey {
    /// [`Tier::code`] value.
    pub tier: u64,
    /// [`Stage::code`] value.
    pub stage: u64,
    /// [`SpanClass::code`] value.
    pub class: u64,
}

impl SpanKey {
    /// Human-readable `tier/stage[/class]` label; unknown codes render
    /// as `?<code>`.
    #[must_use]
    pub fn label(&self) -> String {
        let tier = Tier::from_code(self.tier).map(Tier::name);
        let stage = Stage::from_code(self.stage).map(Stage::name);
        let class = SpanClass::from_code(self.class).map(SpanClass::name);
        let mut out = String::new();
        match tier {
            Some(name) => out.push_str(name),
            None => out.push_str(&format!("?{}", self.tier)),
        }
        out.push('/');
        match stage {
            Some(name) => out.push_str(name),
            None => out.push_str(&format!("?{}", self.stage)),
        }
        if self.class != 0 {
            out.push('/');
            match class {
                Some(name) => out.push_str(name),
                None => out.push_str(&format!("?{}", self.class)),
            }
        }
        out
    }
}

/// Accumulated statistics for one [`SpanKey`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Spans closed under this key.
    pub count: u64,
    /// Total duration (inclusive of children).
    pub total_ns: u64,
    /// Time attributed to child spans of these spans.
    pub child_ns: u64,
    /// Distribution of the per-span (inclusive) durations.
    pub hist: Histogram,
}

impl SpanStat {
    /// Time spent in these spans excluding child spans.
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

struct OpenSpan {
    key: SpanKey,
    parent: u64,
    child_ns: u64,
}

/// Streamed span-tree aggregation plus an embedded [`ObsSummary`] of
/// everything else, so one `Profile` answers both "where did the time
/// go" and "do the unit counts reconcile".
#[derive(Default)]
pub struct Profile {
    stats: BTreeMap<SpanKey, SpanStat>,
    open: HashMap<u64, OpenSpan>,
    root_ns: u64,
    summary: ObsSummary,
}

impl Profile {
    /// Aggregate a whole stream.
    #[must_use]
    pub fn from_events(events: &[TimedEvent]) -> Self {
        let mut profile = Profile::default();
        for ev in events {
            profile.record(ev);
        }
        profile
    }

    /// Fold one event into the aggregate.
    pub fn record(&mut self, ev: &TimedEvent) {
        self.summary.record(ev);
        match ev.event {
            Event::SpanEnter {
                span,
                parent,
                tier,
                stage,
                class,
            } => {
                self.open.insert(
                    span,
                    OpenSpan {
                        key: SpanKey { tier, stage, class },
                        parent,
                        child_ns: 0,
                    },
                );
            }
            Event::SpanExit { span, dur_ns } => {
                let Some(closed) = self.open.remove(&span) else {
                    // Exit without a visible enter (ring eviction,
                    // partial stream): charge it to the root so time is
                    // never silently lost.
                    self.root_ns = self.root_ns.saturating_add(dur_ns);
                    return;
                };
                let stat = self.stats.entry(closed.key).or_default();
                stat.count += 1;
                stat.total_ns = stat.total_ns.saturating_add(dur_ns);
                stat.child_ns = stat.child_ns.saturating_add(closed.child_ns);
                stat.hist.record(dur_ns);
                match self.open.get_mut(&closed.parent) {
                    Some(parent) => parent.child_ns = parent.child_ns.saturating_add(dur_ns),
                    // Root span, or the parent closed first / lives on
                    // another thread: this duration tops out the tree.
                    None => self.root_ns = self.root_ns.saturating_add(dur_ns),
                }
            }
            _ => {}
        }
    }

    /// Per-key statistics, ordered by key.
    pub fn stats(&self) -> impl Iterator<Item = (&SpanKey, &SpanStat)> {
        self.stats.iter()
    }

    /// Statistics for one key, if any span closed under it.
    #[must_use]
    pub fn stat(&self, key: &SpanKey) -> Option<&SpanStat> {
        self.stats.get(key)
    }

    /// Total root time: the summed durations of spans with no open
    /// parent. For a single-threaded, well-nested stream this is the
    /// wall-clock spent under instrumentation.
    #[must_use]
    pub fn root_ns(&self) -> u64 {
        self.root_ns
    }

    /// Sum of self times over all keys. Equal to [`Profile::root_ns`]
    /// for a well-nested same-thread tree — every nanosecond of the
    /// root's duration is claimed by exactly one span's self time.
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.stats
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.self_ns()))
    }

    /// Spans whose exit has not been seen.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// The embedded summary of the whole stream (unit counts, rounds,
    /// cache and fault totals, ...).
    #[must_use]
    pub fn summary(&self) -> &ObsSummary {
        &self.summary
    }

    /// Export the profile into `registry`: one labeled histogram
    /// (`pns_span_ns`) plus self/total counters per span key, and the
    /// embedded summary's reconciliation counters.
    pub fn export_to(&self, registry: &mut Registry) {
        for (key, stat) in &self.stats {
            let tier = Tier::from_code(key.tier).map_or("unknown", Tier::name);
            let stage = Stage::from_code(key.stage).map_or("unknown", Stage::name);
            let class = SpanClass::from_code(key.class).map_or("unknown", SpanClass::name);
            let labels: &[(&str, &str)] = &[("tier", tier), ("stage", stage), ("class", class)];
            registry.merge_histogram_with("pns_span_ns", labels, &stat.hist);
            registry.set_counter_with("pns_span_self_ns_total", labels, stat.self_ns());
            registry.set_counter_with("pns_span_total_ns_total", labels, stat.total_ns);
        }
        registry.set_counter("pns_span_root_ns_total", self.root_ns);
        let s = &self.summary;
        registry.set_counter("pns_events_total", s.events);
        registry.set_counter("pns_rounds_total", s.rounds);
        registry.set_counter("pns_round_ops_total", s.ops);
        registry.set_counter("pns_s2_units_total", s.s2_units);
        registry.set_counter("pns_route_units_total", s.route_units);
        registry.set_counter("pns_cache_hits_total", s.cache_hits);
        registry.set_counter("pns_cache_misses_total", s.cache_misses);
        registry.set_counter("pns_kernels_lowered_total", s.kernels_lowered);
        registry.set_counter("pns_verticals_lowered_total", s.verticals_lowered);
        registry.set_counter("pns_batches_total", s.batches);
        registry.set_counter("pns_batch_vectors_total", s.batch_vectors);
        registry.set_counter("pns_validated_total", s.validated);
        registry.set_counter("pns_faults_injected_total", s.faults_injected);
        registry.set_counter("pns_faults_detected_total", s.faults_detected);
        registry.set_counter("pns_retries_total", s.retries);
        registry.set_counter("pns_quarantined_total", s.quarantined);
        registry.set_gauge("pns_cache_hit_ratio", s.cache_hit_ratio());
        registry.set_gauge("pns_lane_utilization", s.lane_utilization());
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {:<28} {:>7} {:>14} {:>14} {:>10} {:>10}",
            "span (tier/stage/class)", "count", "total_ns", "self_ns", "mean_ns", "p90_ns"
        )?;
        for (key, stat) in &self.stats {
            writeln!(
                f,
                "  {:<28} {:>7} {:>14} {:>14} {:>10} {:>10}",
                key.label(),
                stat.count,
                stat.total_ns,
                stat.self_ns(),
                stat.hist.mean_ns(),
                stat.hist.quantile_ns(0.9)
            )?;
        }
        writeln!(
            f,
            "  {:<28} {:>7} {:>14} {:>14}",
            "(root)",
            "",
            self.root_ns,
            self.total_self_ns()
        )?;
        if self.open_spans() > 0 {
            writeln!(f, "  !! {} spans still open", self.open_spans())?;
        }
        write!(f, "{}", self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t_ns: u64, event: Event) -> TimedEvent {
        TimedEvent { t_ns, event }
    }

    fn enter(span: u64, parent: u64, tier: Tier, stage: Stage, class: SpanClass) -> TimedEvent {
        at(
            span,
            Event::SpanEnter {
                span,
                parent,
                tier: tier.code(),
                stage: stage.code(),
                class: class.code(),
            },
        )
    }

    fn exit(span: u64, dur_ns: u64) -> TimedEvent {
        at(span, Event::SpanExit { span, dur_ns })
    }

    #[test]
    fn self_time_is_total_minus_children() {
        // sort(100) wrapping two rounds (30 + 20).
        let events = vec![
            enter(1, 0, Tier::Kernel, Stage::Sort, SpanClass::None),
            enter(2, 1, Tier::Kernel, Stage::Round, SpanClass::Compare),
            exit(2, 30),
            enter(3, 1, Tier::Kernel, Stage::Round, SpanClass::Route),
            exit(3, 20),
            exit(1, 100),
        ];
        let p = Profile::from_events(&events);
        let sort = p
            .stat(&SpanKey {
                tier: Tier::Kernel.code(),
                stage: Stage::Sort.code(),
                class: 0,
            })
            .expect("sort stat");
        assert_eq!(sort.count, 1);
        assert_eq!(sort.total_ns, 100);
        assert_eq!(sort.child_ns, 50);
        assert_eq!(sort.self_ns(), 50);
        assert_eq!(p.root_ns(), 100);
        // Self times partition the root: 50 (sort) + 30 + 20 (rounds).
        assert_eq!(p.total_self_ns(), 100);
        assert_eq!(p.open_spans(), 0);
        assert_eq!(p.summary().spans_closed, 3);
        assert!(p.to_string().contains("kernel/sort"));
    }

    #[test]
    fn round_classes_aggregate_separately() {
        let events = vec![
            enter(1, 0, Tier::Vertical, Stage::Round, SpanClass::Compare),
            exit(1, 10),
            enter(2, 0, Tier::Vertical, Stage::Round, SpanClass::Compare),
            exit(2, 14),
            enter(3, 0, Tier::Vertical, Stage::Round, SpanClass::Route),
            exit(3, 99),
        ];
        let p = Profile::from_events(&events);
        let compare = p
            .stat(&SpanKey {
                tier: Tier::Vertical.code(),
                stage: Stage::Round.code(),
                class: SpanClass::Compare.code(),
            })
            .expect("compare stat");
        assert_eq!(compare.count, 2);
        assert_eq!(compare.total_ns, 24);
        let route = p
            .stat(&SpanKey {
                tier: Tier::Vertical.code(),
                stage: Stage::Round.code(),
                class: SpanClass::Route.code(),
            })
            .expect("route stat");
        assert_eq!(route.count, 1);
        assert_eq!(route.total_ns, 99);
        assert_eq!(p.root_ns(), 123);
    }

    #[test]
    fn orphan_exits_still_charge_the_root() {
        // An exit whose enter was evicted from a bounded ring.
        let p = Profile::from_events(&[exit(42, 1000)]);
        assert_eq!(p.root_ns(), 1000);
        assert_eq!(p.stats().count(), 0);
    }

    #[test]
    fn unknown_codes_render_without_panicking() {
        let events = vec![
            at(
                0,
                Event::SpanEnter {
                    span: 1,
                    parent: 0,
                    tier: 77,
                    stage: 88,
                    class: 99,
                },
            ),
            exit(1, 5),
        ];
        let p = Profile::from_events(&events);
        let (key, _) = p.stats().next().expect("one stat");
        assert_eq!(key.label(), "?77/?88/?99");
        assert!(p.to_string().contains("?77"));
        let mut reg = Registry::default();
        p.export_to(&mut reg);
        assert!(reg.prometheus_text().contains("unknown"));
    }

    #[test]
    fn export_feeds_the_registry() {
        let events = vec![
            enter(1, 0, Tier::Serial, Stage::Sort, SpanClass::None),
            exit(1, 64),
            at(70, Event::S2Unit { units: 9, width: 0 }),
        ];
        let p = Profile::from_events(&events);
        let mut reg = Registry::default();
        p.export_to(&mut reg);
        let text = reg.prometheus_text();
        assert!(text.contains("pns_s2_units_total 9"), "{text}");
        assert!(
            text.contains(r#"pns_span_ns_count{class="-",stage="sort",tier="serial"} 1"#),
            "{text}"
        );
    }
}
