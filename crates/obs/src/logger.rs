//! The logging handle: cheap to clone, free when disabled.
//!
//! An [`EventLogger`] is either *disabled* (a `None` core — logging is a
//! single branch, the event closure is never called, nothing is
//! allocated) or *enabled* (an `Arc` around the sink plus a shared
//! epoch). Enabled loggers buffer events **per thread** and drain whole
//! batches into the sink, so hot loops never contend on the sink lock;
//! this is the timely-dataflow logging shape, adapted to scoped worker
//! threads that are born and die inside a single `run_batch` call
//! (buffers flush on thread exit via a thread-local `Drop`).

use crate::event::{Event, TimedEvent};
use crate::sink::Sink;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Buffered events per thread before a drain to the sink.
const FLUSH_AT: usize = 256;

/// Distinguishes logger instances in the thread-local buffer registry.
static NEXT_LOGGER_ID: AtomicU64 = AtomicU64::new(1);

struct LoggerCore {
    id: u64,
    epoch: Instant,
    sink: Mutex<Box<dyn Sink>>,
}

impl LoggerCore {
    fn ingest(&self, events: &[TimedEvent]) {
        if events.is_empty() {
            return;
        }
        // Recover from poisoning: sinks are passive collectors, and the
        // flush-on-panic path must not double-panic on a lock a dying
        // thread poisoned.
        let mut sink = match self.sink.lock() {
            Ok(sink) => sink,
            Err(poisoned) => poisoned.into_inner(),
        };
        sink.record(events);
    }
}

/// A handle for emitting [`Event`]s. Clones share the same sink and
/// epoch. See the module docs for the enabled/disabled split.
#[derive(Clone, Default)]
pub struct EventLogger {
    core: Option<Arc<LoggerCore>>,
}

impl std::fmt::Debug for EventLogger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            Some(core) => write!(f, "EventLogger(enabled, id={})", core.id),
            None => write!(f, "EventLogger(disabled)"),
        }
    }
}

impl EventLogger {
    /// The no-op logger: [`EventLogger::log`] is one branch, the event
    /// closure never runs, no buffer is touched.
    #[must_use]
    pub fn disabled() -> Self {
        EventLogger { core: None }
    }

    /// A logger draining into `sink`.
    #[must_use]
    pub fn new(sink: Box<dyn Sink>) -> Self {
        EventLogger {
            core: Some(Arc::new(LoggerCore {
                id: NEXT_LOGGER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                sink: Mutex::new(sink),
            })),
        }
    }

    /// A logger selected by the `PNS_OBS` environment variable
    /// (`jsonl[:path]` | `summary` | `profile[:path]` | `prom[:path]` |
    /// `off`/unset); disabled when the variable selects no sink. Unknown
    /// directives are reported on stderr and treated as `off`; use
    /// [`EventLogger::try_from_env`] for the typed error.
    #[must_use]
    pub fn from_env(label: &str) -> Self {
        match crate::sink::from_env(label) {
            Some(sink) => EventLogger::new(sink),
            None => EventLogger::disabled(),
        }
    }

    /// Like [`EventLogger::from_env`], but surfaces a malformed
    /// `PNS_OBS` value as a typed [`crate::DirectiveError`] instead of
    /// logging and falling back to disabled.
    pub fn try_from_env(label: &str) -> Result<Self, crate::sink::DirectiveError> {
        Ok(match crate::sink::try_from_env(label)? {
            Some(sink) => EventLogger::new(sink),
            None => EventLogger::disabled(),
        })
    }

    /// `true` iff events are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record the event produced by `f`, stamped with nanoseconds since
    /// the logger's creation. Disabled loggers return without calling
    /// `f`, so callers may compute event fields inside the closure at
    /// no cost when tracing is off.
    #[inline]
    pub fn log(&self, f: impl FnOnce() -> Event) {
        let Some(core) = &self.core else { return };
        let stamped = TimedEvent {
            t_ns: u64::try_from(core.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            event: f(),
        };
        let full = BUFFERS.with(|buffers| {
            buffers
                .borrow_mut()
                .push(core.id, Arc::downgrade(core), stamped)
        });
        if let Some(batch) = full {
            core.ingest(&batch);
        }
    }

    /// Drain the calling thread's buffer into the sink. Buffers on
    /// *other* live threads stay put until they fill, their thread
    /// exits, or they call `flush` themselves.
    pub fn flush(&self) {
        let Some(core) = &self.core else { return };
        let batch = BUFFERS.with(|buffers| buffers.borrow_mut().take(core.id));
        core.ingest(&batch);
    }

    /// Flush the calling thread, then tell the sink the stream is
    /// complete (e.g. the summary sink prints its table). Safe to call
    /// more than once; sinks decide what repeat finishes mean.
    pub fn finish(&self) {
        let Some(core) = &self.core else { return };
        self.flush();
        let mut sink = match core.sink.lock() {
            Ok(sink) => sink,
            Err(poisoned) => poisoned.into_inner(),
        };
        sink.finish();
    }

    /// Events currently buffered on the calling thread for this logger
    /// (0 for a disabled logger). Test introspection.
    #[must_use]
    pub fn buffered_len(&self) -> usize {
        let Some(core) = &self.core else { return 0 };
        BUFFERS.with(|buffers| buffers.borrow().len(core.id))
    }
}

impl Drop for EventLogger {
    /// Flush the calling thread's buffer when this handle is dropped
    /// while unwinding (so a panicking sort still lands its buffered
    /// events in the sink) or when it is the last handle to the core
    /// (so a logger going out of scope leaves nothing stranded on its
    /// own thread). Never calls `finish` — sinks that print on finish
    /// must not fire from a destructor.
    fn drop(&mut self) {
        let Some(core) = &self.core else { return };
        if !std::thread::panicking() && Arc::strong_count(core) > 1 {
            return;
        }
        // `try_with`/`try_borrow_mut`: this can run during thread
        // teardown or mid-unwind; failing to flush is better than a
        // double panic (= abort).
        let batch = BUFFERS
            .try_with(|buffers| {
                buffers
                    .try_borrow_mut()
                    .map(|mut b| b.take(core.id))
                    .unwrap_or_default()
            })
            .unwrap_or_default();
        core.ingest(&batch);
    }
}

/// Per-thread buffers, one slot per live logger this thread has logged
/// to. On thread exit the registry drops and flushes every slot whose
/// logger is still alive — this is what makes short-lived scoped worker
/// threads (the batch executor's lanes) lose no events.
struct ThreadBuffers {
    slots: Vec<Slot>,
}

struct Slot {
    id: u64,
    core: Weak<LoggerCore>,
    events: Vec<TimedEvent>,
}

impl ThreadBuffers {
    /// Append to the slot for logger `id`; returns the drained batch
    /// when the buffer hits [`FLUSH_AT`] (the caller ingests it outside
    /// the thread-local borrow, since sinks may run arbitrary code).
    fn push(
        &mut self,
        id: u64,
        core: Weak<LoggerCore>,
        event: TimedEvent,
    ) -> Option<Vec<TimedEvent>> {
        // Dead slots are reaped lazily here, not on every push.
        if self.slots.iter().all(|s| s.id != id) {
            self.slots.retain(|s| s.core.strong_count() > 0);
            self.slots.push(Slot {
                id,
                core,
                events: Vec::with_capacity(FLUSH_AT),
            });
        }
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.id == id)
            .expect("slot just ensured");
        slot.events.push(event);
        if slot.events.len() >= FLUSH_AT {
            Some(std::mem::take(&mut slot.events))
        } else {
            None
        }
    }

    fn take(&mut self, id: u64) -> Vec<TimedEvent> {
        self.slots
            .iter_mut()
            .find(|s| s.id == id)
            .map(|s| std::mem::take(&mut s.events))
            .unwrap_or_default()
    }

    fn len(&self, id: u64) -> usize {
        self.slots
            .iter()
            .find(|s| s.id == id)
            .map_or(0, |s| s.events.len())
    }
}

impl Drop for ThreadBuffers {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(core) = slot.core.upgrade() {
                core.ingest(&slot.events);
            }
        }
    }
}

thread_local! {
    static BUFFERS: RefCell<ThreadBuffers> = const { RefCell::new(ThreadBuffers { slots: Vec::new() }) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_logger_never_runs_the_closure_or_buffers() {
        let logger = EventLogger::disabled();
        assert!(!logger.is_enabled());
        let mut called = false;
        logger.log(|| {
            called = true;
            Event::RoundEnd { round: 0 }
        });
        assert!(!called, "closure must not run when disabled");
        assert_eq!(logger.buffered_len(), 0);
        logger.flush();
        logger.finish();
    }

    #[test]
    fn events_buffer_then_flush_in_order() {
        let (sink, reader) = MemorySink::with_capacity(1024);
        let logger = EventLogger::new(Box::new(sink));
        assert!(logger.is_enabled());
        for round in 0..10 {
            logger.log(|| Event::RoundEnd { round });
        }
        assert_eq!(logger.buffered_len(), 10);
        assert!(reader.is_empty(), "nothing drains before flush");
        logger.flush();
        assert_eq!(logger.buffered_len(), 0);
        let rounds: Vec<u64> = reader
            .events()
            .iter()
            .map(|e| match e.event {
                Event::RoundEnd { round } => round,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(rounds, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn full_buffers_drain_automatically() {
        let (sink, reader) = MemorySink::with_capacity(4 * FLUSH_AT);
        let logger = EventLogger::new(Box::new(sink));
        let total = FLUSH_AT as u64 + 3;
        for round in 0..total {
            logger.log(|| Event::RoundEnd { round });
        }
        assert_eq!(reader.len(), FLUSH_AT, "one full batch drained");
        assert_eq!(logger.buffered_len(), 3);
        logger.flush();
        assert_eq!(reader.len() as u64, total);
    }

    #[test]
    fn worker_thread_buffers_flush_on_thread_exit() {
        let (sink, reader) = MemorySink::with_capacity(1024);
        let logger = EventLogger::new(Box::new(sink));
        std::thread::scope(|scope| {
            for lane in 0..4u64 {
                let logger = logger.clone();
                scope.spawn(move || {
                    for _ in 0..5 {
                        logger.log(|| Event::S2Unit {
                            units: 1,
                            width: lane,
                        });
                    }
                    // No explicit flush: the thread-local Drop must do it.
                });
            }
        });
        assert_eq!(reader.len(), 20, "all worker events survive thread death");
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let (sink, reader) = MemorySink::with_capacity(1024);
        let logger = EventLogger::new(Box::new(sink));
        for round in 0..50 {
            logger.log(|| Event::RoundEnd { round });
        }
        logger.flush();
        let stamps: Vec<u64> = reader.events().iter().map(|e| e.t_ns).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
    }

    #[test]
    fn buffered_events_survive_a_panic() {
        let (sink, reader) = MemorySink::with_capacity(1024);
        let logger = EventLogger::new(Box::new(sink));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let local = logger.clone();
            local.log(|| Event::RoundStart {
                round: 0,
                ops: 9,
                parallel: false,
            });
            assert_eq!(local.buffered_len(), 1);
            panic!("deliberate mid-sort failure");
        }));
        assert!(result.is_err());
        assert_eq!(
            reader.len(),
            1,
            "the clone dropped while unwinding must flush its thread buffer"
        );
    }

    #[test]
    fn last_handle_drop_flushes_without_finishing() {
        let (sink, reader) = MemorySink::with_capacity(1024);
        let logger = EventLogger::new(Box::new(sink));
        logger.log(|| Event::RoundEnd { round: 7 });
        assert!(reader.is_empty());
        drop(logger);
        assert_eq!(
            reader.len(),
            1,
            "dropping the last handle drains the buffer"
        );
    }

    #[test]
    fn clones_share_one_stream() {
        let (sink, reader) = MemorySink::with_capacity(1024);
        let logger = EventLogger::new(Box::new(sink));
        let clone = logger.clone();
        logger.log(|| Event::RoundEnd { round: 1 });
        clone.log(|| Event::RoundEnd { round: 2 });
        logger.flush();
        assert_eq!(reader.len(), 2);
        assert!(format!("{logger:?}").contains("enabled"));
        assert!(format!("{:?}", EventLogger::disabled()).contains("disabled"));
    }
}
