//! Pluggable event sinks: where drained event batches go.
//!
//! Five concrete sinks cover the consumers:
//!
//! * [`MemorySink`] — a bounded in-memory ring, read back through a
//!   [`MemoryReader`]; the test and assertion sink.
//! * [`JsonlSink`] — one JSON object per line, appended to a file; the
//!   machine-readable experiment sink (`obs.jsonl`).
//! * [`SummarySink`] — aggregates the stream into an
//!   [`ObsSummary`](crate::ObsSummary) and prints the table to stderr
//!   when finished; the interactive sink.
//! * [`ProfileSink`] — aggregates spans into a
//!   [`Profile`](crate::Profile) and writes the time-breakdown table
//!   (stderr, or a file when given a path).
//! * [`PromSink`] — same aggregation, written as a Prometheus text
//!   exposition via the metrics [`Registry`](crate::Registry).
//!
//! [`Directive`] is the typed form of the `PNS_OBS` environment
//! variable (`jsonl[:path]` | `summary` | `profile[:path]` |
//! `prom[:path]` | `off`); [`Directive::parse`] rejects unknown values
//! with a [`DirectiveError`] instead of silently disabling tracing.
//! [`from_env`] selects a sink from `PNS_OBS`, and [`MultiSink`] tees
//! one stream into several sinks.

use crate::event::TimedEvent;
use crate::metrics::ObsSummary;
use crate::profile::Profile;
use crate::registry::Registry;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A destination for drained event batches. Batches arrive in emission
/// order per thread; `finish` is called exactly once, when the logger
/// is finished.
pub trait Sink: Send {
    /// Accept one drained batch.
    fn record(&mut self, events: &[TimedEvent]);
    /// Flush/close the destination. Default: nothing.
    fn finish(&mut self) {}
}

/// Bounded in-memory ring of events; the oldest events are dropped once
/// `capacity` is reached. Read through the paired [`MemoryReader`].
pub struct MemorySink {
    state: Arc<Mutex<RingState>>,
}

struct RingState {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

/// Reading side of a [`MemorySink`]; clones share the same ring.
#[derive(Clone)]
pub struct MemoryReader {
    state: Arc<Mutex<RingState>>,
}

impl MemorySink {
    /// A ring holding at most `capacity` events, plus its reader.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> (Self, MemoryReader) {
        assert!(capacity > 0, "ring capacity must be positive");
        let state = Arc::new(Mutex::new(RingState {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }));
        (
            MemorySink {
                state: Arc::clone(&state),
            },
            MemoryReader { state },
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, events: &[TimedEvent]) {
        // Poison recovery: a panicked writer leaves the ring intact (it
        // only pushes/pops), so recording must keep working.
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for &ev in events {
            if state.events.len() == state.capacity {
                state.events.pop_front();
                state.dropped += 1;
            }
            state.events.push_back(ev);
        }
    }
}

impl MemoryReader {
    /// Snapshot of the retained events, oldest first. Recovers from a
    /// poisoned ring lock (the ring's push/pop never leaves it torn).
    #[must_use]
    pub fn events(&self) -> Vec<TimedEvent> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .iter()
            .copied()
            .collect()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .len()
    }

    /// `true` iff no event is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .dropped
    }
}

/// One JSON object per event, one event per line, appended to a file.
/// Append mode, so successive experiments in one process accumulate
/// into the same log (each run can be delimited by its own events).
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Open (append/create) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened.
    pub fn append(path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink {
            out: std::io::BufWriter::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, events: &[TimedEvent]) {
        for ev in events {
            if let Ok(line) = serde_json::to_string(ev) {
                // Best-effort: an experiment must not die on a full disk.
                let _ = writeln!(self.out, "{line}");
            }
        }
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Aggregates the stream into an [`ObsSummary`] and prints the summary
/// table to stderr on finish.
#[derive(Default)]
pub struct SummarySink {
    summary: ObsSummary,
    label: String,
}

impl SummarySink {
    /// A summary sink whose printed table is titled `label`.
    #[must_use]
    pub fn new(label: &str) -> Self {
        SummarySink {
            summary: ObsSummary::default(),
            label: label.to_owned(),
        }
    }
}

impl Sink for SummarySink {
    fn record(&mut self, events: &[TimedEvent]) {
        for ev in events {
            self.summary.record(ev);
        }
    }

    fn finish(&mut self) {
        eprintln!("[pns-obs] {}\n{}", self.label, self.summary);
    }
}

/// Aggregates the stream into a [`Profile`] (per-span-key latency,
/// self-vs-child time, plus the embedded summary) and writes the table
/// on finish: to `path` when given, else to stderr.
pub struct ProfileSink {
    profile: Profile,
    label: String,
    path: Option<String>,
}

impl ProfileSink {
    /// A profile sink titled `label`; `path` selects file output.
    #[must_use]
    pub fn new(label: &str, path: Option<String>) -> Self {
        ProfileSink {
            profile: Profile::default(),
            label: label.to_owned(),
            path,
        }
    }
}

impl Sink for ProfileSink {
    fn record(&mut self, events: &[TimedEvent]) {
        for ev in events {
            self.profile.record(ev);
        }
    }

    fn finish(&mut self) {
        let rendered = format!("[pns-obs] {} profile\n{}", self.label, self.profile);
        match &self.path {
            Some(path) => {
                // Best-effort: a profile dump must not kill the run.
                if let Err(err) = std::fs::write(path, &rendered) {
                    eprintln!("[pns-obs] cannot write profile to {path}: {err}");
                    eprintln!("{rendered}");
                }
            }
            None => eprintln!("{rendered}"),
        }
    }
}

/// Aggregates the stream like [`ProfileSink`], but writes a Prometheus
/// text exposition (spans as labeled histograms, summary totals as
/// counters) on finish: to `path` when given, else to stderr.
pub struct PromSink {
    profile: Profile,
    path: Option<String>,
}

impl PromSink {
    /// A Prometheus sink; `path` selects file output.
    #[must_use]
    pub fn new(path: Option<String>) -> Self {
        PromSink {
            profile: Profile::default(),
            path,
        }
    }
}

impl Sink for PromSink {
    fn record(&mut self, events: &[TimedEvent]) {
        for ev in events {
            self.profile.record(ev);
        }
    }

    fn finish(&mut self) {
        let mut registry = Registry::new();
        self.profile.export_to(&mut registry);
        let text = registry.prometheus_text();
        match &self.path {
            Some(path) => {
                if let Err(err) = std::fs::write(path, &text) {
                    eprintln!("[pns-obs] cannot write metrics to {path}: {err}");
                    eprint!("{text}");
                }
            }
            None => eprint!("{text}"),
        }
    }
}

/// Tees one stream into several sinks.
pub struct MultiSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl MultiSink {
    /// Combine `sinks` into one.
    #[must_use]
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&mut self, events: &[TimedEvent]) {
        for sink in &mut self.sinks {
            sink.record(events);
        }
    }

    fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

/// The typed form of a `PNS_OBS` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// No tracing (`off`, `0`, empty, or unset).
    Off,
    /// JSONL events appended to `path` (default `obs.jsonl`).
    Jsonl {
        /// Output path; `None` selects the default.
        path: Option<String>,
    },
    /// Summary table to stderr on finish.
    Summary,
    /// Profile table (span time breakdown) on finish.
    Profile {
        /// Output path; `None` selects stderr.
        path: Option<String>,
    },
    /// Prometheus text exposition on finish.
    Prom {
        /// Output path; `None` selects stderr.
        path: Option<String>,
    },
}

/// A `PNS_OBS` value that names no known sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveError {
    /// The rejected value, as given.
    pub value: String,
}

impl fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown PNS_OBS directive {:?} (expected off | jsonl[:path] | summary | profile[:path] | prom[:path])",
            self.value
        )
    }
}

impl std::error::Error for DirectiveError {}

impl Directive {
    /// Parse a `PNS_OBS` value. Unknown sink names are an error, not a
    /// silent `Off` — a typo'd directive should not quietly disable the
    /// tracing the caller asked for.
    ///
    /// # Errors
    ///
    /// [`DirectiveError`] when the value names no known sink.
    pub fn parse(value: &str) -> Result<Directive, DirectiveError> {
        let value = value.trim();
        let (head, path) = match value.split_once(':') {
            Some((head, path)) => (head, Some(path).filter(|p| !p.is_empty())),
            None => (value, None),
        };
        let path = path.map(str::to_owned);
        match head {
            "" | "off" | "0" => {
                if path.is_none() {
                    Ok(Directive::Off)
                } else {
                    Err(DirectiveError {
                        value: value.to_owned(),
                    })
                }
            }
            "jsonl" => Ok(Directive::Jsonl { path }),
            "summary" if path.is_none() => Ok(Directive::Summary),
            "profile" => Ok(Directive::Profile { path }),
            "prom" => Ok(Directive::Prom { path }),
            _ => Err(DirectiveError {
                value: value.to_owned(),
            }),
        }
    }

    /// Build the sink this directive names; `None` for [`Directive::Off`]
    /// (and for a JSONL path that cannot be opened, which degrades with
    /// a stderr note rather than failing the run).
    #[must_use]
    pub fn into_sink(self, label: &str) -> Option<Box<dyn Sink>> {
        match self {
            Directive::Off => None,
            Directive::Jsonl { path } => {
                let path = path.as_deref().unwrap_or("obs.jsonl");
                match JsonlSink::append(path) {
                    Ok(sink) => Some(Box::new(sink)),
                    Err(err) => {
                        eprintln!("[pns-obs] cannot open {path}: {err}; tracing disabled");
                        None
                    }
                }
            }
            Directive::Summary => Some(Box::new(SummarySink::new(label))),
            Directive::Profile { path } => Some(Box::new(ProfileSink::new(label, path))),
            Directive::Prom { path } => Some(Box::new(PromSink::new(path))),
        }
    }
}

/// Parse a `PNS_OBS`-style directive into a sink. An unparseable value
/// is reported on stderr and yields `None` (tracing off); use
/// [`Directive::parse`] / [`try_from_env`] for the typed error.
#[must_use]
pub fn sink_from_directive(directive: &str, label: &str) -> Option<Box<dyn Sink>> {
    match Directive::parse(directive) {
        Ok(directive) => directive.into_sink(label),
        Err(err) => {
            eprintln!("[pns-obs] {err}; tracing disabled");
            None
        }
    }
}

/// [`sink_from_directive`] applied to the `PNS_OBS` environment
/// variable. Unset means `off`; malformed values are reported on
/// stderr and treated as `off`.
#[must_use]
pub fn from_env(label: &str) -> Option<Box<dyn Sink>> {
    std::env::var("PNS_OBS")
        .ok()
        .and_then(|v| sink_from_directive(&v, label))
}

/// Typed-error variant of [`from_env`]: `Ok(None)` when `PNS_OBS` is
/// unset or `off`, `Ok(Some(sink))` for a valid sink directive.
///
/// # Errors
///
/// [`DirectiveError`] when `PNS_OBS` is set to a malformed value.
pub fn try_from_env(label: &str) -> Result<Option<Box<dyn Sink>>, DirectiveError> {
    match std::env::var("PNS_OBS") {
        Ok(value) => Ok(Directive::parse(&value)?.into_sink(label)),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(t_ns: u64) -> TimedEvent {
        TimedEvent {
            t_ns,
            event: Event::RoundEnd { round: t_ns },
        }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let (mut sink, reader) = MemorySink::with_capacity(3);
        sink.record(&[ev(0), ev(1), ev(2), ev(3), ev(4)]);
        assert_eq!(reader.len(), 3);
        assert_eq!(reader.dropped(), 2);
        let kept: Vec<u64> = reader.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(!reader.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("pns_obs_sink_test.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlSink::append(path_str).expect("open");
            sink.record(&[ev(1), ev(2)]);
            sink.finish();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: TimedEvent = serde_json::from_str(line).expect("parse");
            assert!(matches!(back.event, Event::RoundEnd { .. }));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multi_sink_fans_out() {
        let (ring_a, reader_a) = MemorySink::with_capacity(10);
        let (ring_b, reader_b) = MemorySink::with_capacity(10);
        let mut multi = MultiSink::new(vec![Box::new(ring_a), Box::new(ring_b)]);
        multi.record(&[ev(7)]);
        multi.finish();
        assert_eq!(reader_a.len(), 1);
        assert_eq!(reader_b.len(), 1);
    }

    #[test]
    fn directives_parse() {
        assert!(sink_from_directive("off", "t").is_none());
        assert!(sink_from_directive("", "t").is_none());
        assert!(sink_from_directive("nonsense", "t").is_none());
        assert!(sink_from_directive("summary", "t").is_some());
        let path = std::env::temp_dir().join("pns_obs_directive_test.jsonl");
        let directive = format!("jsonl:{}", path.to_str().expect("utf-8"));
        assert!(sink_from_directive(&directive, "t").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summary_sink_finishes_without_panicking() {
        let mut sink = SummarySink::new("test run");
        sink.record(&[ev(1)]);
        sink.finish();
    }

    #[test]
    fn every_directive_variant_parses() {
        assert_eq!(Directive::parse(""), Ok(Directive::Off));
        assert_eq!(Directive::parse("off"), Ok(Directive::Off));
        assert_eq!(Directive::parse("0"), Ok(Directive::Off));
        assert_eq!(Directive::parse("  off  "), Ok(Directive::Off));
        assert_eq!(
            Directive::parse("jsonl"),
            Ok(Directive::Jsonl { path: None })
        );
        assert_eq!(
            Directive::parse("jsonl:/tmp/x.jsonl"),
            Ok(Directive::Jsonl {
                path: Some("/tmp/x.jsonl".to_owned())
            })
        );
        // A trailing colon with no path means the default path.
        assert_eq!(
            Directive::parse("jsonl:"),
            Ok(Directive::Jsonl { path: None })
        );
        assert_eq!(Directive::parse("summary"), Ok(Directive::Summary));
        assert_eq!(
            Directive::parse("profile"),
            Ok(Directive::Profile { path: None })
        );
        assert_eq!(
            Directive::parse("profile:out.txt"),
            Ok(Directive::Profile {
                path: Some("out.txt".to_owned())
            })
        );
        assert_eq!(Directive::parse("prom"), Ok(Directive::Prom { path: None }));
        assert_eq!(
            Directive::parse("prom:metrics.prom"),
            Ok(Directive::Prom {
                path: Some("metrics.prom".to_owned())
            })
        );
    }

    #[test]
    fn malformed_directives_are_typed_errors() {
        for bad in [
            "nonsense",
            "json",
            "jsonlx",
            "summary:path",
            "off:x",
            "Profile",
        ] {
            let err = Directive::parse(bad).expect_err(bad);
            assert_eq!(err.value, bad);
            let msg = err.to_string();
            assert!(msg.contains(bad), "{msg}");
            assert!(msg.contains("profile[:path]"), "{msg}");
        }
        // The untyped path degrades to None for compatibility.
        assert!(sink_from_directive("nonsense", "t").is_none());
    }

    #[test]
    fn directive_variants_build_their_sinks() {
        assert!(Directive::Off.into_sink("t").is_none());
        assert!(Directive::Summary.into_sink("t").is_some());
        assert!(Directive::Profile { path: None }.into_sink("t").is_some());
        assert!(Directive::Prom { path: None }.into_sink("t").is_some());
    }

    #[test]
    fn profile_sink_writes_its_table_to_a_file() {
        use crate::event::Event;
        let path = std::env::temp_dir().join("pns_obs_profile_sink_test.txt");
        let path_str = path.to_str().expect("utf-8 temp path").to_owned();
        let mut sink = ProfileSink::new("profile test", Some(path_str));
        sink.record(&[
            TimedEvent {
                t_ns: 0,
                event: Event::SpanEnter {
                    span: 1,
                    parent: 0,
                    tier: 3,
                    stage: 1,
                    class: 0,
                },
            },
            TimedEvent {
                t_ns: 10,
                event: Event::SpanExit {
                    span: 1,
                    dur_ns: 10,
                },
            },
        ]);
        sink.finish();
        let text = std::fs::read_to_string(&path).expect("profile file written");
        assert!(text.contains("kernel/sort"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prom_sink_writes_an_exposition_to_a_file() {
        use crate::event::Event;
        let path = std::env::temp_dir().join("pns_obs_prom_sink_test.prom");
        let path_str = path.to_str().expect("utf-8 temp path").to_owned();
        let mut sink = PromSink::new(Some(path_str));
        sink.record(&[TimedEvent {
            t_ns: 0,
            event: Event::S2Unit { units: 3, width: 0 },
        }]);
        sink.finish();
        let text = std::fs::read_to_string(&path).expect("prom file written");
        assert!(text.contains("pns_s2_units_total 3"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
