//! Pluggable event sinks: where drained event batches go.
//!
//! Three concrete sinks cover the three consumers:
//!
//! * [`MemorySink`] — a bounded in-memory ring, read back through a
//!   [`MemoryReader`]; the test and assertion sink.
//! * [`JsonlSink`] — one JSON object per line, appended to a file; the
//!   machine-readable experiment sink (`obs.jsonl`).
//! * [`SummarySink`] — aggregates the stream into an
//!   [`ObsSummary`](crate::ObsSummary) and prints the table to stderr
//!   when finished; the interactive sink.
//!
//! [`from_env`] selects a sink from the `PNS_OBS` environment variable
//! (`jsonl[:path]`, `summary`, `off`), and [`MultiSink`] tees one
//! stream into several sinks.

use crate::event::TimedEvent;
use crate::metrics::ObsSummary;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A destination for drained event batches. Batches arrive in emission
/// order per thread; `finish` is called exactly once, when the logger
/// is finished.
pub trait Sink: Send {
    /// Accept one drained batch.
    fn record(&mut self, events: &[TimedEvent]);
    /// Flush/close the destination. Default: nothing.
    fn finish(&mut self) {}
}

/// Bounded in-memory ring of events; the oldest events are dropped once
/// `capacity` is reached. Read through the paired [`MemoryReader`].
pub struct MemorySink {
    state: Arc<Mutex<RingState>>,
}

struct RingState {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

/// Reading side of a [`MemorySink`]; clones share the same ring.
#[derive(Clone)]
pub struct MemoryReader {
    state: Arc<Mutex<RingState>>,
}

impl MemorySink {
    /// A ring holding at most `capacity` events, plus its reader.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> (Self, MemoryReader) {
        assert!(capacity > 0, "ring capacity must be positive");
        let state = Arc::new(Mutex::new(RingState {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }));
        (
            MemorySink {
                state: Arc::clone(&state),
            },
            MemoryReader { state },
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, events: &[TimedEvent]) {
        let mut state = self.state.lock().expect("ring lock");
        for &ev in events {
            if state.events.len() == state.capacity {
                state.events.pop_front();
                state.dropped += 1;
            }
            state.events.push_back(ev);
        }
    }
}

impl MemoryReader {
    /// Snapshot of the retained events, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if the ring lock is poisoned.
    #[must_use]
    pub fn events(&self) -> Vec<TimedEvent> {
        self.state
            .lock()
            .expect("ring lock")
            .events
            .iter()
            .copied()
            .collect()
    }

    /// Number of retained events.
    ///
    /// # Panics
    ///
    /// Panics if the ring lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("ring lock").events.len()
    }

    /// `true` iff no event is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    ///
    /// # Panics
    ///
    /// Panics if the ring lock is poisoned.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("ring lock").dropped
    }
}

/// One JSON object per event, one event per line, appended to a file.
/// Append mode, so successive experiments in one process accumulate
/// into the same log (each run can be delimited by its own events).
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Open (append/create) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened.
    pub fn append(path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink {
            out: std::io::BufWriter::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, events: &[TimedEvent]) {
        for ev in events {
            if let Ok(line) = serde_json::to_string(ev) {
                // Best-effort: an experiment must not die on a full disk.
                let _ = writeln!(self.out, "{line}");
            }
        }
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Aggregates the stream into an [`ObsSummary`] and prints the summary
/// table to stderr on finish.
#[derive(Default)]
pub struct SummarySink {
    summary: ObsSummary,
    label: String,
}

impl SummarySink {
    /// A summary sink whose printed table is titled `label`.
    #[must_use]
    pub fn new(label: &str) -> Self {
        SummarySink {
            summary: ObsSummary::default(),
            label: label.to_owned(),
        }
    }
}

impl Sink for SummarySink {
    fn record(&mut self, events: &[TimedEvent]) {
        for ev in events {
            self.summary.record(ev);
        }
    }

    fn finish(&mut self) {
        eprintln!("[pns-obs] {}\n{}", self.label, self.summary);
    }
}

/// Tees one stream into several sinks.
pub struct MultiSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl MultiSink {
    /// Combine `sinks` into one.
    #[must_use]
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&mut self, events: &[TimedEvent]) {
        for sink in &mut self.sinks {
            sink.record(events);
        }
    }

    fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

/// Parse a `PNS_OBS`-style directive into a sink:
///
/// * `jsonl` — [`JsonlSink`] appending to `obs.jsonl`;
/// * `jsonl:some/path.jsonl` — [`JsonlSink`] appending to that path;
/// * `summary` — [`SummarySink`] printing to stderr, titled `label`;
/// * `off`, empty, or unparseable — no sink (`None`).
///
/// A JSONL path that cannot be opened degrades to `None` rather than
/// failing the run.
#[must_use]
pub fn sink_from_directive(directive: &str, label: &str) -> Option<Box<dyn Sink>> {
    let directive = directive.trim();
    if let Some(rest) = directive.strip_prefix("jsonl") {
        let path = rest.strip_prefix(':').filter(|p| !p.is_empty());
        let path = path.unwrap_or("obs.jsonl");
        return match JsonlSink::append(path) {
            Ok(sink) => Some(Box::new(sink)),
            Err(err) => {
                eprintln!("[pns-obs] cannot open {path}: {err}; tracing disabled");
                None
            }
        };
    }
    if directive == "summary" {
        return Some(Box::new(SummarySink::new(label)));
    }
    None
}

/// [`sink_from_directive`] applied to the `PNS_OBS` environment
/// variable. Unset means `off`.
#[must_use]
pub fn from_env(label: &str) -> Option<Box<dyn Sink>> {
    std::env::var("PNS_OBS")
        .ok()
        .and_then(|v| sink_from_directive(&v, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(t_ns: u64) -> TimedEvent {
        TimedEvent {
            t_ns,
            event: Event::RoundEnd { round: t_ns },
        }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let (mut sink, reader) = MemorySink::with_capacity(3);
        sink.record(&[ev(0), ev(1), ev(2), ev(3), ev(4)]);
        assert_eq!(reader.len(), 3);
        assert_eq!(reader.dropped(), 2);
        let kept: Vec<u64> = reader.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(!reader.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("pns_obs_sink_test.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlSink::append(path_str).expect("open");
            sink.record(&[ev(1), ev(2)]);
            sink.finish();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: TimedEvent = serde_json::from_str(line).expect("parse");
            assert!(matches!(back.event, Event::RoundEnd { .. }));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multi_sink_fans_out() {
        let (ring_a, reader_a) = MemorySink::with_capacity(10);
        let (ring_b, reader_b) = MemorySink::with_capacity(10);
        let mut multi = MultiSink::new(vec![Box::new(ring_a), Box::new(ring_b)]);
        multi.record(&[ev(7)]);
        multi.finish();
        assert_eq!(reader_a.len(), 1);
        assert_eq!(reader_b.len(), 1);
    }

    #[test]
    fn directives_parse() {
        assert!(sink_from_directive("off", "t").is_none());
        assert!(sink_from_directive("", "t").is_none());
        assert!(sink_from_directive("nonsense", "t").is_none());
        assert!(sink_from_directive("summary", "t").is_some());
        let path = std::env::temp_dir().join("pns_obs_directive_test.jsonl");
        let directive = format!("jsonl:{}", path.to_str().expect("utf-8"));
        assert!(sink_from_directive(&directive, "t").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summary_sink_finishes_without_panicking() {
        let mut sink = SummarySink::new("test run");
        sink.record(&[ev(1)]);
        sink.finish();
    }
}
