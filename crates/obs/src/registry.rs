//! A named-metrics registry: counters, gauges, and log-bucket
//! histograms under stable names (plus optional Prometheus-style
//! labels), snapshotted as JSON or Prometheus text exposition.
//!
//! The registry is a passive container — instrumented code keeps its
//! own cheap counters (`Counters`, `CacheStats`, `RetryCounters`,
//! [`crate::Profile`]) and *exports* into a registry at snapshot time
//! via their `export_to` methods, so nothing on a hot path pays for a
//! name lookup.

use crate::metrics::Histogram;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A metric's identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_owned(),
            labels,
        }
    }

    /// `{k="v",...}` suffix for Prometheus lines; empty when unlabeled.
    /// `extra` appends one more pair (used for histogram `le`).
    fn label_suffix(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    // Boxed: a Histogram is a 64-bucket array, ~30x the other variants.
    Hist(Box<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Hist(_) => "histogram",
        }
    }
}

/// One metric in a JSON snapshot.
#[derive(Debug)]
pub struct JsonMetric {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: BTreeMap<String, String>,
    /// `counter` | `gauge` | `histogram`.
    pub kind: &'static str,
    /// Counter value (counters only).
    pub value: Option<u64>,
    /// Gauge value (gauges only).
    pub gauge: Option<f64>,
    /// Histogram roll-up (histograms only).
    pub hist: Option<JsonHistogram>,
}

impl Serialize for JsonMetric {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            (
                "labels".to_owned(),
                Value::Map(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("kind".to_owned(), Value::Str(self.kind.to_owned())),
        ];
        // Absent facets are omitted, not null: counters stay one-line.
        if let Some(v) = self.value {
            entries.push(("value".to_owned(), Value::U64(v)));
        }
        if let Some(v) = self.gauge {
            entries.push(("gauge".to_owned(), Value::F64(v)));
        }
        if let Some(h) = &self.hist {
            entries.push(("hist".to_owned(), h.to_value()));
        }
        Value::Map(entries)
    }
}

/// Histogram roll-up in a JSON snapshot.
#[derive(Debug)]
pub struct JsonHistogram {
    /// Sample count.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Mean sample.
    pub mean_ns: u64,
    /// Upper bound of the p50 bucket.
    pub p50_ns: u64,
    /// Upper bound of the p90 bucket.
    pub p90_ns: u64,
    /// `(bucket_upper_bound, count)` for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl Serialize for JsonHistogram {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_owned(), Value::U64(self.count)),
            ("sum_ns".to_owned(), Value::U64(self.sum_ns)),
            ("max_ns".to_owned(), Value::U64(self.max_ns)),
            ("mean_ns".to_owned(), Value::U64(self.mean_ns)),
            ("p50_ns".to_owned(), Value::U64(self.p50_ns)),
            ("p90_ns".to_owned(), Value::U64(self.p90_ns)),
            ("buckets".to_owned(), self.buckets.to_value()),
        ])
    }
}

/// The registry. Deterministically ordered (by name, then labels), so
/// snapshots diff cleanly across runs.
#[derive(Default)]
pub struct Registry {
    metrics: BTreeMap<MetricId, Metric>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Set (overwrite) an unlabeled counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.set_counter_with(name, &[], value);
    }

    /// Set (overwrite) a labeled counter.
    pub fn set_counter_with(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.metrics
            .insert(MetricId::new(name, labels), Metric::Counter(value));
    }

    /// Add to an unlabeled counter (creating it at 0).
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        let entry = self
            .metrics
            .entry(MetricId::new(name, &[]))
            .or_insert(Metric::Counter(0));
        if let Metric::Counter(v) = entry {
            *v = v.saturating_add(delta);
        }
    }

    /// Set an unlabeled gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.set_gauge_with(name, &[], value);
    }

    /// Set a labeled gauge.
    pub fn set_gauge_with(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.metrics
            .insert(MetricId::new(name, labels), Metric::Gauge(value));
    }

    /// Record one sample into an unlabeled histogram (creating it).
    pub fn observe(&mut self, name: &str, ns: u64) {
        let entry = self
            .metrics
            .entry(MetricId::new(name, &[]))
            .or_insert_with(|| Metric::Hist(Box::default()));
        if let Metric::Hist(h) = entry {
            h.record(ns);
        }
    }

    /// Merge a whole histogram into a labeled histogram metric.
    pub fn merge_histogram_with(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let entry = self
            .metrics
            .entry(MetricId::new(name, labels))
            .or_insert_with(|| Metric::Hist(Box::default()));
        if let Metric::Hist(mine) = entry {
            mine.merge(h);
        }
    }

    /// Merge a whole histogram into an unlabeled histogram metric.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.merge_histogram_with(name, &[], h);
    }

    /// Counter value, if `name` (unlabeled) is a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(&MetricId::new(name, &[])) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value, if `name` (unlabeled) is a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(&MetricId::new(name, &[])) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` iff nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// JSON snapshot: an array of [`JsonMetric`]s in registry order.
    #[must_use]
    pub fn to_json(&self) -> Vec<JsonMetric> {
        self.metrics
            .iter()
            .map(|(id, metric)| JsonMetric {
                name: id.name.clone(),
                labels: id.labels.iter().cloned().collect(),
                kind: metric.type_name(),
                value: match metric {
                    Metric::Counter(v) => Some(*v),
                    _ => None,
                },
                gauge: match metric {
                    Metric::Gauge(v) => Some(*v),
                    _ => None,
                },
                hist: match metric {
                    Metric::Hist(h) => Some(JsonHistogram {
                        count: h.count(),
                        sum_ns: h.sum_ns(),
                        max_ns: h.max_ns(),
                        mean_ns: h.mean_ns(),
                        p50_ns: h.quantile_ns(0.5),
                        p90_ns: h.quantile_ns(0.9),
                        buckets: h
                            .bucket_counts()
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c > 0)
                            .map(|(i, &c)| (Histogram::bucket_upper_bound(i), c))
                            .collect(),
                    }),
                    _ => None,
                },
            })
            .collect()
    }

    /// JSON snapshot as a string (pretty-printed array).
    ///
    /// # Panics
    ///
    /// Never: the snapshot types serialize infallibly.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("snapshot serializes")
    }

    /// Prometheus text exposition: `# TYPE` lines plus samples;
    /// histograms expand to cumulative `_bucket{le=...}`, `_sum`, and
    /// `_count` series (only non-empty buckets, plus `+Inf`).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (id, metric) in &self.metrics {
            if last_name != Some(id.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", id.name, metric.type_name());
                last_name = Some(id.name.as_str());
            }
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", id.name, id.label_suffix(None));
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", id.name, id.label_suffix(None));
                }
                Metric::Hist(h) => {
                    let mut cumulative = 0u64;
                    for (i, &count) in h.bucket_counts().iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        cumulative += count;
                        let le = Histogram::bucket_upper_bound(i).to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            id.name,
                            id.label_suffix(Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        id.name,
                        id.label_suffix(Some(("le", "+Inf"))),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        id.name,
                        id.label_suffix(None),
                        h.sum_ns()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        id.name,
                        id.label_suffix(None),
                        h.count()
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_snapshot() {
        let mut reg = Registry::new();
        reg.set_counter("pns_s2_units_total", 42);
        reg.add_counter("pns_events_total", 10);
        reg.add_counter("pns_events_total", 5);
        reg.set_gauge("pns_cache_hit_ratio", 0.75);
        reg.observe("pns_sort_ns", 100);
        reg.observe("pns_sort_ns", 3000);
        assert_eq!(reg.len(), 4);
        assert!(!reg.is_empty());
        assert_eq!(reg.counter("pns_s2_units_total"), Some(42));
        assert_eq!(reg.counter("pns_events_total"), Some(15));
        assert_eq!(reg.gauge("pns_cache_hit_ratio"), Some(0.75));
        assert_eq!(reg.counter("missing"), None);
        assert_eq!(reg.gauge("pns_s2_units_total"), None);

        let json = reg.to_json_string();
        assert_eq!(json.matches("\"name\"").count(), 4);
        assert!(json.contains("\"pns_sort_ns\""), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"sum_ns\": 3100"), "{json}");
        // Absent facets are omitted entirely.
        assert!(!json.contains("null"), "{json}");
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let mut reg = Registry::new();
        reg.set_counter_with("pns_span_self_ns_total", &[("tier", "kernel")], 7);
        reg.set_counter_with("pns_span_self_ns_total", &[("tier", "serial")], 9);
        reg.set_gauge("pns_lane_utilization", 1.0);
        let mut h = Histogram::default();
        h.record(5);
        h.record(900);
        reg.merge_histogram_with("pns_span_ns", &[("tier", "kernel")], &h);
        let text = reg.prometheus_text();
        assert!(
            text.contains("# TYPE pns_span_self_ns_total counter"),
            "{text}"
        );
        assert!(
            text.contains(r#"pns_span_self_ns_total{tier="kernel"} 7"#),
            "{text}"
        );
        assert!(
            text.contains(r#"pns_span_self_ns_total{tier="serial"} 9"#),
            "{text}"
        );
        // One TYPE line per name, not per labeled series.
        assert_eq!(text.matches("# TYPE pns_span_self_ns_total").count(), 1);
        assert!(text.contains("# TYPE pns_span_ns histogram"), "{text}");
        // 5 has bit length 3 (bucket upper bound 7); 900 bit length 10
        // (upper bound 1023); cumulative counts.
        assert!(
            text.contains(r#"pns_span_ns_bucket{tier="kernel",le="7"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"pns_span_ns_bucket{tier="kernel",le="1023"} 2"#),
            "{text}"
        );
        assert!(
            text.contains(r#"pns_span_ns_bucket{tier="kernel",le="+Inf"} 2"#),
            "{text}"
        );
        assert!(
            text.contains(r#"pns_span_ns_sum{tier="kernel"} 905"#),
            "{text}"
        );
        assert!(
            text.contains(r#"pns_span_ns_count{tier="kernel"} 2"#),
            "{text}"
        );
        assert!(text.contains("pns_lane_utilization 1"), "{text}");
    }

    #[test]
    fn labels_sort_and_escape() {
        let mut reg = Registry::new();
        reg.set_counter_with("m", &[("z", "1"), ("a", "quo\"te")], 3);
        let text = reg.prometheus_text();
        assert!(text.contains(r#"m{a="quo\"te",z="1"} 3"#), "{text}");
    }

    #[test]
    fn type_mismatch_is_ignored_not_corrupted() {
        let mut reg = Registry::new();
        reg.set_counter("x", 1);
        reg.observe("x", 99); // wrong kind: ignored
        assert_eq!(reg.counter("x"), Some(1));
        reg.add_counter("x", 2);
        assert_eq!(reg.counter("x"), Some(3));
    }
}
