//! Traced execution of one multiway merge, recording every intermediate
//! state named in Section 3.1 and Figs. 6–11 — and thereby reproducing the
//! paper's 27-key worked example of Figs. 12–15 state by state.

use crate::counters::Counters;
use crate::merge::{
    check_inputs, distribute, interleave, multiway_merge, BaseSorter, MergeInputError,
};
use pns_order::Direction;

/// Every intermediate state of a single (top-level) multiway merge.
///
/// Indices mirror the paper: `b[u][v]` is `B_{u,v}`, `c[v]` is `C_v`,
/// `d` is the interleaved sequence `D`, and `e[z] … i_seqs[z]` are the
/// Step 4 block states `E_z, F_z, G_z, H_z, I_z`. The final sorted result
/// `S` is in `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeTrace<K> {
    /// The inputs `A_u` as given.
    pub a: Vec<Vec<K>>,
    /// Step 1: distributed subsequences `B_{u,v}`.
    pub b: Vec<Vec<Vec<K>>>,
    /// Step 2: merged columns `C_v`.
    pub c: Vec<Vec<K>>,
    /// Step 3: interleaved sequence `D`.
    pub d: Vec<K>,
    /// Step 4 blocks before any cleaning: `E_z`.
    pub e: Vec<Vec<K>>,
    /// After the first alternating sort: `F_z`.
    pub f: Vec<Vec<K>>,
    /// After the first odd-even transposition round: `G_z`.
    pub g: Vec<Vec<K>>,
    /// After the second odd-even transposition round: `H_z`.
    pub h: Vec<Vec<K>>,
    /// After the final alternating sort: `I_z`.
    pub i_seqs: Vec<Vec<K>>,
    /// The sorted output `S` (odd blocks of `I` read reversed).
    pub s: Vec<K>,
}

/// Run one multiway merge, recording every intermediate state. Costs are
/// accumulated into `counters` identically to
/// [`multiway_merge`].
///
/// For the base case `m = N` (where [`multiway_merge`] performs a single
/// `N²`-key sort and Steps 1–4 never occur) the trace's intermediate
/// vectors (`b` … `i_seqs`) are empty and only `a` and the sorted `s` are
/// populated — mirroring what the algorithm actually did instead of
/// panicking as earlier versions of this function used to.
///
/// # Panics
///
/// As [`multiway_merge`]. Use
/// [`try_multiway_merge_traced`] for a panic-free variant.
#[must_use]
pub fn multiway_merge_traced<K: Ord + Clone, S: BaseSorter<K>>(
    inputs: &[Vec<K>],
    sorter: &S,
    counters: &mut Counters,
) -> MergeTrace<K> {
    match try_multiway_merge_traced(inputs, sorter, counters) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

/// As [`multiway_merge_traced`], but reporting bad inputs as a
/// [`MergeInputError`] instead of panicking.
///
/// # Errors
///
/// Returns the first violated structural precondition (see
/// [`check_inputs`]).
pub fn try_multiway_merge_traced<K: Ord + Clone, S: BaseSorter<K>>(
    inputs: &[Vec<K>],
    sorter: &S,
    counters: &mut Counters,
) -> Result<MergeTrace<K>, MergeInputError> {
    check_inputs(inputs)?;
    let n = inputs.len();
    let m = inputs[0].len();
    counters.merges += 1;

    if m == n {
        // Base case, consistent with `multiway_merge`: one N²-key sort.
        // Steps 1–4 never run, so the intermediate states are empty.
        let mut s: Vec<K> = inputs.iter().flatten().cloned().collect();
        sorter.sort(&mut s, Direction::Ascending);
        counters.s2_units += 1;
        counters.base_sorts += 1;
        return Ok(MergeTrace {
            a: inputs.to_vec(),
            b: Vec::new(),
            c: Vec::new(),
            d: Vec::new(),
            e: Vec::new(),
            f: Vec::new(),
            g: Vec::new(),
            h: Vec::new(),
            i_seqs: Vec::new(),
            s,
        });
    }

    // Step 1.
    let b = distribute(inputs);

    // Step 2 (columns in parallel; recursion untraced).
    let mut columns_cost = Counters::new();
    let mut c: Vec<Vec<K>> = Vec::with_capacity(n);
    for v in 0..n {
        let column: Vec<Vec<K>> = b.iter().map(|row| row[v].clone()).collect();
        let mut child = Counters::new();
        c.push(multiway_merge(&column, sorter, &mut child));
        columns_cost = columns_cost.alongside(child);
    }
    *counters = counters.then(columns_cost);

    // Step 3.
    let d = interleave(&c);

    // Step 4, recorded block state by block state.
    let block = n * n;
    let blocks = d.len() / block;
    let dir_of = |z: usize| {
        if z.is_multiple_of(2) {
            Direction::Ascending
        } else {
            Direction::Descending
        }
    };
    let e: Vec<Vec<K>> = d.chunks(block).map(<[K]>::to_vec).collect();

    let mut f: Vec<Vec<K>> = e.clone();
    for (z, blk) in f.iter_mut().enumerate() {
        sorter.sort(blk, dir_of(z));
    }
    counters.s2_units += 1;
    counters.base_sorts += blocks as u64;

    let mut g = f.clone();
    oet_round(&mut g, 0);
    counters.route_units += 1;
    counters.compare_exchanges += (blocks as u64 / 2) * block as u64;

    let mut h = g.clone();
    oet_round(&mut h, 1);
    counters.route_units += 1;
    counters.compare_exchanges += ((blocks as u64 - 1) / 2) * block as u64;

    let mut i_seqs = h.clone();
    for (z, blk) in i_seqs.iter_mut().enumerate() {
        sorter.sort(blk, dir_of(z));
    }
    counters.s2_units += 1;
    counters.base_sorts += blocks as u64;

    let mut s = Vec::with_capacity(d.len());
    for (z, blk) in i_seqs.iter().enumerate() {
        if z % 2 == 0 {
            s.extend(blk.iter().cloned());
        } else {
            s.extend(blk.iter().rev().cloned());
        }
    }

    Ok(MergeTrace {
        a: inputs.to_vec(),
        b,
        c,
        d,
        e,
        f,
        g,
        h,
        i_seqs,
        s,
    })
}

/// One element-wise odd-even transposition round over a slice of blocks:
/// pairs `(z, z+1)` for `z ≡ parity (mod 2)` compare term by term, minimum
/// to the earlier block.
fn oet_round<K: Ord>(blocks: &mut [Vec<K>], parity: usize) {
    let mut z = parity;
    while z + 1 < blocks.len() {
        let (lo, hi) = blocks.split_at_mut(z + 1);
        let a = &mut lo[z];
        let b = &mut hi[0];
        for t in 0..a.len() {
            if a[t] > b[t] {
                std::mem::swap(&mut a[t], &mut b[t]);
            }
        }
        z += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::StdBaseSorter;

    /// The complete worked example of Figs. 12–15 (inputs credited to
    /// Nancy Eleser in the paper's acknowledgments), checked against every
    /// state the figures display.
    #[test]
    fn paper_worked_example() {
        let inputs = vec![
            vec![0u32, 4, 4, 5, 5, 7, 8, 8, 9], // A_0
            vec![1, 4, 5, 5, 5, 6, 7, 7, 8],    // A_1
            vec![0, 0, 1, 1, 1, 2, 3, 4, 9],    // A_2
        ];
        let mut counters = Counters::new();
        let t = multiway_merge_traced(&inputs, &StdBaseSorter, &mut counters);

        // Fig. 12 ("After Step 1"): the three B-columns.
        assert_eq!(t.b[0][0], vec![0, 7, 8]);
        assert_eq!(t.b[1][0], vec![1, 6, 7]);
        assert_eq!(t.b[2][0], vec![0, 2, 3]);
        assert_eq!(t.b[0][1], vec![4, 5, 8]);
        assert_eq!(t.b[1][1], vec![4, 5, 7]);
        assert_eq!(t.b[2][1], vec![0, 1, 4]);
        assert_eq!(t.b[0][2], vec![4, 5, 9]);
        assert_eq!(t.b[1][2], vec![5, 5, 8]);
        assert_eq!(t.b[2][2], vec![1, 1, 9]);

        // Fig. 13b: merged columns C_v (each sorted).
        assert_eq!(t.c[0], vec![0, 0, 1, 2, 3, 6, 7, 7, 8]);
        assert_eq!(t.c[1], vec![0, 1, 4, 4, 4, 5, 5, 7, 8]);
        assert_eq!(t.c[2], vec![1, 1, 4, 5, 5, 5, 8, 9, 9]);

        // Fig. 14: the interleaved sequence D.
        assert_eq!(
            t.d,
            vec![0, 0, 1, 0, 1, 1, 1, 4, 4, 2, 4, 5, 3, 4, 5, 6, 5, 5, 7, 5, 8, 7, 7, 9, 8, 8, 9]
        );

        // Fig. 15a: blocks sorted in alternating directions.
        assert_eq!(t.f[0], vec![0, 0, 0, 1, 1, 1, 1, 4, 4]);
        assert_eq!(t.f[1], vec![6, 5, 5, 5, 5, 4, 4, 3, 2]);
        assert_eq!(t.f[2], vec![5, 7, 7, 7, 8, 8, 8, 9, 9]);

        // Fig. 15b: first transposition round — the keys 3 and 2 (block 1,
        // last two positions) swap with the two 4s of block 0.
        assert_eq!(t.g[0], vec![0, 0, 0, 1, 1, 1, 1, 3, 2]);
        assert_eq!(t.g[1], vec![6, 5, 5, 5, 5, 4, 4, 4, 4]);
        assert_eq!(t.g[2], t.f[2]);

        // Fig. 15c: second round — the 5 heading block 2 swaps with the 6
        // heading block 1.
        assert_eq!(t.h[1], vec![5, 5, 5, 5, 5, 4, 4, 4, 4]);
        assert_eq!(t.h[2], vec![6, 7, 7, 7, 8, 8, 8, 9, 9]);
        assert_eq!(t.h[0], t.g[0]);

        // Fig. 15d: final alternating sorts.
        assert_eq!(t.i_seqs[0], vec![0, 0, 0, 1, 1, 1, 1, 2, 3]);
        assert_eq!(t.i_seqs[1], vec![5, 5, 5, 5, 5, 4, 4, 4, 4]);
        assert_eq!(t.i_seqs[2], vec![6, 7, 7, 7, 8, 8, 8, 9, 9]);

        // The result, read boustrophedon, is fully sorted.
        let mut expect: Vec<u32> = inputs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(t.s, expect);

        // Lemma 3 accounting for k = 3.
        assert_eq!(counters.s2_units, 3);
        assert_eq!(counters.route_units, 2);
    }

    #[test]
    fn traced_merge_matches_untraced() {
        let inputs: Vec<Vec<u32>> = (0..3)
            .map(|u| (0..9).map(|i| (i * 5 + u * 3) % 23).collect::<Vec<u32>>())
            .map(|mut v| {
                v.sort_unstable();
                v
            })
            .collect();
        let mut c1 = Counters::new();
        let traced = multiway_merge_traced(&inputs, &StdBaseSorter, &mut c1);
        let mut c2 = Counters::new();
        let plain = multiway_merge(&inputs, &StdBaseSorter, &mut c2);
        assert_eq!(traced.s, plain);
        assert_eq!(c1, c2);
    }

    #[test]
    fn base_case_traces_gracefully_instead_of_panicking() {
        // m = N: multiway_merge does a single N²-key sort, and the trace
        // now mirrors that instead of asserting m ≥ N².
        let inputs = vec![vec![2u32, 9, 11], vec![1, 4, 30], vec![0, 0, 5]];
        let mut c1 = Counters::new();
        let t = multiway_merge_traced(&inputs, &StdBaseSorter, &mut c1);
        let mut c2 = Counters::new();
        let plain = multiway_merge(&inputs, &StdBaseSorter, &mut c2);
        assert_eq!(t.s, plain);
        assert_eq!(t.s, vec![0, 0, 1, 2, 4, 5, 9, 11, 30]);
        assert_eq!(c1, c2);
        assert_eq!(c1.s2_units, 1);
        assert_eq!(c1.base_sorts, 1);
        assert_eq!(c1.merges, 1);
        assert!(t.b.is_empty());
        assert!(t.c.is_empty());
        assert!(t.d.is_empty());
        assert!(t.i_seqs.is_empty());
        assert_eq!(t.a, inputs);
    }

    #[test]
    fn try_variant_reports_errors_and_succeeds_on_both_paths() {
        let mut c = Counters::new();
        // Error path: ragged inputs.
        let err =
            try_multiway_merge_traced(&[vec![1u32, 2, 3], vec![1, 2]], &StdBaseSorter, &mut c)
                .unwrap_err();
        assert_eq!(err, MergeInputError::UnequalLengths);
        assert_eq!(c, Counters::new(), "no cost charged on rejected inputs");

        // Base-case path.
        let base = try_multiway_merge_traced(&[vec![1u32, 2], vec![0, 3]], &StdBaseSorter, &mut c)
            .unwrap();
        assert_eq!(base.s, vec![0, 1, 2, 3]);

        // Full four-step path.
        let inputs: Vec<Vec<u32>> = (0..3)
            .map(|u| (0..9).map(|i| i * 3 + u).collect())
            .collect();
        let mut c2 = Counters::new();
        let full = try_multiway_merge_traced(&inputs, &StdBaseSorter, &mut c2).unwrap();
        assert!(!full.b.is_empty());
        assert!(full.s.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(c2.s2_units, 3);
    }

    #[test]
    fn trace_shapes_are_consistent() {
        let inputs: Vec<Vec<u16>> = (0..4)
            .map(|u| (0..16).map(|i| i * 2 + u).collect())
            .collect();
        let mut c = Counters::new();
        let t = multiway_merge_traced(&inputs, &StdBaseSorter, &mut c);
        assert_eq!(t.b.len(), 4);
        assert!(t.b.iter().all(|row| row.len() == 4));
        assert!(t.b.iter().flatten().all(|s| s.len() == 4));
        assert_eq!(t.c.len(), 4);
        assert!(t.c.iter().all(|s| s.len() == 16));
        assert_eq!(t.d.len(), 64);
        assert_eq!(t.e.len(), 4);
        assert!(t.i_seqs.iter().all(|s| s.len() == 16));
        assert_eq!(t.s.len(), 64);
    }
}
