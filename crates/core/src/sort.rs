//! The full sorting algorithm (Section 3.3 of the paper).
//!
//! To sort `N^r` keys: sort independent blocks of `N²` keys, then
//! repeatedly group `N` adjacent sorted sequences and multiway-merge each
//! group, until one sequence remains. Theorem 1: the whole algorithm
//! spends `(r-1)²` `S2` units and `(r-1)(r-2)` routing units.

use crate::counters::Counters;
use crate::merge::{multiway_merge, BaseSorter};
use pns_order::Direction;

/// Sort `keys` (length `N^r`, `r ≥ 2`) with the multiway-merge sorting
/// algorithm, returning the sorted sequence and the charged-cost counters.
///
/// ```
/// use pns_core::{multiway_merge_sort, StdBaseSorter};
///
/// let keys: Vec<u32> = (0..81).rev().collect(); // 3^4 keys
/// let (sorted, counters) = multiway_merge_sort(&keys, 3, &StdBaseSorter);
/// assert_eq!(sorted, (0..81).collect::<Vec<u32>>());
/// // Theorem 1 for r = 4: (r-1)² = 9 S2 units, (r-1)(r-2) = 6 routings.
/// assert_eq!(counters.s2_units, 9);
/// assert_eq!(counters.route_units, 6);
/// ```
///
/// # Panics
///
/// Panics if `keys.len()` is not `n^r` for some `r ≥ 2`.
#[must_use]
pub fn multiway_merge_sort<K: Ord + Clone, S: BaseSorter<K>>(
    keys: &[K],
    n: usize,
    sorter: &S,
) -> (Vec<K>, Counters) {
    // Validate the key count (n^r, r ≥ 2) up front.
    let _r = dims_for_len(n, keys.len());
    let mut counters = Counters::new();

    // Initial stage: sort each N²-key block independently — one parallel
    // S2 round.
    let block = n * n;
    let mut seqs: Vec<Vec<K>> = keys
        .chunks(block)
        .map(|c| {
            let mut v = c.to_vec();
            sorter.sort(&mut v, Direction::Ascending);
            v
        })
        .collect();
    counters.s2_units += 1;
    counters.base_sorts += seqs.len() as u64;

    // Merge stages: group N sequences and merge, k = 3 … r.
    while seqs.len() > 1 {
        let mut stage_cost = Counters::new();
        let mut next: Vec<Vec<K>> = Vec::with_capacity(seqs.len() / n);
        for group in seqs.chunks(n) {
            let mut child = Counters::new();
            next.push(multiway_merge(group, sorter, &mut child));
            stage_cost = stage_cost.alongside(child);
        }
        counters = counters.then(stage_cost);
        seqs = next;
    }
    (seqs.pop().expect("at least one sequence"), counters)
}

/// The number of dimensions `r` with `n^r == len`.
///
/// # Panics
///
/// Panics unless `len = n^r` for some `r ≥ 2`.
#[must_use]
pub fn dims_for_len(n: usize, len: usize) -> usize {
    assert!(n >= 2, "factor size must be ≥ 2");
    let mut r = 0usize;
    let mut p = 1usize;
    while p < len {
        p = p.checked_mul(n).expect("length overflow");
        r += 1;
    }
    assert_eq!(p, len, "key count {len} is not a power of N = {n}");
    assert!(r >= 2, "need at least N² keys (r ≥ 2), got r = {r}");
    r
}

/// Theorem 1: number of `S2` units spent sorting `N^r` keys, `(r-1)²`.
#[inline]
#[must_use]
pub fn predicted_s2_units(r: usize) -> u64 {
    let r = r as u64;
    (r - 1) * (r - 1)
}

/// Theorem 1: number of routing units spent sorting `N^r` keys,
/// `(r-1)(r-2)`.
#[inline]
#[must_use]
pub fn predicted_route_units(r: usize) -> u64 {
    let r = r as u64;
    (r - 1) * (r - 2)
}

/// Lemma 3: `S2` units spent by one `k`-dimensional merge, `2(k-2)+1`.
#[inline]
#[must_use]
pub fn predicted_merge_s2_units(k: usize) -> u64 {
    2 * (k as u64 - 2) + 1
}

/// Lemma 3: routing units spent by one `k`-dimensional merge, `2(k-2)`.
#[inline]
#[must_use]
pub fn predicted_merge_route_units(k: usize) -> u64 {
    2 * (k as u64 - 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::StdBaseSorter;

    #[test]
    fn sorts_reversed_input() {
        for (n, r) in [(2usize, 2usize), (2, 5), (3, 3), (3, 4), (4, 3), (5, 2)] {
            let len = n.pow(r as u32);
            let keys: Vec<u64> = (0..len as u64).rev().collect();
            let (out, _) = multiway_merge_sort(&keys, n, &StdBaseSorter);
            assert_eq!(out, (0..len as u64).collect::<Vec<_>>(), "n={n} r={r}");
        }
    }

    #[test]
    fn theorem1_unit_counts() {
        for (n, r) in [
            (2usize, 2usize),
            (2, 3),
            (2, 4),
            (2, 6),
            (3, 3),
            (3, 4),
            (4, 3),
        ] {
            let len = n.pow(r as u32);
            let keys: Vec<u64> = (0..len as u64)
                .map(|x| x.wrapping_mul(2654435761) % 1000)
                .collect();
            let (out, c) = multiway_merge_sort(&keys, n, &StdBaseSorter);
            assert!(out.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(c.s2_units, predicted_s2_units(r), "S2 units n={n} r={r}");
            assert_eq!(
                c.route_units,
                predicted_route_units(r),
                "route units n={n} r={r}"
            );
        }
    }

    #[test]
    fn sorts_all_equal_keys() {
        let keys = vec![7u8; 27];
        let (out, _) = multiway_merge_sort(&keys, 3, &StdBaseSorter);
        assert_eq!(out, keys);
    }

    #[test]
    fn preserves_multiset() {
        let keys: Vec<u32> = (0..81).map(|x| x * 37 % 13).collect();
        let (out, _) = multiway_merge_sort(&keys, 3, &StdBaseSorter);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn dims_for_len_checks() {
        assert_eq!(dims_for_len(3, 27), 3);
        assert_eq!(dims_for_len(2, 4), 2);
        assert_eq!(dims_for_len(10, 10_000), 4);
    }

    #[test]
    #[should_panic(expected = "not a power")]
    fn rejects_non_power_key_counts() {
        let _ = dims_for_len(3, 30);
    }

    #[test]
    #[should_panic(expected = "r ≥ 2")]
    fn rejects_single_dimension() {
        let _ = dims_for_len(3, 3);
    }

    #[test]
    fn predictions_match_closed_forms() {
        assert_eq!(predicted_s2_units(2), 1);
        assert_eq!(predicted_route_units(2), 0);
        assert_eq!(predicted_s2_units(5), 16);
        assert_eq!(predicted_route_units(5), 12);
        // Theorem 1's telescoping: S_r = S2-stage + Σ M_k.
        for r in 3..10 {
            let s2: u64 = 1 + (3..=r).map(predicted_merge_s2_units).sum::<u64>();
            let rt: u64 = (3..=r).map(predicted_merge_route_units).sum::<u64>();
            assert_eq!(s2, predicted_s2_units(r));
            assert_eq!(rt, predicted_route_units(r));
        }
    }

    #[test]
    fn stability_is_not_promised_but_order_is_total() {
        // Sorting pairs by first component only (Ord on tuple uses both —
        // emulate a key with payload by sorting (key, id) pairs).
        let keys: Vec<(u8, u16)> = (0..64u16).map(|i| ((i % 4) as u8, i)).collect();
        let (out, _) = multiway_merge_sort(&keys, 2, &StdBaseSorter);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }
}
