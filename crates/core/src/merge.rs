//! The multiway-merge operation (Section 3.1 of the paper).
//!
//! [`multiway_merge`] combines `N` sorted sequences of `m` keys each
//! (`m` a power of `N`) into a single sorted sequence of `mN` keys:
//!
//! 1. **Distribute** each input `A_u` into `N` sorted subsequences
//!    `B_{u,v}` by reading the columns of `A_u` written on an `m/N × N`
//!    array in snake order (no data movement on the network — the
//!    subsequences are where snake order already put them).
//! 2. **Merge columns**: recursively merge `B_{0,v}, …, B_{N-1,v}` into
//!    `C_v`; when a column holds only `N²` keys, sort it directly with the
//!    assumed `N²`-key sorter (recursing further would make no progress —
//!    Section 3.2).
//! 3. **Interleave** the `C_v` round-robin into `D`. By Lemma 1, a 0/1
//!    input is now sorted except for a dirty window of at most `N²` keys.
//! 4. **Clean**: split `D` into blocks `E_z` of `N²` keys, sort them in
//!    alternating directions, run two element-wise odd-even transposition
//!    rounds between adjacent blocks, re-sort, and concatenate
//!    (boustrophedon — odd blocks are read reversed).
//!
//! The base case `m = N` (a merge of `N` sorted `N`-key sequences, i.e. a
//! single `N²`-key sort) is Lemma 3's initial condition `M_2 = S2`.

use crate::counters::Counters;
use pns_obs::{Event, EventLogger};
use pns_order::{positions_of_dim1_digit, Direction};
use std::fmt;

/// The sorter for `N²` keys that Section 3 assumes available.
///
/// At the sequence level any comparison sort will do; the network layer
/// substitutes an actual `PG_2` sorting algorithm (Schnorr–Shamir-style
/// mesh sort, shearsort, …). Implementations must sort *correctly* — the
/// zero-one argument for the merge is conditional on it.
pub trait BaseSorter<K> {
    /// Sort `keys` in the given direction.
    fn sort(&self, keys: &mut [K], dir: Direction);
}

/// [`BaseSorter`] backed by the standard library's unstable sort.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdBaseSorter;

impl<K: Ord> BaseSorter<K> for StdBaseSorter {
    fn sort(&self, keys: &mut [K], dir: Direction) {
        keys.sort_unstable();
        if dir == Direction::Descending {
            keys.reverse();
        }
    }
}

/// Merge `N = inputs.len()` sorted sequences of equal power-of-`N` length
/// into one sorted sequence, accumulating cost into `counters`.
///
/// ```
/// use pns_core::{multiway_merge, Counters, StdBaseSorter};
///
/// let inputs = vec![
///     vec![0u32, 4, 4, 5, 5, 7, 8, 8, 9],
///     vec![1, 4, 5, 5, 5, 6, 7, 7, 8],
///     vec![0, 0, 1, 1, 1, 2, 3, 4, 9],
/// ];
/// let mut counters = Counters::new();
/// let merged = multiway_merge(&inputs, &StdBaseSorter, &mut counters);
/// assert!(merged.windows(2).all(|w| w[0] <= w[1]));
/// // Lemma 3 for k = 3: 2(k-2)+1 = 3 S2 units, 2(k-2) = 2 routing units.
/// assert_eq!(counters.s2_units, 3);
/// assert_eq!(counters.route_units, 2);
/// ```
///
/// # Panics
///
/// Panics if fewer than two inputs are given, lengths differ or are not a
/// positive power of `N`, or (debug only) an input is not sorted.
#[must_use]
pub fn multiway_merge<K: Ord + Clone, S: BaseSorter<K>>(
    inputs: &[Vec<K>],
    sorter: &S,
    counters: &mut Counters,
) -> Vec<K> {
    multiway_merge_logged(inputs, sorter, counters, &EventLogger::disabled())
}

/// As [`multiway_merge`], additionally emitting one `MergePhase` event
/// per completed paper step (1 distribute, 2 merge columns, 3
/// interleave, 4 clean) into `logger`, tagged with the recursion depth
/// (0 = outermost merge). The base case (`m = N`, a single `N²`-key
/// sort) performs no steps and emits nothing. A disabled logger makes
/// this identical to [`multiway_merge`] at one branch per phase.
///
/// # Panics
///
/// As [`multiway_merge`].
#[must_use]
pub fn multiway_merge_logged<K: Ord + Clone, S: BaseSorter<K>>(
    inputs: &[Vec<K>],
    sorter: &S,
    counters: &mut Counters,
    logger: &EventLogger,
) -> Vec<K> {
    merge_at_depth(inputs, sorter, counters, logger, 0)
}

fn merge_at_depth<K: Ord + Clone, S: BaseSorter<K>>(
    inputs: &[Vec<K>],
    sorter: &S,
    counters: &mut Counters,
    logger: &EventLogger,
    depth: u64,
) -> Vec<K> {
    validate_inputs(inputs);
    counters.merges += 1;
    let n = inputs.len();
    let m = inputs[0].len();
    if m == n {
        // N sequences of N keys: a single N²-key sort (Section 3.2 / the
        // k = 2 base of Lemma 3).
        let mut all: Vec<K> = inputs.iter().flatten().cloned().collect();
        sorter.sort(&mut all, Direction::Ascending);
        counters.s2_units += 1;
        counters.base_sorts += 1;
        return all;
    }
    let d = steps_1_to_3_at_depth(inputs, sorter, counters, logger, depth);
    let out = step_4(d, n, sorter, counters);
    logger.log(|| Event::MergePhase { step: 4, depth });
    out
}

/// Steps 1–3 only: distribute, recursively merge columns, interleave.
/// Returns the sequence `D`, sorted except for a dirty window of at most
/// `N²` keys (Lemma 1). Exposed so the dirty-window experiments can
/// measure exactly what Lemma 1 bounds.
///
/// # Panics
///
/// As [`multiway_merge`]; additionally requires `m ≥ N²`.
#[must_use]
pub fn steps_1_to_3<K: Ord + Clone, S: BaseSorter<K>>(
    inputs: &[Vec<K>],
    sorter: &S,
    counters: &mut Counters,
) -> Vec<K> {
    steps_1_to_3_at_depth(inputs, sorter, counters, &EventLogger::disabled(), 0)
}

fn steps_1_to_3_at_depth<K: Ord + Clone, S: BaseSorter<K>>(
    inputs: &[Vec<K>],
    sorter: &S,
    counters: &mut Counters,
    logger: &EventLogger,
    depth: u64,
) -> Vec<K> {
    validate_inputs(inputs);
    let n = inputs.len();
    let m = inputs[0].len();
    assert!(m >= n * n, "steps 1-3 require m ≥ N² (got m = {m})");

    // Step 1: distribute each A_u into subsequences B_{u,v}.
    let b = distribute(inputs);
    logger.log(|| Event::MergePhase { step: 1, depth });

    // Step 2: merge column v = { B_{u,v} | u } into C_v, for every v.
    // The columns run in parallel on the network: time-like counters take
    // the max across columns (they are structurally identical), work-like
    // counters sum.
    let mut columns_cost = Counters::new();
    let mut c: Vec<Vec<K>> = Vec::with_capacity(n);
    for v in 0..n {
        let column: Vec<Vec<K>> = b.iter().map(|row| row[v].clone()).collect();
        let mut child = Counters::new();
        c.push(merge_at_depth(
            &column,
            sorter,
            &mut child,
            logger,
            depth + 1,
        ));
        columns_cost = columns_cost.alongside(child);
    }
    *counters = counters.then(columns_cost);
    logger.log(|| Event::MergePhase { step: 2, depth });

    // Step 3: interleave the C_v round-robin.
    let d = interleave(&c);
    logger.log(|| Event::MergePhase { step: 3, depth });
    d
}

/// Step 1 as data: `B_{u,v}` = the `v`-th column of `A_u` written on an
/// `m/N × N` array in snake order. Each `B_{u,v}` is sorted because its
/// keys keep their relative order from `A_u`.
#[must_use]
pub fn distribute<K: Clone>(inputs: &[Vec<K>]) -> Vec<Vec<Vec<K>>> {
    let n = inputs.len();
    let m = inputs[0].len();
    inputs
        .iter()
        .map(|a| {
            (0..n)
                .map(|v| {
                    positions_of_dim1_digit(n, m as u64, v)
                        .map(|p| a[p as usize].clone())
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Step 3 as data: `D[t·N + v] = C_v[t]`.
#[must_use]
pub fn interleave<K: Clone>(c: &[Vec<K>]) -> Vec<K> {
    let n = c.len();
    let m = c[0].len();
    let mut d = Vec::with_capacity(n * m);
    for t in 0..m {
        for cv in c {
            d.push(cv[t].clone());
        }
    }
    d
}

/// Step 4: clean the dirty window of `d` (length `m·N`, blocks of `N²`)
/// and return the fully sorted sequence.
#[must_use]
pub fn step_4<K: Ord + Clone, S: BaseSorter<K>>(
    mut d: Vec<K>,
    n: usize,
    sorter: &S,
    counters: &mut Counters,
) -> Vec<K> {
    let block = n * n;
    assert_eq!(
        d.len() % block,
        0,
        "sequence length must be a multiple of N²"
    );
    let blocks = d.len() / block;
    debug_assert!(blocks >= 2, "step 4 needs at least two blocks");

    let dir_of = |z: usize| {
        if z.is_multiple_of(2) {
            Direction::Ascending
        } else {
            Direction::Descending
        }
    };

    // First alternating sort: E_z -> F_z (one parallel S2 round).
    for (z, chunk) in d.chunks_mut(block).enumerate() {
        sorter.sort(chunk, dir_of(z));
    }
    counters.s2_units += 1;
    counters.base_sorts += blocks as u64;

    // Two odd-even transposition rounds between adjacent blocks
    // (element-wise min/max; each round is one permutation routing within
    // factor copies on the network).
    for parity in [0usize, 1] {
        let mut z = parity;
        while z + 1 < blocks {
            let (lo, hi) = d.split_at_mut((z + 1) * block);
            let a = &mut lo[z * block..];
            let b = &mut hi[..block];
            for t in 0..block {
                if a[t] > b[t] {
                    std::mem::swap(&mut a[t], &mut b[t]);
                }
            }
            counters.compare_exchanges += block as u64;
            z += 2;
        }
        counters.route_units += 1;
    }

    // Final alternating sort: H_z -> I_z (one parallel S2 round).
    for (z, chunk) in d.chunks_mut(block).enumerate() {
        sorter.sort(chunk, dir_of(z));
    }
    counters.s2_units += 1;
    counters.base_sorts += blocks as u64;

    // Concatenate in snake order: odd blocks are traversed reversed, which
    // turns their descending runs back into ascending position order.
    for (z, chunk) in d.chunks_mut(block).enumerate() {
        if z % 2 == 1 {
            chunk.reverse();
        }
    }
    d
}

/// Why a set of input sequences cannot be multiway-merged. Returned by
/// [`check_inputs`]; the panicking entry points format it into their
/// panic message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeInputError {
    /// Fewer than two input sequences were given.
    TooFewInputs {
        /// How many sequences were given.
        n: usize,
    },
    /// The input sequences do not all have the same length.
    UnequalLengths,
    /// The common sequence length is not a positive power of `N`.
    NotPowerOfN {
        /// The offending sequence length.
        m: usize,
        /// The number of sequences `N`.
        n: usize,
    },
}

impl fmt::Display for MergeInputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewInputs { .. } => write!(f, "need at least two sequences to merge"),
            Self::UnequalLengths => write!(f, "all input sequences must have equal length"),
            Self::NotPowerOfN { m, n } => {
                write!(f, "sequence length {m} is not a positive power of N={n}")
            }
        }
    }
}

impl std::error::Error for MergeInputError {}

/// Check the structural preconditions of a multiway merge without
/// panicking: at least two sequences, equal lengths, length a positive
/// power of `N`. Sortedness is *not* checked here (the panicking entry
/// points debug-assert it).
///
/// # Errors
///
/// Returns the first violated precondition.
pub fn check_inputs<K>(inputs: &[Vec<K>]) -> Result<(), MergeInputError> {
    let n = inputs.len();
    if n < 2 {
        return Err(MergeInputError::TooFewInputs { n });
    }
    let m = inputs[0].len();
    if inputs.iter().any(|a| a.len() != m) {
        return Err(MergeInputError::UnequalLengths);
    }
    // m must be a positive power of n.
    let mut p = n;
    while p < m {
        p *= n;
    }
    if p != m {
        return Err(MergeInputError::NotPowerOfN { m, n });
    }
    Ok(())
}

fn validate_inputs<K: Ord>(inputs: &[Vec<K>]) {
    if let Err(e) = check_inputs(inputs) {
        panic!("{e}");
    }
    debug_assert!(
        inputs.iter().all(|a| a.windows(2).all(|w| w[0] <= w[1])),
        "inputs must be sorted nondecreasing"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merge_u32(inputs: &[Vec<u32>]) -> (Vec<u32>, Counters) {
        let mut c = Counters::new();
        let out = multiway_merge(inputs, &StdBaseSorter, &mut c);
        (out, c)
    }

    #[test]
    fn base_case_sorts_n_squared_keys() {
        let inputs = vec![vec![2, 9, 11], vec![1, 4, 30], vec![0, 0, 5]];
        let (out, c) = merge_u32(&inputs);
        assert_eq!(out, vec![0, 0, 1, 2, 4, 5, 9, 11, 30]);
        assert_eq!(c.s2_units, 1);
        assert_eq!(c.route_units, 0);
    }

    #[test]
    fn distribute_matches_paper_example() {
        // Section 3.1: A_u = {1,…,9}, N = 3 gives B_{u,0} = {1,6,7},
        // B_{u,1} = {2,5,8}, B_{u,2} = {3,4,9}.
        let a: Vec<u32> = (1..=9).collect();
        let b = distribute(&[a.clone(), a.clone(), a]);
        assert_eq!(b[0][0], vec![1, 6, 7]);
        assert_eq!(b[0][1], vec![2, 5, 8]);
        assert_eq!(b[0][2], vec![3, 4, 9]);
    }

    #[test]
    fn distributed_subsequences_stay_sorted() {
        let a: Vec<u32> = (0..27).map(|x| x * 3 % 40).collect();
        let mut a = a;
        a.sort_unstable();
        let b = distribute(&[a.clone(), a.clone(), a]);
        for row in &b {
            for sub in row {
                assert!(sub.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn merges_three_sequences_of_nine() {
        let inputs = vec![
            vec![0, 4, 4, 5, 5, 7, 8, 8, 9],
            vec![1, 4, 5, 5, 5, 6, 7, 7, 8],
            vec![0, 0, 1, 1, 1, 2, 3, 4, 9],
        ];
        let (out, c) = merge_u32(&inputs);
        let mut expect: Vec<u32> = inputs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(out, expect);
        // Lemma 3 for k = 3: 2(k-2)+1 = 3 S2 units, 2(k-2) = 2 routings.
        assert_eq!(c.s2_units, 3);
        assert_eq!(c.route_units, 2);
    }

    #[test]
    fn lemma3_unit_counts_for_higher_k() {
        // Merging N sequences of N^{k-1} keys spends 2(k-2)+1 S2 units and
        // 2(k-2) routing units.
        for (n, k) in [(2usize, 3usize), (2, 4), (2, 5), (3, 3), (3, 4), (4, 3)] {
            let m = n.pow(k as u32 - 1);
            let inputs: Vec<Vec<u64>> = (0..n)
                .map(|u| (0..m as u64).map(|i| i * 7 + u as u64).collect())
                .collect();
            let (out, c) = {
                let mut cc = Counters::new();
                let o = multiway_merge(&inputs, &StdBaseSorter, &mut cc);
                (o, cc)
            };
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "n={n} k={k}");
            assert_eq!(c.s2_units, 2 * (k as u64 - 2) + 1, "n={n} k={k}");
            assert_eq!(c.route_units, 2 * (k as u64 - 2), "n={n} k={k}");
        }
    }

    #[test]
    fn merge_preserves_multiset() {
        let inputs = vec![
            vec![5u32, 5, 5, 5],
            vec![1, 2, 2, 9],
            vec![0, 3, 3, 7],
            vec![2, 2, 2, 2],
        ];
        let (out, _) = merge_u32(&inputs);
        let mut expect: Vec<u32> = inputs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn merge_with_duplicates_everywhere() {
        let inputs = vec![vec![1u8; 9], vec![1u8; 9], vec![1u8; 9]];
        let (out, _) = merge_u32_like(&inputs);
        assert_eq!(out, vec![1u8; 27]);
    }

    fn merge_u32_like<K: Ord + Clone>(inputs: &[Vec<K>]) -> (Vec<K>, Counters) {
        let mut c = Counters::new();
        let out = multiway_merge(inputs, &StdBaseSorter, &mut c);
        (out, c)
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_inputs() {
        let _ = merge_u32(&[vec![1, 2, 3], vec![1, 2], vec![1, 2, 3]]);
    }

    #[test]
    #[should_panic(expected = "power of N")]
    fn rejects_non_power_length() {
        let _ = merge_u32(&[vec![1, 2, 3, 4], vec![1, 2, 3, 4], vec![1, 2, 3, 4]]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_input() {
        let _ = merge_u32(&[vec![1, 2, 3]]);
    }

    #[test]
    fn check_inputs_reports_each_precondition() {
        assert_eq!(
            check_inputs(&[vec![1u32, 2, 3]]),
            Err(MergeInputError::TooFewInputs { n: 1 })
        );
        assert_eq!(
            check_inputs(&[vec![1u32, 2, 3], vec![1, 2]]),
            Err(MergeInputError::UnequalLengths)
        );
        assert_eq!(
            check_inputs(&[vec![1u32, 2, 3, 4], vec![1, 2, 3, 4], vec![1, 2, 3, 4]]),
            Err(MergeInputError::NotPowerOfN { m: 4, n: 3 })
        );
        assert_eq!(check_inputs(&[vec![1u32, 2], vec![3, 4]]), Ok(()));
        assert_eq!(
            MergeInputError::NotPowerOfN { m: 4, n: 3 }.to_string(),
            "sequence length 4 is not a positive power of N=3"
        );
    }

    #[test]
    fn logged_merge_emits_phase_events_per_step_and_depth() {
        use pns_obs::{Event, EventLogger, MemorySink};

        // N = 2, k = 4: the outer merge (depth 0, m = 8) and both column
        // merges (depth 1, m = 4 = N²) run all four steps; the depth-2
        // merges hit the m = N base case and emit nothing.
        let inputs: Vec<Vec<u64>> = (0..2)
            .map(|u| (0..8u64).map(|i| i * 7 + u).collect())
            .collect();
        let (sink, reader) = MemorySink::with_capacity(256);
        let logger = EventLogger::new(Box::new(sink));

        let mut logged_c = Counters::new();
        let logged = multiway_merge_logged(&inputs, &StdBaseSorter, &mut logged_c, &logger);
        logger.flush();

        let mut plain_c = Counters::new();
        let plain = multiway_merge(&inputs, &StdBaseSorter, &mut plain_c);
        assert_eq!(logged, plain);
        assert_eq!(logged_c, plain_c);

        let phases: Vec<(u64, u64)> = reader
            .events()
            .iter()
            .filter_map(|te| match te.event {
                Event::MergePhase { step, depth } => Some((step, depth)),
                _ => None,
            })
            .collect();
        assert_eq!(phases.len(), reader.len(), "only MergePhase events");
        assert_eq!(phases.len(), 12, "{phases:?}");
        for depth in 0..2u64 {
            for step in 1..=4u64 {
                let want = if depth == 0 { 1 } else { 2 };
                let got = phases.iter().filter(|&&p| p == (step, depth)).count();
                assert_eq!(got, want, "step {step} depth {depth}: {phases:?}");
            }
        }
        // Steps complete in order within the outermost merge.
        let outer: Vec<u64> = phases.iter().filter(|p| p.1 == 0).map(|p| p.0).collect();
        assert_eq!(outer, vec![1, 2, 3, 4]);
    }

    #[test]
    fn step4_cleans_a_bounded_dirty_window() {
        // Construct a sequence that is sorted except for a window of < N²
        // keys straddling a block boundary, as Lemma 1 guarantees.
        let n = 3;
        let mut d: Vec<u32> = (0..27).collect();
        d[7..12].reverse(); // dirty window of 5 < 9 keys across blocks 0/1
        let mut c = Counters::new();
        let out = step_4(d, n, &StdBaseSorter, &mut c);
        assert_eq!(out, (0..27).collect::<Vec<u32>>());
        assert_eq!(c.s2_units, 2);
        assert_eq!(c.route_units, 2);
    }
}
