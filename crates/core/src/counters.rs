//! The paper's cost accounting.
//!
//! Section 4.1 measures the algorithm in two charged units:
//!
//! * an **`S2` unit** — one parallel round in which every (disjoint) `PG_2`
//!   subgraph sorts its `N²` keys, costing `S2(N)` network steps;
//! * a **routing unit** — one odd-even transposition round between `PG_2`
//!   subgraphs, implemented by a permutation routing within factor copies,
//!   costing `R(N)` network steps.
//!
//! Lemma 3 and Theorem 1 are statements about how many of each unit the
//! algorithm spends: `M_k` spends `2(k-2)+1` `S2` units and `2(k-2)`
//! routing units; the full sort spends `(r-1)²` and `(r-1)(r-2)`.
//!
//! `Counters` also accumulates *work* totals (individual base-sort
//! invocations and compare-exchange operations), which sum across parallel
//! branches rather than maxing — these feed the Columnsort comparison
//! (E12), not the time bounds.

/// Instrumentation accumulated by the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Parallel rounds of `N²`-key base sorts (time-like: parallel
    /// invocations in the same round count once).
    pub s2_units: u64,
    /// Odd-even transposition rounds between blocks (time-like).
    pub route_units: u64,
    /// Total individual base-sort invocations (work-like: sums across
    /// parallel branches).
    pub base_sorts: u64,
    /// Total individual compare-exchange operations performed by
    /// transposition rounds (work-like).
    pub compare_exchanges: u64,
    /// Number of multiway-merge invocations, including recursive ones.
    pub merges: u64,
}

impl Counters {
    /// Zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Combine with a computation that ran *sequentially after* this one:
    /// all counters add.
    #[must_use]
    pub fn then(self, other: Counters) -> Counters {
        Counters {
            s2_units: self.s2_units + other.s2_units,
            route_units: self.route_units + other.route_units,
            base_sorts: self.base_sorts + other.base_sorts,
            compare_exchanges: self.compare_exchanges + other.compare_exchanges,
            merges: self.merges + other.merges,
        }
    }

    /// Combine with a computation that ran *in parallel with* this one:
    /// time-like units take the max, work-like units add.
    #[must_use]
    pub fn alongside(self, other: Counters) -> Counters {
        Counters {
            s2_units: self.s2_units.max(other.s2_units),
            route_units: self.route_units.max(other.route_units),
            base_sorts: self.base_sorts + other.base_sorts,
            compare_exchanges: self.compare_exchanges + other.compare_exchanges,
            merges: self.merges + other.merges,
        }
    }

    /// Charged time in network steps for a factor where a `PG_2` sort
    /// costs `s2` steps and a factor permutation routing costs `route`
    /// steps — the quantity bounded by Theorem 1.
    #[must_use]
    pub fn charged_time(&self, s2: u64, route: u64) -> u64 {
        self.s2_units * s2 + self.route_units * route
    }

    /// A displayable table putting these measured counters next to the
    /// Theorem 1 predictions for a full sort of `N^r` keys: `(r-1)²`
    /// `S2` units and `(r-1)(r-2)` routing units.
    #[must_use]
    pub fn versus_predicted(&self, r: usize) -> CountersVsPredicted {
        CountersVsPredicted { counters: *self, r }
    }

    /// Publish these counters into a metrics [`Registry`] under the
    /// `pns_` namespace, so algorithm-level accounting lands in the
    /// same snapshot as executor timings.
    ///
    /// [`Registry`]: pns_obs::Registry
    pub fn export_to(&self, registry: &mut pns_obs::Registry) {
        registry.set_counter("pns_alg_s2_units_total", self.s2_units);
        registry.set_counter("pns_alg_route_units_total", self.route_units);
        registry.set_counter("pns_alg_base_sorts_total", self.base_sorts);
        registry.set_counter("pns_alg_compare_exchanges_total", self.compare_exchanges);
        registry.set_counter("pns_alg_merges_total", self.merges);
    }
}

impl std::fmt::Display for Counters {
    /// Aligned two-column table of the measured units.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<20} {:>10}", "counter", "measured")?;
        writeln!(f, "{:<20} {:>10}", "s2 units", self.s2_units)?;
        writeln!(f, "{:<20} {:>10}", "route units", self.route_units)?;
        writeln!(f, "{:<20} {:>10}", "base sorts", self.base_sorts)?;
        writeln!(
            f,
            "{:<20} {:>10}",
            "compare-exchanges", self.compare_exchanges
        )?;
        write!(f, "{:<20} {:>10}", "merges", self.merges)
    }
}

/// Cost accounting for checkpointed re-execution under faults.
///
/// When an executor retries a segment from a checkpoint, every round it
/// re-runs is *wasted* work relative to the fault-free schedule. These
/// counters separate that overhead from the useful work so experiments
/// can report step inflation as `(useful + wasted) / useful` and relate
/// it to Theorem 1's fault-free step count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryCounters {
    /// Rounds that contributed to the final committed output (each
    /// program round counted once, on its last — successful — run).
    pub useful_rounds: u64,
    /// Rounds discarded by a checkpoint restore (every round of every
    /// failed segment attempt, plus all rounds of a quarantined run).
    pub wasted_rounds: u64,
    /// Segment re-executions performed (one per checkpoint restore).
    pub retries: u64,
    /// Certificate checks that failed and triggered a restore.
    pub detections: u64,
}

impl RetryCounters {
    /// Zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Combine with another run's accounting: everything adds.
    #[must_use]
    pub fn then(self, other: RetryCounters) -> RetryCounters {
        RetryCounters {
            useful_rounds: self.useful_rounds + other.useful_rounds,
            wasted_rounds: self.wasted_rounds + other.wasted_rounds,
            retries: self.retries + other.retries,
            detections: self.detections + other.detections,
        }
    }

    /// Total rounds executed, useful or not.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.useful_rounds + self.wasted_rounds
    }

    /// Step inflation versus the fault-free schedule:
    /// `total_rounds / useful_rounds`. `1.0` means no overhead; a run
    /// with no useful rounds reports `1.0` (nothing to inflate).
    #[must_use]
    pub fn inflation(&self) -> f64 {
        if self.useful_rounds == 0 {
            1.0
        } else {
            self.total_rounds() as f64 / self.useful_rounds as f64
        }
    }

    /// Publish retry accounting into a metrics [`Registry`] under the
    /// `pns_` namespace: raw round/retry/detection totals plus the
    /// derived inflation gauge.
    ///
    /// [`Registry`]: pns_obs::Registry
    pub fn export_to(&self, registry: &mut pns_obs::Registry) {
        registry.set_counter("pns_fault_useful_rounds_total", self.useful_rounds);
        registry.set_counter("pns_fault_wasted_rounds_total", self.wasted_rounds);
        registry.set_counter("pns_fault_retries_total", self.retries);
        registry.set_counter("pns_fault_detections_total", self.detections);
        registry.set_gauge("pns_fault_step_inflation", self.inflation());
    }
}

/// [`Counters`] next to the closed-form predictions, as built by
/// [`Counters::versus_predicted`]. Time-like units carry a Theorem 1
/// prediction; work-like units have none (the theorems do not bound
/// them) and show `-`.
#[derive(Debug, Clone, Copy)]
pub struct CountersVsPredicted {
    counters: Counters,
    r: usize,
}

impl std::fmt::Display for CountersVsPredicted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.counters;
        let pred_s2 = crate::sort::predicted_s2_units(self.r);
        let pred_route = crate::sort::predicted_route_units(self.r);
        let mark = |measured: u64, predicted: u64| {
            if measured == predicted {
                "ok"
            } else {
                "MISMATCH"
            }
        };
        writeln!(
            f,
            "{:<20} {:>10} {:>10}   (Theorem 1, r = {})",
            "counter", "measured", "predicted", self.r
        )?;
        writeln!(
            f,
            "{:<20} {:>10} {:>10}   {}",
            "s2 units",
            c.s2_units,
            pred_s2,
            mark(c.s2_units, pred_s2)
        )?;
        writeln!(
            f,
            "{:<20} {:>10} {:>10}   {}",
            "route units",
            c.route_units,
            pred_route,
            mark(c.route_units, pred_route)
        )?;
        writeln!(f, "{:<20} {:>10} {:>10}", "base sorts", c.base_sorts, "-")?;
        writeln!(
            f,
            "{:<20} {:>10} {:>10}",
            "compare-exchanges", c.compare_exchanges, "-"
        )?;
        write!(f, "{:<20} {:>10} {:>10}", "merges", c.merges, "-")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(a: u64) -> Counters {
        Counters {
            s2_units: a,
            route_units: a + 1,
            base_sorts: a + 2,
            compare_exchanges: a + 3,
            merges: 1,
        }
    }

    #[test]
    fn sequential_composition_adds_everything() {
        let c = sample(2).then(sample(5));
        assert_eq!(c.s2_units, 7);
        assert_eq!(c.route_units, 9);
        assert_eq!(c.base_sorts, 11);
        assert_eq!(c.compare_exchanges, 13);
        assert_eq!(c.merges, 2);
    }

    #[test]
    fn parallel_composition_maxes_time_adds_work() {
        let c = sample(2).alongside(sample(5));
        assert_eq!(c.s2_units, 5);
        assert_eq!(c.route_units, 6);
        assert_eq!(c.base_sorts, 11);
        assert_eq!(c.compare_exchanges, 13);
    }

    #[test]
    fn charged_time_is_linear_combination() {
        let c = Counters {
            s2_units: 4,
            route_units: 2,
            ..Counters::default()
        };
        assert_eq!(c.charged_time(10, 3), 46);
    }

    #[test]
    fn display_is_an_aligned_table() {
        let shown = sample(3).to_string();
        let lines: Vec<&str> = shown.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[1].contains("s2 units"));
        assert!(lines[1].trim_end().ends_with('3'));
        // Columns align: every row is the same width.
        let widths: Vec<usize> = lines.iter().map(|l| l.trim_end().len()).collect();
        assert!(widths.iter().all(|&w| w == widths[0]), "{shown}");
    }

    #[test]
    fn retry_counters_accumulate_and_report_inflation() {
        let a = RetryCounters {
            useful_rounds: 10,
            wasted_rounds: 5,
            retries: 1,
            detections: 1,
        };
        let b = RetryCounters {
            useful_rounds: 10,
            wasted_rounds: 0,
            retries: 0,
            detections: 0,
        };
        let c = a.then(b);
        assert_eq!(c.useful_rounds, 20);
        assert_eq!(c.wasted_rounds, 5);
        assert_eq!(c.total_rounds(), 25);
        assert!((c.inflation() - 1.25).abs() < 1e-12);
        assert_eq!(RetryCounters::new().inflation(), 1.0);
    }

    #[test]
    fn versus_predicted_marks_matches_and_mismatches() {
        // r = 4: Theorem 1 predicts 9 S2 units and 6 routing units.
        let good = Counters {
            s2_units: 9,
            route_units: 6,
            ..Counters::default()
        };
        let shown = good.versus_predicted(4).to_string();
        assert!(shown.contains("r = 4"), "{shown}");
        assert!(!shown.contains("MISMATCH"), "{shown}");
        assert_eq!(shown.matches("ok").count(), 2, "{shown}");

        let bad = Counters {
            s2_units: 8,
            route_units: 6,
            ..Counters::default()
        };
        let shown = bad.versus_predicted(4).to_string();
        assert!(shown.contains("MISMATCH"), "{shown}");
    }
}
