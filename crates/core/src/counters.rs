//! The paper's cost accounting.
//!
//! Section 4.1 measures the algorithm in two charged units:
//!
//! * an **`S2` unit** — one parallel round in which every (disjoint) `PG_2`
//!   subgraph sorts its `N²` keys, costing `S2(N)` network steps;
//! * a **routing unit** — one odd-even transposition round between `PG_2`
//!   subgraphs, implemented by a permutation routing within factor copies,
//!   costing `R(N)` network steps.
//!
//! Lemma 3 and Theorem 1 are statements about how many of each unit the
//! algorithm spends: `M_k` spends `2(k-2)+1` `S2` units and `2(k-2)`
//! routing units; the full sort spends `(r-1)²` and `(r-1)(r-2)`.
//!
//! `Counters` also accumulates *work* totals (individual base-sort
//! invocations and compare-exchange operations), which sum across parallel
//! branches rather than maxing — these feed the Columnsort comparison
//! (E12), not the time bounds.

/// Instrumentation accumulated by the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Parallel rounds of `N²`-key base sorts (time-like: parallel
    /// invocations in the same round count once).
    pub s2_units: u64,
    /// Odd-even transposition rounds between blocks (time-like).
    pub route_units: u64,
    /// Total individual base-sort invocations (work-like: sums across
    /// parallel branches).
    pub base_sorts: u64,
    /// Total individual compare-exchange operations performed by
    /// transposition rounds (work-like).
    pub compare_exchanges: u64,
    /// Number of multiway-merge invocations, including recursive ones.
    pub merges: u64,
}

impl Counters {
    /// Zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Combine with a computation that ran *sequentially after* this one:
    /// all counters add.
    #[must_use]
    pub fn then(self, other: Counters) -> Counters {
        Counters {
            s2_units: self.s2_units + other.s2_units,
            route_units: self.route_units + other.route_units,
            base_sorts: self.base_sorts + other.base_sorts,
            compare_exchanges: self.compare_exchanges + other.compare_exchanges,
            merges: self.merges + other.merges,
        }
    }

    /// Combine with a computation that ran *in parallel with* this one:
    /// time-like units take the max, work-like units add.
    #[must_use]
    pub fn alongside(self, other: Counters) -> Counters {
        Counters {
            s2_units: self.s2_units.max(other.s2_units),
            route_units: self.route_units.max(other.route_units),
            base_sorts: self.base_sorts + other.base_sorts,
            compare_exchanges: self.compare_exchanges + other.compare_exchanges,
            merges: self.merges + other.merges,
        }
    }

    /// Charged time in network steps for a factor where a `PG_2` sort
    /// costs `s2` steps and a factor permutation routing costs `route`
    /// steps — the quantity bounded by Theorem 1.
    #[must_use]
    pub fn charged_time(&self, s2: u64, route: u64) -> u64 {
        self.s2_units * s2 + self.route_units * route
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(a: u64) -> Counters {
        Counters {
            s2_units: a,
            route_units: a + 1,
            base_sorts: a + 2,
            compare_exchanges: a + 3,
            merges: 1,
        }
    }

    #[test]
    fn sequential_composition_adds_everything() {
        let c = sample(2).then(sample(5));
        assert_eq!(c.s2_units, 7);
        assert_eq!(c.route_units, 9);
        assert_eq!(c.base_sorts, 11);
        assert_eq!(c.compare_exchanges, 13);
        assert_eq!(c.merges, 2);
    }

    #[test]
    fn parallel_composition_maxes_time_adds_work() {
        let c = sample(2).alongside(sample(5));
        assert_eq!(c.s2_units, 5);
        assert_eq!(c.route_units, 6);
        assert_eq!(c.base_sorts, 11);
        assert_eq!(c.compare_exchanges, 13);
    }

    #[test]
    fn charged_time_is_linear_combination() {
        let c = Counters {
            s2_units: 4,
            route_units: 2,
            ..Counters::default()
        };
        assert_eq!(c.charged_time(10, 3), 46);
    }
}
