//! Zero-one-principle validation harness (Knuth, cited as \[15\] by the
//! paper).
//!
//! The multiway merge is *oblivious*: its data movements are fixed and its
//! only data-dependent operations are compare-exchanges plus calls to an
//! assumed-correct `N²`-key sorter (which can itself be realized as a
//! comparator network). By the zero-one principle, if the merge sorts
//! every 0/1 input it sorts every input. A sorted 0/1 input sequence of
//! length `m` is characterized by its number of zeros, so the *entire*
//! input space of the merge is the `(m+1)^N` zero-count vectors — small
//! enough to enumerate exhaustively for the parameters used in tests.

use crate::counters::Counters;
use crate::merge::{multiway_merge, BaseSorter};

/// Iterator over all zero-count vectors `(z_0, …, z_{N-1})` with
/// `0 ≤ z_u ≤ m` — i.e. all sorted 0/1 inputs of a merge of `n` sequences
/// of length `m`.
pub fn zero_count_vectors(n: usize, m: usize) -> impl Iterator<Item = Vec<usize>> {
    let total = (m as u64 + 1).pow(n as u32);
    (0..total).map(move |mut code| {
        (0..n)
            .map(|_| {
                let z = (code % (m as u64 + 1)) as usize;
                code /= m as u64 + 1;
                z
            })
            .collect()
    })
}

/// Materialize the sorted 0/1 input with the given zero counts.
#[must_use]
pub fn zero_one_inputs(counts: &[usize], m: usize) -> Vec<Vec<u8>> {
    counts
        .iter()
        .map(|&z| {
            assert!(z <= m);
            let mut s = vec![0u8; z];
            s.resize(m, 1);
            s
        })
        .collect()
}

/// Exhaustively verify the multiway merge over every 0/1 input for the
/// given `n` and `m`; returns the number of inputs checked.
///
/// # Panics
///
/// Panics (with the failing zero-count vector) if any input is missorted —
/// by the zero-one principle this would disprove the algorithm.
pub fn exhaustive_merge_check<S: BaseSorter<u8>>(n: usize, m: usize, sorter: &S) -> u64 {
    let mut checked = 0u64;
    for counts in zero_count_vectors(n, m) {
        let inputs = zero_one_inputs(&counts, m);
        let mut c = Counters::new();
        let out = multiway_merge(&inputs, sorter, &mut c);
        let zeros: usize = counts.iter().sum();
        let ok = out[..zeros].iter().all(|&x| x == 0) && out[zeros..].iter().all(|&x| x == 1);
        assert!(ok, "merge missorted 0/1 input with zero counts {counts:?}");
        checked += 1;
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::StdBaseSorter;

    #[test]
    fn enumerates_all_vectors() {
        let all: Vec<_> = zero_count_vectors(2, 3).collect();
        assert_eq!(all.len(), 16); // (3+1)^2
        assert!(all.contains(&vec![0, 0]));
        assert!(all.contains(&vec![3, 3]));
        assert!(all.contains(&vec![2, 1]));
    }

    #[test]
    fn inputs_are_sorted_zero_one() {
        let ins = zero_one_inputs(&[2, 0, 4], 4);
        assert_eq!(ins[0], vec![0, 0, 1, 1]);
        assert_eq!(ins[1], vec![1, 1, 1, 1]);
        assert_eq!(ins[2], vec![0, 0, 0, 0]);
    }

    /// Exhaustive correctness proof of the merge (modulo base-sorter
    /// correctness) for several `(N, m)`:
    /// by the zero-one principle these checks cover *all* inputs.
    #[test]
    fn merge_sorts_every_zero_one_input() {
        assert_eq!(exhaustive_merge_check(2, 2, &StdBaseSorter), 9);
        assert_eq!(exhaustive_merge_check(2, 4, &StdBaseSorter), 25);
        assert_eq!(exhaustive_merge_check(2, 8, &StdBaseSorter), 81);
        assert_eq!(exhaustive_merge_check(2, 16, &StdBaseSorter), 289);
        assert_eq!(exhaustive_merge_check(3, 3, &StdBaseSorter), 64);
        assert_eq!(exhaustive_merge_check(3, 9, &StdBaseSorter), 1000);
        assert_eq!(exhaustive_merge_check(3, 27, &StdBaseSorter), 21_952);
        assert_eq!(exhaustive_merge_check(4, 16, &StdBaseSorter), 83_521);
    }
}
