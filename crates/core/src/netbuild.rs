//! Building *sorting networks* from the multiway merge (Section 3.2).
//!
//! The paper notes that the merge can be used two ways: on product
//! networks (the rest of the paper), or "if we are interested in building
//! a sorting network, we can implement subnetworks" based on the same
//! recursion. This module realizes that alternative: given any sorting
//! network generator for the `N²`-key base case, it assembles a comparator
//! network that sorts `N^r` keys by the multiway-merge recursion —
//! Steps 1 and 3 become wire permutations (free in a network), Step 2 the
//! recursive sub-networks, and Step 4 the cleanup comparators.
//!
//! For `N = 2` with Batcher's 4-key base, this is a Batcher-style network
//! ("Batcher algorithm is a special case of our algorithm", §5.3).

use pns_order::positions_of_dim1_digit;

/// A comparator network grouped into synchronous rounds; comparator
/// `(a, b)` places the minimum on line `a`. (A light-weight local type so
/// `pns-core` stays dependency-free; `pns-baselines` has a richer one.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortingProgram {
    lines: usize,
    rounds: Vec<Vec<(u32, u32)>>,
}

impl SortingProgram {
    /// Wrap validated rounds.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range lines or overlapping comparators in a round.
    #[must_use]
    pub fn new(lines: usize, rounds: Vec<Vec<(u32, u32)>>) -> Self {
        for (ri, round) in rounds.iter().enumerate() {
            let mut used = vec![false; lines];
            for &(a, b) in round {
                assert!(a != b, "round {ri}: degenerate comparator");
                assert!(
                    (a as usize) < lines && (b as usize) < lines,
                    "round {ri}: comparator ({a},{b}) out of range"
                );
                for v in [a, b] {
                    assert!(!used[v as usize], "round {ri}: line {v} reused");
                    used[v as usize] = true;
                }
            }
        }
        SortingProgram { lines, rounds }
    }

    /// Number of lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Depth (rounds).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.rounds.len()
    }

    /// Size (comparators).
    #[must_use]
    pub fn size(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// The rounds.
    #[must_use]
    pub fn rounds(&self) -> &[Vec<(u32, u32)>] {
        &self.rounds
    }

    /// Apply to keys in place.
    pub fn apply<K: Ord>(&self, keys: &mut [K]) {
        assert_eq!(keys.len(), self.lines);
        for round in &self.rounds {
            for &(a, b) in round {
                if keys[a as usize] > keys[b as usize] {
                    keys.swap(a as usize, b as usize);
                }
            }
        }
    }

    /// Exhaustive zero-one validation (`lines ≤ 22`).
    #[must_use]
    pub fn is_sorting_network(&self) -> bool {
        assert!(self.lines <= 22, "exhaustive check is exponential");
        for mask in 0u64..(1 << self.lines) {
            let mut keys: Vec<u8> = (0..self.lines).map(|i| ((mask >> i) & 1) as u8).collect();
            self.apply(&mut keys);
            if !keys.windows(2).all(|w| w[0] <= w[1]) {
                return false;
            }
        }
        true
    }
}

/// Generator for the assumed `N²`-key base networks: given a line count,
/// produce rounds over *local* indices `0 … len-1` that sort ascending
/// along local order.
pub trait BaseNetwork {
    /// Build the base network for `len` lines.
    fn rounds(&self, len: usize) -> Vec<Vec<(u32, u32)>>;
}

/// Odd-even transposition base: `len` rounds — works for any `len`, the
/// generic stand-in for "an algorithm which can sort N² keys".
#[derive(Debug, Clone, Copy, Default)]
pub struct OetBase;

impl BaseNetwork for OetBase {
    fn rounds(&self, len: usize) -> Vec<Vec<(u32, u32)>> {
        (0..len)
            .map(|round| {
                ((round % 2) as u32..len.saturating_sub(1) as u32)
                    .step_by(2)
                    .map(|i| (i, i + 1))
                    .collect()
            })
            .collect()
    }
}

/// Batcher's odd-even merge sort (Knuth 5.3.4 algorithm M, iterative
/// form). Works for arbitrary `len` — the bound checks are exactly the
/// power-of-two network pruned of comparators that would touch the `+∞`
/// padding lines, so the classic correctness argument carries over.
/// Depth `⌈lg len⌉(⌈lg len⌉+1)/2` for powers of two, size `O(len lg² len)`
/// — much shallower than [`OetBase`]'s `len` rounds once `len ≥ 4`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatcherBase;

impl BaseNetwork for BatcherBase {
    fn rounds(&self, len: usize) -> Vec<Vec<(u32, u32)>> {
        let mut rounds = Vec::new();
        if len < 2 {
            return rounds;
        }
        let mut p = 1usize;
        while p < len {
            let mut k = p;
            while k >= 1 {
                let mut round = Vec::new();
                let mut j = k % p;
                while j + k < len {
                    for i in 0..k.min(len - j - k) {
                        // Only merge lines within the same 2p-block.
                        if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                            round.push(((i + j) as u32, (i + j + k) as u32));
                        }
                    }
                    j += 2 * k;
                }
                if !round.is_empty() {
                    rounds.push(round);
                }
                k /= 2;
            }
            p *= 2;
        }
        rounds
    }
}

/// The Dowd–Perl–Rudolph–Saks *periodic balanced* sorting network: one
/// fixed block of `⌈lg len⌉` mirrored-pair levels, replayed `⌈lg len⌉`
/// (+ `extra_blocks`) times. Every application runs the *same* wiring, so
/// the program is constant-periodic — the property Piotrów's periodic
/// merging networks are built around, and an ideal compile target (one
/// small block lowered once, replayed).
///
/// Arbitrary `len` is handled by pruning the next-power-of-two block of
/// comparators that touch the `+∞` padding lines.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeriodicBalancedBase {
    /// Extra (harmless) block replays beyond the `⌈lg len⌉` required for
    /// sorting; a sorted sequence is a fixed point of the block, so any
    /// `extra_blocks` still sorts. Exists to make the construction a
    /// genuinely *parameterized* family.
    pub extra_blocks: usize,
}

impl PeriodicBalancedBase {
    /// One period: `⌈lg len⌉` levels; level `ℓ` splits the (padded) lines
    /// into chunks of `2^(k-ℓ+1)` and compares mirrored pairs
    /// `(x, chunk-1-x)` within each chunk.
    #[must_use]
    pub fn block(len: usize) -> Vec<Vec<(u32, u32)>> {
        let mut block = Vec::new();
        if len < 2 {
            return block;
        }
        let k = usize::BITS - (len - 1).leading_zeros(); // ⌈lg len⌉
        let padded = 1usize << k;
        let mut chunk = padded;
        while chunk >= 2 {
            let mut level = Vec::new();
            for start in (0..padded).step_by(chunk) {
                for x in 0..chunk / 2 {
                    let (a, b) = (start + x, start + chunk - 1 - x);
                    if b < len {
                        level.push((a as u32, b as u32));
                    }
                }
            }
            if !level.is_empty() {
                block.push(level);
            }
            chunk /= 2;
        }
        block
    }
}

impl BaseNetwork for PeriodicBalancedBase {
    fn rounds(&self, len: usize) -> Vec<Vec<(u32, u32)>> {
        if len < 2 {
            return Vec::new();
        }
        let k = (usize::BITS - (len - 1).leading_zeros()) as usize;
        let block = Self::block(len);
        let mut rounds = Vec::new();
        for _ in 0..k.max(1) + self.extra_blocks {
            rounds.extend(block.iter().cloned());
        }
        rounds
    }
}

/// Zip two parallel sub-networks' rounds (disjoint lines) into shared
/// rounds.
fn zip_rounds(mut acc: Vec<Vec<(u32, u32)>>, other: Vec<Vec<(u32, u32)>>) -> Vec<Vec<(u32, u32)>> {
    if other.len() > acc.len() {
        acc.resize(other.len(), Vec::new());
    }
    for (i, round) in other.into_iter().enumerate() {
        acc[i].extend(round);
    }
    acc
}

/// Emit `base` over the global lines `idx`, ascending (`flip = false`)
/// or descending (`flip = true`).
fn base_rounds(base: &dyn BaseNetwork, idx: &[u32], flip: bool) -> Vec<Vec<(u32, u32)>> {
    base.rounds(idx.len())
        .into_iter()
        .map(|round| {
            round
                .into_iter()
                .map(|(i, j)| {
                    let (a, b) = (idx[i as usize], idx[j as usize]);
                    if flip {
                        (b, a)
                    } else {
                        (a, b)
                    }
                })
                .collect()
        })
        .collect()
}

/// Build the merge sub-network: `idx[u*m + t]` is the line holding the
/// `t`-th key of sorted input `u`. Returns `(rounds, out)` where `out[p]`
/// is the line holding the `p`-th smallest key afterwards.
fn merge_rounds(idx: &[u32], n: usize, base: &dyn BaseNetwork) -> (Vec<Vec<(u32, u32)>>, Vec<u32>) {
    let m = idx.len() / n;
    debug_assert_eq!(idx.len() % n, 0);
    if m == n {
        // Base case: one N²-key sorting network over these lines.
        return (base_rounds(base, idx, false), idx.to_vec());
    }

    // Step 1 (wire permutation): column v = { B_{u,v} | u }.
    let mut rounds: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut col_sorted: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n {
        let col_lines: Vec<u32> = (0..n)
            .flat_map(|u| {
                positions_of_dim1_digit(n, m as u64, v).map(move |p| idx[u * m + p as usize])
            })
            .collect();
        // Step 2: recursive merge; the N column merges are parallel.
        let (child_rounds, child_out) = merge_rounds(&col_lines, n, base);
        rounds = zip_rounds(rounds, child_rounds);
        col_sorted.push(child_out);
    }

    // Step 3 (wire permutation): interleave.
    let mut d: Vec<u32> = Vec::with_capacity(idx.len());
    for t in 0..m {
        for cs in &col_sorted {
            d.push(cs[t]);
        }
    }

    // Step 4: alternating block sorts, two OET rounds, alternating sorts.
    let block = n * n;
    let blocks = d.len() / block;
    let mut first_sorts: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut final_sorts: Vec<Vec<(u32, u32)>> = Vec::new();
    for z in 0..blocks {
        let blk = &d[z * block..(z + 1) * block];
        first_sorts = zip_rounds(first_sorts, base_rounds(base, blk, z % 2 == 1));
        final_sorts = zip_rounds(final_sorts, base_rounds(base, blk, z % 2 == 1));
    }
    rounds.extend(first_sorts);
    for parity in [0usize, 1] {
        let mut round = Vec::new();
        let mut z = parity;
        while z + 1 < blocks {
            for t in 0..block {
                round.push((d[z * block + t], d[(z + 1) * block + t]));
            }
            z += 2;
        }
        rounds.push(round);
    }
    rounds.extend(final_sorts);

    // Output order: blocks in order, odd blocks read reversed.
    let mut out = Vec::with_capacity(d.len());
    for z in 0..blocks {
        let blk = &d[z * block..(z + 1) * block];
        if z % 2 == 0 {
            out.extend_from_slice(blk);
        } else {
            out.extend(blk.iter().rev().copied());
        }
    }
    (rounds, out)
}

/// Build a sorting network for `n^r` keys from the multiway-merge
/// recursion (Section 3.2/3.3), with `base` providing the `N²`-key
/// sub-networks. The result sorts ascending by line index.
///
/// ```
/// use pns_core::netbuild::{multiway_merge_sort_program, OetBase};
///
/// let net = multiway_merge_sort_program(3, 2, &OetBase);
/// let mut keys = vec![5, 2, 8, 1, 9, 0, 7, 4, 3];
/// net.apply(&mut keys);
/// assert_eq!(keys, vec![0, 1, 2, 3, 4, 5, 7, 8, 9]);
/// ```
///
/// # Panics
///
/// Panics unless `r ≥ 2` and `n ≥ 2`.
#[must_use]
pub fn multiway_merge_sort_program(n: usize, r: usize, base: &dyn BaseNetwork) -> SortingProgram {
    assert!(n >= 2 && r >= 2, "need n ≥ 2 and r ≥ 2");
    let lines = n.pow(r as u32);
    let mut rounds: Vec<Vec<(u32, u32)>> = Vec::new();

    // Initial stage: sort each N²-key block (all blocks in parallel).
    let block = n * n;
    let mut stage_rounds: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut seqs: Vec<Vec<u32>> = Vec::new();
    for start in (0..lines).step_by(block) {
        let idx: Vec<u32> = (start as u32..(start + block) as u32).collect();
        stage_rounds = zip_rounds(stage_rounds, base_rounds(base, &idx, false));
        seqs.push(idx);
    }
    rounds.extend(stage_rounds);

    // Merge stages.
    while seqs.len() > 1 {
        let mut stage_rounds: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut next: Vec<Vec<u32>> = Vec::with_capacity(seqs.len() / n);
        for group in seqs.chunks(n) {
            let idx: Vec<u32> = group.iter().flatten().copied().collect();
            let (child_rounds, out) = merge_rounds(&idx, n, base);
            stage_rounds = zip_rounds(stage_rounds, child_rounds);
            next.push(out);
        }
        rounds.extend(stage_rounds);
        seqs = next;
    }

    // Relabel lines so the network sorts by line index: the physical line
    // `final_order[p]` holds the p-th smallest, so rename it `p`.
    let final_order = seqs.pop().expect("one sequence remains");
    let mut rename = vec![0u32; lines];
    for (p, &line) in final_order.iter().enumerate() {
        rename[line as usize] = p as u32;
    }
    let rounds = rounds
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(|round| {
            round
                .into_iter()
                .map(|(a, b)| (rename[a as usize], rename[b as usize]))
                .collect()
        })
        .collect();
    SortingProgram::new(lines, rounds)
}

/// Sanity helper used in tests: the network's comparator count is at
/// least the information-theoretic minimum `Ω(L log L)`.
#[must_use]
pub fn comparator_lower_bound(lines: usize) -> usize {
    // ceil(log2(lines!)) comparators are necessary.
    let mut bits = 0f64;
    for i in 2..=lines {
        bits += (i as f64).log2();
    }
    bits.ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;
    use crate::merge::{multiway_merge, StdBaseSorter};

    #[test]
    fn oet_base_is_a_sorting_network() {
        for len in 2..=6 {
            let prog = SortingProgram::new(len, OetBase.rounds(len));
            assert!(prog.is_sorting_network(), "len={len}");
        }
    }

    #[test]
    fn batcher_base_is_a_sorting_network_for_arbitrary_len() {
        for len in 2..=12 {
            let prog = SortingProgram::new(len, BatcherBase.rounds(len));
            assert!(prog.is_sorting_network(), "len={len}");
        }
    }

    #[test]
    fn batcher_base_has_known_pow2_depth_and_beats_oet() {
        // Depth k(k+1)/2 for len = 2^k.
        for (len, depth) in [(2usize, 1usize), (4, 3), (8, 6), (16, 10)] {
            assert_eq!(BatcherBase.rounds(len).len(), depth, "len={len}");
        }
        for len in [4usize, 8, 16, 32] {
            assert!(BatcherBase.rounds(len).len() < OetBase.rounds(len).len());
        }
    }

    #[test]
    fn periodic_balanced_base_is_a_sorting_network_for_arbitrary_len() {
        for len in 2..=12 {
            let base = PeriodicBalancedBase::default();
            let prog = SortingProgram::new(len, base.rounds(len));
            assert!(prog.is_sorting_network(), "len={len}");
        }
    }

    #[test]
    fn periodic_balanced_base_is_constant_periodic() {
        // The program is the same block replayed ⌈lg len⌉ + extra times.
        for len in [5usize, 8, 13, 16] {
            let k = (usize::BITS - (len - 1).leading_zeros()) as usize;
            let block = PeriodicBalancedBase::block(len);
            for extra in [0usize, 2] {
                let rounds = PeriodicBalancedBase {
                    extra_blocks: extra,
                }
                .rounds(len);
                assert_eq!(rounds.len(), block.len() * (k + extra), "len={len}");
                for (i, round) in rounds.iter().enumerate() {
                    assert_eq!(round, &block[i % block.len()], "len={len} round {i}");
                }
            }
        }
    }

    #[test]
    fn periodic_balanced_extra_blocks_still_sorts() {
        let base = PeriodicBalancedBase { extra_blocks: 1 };
        for len in 2..=10 {
            let prog = SortingProgram::new(len, base.rounds(len));
            assert!(prog.is_sorting_network(), "len={len}");
        }
    }

    #[test]
    fn merge_networks_with_new_bases_sort_exhaustively() {
        for (n, r) in [(2usize, 3usize), (3, 2), (4, 2)] {
            for base in [
                &BatcherBase as &dyn BaseNetwork,
                &PeriodicBalancedBase::default(),
            ] {
                let prog = multiway_merge_sort_program(n, r, base);
                assert!(prog.is_sorting_network(), "n={n} r={r}");
            }
        }
        // Batcher base yields a strictly shallower 16-line network than OET.
        let oet = multiway_merge_sort_program(4, 2, &OetBase);
        let bat = multiway_merge_sort_program(4, 2, &BatcherBase);
        assert!(bat.depth() < oet.depth());
    }

    #[test]
    fn merge_networks_sort_exhaustively() {
        // Full zero-one validation of the generated networks.
        for (n, r) in [(2usize, 2usize), (2, 3), (2, 4), (3, 2), (4, 2)] {
            let prog = multiway_merge_sort_program(n, r, &OetBase);
            assert_eq!(prog.lines(), n.pow(r as u32));
            assert!(prog.is_sorting_network(), "n={n} r={r}");
        }
    }

    #[test]
    fn larger_networks_sort_random_inputs() {
        for (n, r) in [(3usize, 3usize), (2, 6), (4, 3)] {
            let prog = multiway_merge_sort_program(n, r, &OetBase);
            let len = prog.lines();
            let mut state = 7u64;
            for _ in 0..20 {
                let mut keys: Vec<u64> = (0..len)
                    .map(|i| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(i as u64);
                        state >> 45
                    })
                    .collect();
                let mut expect = keys.clone();
                expect.sort_unstable();
                prog.apply(&mut keys);
                assert_eq!(keys, expect, "n={n} r={r}");
            }
        }
    }

    #[test]
    fn network_agrees_with_sequence_algorithm() {
        // The network is the same algorithm with wires instead of nodes:
        // outputs must agree with the sequence-level implementation.
        let (n, r) = (3usize, 3usize);
        let prog = multiway_merge_sort_program(n, r, &OetBase);
        let keys: Vec<u32> = (0..27u32).map(|x| (x * 17) % 13).collect();
        let mut net_keys = keys.clone();
        prog.apply(&mut net_keys);
        let (seq, _) = crate::sort::multiway_merge_sort(&keys, n, &StdBaseSorter);
        assert_eq!(net_keys, seq);
        // And another instrumented merge sanity check on the same data.
        let sorted_blocks: Vec<Vec<u32>> = {
            let mut blocks: Vec<Vec<u32>> = keys.chunks(9).map(<[u32]>::to_vec).collect();
            for b in &mut blocks {
                b.sort_unstable();
            }
            blocks
        };
        let mut c2 = Counters::new();
        let merged = multiway_merge(&sorted_blocks, &StdBaseSorter, &mut c2);
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }

    #[test]
    fn depth_and_size_are_reported() {
        let prog = multiway_merge_sort_program(2, 4, &OetBase);
        assert!(prog.depth() > 0);
        assert!(prog.size() >= comparator_lower_bound(16));
    }

    #[test]
    fn every_round_is_disjoint_by_construction() {
        // SortingProgram::new re-validates; building larger instances
        // exercises the zip/flip paths.
        let _ = multiway_merge_sort_program(3, 4, &OetBase);
        let _ = multiway_merge_sort_program(5, 2, &OetBase);
    }

    #[test]
    #[should_panic(expected = "n ≥ 2 and r ≥ 2")]
    fn rejects_one_dimension() {
        let _ = multiway_merge_sort_program(3, 1, &OetBase);
    }
}
