//! The generalized multiway-merge sorting algorithm of Fernández & Efe
//! (Section 3 of the paper), at the *sequence level*.
//!
//! This crate implements the algorithm exactly as Section 3 describes it,
//! independent of any network: [`merge::multiway_merge`] combines `N`
//! sorted sequences of `m = N^{k-1}` keys each into one sorted sequence of
//! `N^k` keys, and [`sort::multiway_merge_sort`] builds the full sorting
//! algorithm of Section 3.3 on top of it. The network-mapped implementation
//! (Section 4) lives in the `pns-simulator` crate and is checked against
//! this one.
//!
//! Everything is instrumented with the paper's cost accounting
//! ([`counters::Counters`]): one *`S2` unit* per parallel round of
//! `N²`-key base sorts and one *routing unit* per odd-even transposition
//! round, so Lemma 3 (`M_k = 2(k-2)(S2 + R) + S2`) and Theorem 1
//! (`S_r = (r-1)² S2 + (r-1)(r-2) R`) can be verified by counting.
//!
//! The [`trace`] module records every intermediate state of a merge
//! (`B_{u,v}`, `C_v`, `D`, `E_z … I_z`) so the paper's worked example
//! (Figs. 12–15) is reproduced state by state, and [`dirty`] measures the
//! dirty window of Lemma 1.

pub mod counters;
pub mod dirty;
pub mod merge;
pub mod netbuild;
pub mod sort;
pub mod trace;
pub mod zero_one;

pub use counters::{Counters, CountersVsPredicted, RetryCounters};
pub use dirty::{dirty_window, is_sorted};
pub use merge::{
    check_inputs, multiway_merge, multiway_merge_logged, BaseSorter, MergeInputError, StdBaseSorter,
};
pub use netbuild::{multiway_merge_sort_program, BaseNetwork, OetBase, SortingProgram};
pub use sort::{multiway_merge_sort, predicted_route_units, predicted_s2_units};
pub use trace::{multiway_merge_traced, try_multiway_merge_traced, MergeTrace};
