//! Dirty-window measurement (Lemma 1).
//!
//! After Steps 1–3 of the merge, a 0/1 input is sorted except for a window
//! of mixed keys whose length Lemma 1 bounds by `N²`. These helpers
//! measure that window so the bound can be checked empirically over the
//! whole input space (experiment E03).

/// `true` iff the slice is nondecreasing.
#[inline]
#[must_use]
pub fn is_sorted<K: Ord>(seq: &[K]) -> bool {
    seq.windows(2).all(|w| w[0] <= w[1])
}

/// Length of the smallest contiguous window which, if sorted in place,
/// would make the whole sequence sorted. Zero for a sorted sequence.
///
/// For a 0/1 sequence this is exactly the paper's "dirty area": the span
/// from the first misplaced one to the last misplaced zero.
#[must_use]
pub fn dirty_window<K: Ord + Clone>(seq: &[K]) -> usize {
    let mut sorted = seq.to_vec();
    sorted.sort();
    let first = seq.iter().zip(&sorted).position(|(a, b)| a != b);
    match first {
        None => 0,
        Some(lo) => {
            let hi = seq
                .iter()
                .zip(&sorted)
                .rposition(|(a, b)| a != b)
                .expect("a first mismatch implies a last mismatch");
            hi - lo + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;
    use crate::merge::{steps_1_to_3, StdBaseSorter};

    #[test]
    fn sorted_sequences_have_zero_window() {
        assert_eq!(dirty_window(&[1, 2, 3, 4]), 0);
        assert_eq!(dirty_window::<u8>(&[]), 0);
        assert_eq!(dirty_window(&[5]), 0);
        assert!(is_sorted(&[0, 0, 1, 1]));
    }

    #[test]
    fn window_spans_all_misplaced_keys() {
        assert_eq!(dirty_window(&[1, 0]), 2);
        assert_eq!(dirty_window(&[0, 2, 1, 3]), 2);
        assert_eq!(dirty_window(&[3, 1, 2, 0]), 4);
        // 0/1: first misplaced one at index 1, last misplaced zero at 4.
        assert_eq!(dirty_window(&[0, 1, 0, 1, 0, 1, 1]), 4);
    }

    /// Lemma 1, exhaustively for small parameters: over *every* 0/1 input
    /// (each sorted input sequence is characterized by its zero count),
    /// the dirty window after Step 3 is at most N².
    #[test]
    fn lemma1_exhaustive_small() {
        for (n, m) in [(2usize, 4usize), (2, 8), (3, 9)] {
            let mut worst = 0usize;
            let mut counts = vec![0usize; n];
            loop {
                // Build the input: sequence u has counts[u] zeros then ones.
                let inputs: Vec<Vec<u8>> = counts
                    .iter()
                    .map(|&z| {
                        let mut s = vec![0u8; z];
                        s.resize(m, 1);
                        s
                    })
                    .collect();
                let mut c = Counters::new();
                let d = steps_1_to_3(&inputs, &StdBaseSorter, &mut c);
                worst = worst.max(dirty_window(&d));
                // Next zero-count vector in odometer order.
                let mut i = 0;
                loop {
                    if i == n {
                        break;
                    }
                    counts[i] += 1;
                    if counts[i] <= m {
                        break;
                    }
                    counts[i] = 0;
                    i += 1;
                }
                if i == n {
                    break;
                }
            }
            assert!(
                worst <= n * n,
                "n={n} m={m}: dirty window {worst} exceeds N²={}",
                n * n
            );
        }
    }
}
