//! Hamming weight and distance on labels, with the paper's `*` wildcard.
//!
//! The paper uses `D(s, z) = Σ_i |s_i - z_i|` as the (generalized) Hamming
//! distance between `r`-tuples and `W(s) = Σ_i s_i` as the Hamming weight.
//! One or more positions of a tuple may hold the "all" symbol `*`; such
//! positions are omitted from both computations.

/// A label digit that may be the wildcard `*`.
///
/// `Symbol(v)` is an ordinary symbol; `All` is the paper's `*`, standing for
/// every symbol of the factor graph at once (used in group labels such as
/// `[*, *]Q^{1,2}_{r-2}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WildDigit {
    /// A concrete symbol.
    Symbol(usize),
    /// The `*` wildcard.
    All,
}

/// Hamming weight `W(s) = Σ_i s_i` of a plain label.
#[inline]
#[must_use]
pub fn hamming_weight(digits: &[usize]) -> u64 {
    digits.iter().map(|&d| d as u64).sum()
}

/// Generalized Hamming distance `D(s, z) = Σ_i |s_i - z_i|`.
///
/// # Panics
///
/// Panics if the tuples have different lengths.
#[inline]
#[must_use]
pub fn hamming_distance(s: &[usize], z: &[usize]) -> u64 {
    assert_eq!(s.len(), z.len(), "tuples must have equal length");
    s.iter().zip(z).map(|(&a, &b)| a.abs_diff(b) as u64).sum()
}

/// Hamming weight of a wildcard label; `*` positions are omitted.
#[inline]
#[must_use]
pub fn wild_weight(digits: &[WildDigit]) -> u64 {
    digits
        .iter()
        .map(|d| match d {
            WildDigit::Symbol(v) => *v as u64,
            WildDigit::All => 0,
        })
        .sum()
}

/// Generalized Hamming distance between wildcard labels; any position where
/// either side is `*` is omitted.
///
/// # Panics
///
/// Panics if the tuples have different lengths.
#[inline]
#[must_use]
pub fn wild_distance(s: &[WildDigit], z: &[WildDigit]) -> u64 {
    assert_eq!(s.len(), z.len(), "tuples must have equal length");
    s.iter()
        .zip(z)
        .map(|(a, b)| match (a, b) {
            (WildDigit::Symbol(x), WildDigit::Symbol(y)) => x.abs_diff(*y) as u64,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_sums_digits() {
        assert_eq!(hamming_weight(&[0, 0, 0]), 0);
        assert_eq!(hamming_weight(&[1, 2, 3]), 6);
    }

    #[test]
    fn distance_is_l1() {
        assert_eq!(hamming_distance(&[0, 0], &[0, 0]), 0);
        assert_eq!(hamming_distance(&[2, 1], &[0, 3]), 4);
        assert_eq!(hamming_distance(&[5], &[5]), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn distance_rejects_mismatched_lengths() {
        let _ = hamming_distance(&[1, 2], &[1]);
    }

    #[test]
    fn wildcard_positions_are_omitted() {
        use WildDigit::{All, Symbol};
        // Group label 2 1 * — weight counts only concrete symbols.
        assert_eq!(wild_weight(&[All, Symbol(1), Symbol(2)]), 3);
        assert_eq!(
            wild_distance(
                &[All, Symbol(1), Symbol(2)],
                &[Symbol(9), Symbol(1), Symbol(0)]
            ),
            2
        );
        assert_eq!(wild_distance(&[All, All], &[Symbol(3), All]), 0);
    }

    #[test]
    fn distance_zero_iff_equal_modulo_wildcards() {
        use WildDigit::{All, Symbol};
        let a = [Symbol(1), All, Symbol(2)];
        let b = [Symbol(1), Symbol(7), Symbol(2)];
        assert_eq!(wild_distance(&a, &b), 0);
    }
}
