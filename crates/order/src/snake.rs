//! The *snake order* of Definition 2: the order in which sorted keys are
//! laid out on the nodes of a product network.
//!
//! Snake order on `PG_r` coincides with the `N`-ary reflected Gray-code
//! sequence `Q_r` on node labels (Section 2 of the paper): the key at sorted
//! position `p` lives on the node whose label is the `p`-th element of
//! `Q_r`. This module exposes that bijection directly on node *ranks* so the
//! simulator never materializes digit vectors in its hot loops.
//!
//! It also exposes the subsequence facts used by Step 1 of the multiway
//! merge: the keys on the dimension-1 subgraph `[v]PG¹_{r-1}` occupy
//! positions `v, 2N-v-1, 2N+v, 4N-v-1, 4N+v, …` of the whole snake-ordered
//! sequence.

use crate::gray::{gray_rank, gray_unrank};
use crate::radix::{pow, Shape};

/// Snake position of the node with the given label digits
/// (least-significant dimension first).
///
/// Equals the Gray-code rank of the label in `Q_r`.
#[inline]
#[must_use]
pub fn snake_rank(n: usize, digits: &[usize]) -> u64 {
    gray_rank(n, digits)
}

/// Label digits (least-significant first) of the node at snake position
/// `pos` in `PG_r`.
#[inline]
#[must_use]
pub fn snake_unrank(n: usize, r: usize, pos: u64) -> Vec<usize> {
    gray_unrank(n, r, pos)
}

/// Snake position of the node with radix rank `node` in a network of the
/// given shape. Allocation-free, `O(r)`.
#[must_use]
pub fn snake_pos_of_node(shape: Shape, node: u64) -> u64 {
    let n = shape.n() as u64;
    let mut acc: u64 = 0;
    let mut p: u64 = 1;
    let mut rest = node;
    for _ in 0..shape.r() {
        let d = rest % n;
        rest /= n;
        let inner = if d % 2 == 1 { p - 1 - acc } else { acc };
        acc = d * p + inner;
        p *= n;
    }
    acc
}

/// Radix rank of the node at snake position `pos`. Inverse of
/// [`snake_pos_of_node`]. Allocation-free, `O(r)`.
#[must_use]
pub fn node_at_snake_pos(shape: Shape, pos: u64) -> u64 {
    debug_assert!(pos < shape.len());
    let mut m = pos;
    let mut node: u64 = 0;
    for i in (0..shape.r()).rev() {
        let p = pow(shape.n(), i);
        let u = m / p;
        m %= p;
        if u % 2 == 1 {
            m = p - 1 - m;
        }
        node += u * p;
    }
    node
}

/// Successor of a snake position's node, as a node rank, or `None` at the
/// last position. Convenience over [`node_at_snake_pos`].
#[inline]
#[must_use]
pub fn snake_successor_rank(shape: Shape, pos: u64) -> Option<u64> {
    if pos + 1 < shape.len() {
        Some(node_at_snake_pos(shape, pos + 1))
    } else {
        None
    }
}

/// The dimension-1 digit `x_1` of the node at snake position `pos`.
///
/// This is the closed form behind Step 1 of the multiway merge: within the
/// `j`-th group of `N` consecutive snake positions, `x_1` runs forward
/// (`0…N-1`) when `j` is even and backward when `j` is odd, so
/// `x_1 = pos mod N` if `⌊pos / N⌋` is even and `N - 1 - (pos mod N)`
/// otherwise.
#[inline]
#[must_use]
pub fn dim1_digit_at_position(n: usize, pos: u64) -> usize {
    let n = n as u64;
    let within = pos % n;
    if (pos / n).is_multiple_of(2) {
        within as usize
    } else {
        (n - 1 - within) as usize
    }
}

/// Iterator over the snake positions occupied by the keys whose node label
/// has dimension-1 digit `v`: `v, 2N-v-1, 2N+v, 4N-v-1, 4N+v, …`, limited to
/// a sequence of total length `len` (which must be a multiple of `N`).
///
/// The `j`-th yielded position is `j·N + v` for even `j` and
/// `j·N + (N-1-v)` for odd `j`.
pub fn positions_of_dim1_digit(n: usize, len: u64, v: usize) -> impl Iterator<Item = u64> {
    assert!(v < n);
    assert_eq!(len % n as u64, 0, "sequence length must be a multiple of N");
    let n64 = n as u64;
    let v64 = v as u64;
    (0..len / n64).map(move |j| {
        let within = if j % 2 == 0 { v64 } else { n64 - 1 - v64 };
        j * n64 + within
    })
}

/// Positions within the snake-ordered sequence occupied by the nodes
/// whose label has digit `u` at dimension index `dim` (0-based) — the
/// paper's `[u]Q^{i}_{r-1}` subsequence for `i = dim + 1`.
///
/// Generalizes [`positions_of_dim1_digit`]: the snake sequence consists
/// of `N^{r-dim-1}` super-blocks of `N^{dim+1}` positions; within each
/// super-block, dimension `dim`'s digit sweeps `0 … N-1` (or back) in
/// runs of `N^{dim}` positions, with the sweep direction alternating with
/// the parity of the super-block index, and the *interior* of each run
/// likewise mirrored on odd runs.
///
/// The returned positions are ascending. For `dim = 0` the subsequence
/// visits the subgraph in its own snake order (the Step 1 property); for
/// higher dimensions reflections appear — e.g. `[u]Q^r` is the contiguous
/// block `[u·N^{r-1}, (u+1)·N^{r-1})`, reversed when `u` is odd, exactly
/// as Definition 2 prescribes (see the tests).
#[must_use]
pub fn positions_of_digit(shape: Shape, dim: usize, u: usize) -> Vec<u64> {
    assert!(dim < shape.r(), "dimension index out of range");
    assert!(u < shape.n(), "digit out of range");
    // Straightforward and obviously correct: walk the snake, keep
    // positions whose node has the digit. O(N^r · r); the closed-form
    // dim-1 special case remains the hot-path variant.
    (0..shape.len())
        .filter(|&pos| shape.digit(node_at_snake_pos(shape, pos), dim) == u)
        .collect()
}

/// Iterator over node ranks in snake order for the given shape.
#[derive(Debug, Clone)]
pub struct SnakeIter {
    shape: Shape,
    pos: u64,
}

impl SnakeIter {
    /// Traverse all `N^r` nodes in snake order.
    #[must_use]
    pub fn new(shape: Shape) -> Self {
        SnakeIter { shape, pos: 0 }
    }
}

impl Iterator for SnakeIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.pos >= self.shape.len() {
            return None;
        }
        let node = node_at_snake_pos(self.shape, self.pos);
        self.pos += 1;
        Some(node)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.shape.len() - self.pos) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SnakeIter {}

/// Snake position within a two-dimensional product `PG_2`:
/// `x_2·N + x_1` for even `x_2`, `x_2·N + (N-1-x_1)` for odd `x_2`.
#[inline]
#[must_use]
pub fn snake2_rank(n: usize, x1: usize, x2: usize) -> u64 {
    debug_assert!(x1 < n && x2 < n);
    let within = if x2.is_multiple_of(2) { x1 } else { n - 1 - x1 };
    (x2 * n + within) as u64
}

/// Inverse of [`snake2_rank`]: the `(x1, x2)` coordinates at a `PG_2` snake
/// position.
#[inline]
#[must_use]
pub fn snake2_unrank(n: usize, pos: u64) -> (usize, usize) {
    let x2 = (pos / n as u64) as usize;
    let within = (pos % n as u64) as usize;
    let x1 = if x2.is_multiple_of(2) {
        within
    } else {
        n - 1 - within
    };
    (x1, x2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_based_and_digit_based_agree() {
        for n in 2..=4 {
            for r in 1..=4 {
                let shape = Shape::new(n, r);
                for node in shape.ranks() {
                    let digits = shape.unrank(node);
                    assert_eq!(
                        snake_pos_of_node(shape, node),
                        snake_rank(n, &digits),
                        "n={n} r={r} node={node}"
                    );
                }
            }
        }
    }

    #[test]
    fn pos_node_roundtrip() {
        for n in 2..=5 {
            for r in 1..=4 {
                let shape = Shape::new(n, r);
                for pos in shape.ranks() {
                    let node = node_at_snake_pos(shape, pos);
                    assert_eq!(snake_pos_of_node(shape, node), pos);
                }
            }
        }
    }

    #[test]
    fn snake_iter_is_a_permutation_visiting_adjacent_labels() {
        let shape = Shape::new(3, 3);
        let order: Vec<u64> = SnakeIter::new(shape).collect();
        assert_eq!(order.len(), 27);
        let mut seen = [false; 27];
        for &v in &order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        // Consecutive snake nodes differ in exactly one digit by exactly one.
        for w in order.windows(2) {
            let a = shape.unrank(w[0]);
            let b = shape.unrank(w[1]);
            let dist: u64 = crate::hamming::hamming_distance(&a, &b);
            assert_eq!(dist, 1, "{a:?} -> {b:?}");
        }
    }

    #[test]
    fn dim1_digit_matches_unrank() {
        for n in 2..=5 {
            let shape = Shape::new(n, 3);
            for pos in shape.ranks() {
                let node = node_at_snake_pos(shape, pos);
                assert_eq!(
                    dim1_digit_at_position(n, pos),
                    shape.digit(node, 0),
                    "n={n} pos={pos}"
                );
            }
        }
    }

    /// Section 2: "the elements of `[u]Q¹_{r-1}` come from positions
    /// u, 2N-u-1, 2N+u, 4N-u-1, 4N+u, and so on".
    #[test]
    fn paper_position_sequence() {
        let n = 3;
        let got: Vec<u64> = positions_of_dim1_digit(n, 18, 1).collect();
        // u = 1, N = 3: 1, 2*3-1-1=4, 2*3+1=7, 4*3-1-1=10, 4*3+1=13, 16.
        assert_eq!(got, vec![1, 4, 7, 10, 13, 16]);
    }

    #[test]
    fn positions_partition_the_sequence() {
        let n = 4;
        let len = 64u64;
        let mut hit = vec![0u32; len as usize];
        for v in 0..n {
            for p in positions_of_dim1_digit(n, len, v) {
                hit[p as usize] += 1;
            }
        }
        assert!(hit.iter().all(|&h| h == 1));
    }

    #[test]
    fn positions_are_sorted_within_each_digit_class() {
        // Subsequences B_{u,v} keep the relative order of A_u, so the
        // position stream must be strictly increasing.
        for n in 2..=5 {
            for v in 0..n {
                let ps: Vec<u64> = positions_of_dim1_digit(n, (n * n * n) as u64, v).collect();
                assert!(ps.windows(2).all(|w| w[0] < w[1]), "n={n} v={v}");
            }
        }
    }

    #[test]
    fn snake2_roundtrip_and_boustrophedon() {
        for n in 2..=6 {
            for pos in 0..(n * n) as u64 {
                let (x1, x2) = snake2_unrank(n, pos);
                assert_eq!(snake2_rank(n, x1, x2), pos);
            }
            // Row 0 runs left-to-right, row 1 right-to-left.
            assert_eq!(snake2_unrank(n, 0), (0, 0));
            assert_eq!(snake2_unrank(n, n as u64 - 1), (n - 1, 0));
            assert_eq!(snake2_unrank(n, n as u64), (n - 1, 1));
        }
    }

    #[test]
    fn positions_of_digit_generalizes_dim1() {
        for n in 2..=4 {
            let shape = Shape::new(n, 3);
            for u in 0..n {
                let general = positions_of_digit(shape, 0, u);
                let special: Vec<u64> = positions_of_dim1_digit(n, shape.len(), u).collect();
                assert_eq!(general, special, "n={n} u={u}");
            }
        }
    }

    #[test]
    fn positions_of_digit_partition_for_every_dim() {
        let shape = Shape::new(3, 3);
        for dim in 0..3 {
            let mut seen = [0u8; 27];
            for u in 0..3 {
                for p in positions_of_digit(shape, dim, u) {
                    seen[p as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "dim={dim}");
        }
    }

    #[test]
    fn dim1_subsequence_preserves_subgraph_snake_order() {
        // Section 2: "if PG_r contains a sequence of keys sorted in snake
        // order, the keys on the subgraph [u]PG^1_{r-1} are also sorted in
        // snake order". This is special to dimension 1 (higher dimensions
        // pick up reflections, e.g. [1]Q^r is reversed per Definition 2).
        let shape = Shape::new(3, 3);
        let sub = Shape::new(3, 2);
        for u in 0..3 {
            let positions = positions_of_digit(shape, 0, u);
            for (t, &p) in positions.iter().enumerate() {
                let node = node_at_snake_pos(shape, p);
                let mut digits = shape.unrank(node);
                digits.remove(0);
                let sub_node = sub.rank(&digits);
                assert_eq!(snake_pos_of_node(sub, sub_node), t as u64, "u={u} t={t}");
            }
        }
    }

    #[test]
    fn leftmost_subsequence_is_contiguous_and_reflects_by_parity() {
        // Definition 2 directly: [u]PG^r_{r-1} occupies the contiguous
        // positions [u·N^{r-1}, (u+1)·N^{r-1}), forward for even u and
        // reversed for odd u.
        let shape = Shape::new(3, 3);
        let sub = Shape::new(3, 2);
        for u in 0..3u64 {
            let positions = positions_of_digit(shape, 2, u as usize);
            let expect: Vec<u64> = (u * 9..(u + 1) * 9).collect();
            assert_eq!(positions, expect, "contiguous block for u={u}");
            // Orientation: walk the block, map to sub-shape snake ranks.
            let ranks: Vec<u64> = positions
                .iter()
                .map(|&p| {
                    let node = node_at_snake_pos(shape, p);
                    let mut digits = shape.unrank(node);
                    digits.remove(2);
                    snake_pos_of_node(sub, sub.rank(&digits))
                })
                .collect();
            let forward: Vec<u64> = (0..9).collect();
            if u % 2 == 0 {
                assert_eq!(ranks, forward, "even u runs forward");
            } else {
                let backward: Vec<u64> = (0..9).rev().collect();
                assert_eq!(ranks, backward, "odd u runs reversed");
            }
        }
    }

    #[test]
    fn snake_matches_paper_fig3_prefix() {
        // Fig. 3 shows the snake order on the 27-node example as the Q_3
        // sequence {000, 001, 002, 012, 011, 010, 020, 021, 022, 122, ...}
        // (labels x3 x2 x1).
        let shape = Shape::new(3, 3);
        let expect_x3x2x1: [[usize; 3]; 10] = [
            [0, 0, 0],
            [0, 0, 1],
            [0, 0, 2],
            [0, 1, 2],
            [0, 1, 1],
            [0, 1, 0],
            [0, 2, 0],
            [0, 2, 1],
            [0, 2, 2],
            [1, 2, 2],
        ];
        for (pos, lab) in expect_x3x2x1.iter().enumerate() {
            let node = node_at_snake_pos(shape, pos as u64);
            let d = shape.unrank(node);
            assert_eq!(d, vec![lab[2], lab[1], lab[0]], "pos={pos}");
        }
    }
}
