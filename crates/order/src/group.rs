//! Group sequences: the snake ordering *between* subgraphs of a product
//! graph (Section 2 of the paper).
//!
//! Erasing dimensions 1 (and 2) of `PG_r` leaves `G`-subgraphs (resp.
//! `PG_2`-subgraphs) identified by *group labels* — the common digits of
//! their nodes at the remaining dimensions. Listing the group labels in
//! `N`-ary Gray-code order yields the sequences the paper writes
//! `[*]Q¹_{r-1}` and `[*,*]Q^{1,2}_{r-2}`. Consecutive group labels have
//! unit Hamming distance, and a subgraph is *even* or *odd* according to the
//! Hamming weight of its group label; even subgraphs are traversed forward
//! by the global snake order and odd ones backward, which is also the
//! alternation used by Step 4 of the multiway merge.

use crate::gray::{gray_successor, gray_unrank};
use crate::hamming::hamming_weight;
use crate::radix::pow;

/// Parity of a group label's Hamming weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parity {
    /// Even Hamming weight: the subgraph is traversed forward.
    Even,
    /// Odd Hamming weight: the subgraph is traversed backward.
    Odd,
}

impl Parity {
    /// Parity of an integer.
    #[inline]
    #[must_use]
    pub fn of(w: u64) -> Self {
        if w.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// The opposite parity.
    #[inline]
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }
}

/// Parity of a group label (Hamming weight mod 2).
///
/// Because consecutive Gray-code terms alternate weight parity and the first
/// term has weight 0, the label at group-sequence position `z` has parity
/// `Parity::of(z)`.
#[inline]
#[must_use]
pub fn group_label_parity(label: &[usize]) -> Parity {
    Parity::of(hamming_weight(label))
}

/// One transition between consecutive group labels in the group sequence:
/// the label at position `z` and the label at position `z + 1` differ at
/// exactly digit `dim` (an index into the label), where the earlier label
/// holds `from` and the later holds `to`, with `|from - to| = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupStep {
    /// Index of the digit that changes (0-based within the group label).
    pub dim: usize,
    /// Digit value in the earlier label.
    pub from: usize,
    /// Digit value in the later label.
    pub to: usize,
}

/// The full group sequence for labels of `len` digits over radix `n`:
/// every label in Gray order together with its parity.
///
/// Position `z` of the returned sequence is the paper's `z`-th subgraph;
/// `Parity::of(z)` equals the label's parity.
#[must_use]
pub fn group_sequence(n: usize, len: usize) -> Vec<(Vec<usize>, Parity)> {
    if len == 0 {
        return vec![(Vec::new(), Parity::Even)];
    }
    let total = pow(n, len);
    let mut out = Vec::with_capacity(total as usize);
    let mut cur = vec![0usize; len];
    loop {
        out.push((cur.clone(), group_label_parity(&cur)));
        if gray_successor(n, &mut cur).is_none() {
            break;
        }
    }
    debug_assert_eq!(out.len() as u64, total);
    out
}

/// The transitions between consecutive labels of the group sequence.
///
/// `result[z]` describes how label `z` becomes label `z + 1`. Used by the
/// odd-even transposition rounds of Step 4, where subgraph pairs
/// `(z, z + 1)` compare corresponding nodes along the changing dimension.
#[must_use]
pub fn group_steps(n: usize, len: usize) -> Vec<GroupStep> {
    if len == 0 {
        return Vec::new();
    }
    let total = pow(n, len);
    let mut out = Vec::with_capacity(total as usize - 1);
    let mut cur = vec![0usize; len];
    loop {
        let prev = cur.clone();
        match gray_successor(n, &mut cur) {
            Some(dim) => out.push(GroupStep {
                dim,
                from: prev[dim],
                to: cur[dim],
            }),
            None => break,
        }
    }
    out
}

/// The group label at position `z` of the group sequence (Gray unrank).
#[inline]
#[must_use]
pub fn group_label_at(n: usize, len: usize, z: u64) -> Vec<usize> {
    gray_unrank(n, len, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::hamming_distance;

    /// The paper's explicit example:
    /// `[*]Q¹_2 = {00*, 01*, 02*, 12*, 11*, 10*, 20*, 21*, 22*}` for N = 3,
    /// where even-weight groups expand to `{0,1,2}` and odd-weight groups to
    /// `{2,1,0}`.
    #[test]
    fn paper_group_sequence_example() {
        let seq = group_sequence(3, 2);
        // Labels written x3 x2 in the paper; ours least-significant first,
        // so paper "01" (x3=0, x2=1) is [1, 0].
        let expect: [([usize; 2], Parity); 9] = [
            ([0, 0], Parity::Even),
            ([1, 0], Parity::Odd),
            ([2, 0], Parity::Even),
            ([2, 1], Parity::Odd),
            ([1, 1], Parity::Even),
            ([0, 1], Parity::Odd),
            ([0, 2], Parity::Even),
            ([1, 2], Parity::Odd),
            ([2, 2], Parity::Even),
        ];
        assert_eq!(seq.len(), 9);
        for (z, (lab, par)) in seq.iter().enumerate() {
            assert_eq!(lab.as_slice(), &expect[z].0, "z={z}");
            assert_eq!(*par, expect[z].1, "z={z}");
            assert_eq!(*par, Parity::of(z as u64), "parity alternates");
        }
    }

    #[test]
    fn consecutive_group_labels_unit_distance() {
        for n in 2..=4 {
            for len in 1..=4 {
                let seq = group_sequence(n, len);
                for w in seq.windows(2) {
                    assert_eq!(hamming_distance(&w[0].0, &w[1].0), 1);
                }
            }
        }
    }

    #[test]
    fn steps_describe_transitions() {
        for n in 2..=4 {
            for len in 1..=3 {
                let seq = group_sequence(n, len);
                let steps = group_steps(n, len);
                assert_eq!(steps.len(), seq.len() - 1);
                for (z, st) in steps.iter().enumerate() {
                    let (a, _) = &seq[z];
                    let (b, _) = &seq[z + 1];
                    assert_eq!(a[st.dim], st.from);
                    assert_eq!(b[st.dim], st.to);
                    assert_eq!(st.from.abs_diff(st.to), 1);
                    for i in 0..len {
                        if i != st.dim {
                            assert_eq!(a[i], b[i]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_group_label_is_single_even_group() {
        let seq = group_sequence(5, 0);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].1, Parity::Even);
        assert!(group_steps(5, 0).is_empty());
    }

    #[test]
    fn parity_flip() {
        assert_eq!(Parity::Even.flip(), Parity::Odd);
        assert_eq!(Parity::of(7).flip(), Parity::Even);
    }
}
